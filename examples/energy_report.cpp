// Domain scenario: measuring the energy of a lock-based workload with the
// EnergyMeter stack -- RAPL when the host exposes it, the calibrated power
// model otherwise (the paper's measurement methodology, portable).
//
// Runs a contended counter under two waiting strategies and prints average
// power, energy and TPP (operations/Joule).
//
//   $ ./energy_report
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/energy/model_meter.hpp"
#include "src/energy/rapl_meter.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/spinlocks.hpp"
#include "src/platform/topology.hpp"

namespace {

using namespace lockin;

template <typename Lock>
EnergySample MeasureCounter(Lock& lock, ActivityRegistry* registry, EnergyMeter* meter,
                            std::uint64_t* ops_out) {
  constexpr int kThreads = 4;
  constexpr int kOps = 150000;
  meter->Start();
  std::vector<std::thread> workers;
  long long counter = 0;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Report this thread's activity to the model meter: context t runs
      // lock-protected work.
      registry->SetState(t, ActivityState::kCritical);
      for (int i = 0; i < kOps; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
      registry->SetState(t, ActivityState::kInactive);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  *ops_out = static_cast<std::uint64_t>(counter);
  return meter->Stop();
}

}  // namespace

int main() {
  const Topology host = Topology::Detect();
  std::printf("host topology: %s\n", host.ToString().c_str());
  std::printf("RAPL available: %s\n\n", RaplMeter::Available() ? "yes" : "no (using model)");

  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::Detect(), PowerParams::PaperXeon()));
  std::unique_ptr<EnergyMeter> meter = MakeDefaultMeter(registry);

  std::printf("%-22s %10s %10s %10s %12s\n", "configuration", "seconds", "joules", "watts",
              "TPP(ops/J)");

  {
    FutexLock mutex;  // sleeping waiters
    std::uint64_t ops = 0;
    const EnergySample sample = MeasureCounter(mutex, registry.get(), meter.get(), &ops);
    std::printf("%-22s %10.3f %10.2f %10.1f %12.0f\n", "mutex (sleeping)", sample.seconds,
                sample.total_joules(), sample.average_watts(),
                sample.Tpp(static_cast<double>(ops)));
  }
  {
    SpinConfig config;
    config.yield_after = 256;  // stay live on small hosts
    TtasLock spin(config);     // busy-waiting waiters
    std::uint64_t ops = 0;
    const EnergySample sample = MeasureCounter(spin, registry.get(), meter.get(), &ops);
    std::printf("%-22s %10.3f %10.2f %10.1f %12.0f\n", "spinlock (busy-wait)", sample.seconds,
                sample.total_joules(), sample.average_watts(),
                sample.Tpp(static_cast<double>(ops)));
  }

  std::printf("\nmeter backend: %s\n", meter->Name().c_str());
  std::printf("(the paper's Figure 1 trade-off: spinning can buy throughput at higher\n"
              "power; whether TPP improves depends on the contention level)\n");
  return 0;
}
