// Domain scenario: driving the simulated Xeon directly -- sweep one lock
// workload across thread counts on the paper's 40-hyper-thread testbed and
// print throughput, power and TPP, like a row of the paper's Figure 11.
//
//   $ ./simulate_xeon [lock] [cs_cycles]
//   $ ./simulate_xeon MUTEXEE 2000
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const std::string lock = argc > 1 ? argv[1] : "MUTEXEE";
  const std::uint64_t cs = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1000;

  std::printf("simulated 2-socket Xeon (40 hyper-threads), lock=%s, critical section=%llu "
              "cycles\n\n",
              lock.c_str(), (unsigned long long)cs);
  std::printf("%8s %14s %10s %14s %12s %12s\n", "threads", "tput(Macq/s)", "power(W)",
              "TPP(Kacq/J)", "p95(cyc)", "p99.99(cyc)");
  for (int threads : {1, 4, 10, 20, 30, 40, 50, 60}) {
    WorkloadConfig config;
    config.threads = threads;
    config.cs_cycles = cs;
    config.non_cs_cycles = 100;
    config.duration_cycles = 28'000'000;
    const WorkloadResult r = RunLockWorkload(lock, config);
    if (r.lock_stats.acquires == 0 && threads == 1) {
      std::fprintf(stderr, "unknown lock '%s' (try MUTEX TAS TTAS TICKET MCS CLH MUTEXEE)\n",
                   lock.c_str());
      return 1;
    }
    std::printf("%8d %14.3f %10.1f %14.2f %12llu %12llu\n", threads, r.ThroughputM(),
                r.average_watts, r.TppK(),
                (unsigned long long)r.acquire_latency_cycles.P95(),
                (unsigned long long)r.acquire_latency_cycles.P9999());
  }
  return 0;
}
