// Paper-style lock microbenchmark on *this* machine: the tool a user with a
// real multi-socket box runs to produce Figure-11-style rows from the
// native lock library (throughput via rdtsc; energy via RAPL when the host
// exposes it, the calibrated model otherwise).
//
//   $ ./native_bench [threads] [cs_cycles] [duration_ms]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/energy/model_meter.hpp"
#include "src/energy/rapl_meter.hpp"
#include "src/locks/harness.hpp"
#include "src/platform/topology.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t cs = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1000;
  const std::uint64_t ms = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 200;

  std::printf("host: %s | RAPL: %s\n", Topology::Detect().ToString().c_str(),
              RaplMeter::Available() ? "yes" : "no (model)");
  std::printf("threads=%d cs=%llu cycles, %llu ms per lock\n\n", threads,
              (unsigned long long)cs, (unsigned long long)ms);

  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::Detect(), PowerParams::PaperXeon()));
  std::unique_ptr<EnergyMeter> meter = MakeDefaultMeter(registry);

  std::printf("%-10s %-6s %14s %10s %12s %10s %12s\n", "lock", "tier", "tput(acq/s)", "watts",
              "TPP(acq/J)", "p95(cyc)", "p99.99(cyc)");
  for (const std::string& name : RegisteredLockNames()) {
    NativeBenchConfig config;
    config.lock_name = name;
    config.threads = threads;
    config.cs_cycles = cs;
    config.duration_ms = ms;
    config.lock_options.spin.yield_after = 512;  // survive oversubscribed hosts
    if (name == "MUTEXEE-TO") {
      // Without a timeout MUTEXEE-TO is byte-for-byte MUTEXEE; give the row
      // its distinguishing behavior (8 ms bounds the sleepers' tail within
      // the default 200 ms run).
      config.lock_options.mutexee.sleep_timeout_ns = 8'000'000;
    }
    // Report this run's threads as active contexts to the model meter.
    for (int t = 0; t < threads; ++t) {
      registry->SetState(t, ActivityState::kCritical);
    }
    const NativeBenchResult r = RunNativeBench(config, meter.get());
    for (int t = 0; t < threads; ++t) {
      registry->SetState(t, ActivityState::kInactive);
    }
    std::printf("%-10s %-6s %14.0f %10.1f %12.0f %10llu %12llu\n", name.c_str(),
                r.used_static_dispatch ? "static" : "handle", r.throughput_per_s,
                r.energy.average_watts(), r.tpp,
                (unsigned long long)r.acquire_latency_cycles.P95(),
                (unsigned long long)r.acquire_latency_cycles.P9999());
  }
  return 0;
}
