// Shared plumbing for the per-lock example tables.
//
// Every pre-NetServe example (cache_server, kvstore_app) hand-rolled the
// same loop: for each lock, tweak a ScenarioConfig, run a registered
// scenario, print one fixed-width row. RunLockTable is that loop, once --
// the examples keep only their workload choice and their extra columns.
#ifndef EXAMPLES_EXAMPLE_COMMON_HPP_
#define EXAMPLES_EXAMPLE_COMMON_HPP_

#include <cstdio>
#include <string>
#include <vector>

#include "src/systems/workload_api.hpp"

namespace lockin {

// One scenario variant shown in the table: the registered scenario name
// plus the label printed in the "mode" column (empty = no mode column).
struct ExampleRun {
  const char* scenario;
  const char* label;
};

// An extra numeric column pulled from a finished run.
struct ExampleColumn {
  const char* heading;
  double (*value)(const ScenarioResult& result);
};

// Runs every lock x run combination of `base` and prints:
//   lock [mode] ops/second [extra columns...]
// `check` (optional) can veto a result -- RunLockTable then returns false
// immediately (after the check printed its own diagnostic).
inline bool RunLockTable(const std::vector<const char*>& locks,
                         const std::vector<ExampleRun>& runs, const ScenarioConfig& base,
                         const std::vector<ExampleColumn>& extra = {},
                         bool (*check)(const ScenarioResult&, const char* lock) = nullptr) {
  bool with_mode = false;
  for (const ExampleRun& run : runs) {
    with_mode = with_mode || (run.label != nullptr && run.label[0] != '\0');
  }
  std::printf("%-10s ", "lock");
  if (with_mode) {
    std::printf("%-10s ", "mode");
  }
  std::printf("%15s", "ops/second");
  for (const ExampleColumn& column : extra) {
    std::printf(" %12s", column.heading);
  }
  std::printf("\n");
  for (const char* lock : locks) {
    for (const ExampleRun& run : runs) {
      ScenarioConfig config = base;
      config.lock_name = lock;
      const ScenarioResult result = RunScenarioByName(run.scenario, config);
      if (check != nullptr && !check(result, lock)) {
        return false;
      }
      std::printf("%-10s ", lock);
      if (with_mode) {
        std::printf("%-10s ", run.label);
      }
      std::printf("%15.0f", result.ops_per_s);
      for (const ExampleColumn& column : extra) {
        std::printf(" %12.0f", column.value(result));
      }
      std::printf("\n");
    }
  }
  return true;
}

}  // namespace lockin

#endif  // EXAMPLES_EXAMPLE_COMMON_HPP_
