// Quickstart: the MUTEXEE lock as a drop-in mutex.
//
// Builds a MUTEXEE, protects a shared counter with std::lock_guard (the
// lock satisfies the standard Lockable protocol), and prints the handover
// statistics the paper's analysis revolves around: how many acquisitions
// were resolved by busy waiting vs by futex, and how many futex wakes the
// unlock grace window avoided.
//
//   $ ./quickstart
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "src/locks/mutexee.hpp"

int main() {
  lockin::MutexeeLock lock;  // paper defaults: 8000-cycle spin, 384-cycle grace
  long long counter = 0;

  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 100000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        std::lock_guard<lockin::MutexeeLock> guard(lock);
        counter = counter + 1;
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  const lockin::MutexeeLock::Stats stats = lock.GetStats();
  std::printf("counter               = %lld (expected %d)\n", counter,
              kThreads * kIncrementsPerThread);
  std::printf("acquisitions          = %llu\n", (unsigned long long)stats.acquires);
  std::printf("  via busy waiting    = %llu\n", (unsigned long long)stats.spin_handovers);
  std::printf("  via futex wake      = %llu\n", (unsigned long long)stats.futex_handovers);
  std::printf("futex wakes avoided   = %llu (unlock grace window)\n",
              (unsigned long long)stats.wake_skips);
  std::printf("futex handover ratio  = %.4f (mode switches to 'mutex' above 0.30)\n",
              stats.FutexHandoverRatio());
  std::printf("current mode          = %s\n",
              lock.mode() == lockin::MutexeeLock::Mode::kSpin ? "spin" : "mutex");
  return counter == kThreads * kIncrementsPerThread ? 0 : 1;
}
