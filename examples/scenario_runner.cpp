// Unified scenario CLI: run any registered scenario under any registered
// lock through the shared native driver (src/systems/workload_api.hpp).
//
//   $ ./scenario_runner --list
//   $ ./scenario_runner --scenario kvstore/WT --lock MUTEXEE --threads 8
//   $ ./scenario_runner --scenario cache/set-heavy --lock all --json
//   $ ./scenario_runner --all --quick
//
// Flags:
//   --list            print the scenario table (name, system, description)
//   --scenario NAME   scenario to run (repeatable via --all)
//   --all             run every registered scenario
//   --lock NAME       lock algorithm, or "all" for every registered lock
//   --threads N       worker threads (default 4)
//   --ops N           operations per thread (default 40000; --quick: 8000)
//   --seconds S       time-bounded run instead of fixed ops
//   --seed N          workload seed (default 1)
//   --read-percent P  override the scenario's default mix
//   --key-space N     override the scenario's default key space
//   --json            machine-readable output (one JSON object per run)
//   --quick           short run (CI smoke)
//
// ShardCombine flags (src/systems/sharded.hpp):
//   --shards N        override the scenario's default shard count (0 keeps
//                     the registered paper shape: 1 for the single-lock
//                     systems, 16 cache, 32 graph, 8 nosql/hash)
//   --combine         flat-combine shard mutations (CombinerChannel)
//   --rw              per-shard reader-writer locks (shared on read paths);
//                     mutually exclusive with --combine
//   --thread-sweep LIST  run each scenario x lock at every thread count in
//                     the comma-separated LIST (e.g. 1,2,4,8) and, with
//                     --json, emit the whole scaling curve set as ONE JSON
//                     document ({"thread_sweep": ..., "curves": [...]})
//
// LockScope observability flags:
//   --trace FILE      capture lock/futex/epoch events and write a Chrome
//                     trace-event JSON (load in ui.perfetto.dev); single
//                     scenario x lock only
//   --metrics         print the process MetricsRegistry as flat JSON after
//                     the runs
//   --lockdep         arm the LockLint lock-order detector for the runs and
//                     print any reported violations (exit 1 if any)
//   --meter MODE      energy meter: auto (RAPL else model; default),
//                     model, off
//   --sample-ms N     sample the meter every N ms into an energy series
//                     (and a watts counter track when tracing)
//
// FailSafe robustness flags:
//   --failpoints SPEC arm named failpoints for the runs (grammar in
//                     src/platform/failpoint.hpp, e.g. futex/wait=p0.01)
//   --chaos           arm the default chaos profile (DefaultChaosSpec)
//   --deadline-us N   per-op deadline: shed ops whose entry lock cannot be
//                     acquired within N microseconds (after retries)
//   --op-retries N    deadline-miss retries before shedding (default 3)
//   --watchdog-ms N   stall watchdog: a worker making no progress for N ms
//                     dumps held locks + failpoints and aborts (exit 3)
//   --no-watchdog-abort  count stalls instead of aborting
//
// SIGINT/SIGTERM stop the runs cleanly: partial results, traces and metrics
// are still written, and the process exits with 128 + signal.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/locks/lock_registry.hpp"
#include "src/obs/export.hpp"
#include "src/obs/metrics.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/failpoint.hpp"
#include "src/stats/table.hpp"
#include "src/systems/workload_api.hpp"

namespace {

using namespace lockin;

// Signal-to-stop wiring: the handler only stores to atomics; the driver's
// workers poll g_stop via ScenarioConfig::external_stop.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signal{0};

void HandleStopSignal(int sig) {
  g_stop.store(true, std::memory_order_relaxed);
  g_signal.store(sig, std::memory_order_relaxed);
}

struct RunnerOptions {
  bool list = false;
  bool all = false;
  bool json = false;
  bool quick = false;
  std::string scenario;
  std::string lock = "MUTEX";
  int threads = 4;
  int ops = 0;  // 0 = default (40000, or 8000 with --quick)
  double seconds = 0;
  std::uint64_t seed = 1;
  int read_percent = -1;
  std::uint64_t key_space = 0;
  long shards = 0;  // 0 = scenario default
  bool combine = false;
  bool rw = false;
  std::vector<int> thread_sweep;
  std::string trace_path;
  bool metrics = false;
  bool lockdep = false;
  std::string meter = "auto";
  long sample_ms = 0;
  std::string failpoints;
  bool chaos = false;
  long deadline_us = 0;
  long op_retries = -1;  // -1 = keep the ScenarioConfig default
  long watchdog_ms = 0;
  bool watchdog_abort = true;
};

void PrintUsage(const char* prog, std::FILE* out) {
  std::fprintf(out,
               "usage: %s --list | --scenario NAME | --all [options]\n"
               "  --lock NAME|all  --threads N  --ops N  --seconds S  --seed N\n"
               "  --read-percent P  --key-space N  --json  --quick\n"
               "  --shards N  --combine  --rw  --thread-sweep 1,2,4,8\n"
               "  --trace FILE  --metrics  --lockdep  --meter auto|model|off  --sample-ms N\n"
               "  --failpoints SPEC  --chaos  --deadline-us N  --op-retries N\n"
               "  --watchdog-ms N  --no-watchdog-abort\n",
               prog);
}

[[noreturn]] void Fail(const char* prog, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", prog, message.c_str());
  PrintUsage(prog, stderr);
  std::exit(2);
}

RunnerOptions ParseArgs(int argc, char** argv) {
  RunnerOptions options;
  auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      Fail(argv[0], std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  auto int_of = [&](int& i, const char* flag, long min, long max) -> long {
    const char* value = value_of(i, flag);
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < min || parsed > max) {
      Fail(argv[0], std::string("invalid ") + flag + " value: " + value);
    }
    return parsed;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      options.list = true;
    } else if (std::strcmp(argv[i], "--all") == 0) {
      options.all = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      options.scenario = value_of(i, "--scenario");
    } else if (std::strcmp(argv[i], "--lock") == 0) {
      options.lock = value_of(i, "--lock");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = static_cast<int>(int_of(i, "--threads", 1, 4096));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      options.ops = static_cast<int>(int_of(i, "--ops", 1, 1000000000));
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      const char* value = value_of(i, "--seconds");
      char* end = nullptr;
      options.seconds = std::strtod(value, &end);
      if (end == value || *end != '\0' || options.seconds <= 0) {
        Fail(argv[0], std::string("invalid --seconds value: ") + value);
      }
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      // Full uint64 range: seeds are often derived from timestamps/hashes.
      const char* value = value_of(i, "--seed");
      char* end = nullptr;
      errno = 0;
      options.seed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0' || errno == ERANGE) {
        Fail(argv[0], std::string("invalid --seed value: ") + value);
      }
    } else if (std::strcmp(argv[i], "--read-percent") == 0) {
      options.read_percent = static_cast<int>(int_of(i, "--read-percent", 0, 100));
    } else if (std::strcmp(argv[i], "--key-space") == 0) {
      options.key_space = static_cast<std::uint64_t>(int_of(i, "--key-space", 1, 1000000000));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      options.shards = int_of(i, "--shards", 1, 4096);
    } else if (std::strcmp(argv[i], "--combine") == 0) {
      options.combine = true;
    } else if (std::strcmp(argv[i], "--rw") == 0) {
      options.rw = true;
    } else if (std::strcmp(argv[i], "--thread-sweep") == 0) {
      // Comma-separated thread counts, e.g. "1,2,4,8".
      const char* value = value_of(i, "--thread-sweep");
      const char* cursor = value;
      while (*cursor != '\0') {
        char* end = nullptr;
        const long parsed = std::strtol(cursor, &end, 10);
        if (end == cursor || parsed < 1 || parsed > 4096 ||
            (*end != '\0' && *end != ',')) {
          Fail(argv[0], std::string("invalid --thread-sweep value: ") + value);
        }
        options.thread_sweep.push_back(static_cast<int>(parsed));
        cursor = *end == ',' ? end + 1 : end;
      }
      if (options.thread_sweep.empty()) {
        Fail(argv[0], "--thread-sweep requires at least one thread count");
      }
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace_path = value_of(i, "--trace");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      options.metrics = true;
    } else if (std::strcmp(argv[i], "--lockdep") == 0) {
      options.lockdep = true;
    } else if (std::strcmp(argv[i], "--meter") == 0) {
      options.meter = value_of(i, "--meter");
      if (options.meter != "auto" && options.meter != "model" && options.meter != "off") {
        Fail(argv[0], "invalid --meter value: " + options.meter + " (auto|model|off)");
      }
    } else if (std::strcmp(argv[i], "--sample-ms") == 0) {
      options.sample_ms = int_of(i, "--sample-ms", 1, 60000);
    } else if (std::strcmp(argv[i], "--failpoints") == 0) {
      options.failpoints = value_of(i, "--failpoints");
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      options.chaos = true;
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      options.deadline_us = int_of(i, "--deadline-us", 1, 1000000000);
    } else if (std::strcmp(argv[i], "--op-retries") == 0) {
      options.op_retries = int_of(i, "--op-retries", 0, 1000000);
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0) {
      options.watchdog_ms = int_of(i, "--watchdog-ms", 1, 3600000);
    } else if (std::strcmp(argv[i], "--no-watchdog-abort") == 0) {
      options.watchdog_abort = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(argv[0], stdout);
      std::exit(0);
    } else {
      Fail(argv[0], std::string("unrecognized argument: ") + argv[i]);
    }
  }
  return options;
}

void ListScenarios(bool json) {
  TextTable table({"scenario", "system", "description"});
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    table.AddRow({info.name, info.system, info.description});
  }
  if (json) {
    table.PrintJson(std::cout);
  } else {
    table.Print(std::cout);
  }
}

void EmitJson(const ScenarioResult& r, bool record_latency, const RunnerOptions& options) {
  std::printf("{\"scenario\": \"%s\", \"lock\": \"%s\", \"threads\": %d, "
              "\"seconds\": %.6f, \"total_ops\": %llu, \"ops_per_s\": %.1f",
              r.scenario.c_str(), r.lock_name.c_str(), r.threads, r.seconds,
              static_cast<unsigned long long>(r.total_ops), r.ops_per_s);
  // ShardCombine variant labels: printed only when requested on the command
  // line, so default runs keep byte-identical output.
  if (options.shards > 0) {
    std::printf(", \"shards\": %ld", options.shards);
  }
  if (options.combine) {
    std::printf(", \"combine\": true");
  }
  if (options.rw) {
    std::printf(", \"rw\": true");
  }
  if (record_latency) {
    // Cycles stay the JSON unit (bit-stable across hosts whose TSC
    // calibration drifts); the human-readable table converts to ns.
    std::printf(", \"op_p50_cycles\": %llu, \"op_p99_cycles\": %llu, \"op_max_cycles\": %llu",
                static_cast<unsigned long long>(r.op_latency_cycles.P50()),
                static_cast<unsigned long long>(r.op_latency_cycles.P99()),
                static_cast<unsigned long long>(r.op_latency_cycles.max()));
  }
  // FailSafe accounting: only printed when nonzero so default runs keep
  // byte-identical output.
  if (r.ops_shed != 0 || r.shed_retries != 0) {
    std::printf(", \"ops_shed\": %llu, \"shed_retries\": %llu",
                static_cast<unsigned long long>(r.ops_shed),
                static_cast<unsigned long long>(r.shed_retries));
  }
  if (r.watchdog_stalls != 0) {
    std::printf(", \"watchdog_stalls\": %llu",
                static_cast<unsigned long long>(r.watchdog_stalls));
  }
  if (!r.meter_name.empty()) {
    // Dedicated fields, not scenario metrics: the metrics below print with
    // %.0f (they are counters) and sub-Joule values would truncate to 0.
    std::printf(", \"meter\": \"%s\", \"joules\": %.6f, \"avg_watts\": %.3f, \"tpp\": %.3f",
                r.meter_name.c_str(), r.energy.total_joules(), r.AvgWatts(), r.Tpp());
  }
  for (const ScenarioMetric& metric : r.metrics) {
    std::printf(", \"%s\": %.0f", metric.name.c_str(), metric.value);
  }
  std::printf("}\n");
}

std::string MetricsToString(const ScenarioResult& r) {
  std::string out;
  const auto append = [&out](const std::string& name, double value) {
    if (!out.empty()) {
      out += " ";
    }
    out += name + "=" + FormatDouble(value, 0);
  };
  for (const ScenarioMetric& metric : r.metrics) {
    append(metric.name, metric.value);
  }
  if (r.ops_shed != 0 || r.shed_retries != 0) {
    append("ops_shed", static_cast<double>(r.ops_shed));
    append("shed_retries", static_cast<double>(r.shed_retries));
  }
  if (r.watchdog_stalls != 0) {
    append("watchdog_stalls", static_cast<double>(r.watchdog_stalls));
  }
  return out;
}

// Writes the collected trace rings as a Chrome trace-event file. Shared by
// the normal end-of-run path and the watchdog/signal flush paths.
bool WriteTraceFile(const std::string& path, const std::string& process_name) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  ChromeTraceOptions trace_options;
  trace_options.cycles_per_us = CyclesPerNs() * 1000.0;
  trace_options.process_name = process_name;
  TraceSession& session = TraceSession::Instance();
  const std::vector<TraceEvent> events = session.Collect();
  WriteChromeTrace(out, events, trace_options);
  std::fprintf(stderr, "trace: %zu events -> %s (%llu dropped)\n", events.size(), path.c_str(),
               static_cast<unsigned long long>(session.dropped()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const RunnerOptions options = ParseArgs(argc, argv);
  if (options.list) {
    ListScenarios(options.json);
    return 0;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  if (options.all && !options.scenario.empty()) {
    Fail(argv[0], "--all and --scenario are mutually exclusive");
  }
  std::vector<std::string> scenario_names;
  if (options.all) {
    for (const ScenarioInfo& info : RegisteredScenarios()) {
      scenario_names.push_back(info.name);
    }
  } else if (!options.scenario.empty()) {
    if (ScenarioRegistry::Instance().Find(options.scenario) == nullptr) {
      std::fprintf(stderr, "%s: unknown scenario: %s (try --list)\n", argv[0],
                   options.scenario.c_str());
      return 2;
    }
    scenario_names.push_back(options.scenario);
  } else {
    Fail(argv[0], "one of --list, --scenario NAME or --all is required");
  }

  std::vector<std::string> lock_names;
  if (options.lock == "all") {
    lock_names = RegisteredLockNames();
  } else {
    try {
      MakeLockOrThrow(options.lock);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
      return 2;
    }
    lock_names.push_back(options.lock);
  }

  if (options.ops > 0 && options.seconds > 0) {
    Fail(argv[0], "--ops and --seconds are mutually exclusive");
  }
  ScenarioConfig config;
  config.threads = options.threads;
  config.ops_per_thread = options.ops > 0 ? options.ops : (options.quick ? 8000 : 40000);
  if (options.seconds > 0) {
    // Floor at 1 ms: truncating a sub-millisecond request to 0 would
    // silently fall back to fixed-op mode.
    const double ms = options.seconds * 1000.0;
    config.duration_ms = ms < 1.0 ? 1 : static_cast<std::uint64_t>(ms);
  }
  config.seed = options.seed;
  config.read_percent = options.read_percent;
  config.key_space = options.key_space;
  if (options.combine && options.rw) {
    Fail(argv[0], "--combine and --rw are mutually exclusive (a combiner pass "
                  "needs exclusive shard ownership)");
  }
  config.shards = static_cast<std::uint32_t>(options.shards);
  config.combine = options.combine;
  config.rw = options.rw;
  config.trace = !options.trace_path.empty();
  config.lockdep = options.lockdep;
  config.meter = options.meter == "off"     ? MeterChoice::kOff
                 : options.meter == "model" ? MeterChoice::kModel
                                            : MeterChoice::kAuto;
  config.energy_sample_ms = static_cast<std::uint32_t>(options.sample_ms);

  if (options.chaos && !options.failpoints.empty()) {
    Fail(argv[0], "--chaos and --failpoints are mutually exclusive");
  }
  config.failpoints = options.chaos ? DefaultChaosSpec() : options.failpoints;
  if (!config.failpoints.empty()) {
    // Validate the spec up front: a typo should fail with the parser's
    // site-enumerating message before any scenario runs.
    try {
      ScopedFailpoints probe(config.failpoints, config.seed);
    } catch (const std::exception& error) {
      Fail(argv[0], error.what());
    }
  }
  config.op_deadline_ns = static_cast<std::uint64_t>(options.deadline_us) * 1000;
  if (options.op_retries >= 0) {
    config.op_retries = static_cast<std::uint32_t>(options.op_retries);
  }
  config.watchdog_ms = static_cast<std::uint32_t>(options.watchdog_ms);
  config.watchdog_abort = options.watchdog_abort;
  config.external_stop = &g_stop;

  // One run per thread count: a plain run uses --threads, a sweep runs the
  // whole list (the scaling-curve mode).
  std::vector<int> thread_counts = options.thread_sweep;
  if (thread_counts.empty()) {
    thread_counts.push_back(options.threads);
  }

  if (config.trace && scenario_names.size() * lock_names.size() * thread_counts.size() != 1) {
    Fail(argv[0], "--trace captures one run; pick a single --scenario and --lock "
                  "(and no --thread-sweep)");
  }

  // Before an aborting watchdog kills the process, flush whatever
  // observability outputs were requested (best-effort: workers may still be
  // appending to their trace rings while we collect).
  const std::string trace_process_name =
      "scenario_runner " + scenario_names.front() + " / " + lock_names.front();
  config.on_stall = [&options, &trace_process_name] {
    if (!options.trace_path.empty()) {
      WriteTraceFile(options.trace_path, trace_process_name);
    }
    if (options.metrics) {
      MetricsRegistry::Instance().WriteJson(std::cout);
    }
    std::fflush(nullptr);
  };

  // Table latencies in nanoseconds via the calibrated cycle counter
  // (src/platform/cycles.hpp); --json keeps raw cycles.
  TextTable table({"scenario", "lock", "threads", "Mops/s", "p50_ns", "p99_ns", "joules",
                   "TPP(op/J)", "metrics"});
  // Sweep mode + --json emits all scaling curves as one document; the
  // string below accumulates it so an interrupted sweep still flushes a
  // well-formed prefix of curves.
  const bool sweep_json = options.json && !options.thread_sweep.empty();
  std::string sweep_points;
  std::string sweep_curves;
  for (const std::string& scenario : scenario_names) {
    if (g_stop.load(std::memory_order_relaxed)) {
      break;  // interrupted: flush what completed, skip the rest
    }
    for (const std::string& lock : lock_names) {
      if (g_stop.load(std::memory_order_relaxed)) {
        break;
      }
      config.lock_name = lock;
      sweep_points.clear();
      for (const int threads : thread_counts) {
        if (g_stop.load(std::memory_order_relaxed)) {
          break;
        }
        config.threads = threads;
        ScenarioResult result;
        try {
          result = RunScenarioByName(scenario, config);
        } catch (const std::exception& error) {
          std::fprintf(stderr, "%s: %s under %s failed: %s\n", argv[0], scenario.c_str(),
                       lock.c_str(), error.what());
          return 1;
        }
        if (sweep_json) {
          char point[160];
          std::snprintf(point, sizeof point,
                        "{\"threads\": %d, \"seconds\": %.6f, \"total_ops\": %llu, "
                        "\"ops_per_s\": %.1f}",
                        result.threads, result.seconds,
                        static_cast<unsigned long long>(result.total_ops), result.ops_per_s);
          if (!sweep_points.empty()) {
            sweep_points += ", ";
          }
          sweep_points += point;
        } else if (options.json) {
          EmitJson(result, config.record_latency, options);
        } else {
          table.AddRow({scenario, lock, std::to_string(result.threads),
                        FormatDouble(result.MopsPerS(), 3),
                        FormatDouble(CyclesToNs(result.op_latency_cycles.P50()), 0),
                        FormatDouble(CyclesToNs(result.op_latency_cycles.P99()), 0),
                        FormatDouble(result.energy.total_joules(), 3),
                        FormatDouble(result.Tpp(), 0), MetricsToString(result)});
        }
      }
      if (sweep_json && !sweep_points.empty()) {
        if (!sweep_curves.empty()) {
          sweep_curves += ",\n    ";
        }
        sweep_curves += "{\"scenario\": \"" + scenario + "\", \"lock\": \"" + lock +
                        "\", \"points\": [" + sweep_points + "]}";
      }
    }
  }
  if (sweep_json) {
    std::string sweep_list;
    for (const int threads : thread_counts) {
      if (!sweep_list.empty()) {
        sweep_list += ", ";
      }
      sweep_list += std::to_string(threads);
    }
    std::printf("{\"thread_sweep\": [%s], \"shards\": %ld, \"combine\": %s, \"rw\": %s,\n"
                "  \"curves\": [\n    %s\n  ]}\n",
                sweep_list.c_str(), options.shards, options.combine ? "true" : "false",
                options.rw ? "true" : "false", sweep_curves.c_str());
  } else if (!options.json) {
    table.Print(std::cout);
  }

  if (config.trace) {
    if (!WriteTraceFile(options.trace_path, trace_process_name)) {
      std::fprintf(stderr, "%s: cannot open trace file: %s\n", argv[0],
                   options.trace_path.c_str());
      return 1;
    }
  }
  if (options.metrics) {
    MetricsRegistry::Instance().WriteJson(std::cout);
  }
  if (options.lockdep) {
    const std::vector<LockdepReport> reports = LockdepReports();
    const LockdepStats stats = LockdepGetStats();
    std::fprintf(stderr, "lockdep: %llu events, %llu edges, %zu violation(s)\n",
                 static_cast<unsigned long long>(stats.events),
                 static_cast<unsigned long long>(stats.edges), reports.size());
    for (const LockdepReport& report : reports) {
      std::fprintf(stderr, "lockdep: %s\n", report.Describe().c_str());
    }
    if (!reports.empty()) {
      return 1;
    }
  }
  const int sig = g_signal.load(std::memory_order_relaxed);
  if (sig != 0) {
    std::fprintf(stderr, "%s: interrupted by signal %d; partial results flushed\n", argv[0], sig);
    return 128 + sig;
  }
  return 0;
}
