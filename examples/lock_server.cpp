// NetServe server CLI: serve a Scenario API system (KvStore, MemCache or a
// NosqlDb backend) over a RESP-style loopback socket, under any registered
// lock algorithm -- the networked successor of the in-process cache_server
// and kvstore_app tables.
//
//   $ ./lock_server --port 7911 --system cache --lock MUTEXEE --workers 2
//   $ ./lock_server --system kvstore --lock TICKET --deadline-us 500
//
// Flags:
//   --port N          TCP port on 127.0.0.1 (default 0 = ephemeral; the
//                     bound port is printed on stdout either way)
//   --system NAME     kvstore | cache | nosql-cache | nosql-hash | nosql-btree
//   --lock NAME       lock algorithm (default MUTEX)
//   --shards N        shard count override (0 = the system's default shape)
//   --combine         flat-combine shard mutations
//   --rw              per-shard reader-writer locks
//   --workers N       event-loop worker threads (default 1)
//   --deadline-us N   per-op deadline: a command whose entry lock cannot be
//                     acquired in time is shed with a -BUSY reply
//   --failpoints SPEC arm named failpoints (grammar in
//                     src/platform/failpoint.hpp; `scenario/op` fires once
//                     per command inside the deadline window)
//   --watchdog-ms N   stall watchdog over the event loops: a loop that
//                     stops ticking dumps held locks + failpoints
//   --stats-every S   print the metrics JSON to stderr every S seconds
//
// SIGINT/SIGTERM drain cleanly: the listener closes, every connection gets
// its buffered pipelined commands executed and replies flushed, then the
// process exits 0 with a final stats line on stderr.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <algorithm>
#include <exception>
#include <memory>
#include <string>
#include <thread>

#include "src/locks/lock_registry.hpp"
#include "src/net/server.hpp"
#include "src/platform/failpoint.hpp"

namespace {

using namespace lockin;

std::atomic<bool> g_stop{false};
std::atomic<int> g_signal{0};

void HandleStopSignal(int sig) {
  g_stop.store(true, std::memory_order_relaxed);
  g_signal.store(sig, std::memory_order_relaxed);
}

struct ServerCliOptions {
  NetServerOptions server;
  std::string failpoints;
  long stats_every_s = 0;
};

void PrintUsage(const char* prog, std::FILE* out) {
  std::fprintf(out,
               "usage: %s [options]\n"
               "  --port N  --system kvstore|cache|nosql-cache|nosql-hash|nosql-btree\n"
               "  --lock NAME  --shards N  --combine  --rw  --workers N\n"
               "  --deadline-us N  --failpoints SPEC  --watchdog-ms N  --stats-every S\n",
               prog);
}

[[noreturn]] void Fail(const char* prog, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", prog, message.c_str());
  PrintUsage(prog, stderr);
  std::exit(2);
}

ServerCliOptions ParseArgs(int argc, char** argv) {
  ServerCliOptions options;
  auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      Fail(argv[0], std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  auto int_of = [&](int& i, const char* flag, long min, long max) -> long {
    const char* value = value_of(i, flag);
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < min || parsed > max) {
      Fail(argv[0], std::string("invalid ") + flag + " value: " + value);
    }
    return parsed;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      options.server.port = static_cast<std::uint16_t>(int_of(i, "--port", 0, 65535));
    } else if (std::strcmp(argv[i], "--system") == 0) {
      options.server.backend.system = value_of(i, "--system");
    } else if (std::strcmp(argv[i], "--lock") == 0) {
      options.server.backend.lock_name = value_of(i, "--lock");
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      options.server.backend.shards = static_cast<std::uint32_t>(int_of(i, "--shards", 1, 4096));
    } else if (std::strcmp(argv[i], "--combine") == 0) {
      options.server.backend.combine = true;
    } else if (std::strcmp(argv[i], "--rw") == 0) {
      options.server.backend.rw = true;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.server.workers = static_cast<std::size_t>(int_of(i, "--workers", 1, 256));
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      options.server.backend.op_deadline_ns =
          static_cast<std::uint64_t>(int_of(i, "--deadline-us", 1, 1000000000)) * 1000;
    } else if (std::strcmp(argv[i], "--failpoints") == 0) {
      options.failpoints = value_of(i, "--failpoints");
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0) {
      options.server.watchdog_ms = static_cast<std::uint64_t>(int_of(i, "--watchdog-ms", 1, 3600000));
    } else if (std::strcmp(argv[i], "--stats-every") == 0) {
      options.stats_every_s = int_of(i, "--stats-every", 1, 86400);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(argv[0], stdout);
      std::exit(0);
    } else {
      Fail(argv[0], std::string("unrecognized argument: ") + argv[i]);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const ServerCliOptions options = ParseArgs(argc, argv);
  try {
    MakeLockOrThrow(options.server.backend.lock_name);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
    return 2;
  }
  if (options.server.backend.combine && options.server.backend.rw) {
    Fail(argv[0], "--combine and --rw are mutually exclusive");
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);  // stray writes to dead sockets are handled per-fd

  std::unique_ptr<ScopedFailpoints> failpoints;
  if (!options.failpoints.empty()) {
    try {
      failpoints = std::make_unique<ScopedFailpoints>(options.failpoints, /*seed=*/1);
    } catch (const std::exception& error) {
      Fail(argv[0], error.what());
    }
  }

  LockServer server(options.server);
  try {
    server.Start();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u (system=%s lock=%s workers=%zu)\n",
              static_cast<unsigned>(server.port()), options.server.backend.system.c_str(),
              options.server.backend.lock_name.c_str(),
              std::max<std::size_t>(1, options.server.workers));
  std::fflush(stdout);  // the port line is how scripts find an ephemeral port

  // The signal handler only stores atomics; this watcher thread turns the
  // flag into a Drain() from a normal context.
  std::uint64_t waited_ms = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    waited_ms += 50;
    if (options.stats_every_s > 0 &&
        waited_ms >= static_cast<std::uint64_t>(options.stats_every_s) * 1000) {
      waited_ms = 0;
      std::fprintf(stderr, "%s\n", server.StatsJson().c_str());
    }
  }
  server.Drain();
  server.Join();
  std::fprintf(stderr, "drained: %s\n", server.StatsJson().c_str());
  return 0;
}
