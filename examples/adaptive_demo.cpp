// Adaptive lock runtime demo: one mixed scenario, every lock.
//
// Runs the native measurement harness through three contention regimes --
// uncontended, short critical sections under contention, long critical
// sections under contention -- for a set of static locks and the ADAPTIVE
// runtime, metering energy with the calibrated model. Prints per-regime
// throughput-per-Joule and the summed scenario score, plus the backend the
// adaptive lock settled on in each regime.
//
// The point of the exercise (paper, section 7): each static policy has a
// regime it loses, so a fixed choice leaves energy or throughput on the
// table somewhere. The adaptive runtime re-decides per lock site and per
// epoch instead.
//
//   $ ./adaptive_demo
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/adaptive/adaptive_lock.hpp"
#include "src/energy/model_meter.hpp"
#include "src/locks/harness.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/topology.hpp"

using namespace lockin;

namespace {

struct Regime {
  const char* name;
  int threads;
  std::uint64_t cs_cycles;
  std::uint64_t non_cs_cycles;
};

NativeBenchConfig ConfigFor(const Regime& regime, const std::string& lock) {
  NativeBenchConfig config;
  config.lock_name = lock;
  config.threads = regime.threads;
  config.cs_cycles = regime.cs_cycles;
  config.non_cs_cycles = regime.non_cs_cycles;
  config.duration_ms = 200;
  config.record_latency = false;
  // Keep spin backends live on hosts with fewer cores than threads.
  config.lock_options.spin.yield_after = 256;
  return config;
}

}  // namespace

int main() {
  const std::vector<Regime> regimes = {
      {"uncontended", 1, 200, 400},
      {"short-cs", 4, 600, 200},
      {"long-cs", 4, 30000, 500},
  };
  const std::vector<std::string> locks = {"TTAS", "MUTEX", "MUTEXEE", "ADAPTIVE"};

  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::Detect(), PowerParams::PaperXeon()));

  std::printf("%-10s", "lock");
  for (const Regime& regime : regimes) {
    std::printf("  %14s", regime.name);
  }
  std::printf("  %12s\n", "sum KTPP");
  std::printf("%s\n", std::string(10 + regimes.size() * 16 + 14, '-').c_str());

  double best_static_sum = 0.0;
  double adaptive_sum = 0.0;
  for (const std::string& lock : locks) {
    std::printf("%-10s", lock.c_str());
    double sum = 0.0;
    for (const Regime& regime : regimes) {
      ModelMeter meter(registry);
      const NativeBenchResult result = RunNativeBench(ConfigFor(regime, lock), &meter);
      std::printf("  %9.1f KTPP", result.tpp / 1e3);
      sum += result.tpp / 1e3;
    }
    std::printf("  %12.1f\n", sum);
    if (lock == "ADAPTIVE") {
      adaptive_sum = sum;
    } else if (sum > best_static_sum) {
      best_static_sum = sum;
    }
  }

  // Show what the runtime actually decided per regime.
  std::printf("\nadaptive backend per regime:");
  for (const Regime& regime : regimes) {
    AdaptiveLockConfig config;
    config.epoch_acquires = 64;
    config.spin.yield_after = 256;
    AdaptiveLock lock(config);
    NativeBenchConfig bench = ConfigFor(regime, "ADAPTIVE");
    std::vector<std::thread> threads;
    std::atomic<bool> stop{false};
    for (int t = 0; t < bench.threads; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          lock.lock();
          SpinForCycles(bench.cs_cycles);
          lock.unlock();
          SpinForCycles(bench.non_cs_cycles);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (auto& t : threads) {
      t.join();
    }
    std::printf("  %s=%s(switches=%llu)", regime.name, lock.backend_name(),
                (unsigned long long)lock.backend_switches());
  }
  std::printf("\n\n");

  if (adaptive_sum >= best_static_sum) {
    std::printf("ADAPTIVE wins the mixed scenario: %.1f vs best static %.1f KTPP\n",
                adaptive_sum, best_static_sum);
  } else {
    std::printf("ADAPTIVE within %.1f%% of the best static (%.1f vs %.1f KTPP) -- "
                "without knowing the regime in advance\n",
                100.0 * (1.0 - adaptive_sum / best_static_sum), adaptive_sum,
                best_static_sum);
  }
  return 0;
}
