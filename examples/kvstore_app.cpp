// Domain scenario: an embedded key-value store (HamsterDB-style) whose lock
// algorithm is chosen at run time -- the paper's systems experiment in
// miniature. A thin wrapper over the unified scenario API: runs the
// registered "kvstore/WT-RD" scenario under several locks and reports
// per-lock throughput. (scenario_runner generalizes this to every scenario
// and every lock.)
//
//   $ ./kvstore_app [ops_per_thread]
#include <cstdio>
#include <cstdlib>

#include "src/systems/workload_api.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const int ops = argc > 1 ? std::atoi(argv[1]) : 50000;
  std::printf("embedded KV store (scenario kvstore/WT-RD), 4 threads, %d ops/thread\n\n", ops);
  std::printf("%-10s %15s\n", "lock", "ops/second");
  for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE", "MCS", "ADAPTIVE"}) {
    ScenarioConfig config;
    config.lock_name = lock;
    config.threads = 4;
    config.ops_per_thread = ops;
    const ScenarioResult result = RunScenarioByName("kvstore/WT-RD", config);
    if (result.MetricOr("invariants_ok") == 0) {
      std::fprintf(stderr, "B+-tree invariant violation under %s!\n", lock);
      return 1;
    }
    std::printf("%-10s %15.0f\n", lock, result.ops_per_s);
  }
  std::printf("\n(absolute numbers depend on this host; the paper's Figure 13 ratios come\n"
              "from the simulated Xeon: see bench/fig13_systems_throughput)\n");
  return 0;
}
