// Domain scenario: an embedded key-value store (HamsterDB-style) whose lock
// algorithm is chosen at run time -- the paper's systems experiment in
// miniature. Runs the same mixed workload under MUTEX, TICKET and MUTEXEE
// and reports per-lock throughput.
//
//   $ ./kvstore_app [ops_per_thread]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/platform/rng.hpp"
#include "src/systems/kvstore.hpp"

namespace {

double RunWorkload(const std::string& lock_name, int ops_per_thread) {
  lockin::KvStore store(lockin::NamedLockFactory(lock_name, /*yield_after=*/256));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeySpace = 20000;

  // Preload half the key space.
  for (std::uint64_t key = 0; key < kKeySpace; key += 2) {
    store.Put(key, "initial");
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t, ops_per_thread] {
      lockin::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::string value;
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = rng.NextBelow(kKeySpace);
        switch (rng.NextBelow(10)) {
          case 0:
          case 1:  // 20% writes
            store.Put(key, "value-" + std::to_string(i));
            break;
          case 2:  // 10% deletes
            store.Erase(key);
            break;
          case 3:  // 10% short scans
            store.CountRange(key, key + 64);
            break;
          default:  // 60% reads
            store.Get(key, &value);
            break;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!store.CheckInvariants()) {
    std::fprintf(stderr, "B+-tree invariant violation under %s!\n", lock_name.c_str());
    std::exit(1);
  }
  return kThreads * ops_per_thread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const int ops = argc > 1 ? std::atoi(argv[1]) : 50000;
  std::printf("embedded KV store, 4 threads, %d ops/thread (80%% reads/scans)\n\n", ops);
  std::printf("%-10s %15s\n", "lock", "ops/second");
  for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE", "MCS", "ADAPTIVE"}) {
    std::printf("%-10s %15.0f\n", lock, RunWorkload(lock, ops));
  }
  std::printf("\n(absolute numbers depend on this host; the paper's Figure 13 ratios come\n"
              "from the simulated Xeon: see bench/fig13_systems_throughput)\n");
  return 0;
}
