// Domain scenario: an embedded key-value store (HamsterDB-style) whose lock
// algorithm is chosen at run time -- the paper's systems experiment in
// miniature. A thin wrapper over the unified scenario API: runs the
// registered "kvstore/WT-RD" scenario under several locks and reports
// per-lock throughput. (scenario_runner generalizes this to every scenario
// and every lock; examples/lock_server + examples/loadgen are the
// networked successors, serving the same store over a RESP socket.)
//
//   $ ./kvstore_app [ops_per_thread]
#include <cstdio>
#include <cstdlib>

#include "examples/example_common.hpp"
#include "src/systems/workload_api.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const int ops = argc > 1 ? std::atoi(argv[1]) : 50000;
  std::printf("embedded KV store (scenario kvstore/WT-RD), 4 threads, %d ops/thread\n\n", ops);
  ScenarioConfig base;
  base.threads = 4;
  base.ops_per_thread = ops;
  const bool ok = RunLockTable(
      {"MUTEX", "TICKET", "MUTEXEE", "MCS", "ADAPTIVE"}, {{"kvstore/WT-RD", ""}}, base, {},
      [](const ScenarioResult& result, const char* lock) {
        if (result.MetricOr("invariants_ok") == 0) {
          std::fprintf(stderr, "B+-tree invariant violation under %s!\n", lock);
          return false;
        }
        return true;
      });
  if (!ok) {
    return 1;
  }
  std::printf("\n(absolute numbers depend on this host; the paper's Figure 13 ratios come\n"
              "from the simulated Xeon: see bench/fig13_systems_throughput)\n");
  return 0;
}
