// NetServe client CLI: pipelined open-loop RESP load against lock_server.
//
//   $ ./loadgen --port 7911 --connections 8 --pipeline 64 --duration-ms 5000
//   $ ./loadgen --port 7911 --rate 50000 --json
//
// Flags:
//   --port N          server port on 127.0.0.1 (required)
//   --connections N   concurrent connections (default 4)
//   --pipeline N      in-flight requests per connection (default 8)
//   --duration-ms N   send window in milliseconds (default 2000)
//   --get-percent P   GET share of the mix, rest SET (default 80)
//   --key-space N     keys are uniform over [0, N) (default 10000)
//   --value-bytes N   SET payload size (default 64)
//   --rate N          fixed offered rate in requests/s across all
//                     connections (default 0 = saturation: keep every
//                     pipeline slot full)
//   --threads N       client threads; connections are striped (default 1)
//   --seed N          workload seed (default 42)
//   --json            print the result as one JSON object (default: text)
//
// Open-loop semantics: in rate mode a late reply never delays the next
// send, so queueing delay shows up in the latency histogram instead of
// being silently absorbed (no coordinated omission).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/net/loadgen.hpp"

namespace {

using namespace lockin;

void PrintUsage(const char* prog, std::FILE* out) {
  std::fprintf(out,
               "usage: %s --port N [options]\n"
               "  --connections N  --pipeline N  --duration-ms N  --get-percent P\n"
               "  --key-space N  --value-bytes N  --rate N  --threads N  --seed N  --json\n",
               prog);
}

[[noreturn]] void Fail(const char* prog, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", prog, message.c_str());
  PrintUsage(prog, stderr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  bool json = false;
  auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      Fail(argv[0], std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  auto int_of = [&](int& i, const char* flag, long min, long max) -> long {
    const char* value = value_of(i, flag);
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < min || parsed > max) {
      Fail(argv[0], std::string("invalid ") + flag + " value: " + value);
    }
    return parsed;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<std::uint16_t>(int_of(i, "--port", 1, 65535));
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      options.connections = static_cast<std::size_t>(int_of(i, "--connections", 1, 10000));
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      options.pipeline = static_cast<std::size_t>(int_of(i, "--pipeline", 1, 100000));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      options.duration_ms = static_cast<std::uint64_t>(int_of(i, "--duration-ms", 1, 86400000));
    } else if (std::strcmp(argv[i], "--get-percent") == 0) {
      options.get_percent = static_cast<int>(int_of(i, "--get-percent", 0, 100));
    } else if (std::strcmp(argv[i], "--key-space") == 0) {
      options.key_space = static_cast<std::uint64_t>(int_of(i, "--key-space", 1, 1000000000));
    } else if (std::strcmp(argv[i], "--value-bytes") == 0) {
      options.value_bytes = static_cast<std::size_t>(int_of(i, "--value-bytes", 1, 1000000));
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      options.rate_per_s = static_cast<std::uint64_t>(int_of(i, "--rate", 1, 1000000000));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = static_cast<std::size_t>(int_of(i, "--threads", 1, 256));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<std::uint64_t>(int_of(i, "--seed", 0, 1000000000));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(argv[0], stdout);
      return 0;
    } else {
      Fail(argv[0], std::string("unrecognized argument: ") + argv[i]);
    }
  }
  if (options.port == 0) {
    Fail(argv[0], "--port is required");
  }

  const LoadgenResult result = RunLoadgen(options);
  if (json) {
    std::printf("%s\n", result.ToJson().c_str());
  } else {
    std::printf("requests:       %llu (%.0f/s over %.2fs)\n",
                static_cast<unsigned long long>(result.requests), result.RequestsPerS(),
                result.seconds);
    std::printf("busy (shed):    %llu\n", static_cast<unsigned long long>(result.busy));
    std::printf("errors:         %llu\n", static_cast<unsigned long long>(result.errors));
    std::printf("nil GETs:       %llu\n", static_cast<unsigned long long>(result.not_found));
    std::printf("latency (us):   p50=%.1f p99=%.1f max=%.1f\n",
                result.latency_ns.P50() / 1000.0, result.latency_ns.P99() / 1000.0,
                result.latency_ns.max() / 1000.0);
  }
  // Nothing answered: the target is down or the port is wrong. Scripts (CI
  // net-smoke) key off a nonzero exit instead of parsing for zero.
  return result.requests > 0 ? 0 : 1;
}
