// Domain scenario: a Memcached-style cache under a skewed (Zipf-ish)
// workload, demonstrating why the paper's SET-heavy configurations contend
// on one lock while GET-heavy ones spread over the stripes -- how the lock
// choice changes throughput on this host, and how the per-shard segmented
// LRU mode removes the global SET bottleneck entirely (the scale scenario).
// A thin wrapper over the unified scenario API's "cache/*" scenarios, with
// the GET share overridden through the generic read_percent knob.
//
// This is the *in-process* cache demo. Its networked successors are
// examples/lock_server (the same MemCache served over a real RESP socket)
// and examples/loadgen (the pipelined client driving it).
//
//   $ ./cache_server [get_percent]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "examples/example_common.hpp"
#include "src/systems/workload_api.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const int get_percent = std::clamp(argc > 1 ? std::atoi(argv[1]) : 50, 0, 100);
  std::printf(
      "memcached-style cache, 4 threads, %d%% GET / %d%% SET\n"
      "lru=global: every SET crosses the global LRU lock (paper shape)\n"
      "lru=per_shard: segmented LRU, SETs only touch striped bucket locks\n\n",
      get_percent, 100 - get_percent);
  ScenarioConfig base;
  base.threads = 4;
  base.read_percent = get_percent;  // GETs are the cache's reads
  base.record_latency = false;      // match the pre-API driver's loop
  RunLockTable({"MUTEX", "TICKET", "MUTEXEE"},
               {{"cache/set-heavy", "global"}, {"cache/set-heavy-seglru", "per_shard"}}, base,
               {{"evictions", [](const ScenarioResult& r) { return r.MetricOr("evictions"); }}});
  return 0;
}
