// Domain scenario: a Memcached-style cache under a skewed (Zipf-ish)
// workload, demonstrating why the paper's SET-heavy configurations contend
// on one lock while GET-heavy ones spread over the stripes -- how the lock
// choice changes throughput on this host, and how the per-shard segmented
// LRU mode removes the global SET bottleneck entirely (the scale scenario).
//
//   $ ./cache_server [get_percent]
#include <cstdio>
#include <cstdlib>

#include "src/systems/cache_workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const int get_percent = argc > 1 ? std::atoi(argv[1]) : 50;
  std::printf(
      "memcached-style cache, 4 threads, %d%% GET / %d%% SET\n"
      "lru=global: every SET crosses the global LRU lock (paper shape)\n"
      "lru=per_shard: segmented LRU, SETs only touch striped bucket locks\n\n",
      get_percent, 100 - get_percent);
  std::printf("%-10s %-10s %15s %12s\n", "lock", "lru", "ops/second", "evictions");
  for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE"}) {
    for (const MemCache::LruMode mode :
         {MemCache::LruMode::kGlobalLock, MemCache::LruMode::kPerShard}) {
      CacheWorkloadConfig config;
      config.lock_name = lock;
      config.lru_mode = mode;
      config.get_percent = get_percent;
      const CacheWorkloadResult r = RunCacheWorkload(config);
      std::printf("%-10s %-10s %15.0f %12llu\n", lock,
                  mode == MemCache::LruMode::kGlobalLock ? "global" : "per_shard", r.ops_per_s,
                  static_cast<unsigned long long>(r.evictions));
    }
  }
  return 0;
}
