// Domain scenario: a Memcached-style cache under a skewed (Zipf-ish)
// workload, demonstrating why the paper's SET-heavy configurations contend
// on one lock while GET-heavy ones spread over the stripes -- how the lock
// choice changes throughput on this host, and how the per-shard segmented
// LRU mode removes the global SET bottleneck entirely (the scale scenario).
// A thin wrapper over the unified scenario API's "cache/*" scenarios, with
// the GET share overridden through the generic read_percent knob.
//
//   $ ./cache_server [get_percent]
#include <cstdio>
#include <cstdlib>

#include "src/systems/workload_api.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const int get_percent = argc > 1 ? std::atoi(argv[1]) : 50;
  std::printf(
      "memcached-style cache, 4 threads, %d%% GET / %d%% SET\n"
      "lru=global: every SET crosses the global LRU lock (paper shape)\n"
      "lru=per_shard: segmented LRU, SETs only touch striped bucket locks\n\n",
      get_percent, 100 - get_percent);
  std::printf("%-10s %-10s %15s %12s\n", "lock", "lru", "ops/second", "evictions");
  struct Mode {
    const char* scenario;
    const char* label;
  };
  for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE"}) {
    for (const Mode& mode : {Mode{"cache/set-heavy", "global"},
                             Mode{"cache/set-heavy-seglru", "per_shard"}}) {
      ScenarioConfig config;
      config.lock_name = lock;
      config.threads = 4;
      config.read_percent = get_percent;  // GETs are the cache's reads
      config.record_latency = false;      // match the pre-API driver's loop
      const ScenarioResult r = RunScenarioByName(mode.scenario, config);
      std::printf("%-10s %-10s %15.0f %12.0f\n", lock, mode.label, r.ops_per_s,
                  r.MetricOr("evictions"));
    }
  }
  return 0;
}
