// Domain scenario: a Memcached-style cache under a skewed (Zipf-ish)
// workload, demonstrating why the paper's SET-heavy configurations contend
// on one lock while GET-heavy ones spread over the stripes -- and how the
// lock choice changes throughput on this host.
//
//   $ ./cache_server [get_percent]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/platform/rng.hpp"
#include "src/systems/cache.hpp"

namespace {

using namespace lockin;

// Approximate Zipf: 80% of accesses hit 20% of keys, recursively.
std::uint64_t SkewedKey(Xoshiro256* rng, std::uint64_t space) {
  std::uint64_t lo = 0;
  std::uint64_t hi = space;
  for (int level = 0; level < 4 && hi - lo > 16; ++level) {
    if (rng->NextDouble() < 0.8) {
      hi = lo + (hi - lo) / 5;
    } else {
      lo = lo + (hi - lo) / 5;
    }
  }
  return lo + rng->NextBelow(hi - lo + 1);
}

double RunCache(const std::string& lock_name, int get_percent) {
  MemCache cache(NamedLockFactory(lock_name, /*yield_after=*/256),
                 MemCache::Config{16, 50000});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 40000;
  constexpr std::uint64_t kKeySpace = 60000;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t, get_percent] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7 + 1);
      std::string value;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(SkewedKey(&rng, kKeySpace));
        if (static_cast<int>(rng.NextBelow(100)) < get_percent) {
          cache.Get(key, &value);
        } else {
          cache.Set(key, "v" + std::to_string(i));
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  return kThreads * kOpsPerThread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const int get_percent = argc > 1 ? std::atoi(argv[1]) : 50;
  std::printf("memcached-style cache, 4 threads, %d%% GET / %d%% SET (every SET crosses the\n"
              "global LRU lock; GETs only touch striped bucket locks)\n\n",
              get_percent, 100 - get_percent);
  std::printf("%-10s %15s\n", "lock", "ops/second");
  for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE"}) {
    std::printf("%-10s %15.0f\n", lock, RunCache(lock, get_percent));
  }
  return 0;
}
