// The MUTEXEE platform tuner (the paper's "script which runs the necessary
// microbenchmarks and reports the configuration parameters", section 5.1).
//
// Measures this host's futex wake/turnaround and cache-line transfer
// latencies and derives the spin and grace budgets for MutexeeConfig.
//
//   $ ./tune_mutexee
#include <cstdio>

#include "src/locks/tuner.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/topology.hpp"

int main() {
  using namespace lockin;
  std::printf("host: %s, TSC ~%.2f GHz\n\n", Topology::Detect().ToString().c_str(),
              CyclesPerNs());
  std::printf("running tuning microbenchmarks...\n\n");
  const TunerReport report = RunMutexeeTuner();
  std::printf("%s\n", report.ToString().c_str());
  std::printf("use it like:\n"
              "  lockin::MutexeeConfig config;\n"
              "  config.spin_mode_lock_cycles  = %llu;\n"
              "  config.spin_mode_grace_cycles = %llu;\n"
              "  lockin::MutexeeLock lock(config);\n",
              (unsigned long long)report.config.spin_mode_lock_cycles,
              (unsigned long long)report.config.spin_mode_grace_cycles);
  return 0;
}
