// Lock-algorithm correctness tests, parameterized over every registered
// algorithm (TEST_P): mutual exclusion, try_lock semantics, progress under
// contention, guard RAII. Host-agnostic: spinlocks get a yield threshold so
// single-CPU machines interleave instead of burning whole quanta.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/locks/backoff.hpp"
#include "src/locks/clh.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/locks/mcs.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {
namespace {

LockBuildOptions TestOptions() {
  LockBuildOptions options;
  options.spin.yield_after = 64;  // keep 1-CPU hosts live
  return options;
}

class LockParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LockParamTest, Constructs) {
  auto lock = MakeLock(GetParam(), TestOptions());
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->name(), GetParam());
}

TEST_P(LockParamTest, LockUnlockSingleThread) {
  auto lock = MakeLock(GetParam(), TestOptions());
  for (int i = 0; i < 1000; ++i) {
    lock->lock();
    lock->unlock();
  }
}

TEST_P(LockParamTest, TryLockSucceedsWhenFree) {
  auto lock = MakeLock(GetParam(), TestOptions());
  EXPECT_TRUE(lock->try_lock());
  lock->unlock();
}

TEST_P(LockParamTest, TryLockFailsWhenHeld) {
  auto lock = MakeLock(GetParam(), TestOptions());
  lock->lock();
  std::atomic<int> tries{0};
  std::atomic<int> successes{0};
  std::thread other([&] {
    for (int i = 0; i < 10; ++i) {
      if (lock->try_lock()) {
        successes.fetch_add(1);
        lock->unlock();
      }
      tries.fetch_add(1);
    }
  });
  other.join();
  EXPECT_EQ(tries.load(), 10);
  EXPECT_EQ(successes.load(), 0);
  lock->unlock();
}

TEST_P(LockParamTest, MutualExclusionCounter) {
  auto lock = MakeLock(GetParam(), TestOptions());
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  // A plain (non-atomic) counter: lost updates appear unless the lock
  // provides mutual exclusion.
  long long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        HandleGuard guard(*lock);
        counter = counter + 1;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST_P(LockParamTest, MutualExclusionInvariantHolds) {
  auto lock = MakeLock(GetParam(), TestOptions());
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock->lock();
        if (inside.fetch_add(1) != 0) {
          violated.store(true);
        }
        inside.fetch_sub(1);
        lock->unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load());
}

TEST_P(LockParamTest, TryLockAlsoExcludes) {
  auto lock = MakeLock(GetParam(), TestOptions());
  constexpr int kThreads = 4;
  long long counter = 0;
  std::atomic<long long> attempts_won{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (lock->try_lock()) {
          counter = counter + 1;
          attempts_won.fetch_add(1);
          lock->unlock();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, attempts_won.load());
  EXPECT_GT(attempts_won.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllLocks, LockParamTest,
                         ::testing::Values("MUTEX", "PTHREAD", "TAS", "TTAS", "TICKET", "MCS",
                                           "CLH", "TAS-BO", "COHORT", "MUTEXEE", "MUTEXEE-TO",
                                           "ADAPTIVE"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(LockRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeLock("NOPE"), nullptr);
}

TEST(LockRegistry, UnknownNameThrowsInThrowingVariant) {
  // The two-level contract: MakeLock probes (nullptr), MakeLockOrThrow
  // raises -- the exception RunNativeBench documents comes from here.
  EXPECT_THROW(MakeLockOrThrow("NOPE"), std::invalid_argument);
  EXPECT_NE(MakeLockOrThrow("MUTEX"), nullptr);
}

TEST(LockRegistry, ListsAllNames) {
  const auto names = RegisteredLockNames();
  EXPECT_EQ(names.size(), 12u);
  for (const auto& name : names) {
    EXPECT_NE(MakeLock(name, TestOptions()), nullptr) << name;
  }
}

TEST(TicketLock, QueueLengthTracksWaiters) {
  TicketLock lock;
  EXPECT_EQ(lock.QueueLength(), 0u);
  lock.lock();
  EXPECT_EQ(lock.QueueLength(), 1u);  // holder counts as one outstanding ticket
  lock.unlock();
  EXPECT_EQ(lock.QueueLength(), 0u);
}

TEST(McsLock, ExplicitNodeInterface) {
  McsLock lock;
  McsNode node;
  lock.lock(&node);
  McsNode other;
  EXPECT_FALSE(lock.try_lock(&other));
  lock.unlock(&node);
  EXPECT_TRUE(lock.try_lock(&other));
  lock.unlock(&other);
}

TEST(McsLock, NestedDistinctLocks) {
  McsLock a;
  McsLock b;
  a.lock();
  b.lock();  // nested acquisition uses a second TLS node
  b.unlock();
  a.unlock();
  // And again to verify the TLS stack unwound correctly.
  a.lock();
  a.unlock();
}

TEST(ClhLock, HandoffAcrossThreads) {
  ClhLock lock;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 6000);
}

TEST(CohortLockTest, ExplicitSocketInterface) {
  CohortLock::Config config;
  config.sockets = 2;
  config.spin.yield_after = 64;
  CohortLock lock(config);
  lock.lock(0);
  lock.unlock(0);
  lock.lock(1);
  lock.unlock(1);
  // Cross-socket mutual exclusion through the global layer.
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock(t % 2);
        counter = counter + 1;
        lock.unlock(t % 2);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(BackoffTasTest, BackoffWindowIsBounded) {
  BackoffConfig config;
  config.min_cycles = 64;
  config.max_cycles = 1024;
  config.yield_after = 32;
  BackoffTasLock lock(config);
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(SpinConfigTest, YieldAfterPreventsStarvationOnTinyHosts) {
  // Regression guard for single-CPU CI: a yielding TTAS must finish quickly
  // even with more threads than cores.
  SpinConfig config;
  config.yield_after = 16;
  TtasLock lock(config);
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 4000);
}

}  // namespace
}  // namespace lockin
