// ShardCombine tests (src/systems/sharded.hpp): CombinerChannel's
// publication/drain protocol, ShardedMap routing and mode selection, the
// sharded-vs-single equivalence the rebased systems rely on, and the
// per-system counter invariants under every shards x combine x rw x lock
// combination -- sharding must never change what the systems compute, only
// how the locks are carved up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/lockdep.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/platform/failpoint.hpp"
#include "src/systems/kvstore.hpp"
#include "src/systems/sharded.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

LockFactory Mutex() { return NamedLockFactory("MUTEX", /*yield_after=*/64); }

// --- CombinerChannel ---------------------------------------------------------

TEST(CombinerChannel, UncontendedExecuteRunsInline) {
  std::unique_ptr<LockHandle> lock = Mutex()();
  CombinerChannel channel;
  int counter = 0;
  for (int i = 0; i < 100; ++i) {
    channel.Execute(*lock, [&counter] { ++counter; });
  }
  EXPECT_EQ(counter, 100);
  // Alone, every request is drained by its own publisher: nothing was
  // combined and the channel never saturated.
  EXPECT_EQ(channel.combined_ops(), 0u);
  EXPECT_EQ(channel.fallback_ops(), 0u);
}

TEST(CombinerChannel, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::unique_ptr<LockHandle> lock = Mutex()();
  CombinerChannel channel;
  std::uint64_t counter = 0;  // plain: the channel IS the synchronization
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        channel.Execute(*lock, [&counter] { ++counter; });
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// Saturation + combining, deterministically: main holds the lock so no
// publisher can drain, 12 publishers fight over 8 slots, so at least 4
// must take the saturated-channel fallback (which then blocks on the held
// lock). Once fallback_ops shows 4, all 8 slots are provably occupied;
// unlocking lets whoever wins the lock drain the other publishers'
// requests in one hold -- the combining the channel exists for.
TEST(CombinerChannel, SaturatedChannelFallsBackAndDrainCombines) {
  constexpr int kPublishers = 12;
  std::unique_ptr<LockHandle> lock = Mutex()();
  CombinerChannel channel;
  std::uint64_t counter = 0;
  lock->lock();
  std::vector<std::thread> threads;
  for (int t = 0; t < kPublishers; ++t) {
    threads.emplace_back([&] { channel.Execute(*lock, [&counter] { ++counter; }); });
  }
  while (channel.fallback_ops() < kPublishers - CombinerChannel::kSlots) {
    std::this_thread::yield();
  }
  lock->unlock();
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kPublishers));
  EXPECT_GE(channel.fallback_ops(), kPublishers - CombinerChannel::kSlots);
  // The first post-unlock drain ran >= kSlots - 1 requests published by
  // other threads (kSlots if a fallback thread won the lock).
  EXPECT_GE(channel.combined_ops(), CombinerChannel::kSlots - 1);
}

// --- ShardedMap --------------------------------------------------------------

using IntMap = std::map<std::uint64_t, std::uint64_t>;

TEST(ShardedMap, RoutesHashModuloShards) {
  ShardedMap<IntMap> map(Mutex(), ShardOptions{4, false, false});
  ASSERT_EQ(map.shard_count(), 4u);
  for (std::uint64_t hash = 0; hash < 100; ++hash) {
    EXPECT_EQ(map.IndexFor(hash), hash % 4);
    map.WithShard(hash, [hash](IntMap& table) { table[hash] = hash; });
  }
  // Every write landed in exactly the shard IndexFor names.
  for (std::uint64_t hash = 0; hash < 100; ++hash) {
    EXPECT_EQ(map.UnsafeShardAt(hash % 4).count(hash), 1u) << hash;
  }
}

TEST(ShardedMap, ZeroShardsClampsToOne) {
  ShardedMap<IntMap> map(Mutex(), ShardOptions{0, false, false});
  EXPECT_EQ(map.shard_count(), 1u);
  EXPECT_EQ(map.IndexFor(12345), 0u);
}

TEST(ShardedMap, CombineAndRwAreMutuallyExclusive) {
  EXPECT_THROW(ShardedMap<IntMap>(Mutex(), ShardOptions{4, true, true}), std::invalid_argument);
}

TEST(ShardedMap, ForEachShardAggregates) {
  ShardedMap<IntMap> map(Mutex(), ShardOptions{8, false, false});
  for (std::uint64_t key = 0; key < 64; ++key) {
    map.WithShard(ShardedMap<IntMap>::MixHash(key), [key](IntMap& table) { table[key] = 1; });
  }
  std::size_t total = 0;
  map.ForEachShard([&total](IntMap& table) { total += table.size(); });
  EXPECT_EQ(total, 64u);
}

TEST(ShardedMap, MixHashSpreadsDenseKeys) {
  // Sequential integer keys must land near-uniformly across shards
  // (binomial mean 512, sd ~21 here; the bounds are > 5 sd out).
  constexpr std::uint64_t kKeys = 4096;
  constexpr std::size_t kShards = 8;
  std::size_t counts[kShards] = {};
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[ShardedMap<IntMap>::MixHash(key) % kShards];
  }
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(counts[shard], 384u) << shard;
    EXPECT_LT(counts[shard], 640u) << shard;
  }
}

TEST(ShardedMap, CombineModeReturnsValues) {
  // Non-void combined ops park the result on the publisher's stack.
  ShardedMap<IntMap> map(Mutex(), ShardOptions{2, true, false});
  map.WithShard(7, [](IntMap& table) { table[7] = 70; });
  const std::uint64_t value =
      map.WithShard(7, [](IntMap& table) -> std::uint64_t { return table.at(7); });
  EXPECT_EQ(value, 70u);
  EXPECT_EQ(map.WithShardShared(8, [](const IntMap& table) { return table.size(); }), 0u);
}

TEST(ShardedMap, RwModeSharedReadersSeeExclusiveWrites) {
  ShardedMap<IntMap> map(Mutex(), ShardOptions{2, false, true});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Shared mode hands the closure a const Table&; a torn map would
        // crash or miscount here.
        map.WithShardSharedAt(0, [&reads](const IntMap& table) {
          reads.fetch_add(table.size(), std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::uint64_t i = 0; i < 2000; ++i) {
    map.WithShardAt(0, [i](IntMap& table) { table[i] = i; });
  }
  stop.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(map.WithShardSharedAt(0, [](const IntMap& table) { return table.size(); }), 2000u);
}

// --- Sharded vs single-lock equivalence --------------------------------------

// The same deterministic op tape against one-lock, sharded and combined
// KvStores must produce identical op results, sizes and range counts:
// partitioning a B+-tree by key hash is invisible to callers.
TEST(ShardedEquivalence, KvStoreShardedMatchesSingleLock) {
  KvStore single(Mutex(), KvStore::Options{1, false, false});
  KvStore sharded(Mutex(), KvStore::Options{5, false, false});  // non-power-of-two
  KvStore combined(Mutex(), KvStore::Options{4, true, false});
  KvStore* stores[] = {&single, &sharded, &combined};

  std::uint64_t state = 42;
  auto next = [&state] {  // xorshift64: cheap deterministic tape
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t key = next() % 512;
    const int kind = static_cast<int>(next() % 4);
    bool expected = false;
    for (int s = 0; s < 3; ++s) {
      bool got = false;
      switch (kind) {
        case 0: {
          // snprintf sidesteps GCC 12's -Wrestrict false positive on
          // `"v" + std::to_string(op)` (PR105329, see test_systems.cpp).
          char value[16];
          std::snprintf(value, sizeof value, "v%d", op);
          got = stores[s]->Put(key, value);
          break;
        }
        case 1: {
          std::string value;
          got = stores[s]->Get(key, &value);
          break;
        }
        case 2:
          got = stores[s]->Erase(key);
          break;
        default:
          got = stores[s]->CountRange(key, key + 64) > 0;
          break;
      }
      if (s == 0) {
        expected = got;
      } else {
        EXPECT_EQ(got, expected) << "op " << op << " kind " << kind << " store " << s;
      }
    }
  }
  EXPECT_EQ(sharded.Size(), single.Size());
  EXPECT_EQ(combined.Size(), single.Size());
  EXPECT_EQ(sharded.CountRange(0, 511), single.CountRange(0, 511));
  EXPECT_EQ(combined.CountRange(0, 511), single.CountRange(0, 511));
  EXPECT_TRUE(sharded.CheckInvariants());
  EXPECT_TRUE(combined.CheckInvariants());
}

// --- Scenario invariants across the shards x combine x rw x lock matrix ------

// Linearizability facts (kvstore size accounting, the graph's write-ahead
// log count, WAL record count, TPC-C YTD consistency) must hold however
// the locks are carved up: single lock, sharded, flat-combined shards, or
// reader-writer shards, under a sleeping and a spinning lock alike.
class ShardMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  ScenarioResult Run(const std::string& scenario, std::uint32_t shards, bool combine, bool rw) {
    ScenarioConfig config;
    config.lock_name = GetParam();
    config.threads = 4;
    config.ops_per_thread = 600;
    config.key_space = 512;
    config.yield_after = 64;
    config.record_latency = false;
    config.meter = MeterChoice::kOff;
    config.shards = shards;
    config.combine = combine;
    config.rw = rw;
    return RunScenarioByName(scenario, config);
  }

  struct Variant {
    const char* name;
    std::uint32_t shards;
    bool combine;
    bool rw;
  };
  static constexpr Variant kVariants[] = {
      {"single", 1, false, false},
      {"sharded", 4, false, false},
      {"combined", 4, true, false},
      {"rw", 4, false, true},
  };
};

constexpr ShardMatrix::Variant ShardMatrix::kVariants[];

TEST_P(ShardMatrix, KvStoreSizeAccounting) {
  for (const Variant& v : kVariants) {
    const ScenarioResult r = Run("kvstore/WT-RD", v.shards, v.combine, v.rw);
    EXPECT_EQ(r.MetricOr("size"),
              r.MetricOr("preloaded") + r.MetricOr("puts_new") - r.MetricOr("erases_hit"))
        << v.name;
    EXPECT_EQ(r.MetricOr("invariants_ok"), 1.0) << v.name;
  }
}

TEST_P(ShardMatrix, NosqlCountBounds) {
  for (const char* scenario : {"nosql/btree", "nosql/hash"}) {
    for (const Variant& v : kVariants) {
      const ScenarioResult r = Run(scenario, v.shards, v.combine, v.rw);
      EXPECT_LE(r.MetricOr("count"),
                r.MetricOr("preloaded") + r.MetricOr("sets") + r.MetricOr("appends"))
          << scenario << "/" << v.name;
      EXPECT_GE(r.MetricOr("count"), r.MetricOr("preloaded") - r.MetricOr("removes_hit"))
          << scenario << "/" << v.name;
    }
  }
}

TEST_P(ShardMatrix, GraphLogRecordsMatchWrites) {
  for (const Variant& v : kVariants) {
    const ScenarioResult r = Run("graph/update", v.shards, v.combine, v.rw);
    EXPECT_EQ(r.MetricOr("log_records"),
              r.MetricOr("preload_log_records") + r.MetricOr("logged_writes"))
        << v.name;
    EXPECT_EQ(r.MetricOr("node_read_hits"), r.MetricOr("node_reads")) << v.name;
  }
}

TEST_P(ShardMatrix, WalStoreEveryWriteLands) {
  for (const Variant& v : kVariants) {
    const ScenarioResult r = Run("walstore/readwrite", v.shards, v.combine, v.rw);
    EXPECT_EQ(r.MetricOr("wal_records"),
              r.MetricOr("preloaded") + r.MetricOr("puts") + r.MetricOr("deletes"))
        << v.name;
  }
}

TEST_P(ShardMatrix, MiniSqlYtdConsistency) {
  for (const Variant& v : kVariants) {
    const ScenarioResult r = Run("minisql/neworder", v.shards, v.combine, v.rw);
    EXPECT_EQ(r.MetricOr("order_count"), r.MetricOr("neworders")) << v.name;
    EXPECT_DOUBLE_EQ(r.MetricOr("warehouse_ytd"), r.MetricOr("payments")) << v.name;
    EXPECT_DOUBLE_EQ(r.MetricOr("district_ytd"), r.MetricOr("warehouse_ytd")) << v.name;
  }
}

TEST_P(ShardMatrix, CacheHitsBounded) {
  for (const Variant& v : kVariants) {
    const ScenarioResult r = Run("cache/set-heavy", v.shards, v.combine, v.rw);
    EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << v.name;
    EXPECT_EQ(r.MetricOr("evictions"), 0.0) << v.name;
    EXPECT_GT(r.MetricOr("size"), 0.0) << v.name;
    EXPECT_LE(r.MetricOr("size"), 513.0) << v.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Locks, ShardMatrix, ::testing::Values("MUTEX", "TICKET"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- Chaos + lockdep over the sharded paths ----------------------------------

// DefaultChaosSpec (spurious wakes, wake-all herds, delay injection) with
// the lockdep detector armed, over sharded / combined / rw configurations:
// the invariants must survive the faults and the multi-lock carve-up must
// introduce zero lock-order cycles (db lock -> shard lock orderings stay
// acyclic; combined closures never take a second lock).
TEST(ShardChaos, ShardedPathsSurviveChaosWithLockdepClean) {
  LockdepReset();
  struct Case {
    const char* scenario;
    std::uint32_t shards;
    bool combine;
    bool rw;
  };
  const Case cases[] = {
      {"kvstore/WT-RD", 4, true, false},   {"nosql/btree", 4, true, false},
      {"graph/update", 4, true, false},    {"walstore/readwrite", 4, true, false},
      {"cache/get-heavy", 4, false, true}, {"minisql/neworder", 4, false, true},
  };
  for (const Case& c : cases) {
    ScenarioConfig config;
    config.lock_name = "MUTEX";
    config.threads = 4;
    config.ops_per_thread = 800;
    config.key_space = 512;
    config.yield_after = 64;
    config.record_latency = false;
    config.meter = MeterChoice::kOff;
    config.failpoints = DefaultChaosSpec();
    config.lockdep = true;
    config.shards = c.shards;
    config.combine = c.combine;
    config.rw = c.rw;
    const ScenarioResult r = RunScenarioByName(c.scenario, config);
    EXPECT_EQ(r.total_ops, 3200u) << c.scenario;
  }
  const LockdepStats stats = LockdepGetStats();
  EXPECT_GT(stats.events, 0u);
  EXPECT_EQ(stats.cycles, 0u);
  for (const LockdepReport& report : LockdepReports()) {
    EXPECT_NE(report.kind, LockdepViolationKind::kCycle) << report.Describe();
  }
}

}  // namespace
}  // namespace lockin
