// Unit tests for src/platform: cycle counting, topology, pinning order,
// pausing primitives, RNG.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/rng.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/topology.hpp"

namespace lockin {
namespace {

TEST(Cycles, ReadCyclesMonotonic) {
  const std::uint64_t a = ReadCycles();
  const std::uint64_t b = ReadCycles();
  EXPECT_GE(b, a);
}

TEST(Cycles, CalibrationPositive) {
  EXPECT_GT(CyclesPerNs(), 0.05);   // even a slow VM is >50 MHz
  EXPECT_LT(CyclesPerNs(), 20.0);   // and <20 GHz
}

TEST(Cycles, RoundTripConversion) {
  const std::uint64_t ns = 1000000;
  const std::uint64_t cycles = NsToCycles(ns);
  const std::uint64_t back = CyclesToNs(cycles);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(ns),
              static_cast<double>(ns) * 0.05);
}

TEST(Cycles, SpinForCyclesWaitsApproximately) {
  const std::uint64_t start = ReadCycles();
  SpinForCycles(100000);
  EXPECT_GE(ReadCycles() - start, 100000u);
}

TEST(CycleTimer, MeasuresElapsed) {
  CycleTimer timer;
  SpinForCycles(50000);
  EXPECT_GE(timer.Elapsed(), 50000u);
  timer.Reset();
  EXPECT_LT(timer.Elapsed(), 50000u);
}

TEST(Topology, SyntheticPaperXeon) {
  const Topology xeon = Topology::PaperXeon();
  EXPECT_EQ(xeon.sockets(), 2);
  EXPECT_EQ(xeon.cores_per_socket(), 10);
  EXPECT_EQ(xeon.smt_per_core(), 2);
  EXPECT_EQ(xeon.total_cores(), 20);
  EXPECT_EQ(xeon.total_contexts(), 40);
  EXPECT_EQ(xeon.cpus().size(), 40u);
}

TEST(Topology, SyntheticCoreI7) {
  const Topology i7 = Topology::PaperCoreI7();
  EXPECT_EQ(i7.total_contexts(), 8);
}

TEST(Topology, PinningOrderFillsCoresBeforeHyperthreads) {
  // Paper methodology: cores of socket 0, then socket 1, then hyper-threads.
  const Topology xeon = Topology::PaperXeon();
  const std::vector<CpuInfo> order = xeon.PinningOrder();
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)].smt_index, 0) << i;
  }
  for (int i = 20; i < 40; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)].smt_index, 1) << i;
  }
  // First ten on socket 0, next ten on socket 1.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)].socket, 0) << i;
  }
  for (int i = 10; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)].socket, 1) << i;
  }
}

TEST(Topology, PinningOrderIsAPermutation) {
  const Topology xeon = Topology::PaperXeon();
  std::set<int> os_ids;
  for (const CpuInfo& cpu : xeon.PinningOrder()) {
    os_ids.insert(cpu.os_cpu);
  }
  EXPECT_EQ(os_ids.size(), 40u);
}

TEST(Topology, DetectReturnsSomethingSane) {
  const Topology host = Topology::Detect();
  EXPECT_GE(host.total_contexts(), 1);
  EXPECT_FALSE(host.ToString().empty());
}

TEST(Topology, PinThreadToCpuZero) {
  // CPU 0 always exists.
  EXPECT_TRUE(PinThreadToCpu(0));
}

TEST(SpinHint, AllPauseKindsExecute) {
  for (PauseKind kind : {PauseKind::kNone, PauseKind::kNop, PauseKind::kPause,
                         PauseKind::kMfence, PauseKind::kYield}) {
    SpinPause(kind);  // must not crash or hang
  }
}

TEST(SpinHint, NameRoundTrip) {
  for (PauseKind kind : {PauseKind::kNone, PauseKind::kNop, PauseKind::kPause,
                         PauseKind::kMfence, PauseKind::kYield}) {
    EXPECT_EQ(PauseKindFromName(PauseKindName(kind)), kind);
  }
  EXPECT_EQ(PauseKindFromName("garbage"), PauseKind::kMfence);
}

TEST(CacheAligned, ProvidesAlignment) {
  CacheAligned<int> values[4];
  for (auto& value : values) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&value) % kCacheLineSize, 0u);
  }
  *values[0] = 7;
  EXPECT_EQ(values[0].value, 7);
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Xoshiro256 rng(5);
  int buckets[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    buckets[rng.NextBelow(10)]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

}  // namespace
}  // namespace lockin
