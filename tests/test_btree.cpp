// B+-tree property tests: random operation sequences are checked against a
// std::map reference model, with structural invariants after every phase.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/platform/rng.hpp"
#include "src/systems/btree.hpp"

namespace lockin {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  std::string out;
  EXPECT_FALSE(tree.Get(1, &out));
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTree, PutGetSingle) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Put(42, "hello"));
  std::string out;
  ASSERT_TRUE(tree.Get(42, &out));
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, OverwriteDoesNotGrow) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Put(1, "a"));
  EXPECT_FALSE(tree.Put(1, "b"));
  EXPECT_EQ(tree.size(), 1u);
  std::string out;
  ASSERT_TRUE(tree.Get(1, &out));
  EXPECT_EQ(out, "b");
}

TEST(BPlusTree, SequentialInsertSplits) {
  BPlusTree tree;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree.Put(k, std::to_string(k)));
  }
  EXPECT_EQ(tree.size(), kN);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  std::string out;
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree.Get(k, &out)) << k;
    EXPECT_EQ(out, std::to_string(k));
  }
}

TEST(BPlusTree, ReverseInsert) {
  BPlusTree tree;
  for (std::uint64_t k = 3000; k > 0; --k) {
    ASSERT_TRUE(tree.Put(k, "v"));
  }
  EXPECT_EQ(tree.size(), 3000u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTree, ScanInOrder) {
  BPlusTree tree;
  for (std::uint64_t k = 0; k < 1000; k += 2) {
    tree.Put(k, std::to_string(k));
  }
  std::uint64_t last = 0;
  std::size_t visited = 0;
  tree.Scan(100, 500, [&](std::uint64_t key, const std::string& value) {
    EXPECT_GE(key, 100u);
    EXPECT_LE(key, 500u);
    if (visited > 0) {
      EXPECT_GT(key, last);
    }
    EXPECT_EQ(value, std::to_string(key));
    last = key;
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 201u);  // 100,102,...,500
}

TEST(BPlusTree, ScanEarlyStop) {
  BPlusTree tree;
  for (std::uint64_t k = 0; k < 100; ++k) {
    tree.Put(k, "v");
  }
  std::size_t visited = 0;
  tree.Scan(0, 99, [&](std::uint64_t, const std::string&) {
    ++visited;
    return visited < 10;
  });
  EXPECT_EQ(visited, 10u);
}

TEST(BPlusTree, EraseRemoves) {
  BPlusTree tree;
  for (std::uint64_t k = 0; k < 500; ++k) {
    tree.Put(k, "v");
  }
  for (std::uint64_t k = 0; k < 500; k += 2) {
    EXPECT_TRUE(tree.Erase(k));
  }
  EXPECT_EQ(tree.size(), 250u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(tree.Get(k, nullptr), k % 2 == 1) << k;
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

// Property test parameterized over seeds: random ops vs std::map.
class BTreeRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeRandomOps, MatchesReferenceModel) {
  BPlusTree tree;
  std::map<std::uint64_t, std::string> reference;
  Xoshiro256 rng(GetParam());
  constexpr int kOps = 20000;
  constexpr std::uint64_t kKeySpace = 2000;  // dense: plenty of collisions

  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t key = rng.NextBelow(kKeySpace);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // put
        const std::string value = std::to_string(key * 31 + i);
        const bool inserted = tree.Put(key, value);
        EXPECT_EQ(inserted, reference.find(key) == reference.end());
        reference[key] = value;
        break;
      }
      case 2: {  // get
        std::string out;
        const bool found = tree.Get(key, &out);
        const auto it = reference.find(key);
        EXPECT_EQ(found, it != reference.end());
        if (found) {
          EXPECT_EQ(out, it->second);
        }
        break;
      }
      case 3: {  // erase
        const bool erased = tree.Erase(key);
        EXPECT_EQ(erased, reference.erase(key) != 0);
        break;
      }
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_TRUE(tree.CheckInvariants());

  // Full-range scan equals the reference's ordered contents.
  std::vector<std::uint64_t> scanned;
  tree.Scan(0, kKeySpace, [&](std::uint64_t key, const std::string&) {
    scanned.push_back(key);
    return true;
  });
  std::vector<std::uint64_t> expected;
  for (const auto& [key, value] : reference) {
    expected.push_back(key);
  }
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomOps,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace lockin
