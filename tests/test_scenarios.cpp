// Scenario-layer tests (src/systems/workload_api.hpp): the registry lists
// and constructs every scenario, every scenario runs under every registered
// lock through the one shared driver, seeded single-threaded runs are
// deterministic, and the per-system counter invariants hold -- the
// properties the paper's "swap the lock, not the system" experiment and the
// BENCH_native.json trajectory rely on.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/locks/lock_registry.hpp"
#include "src/systems/cache_workload.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

// Small key spaces keep Setup preloads cheap in the all-scenarios sweeps.
ScenarioConfig TinyConfig(const std::string& lock, int threads, int ops) {
  ScenarioConfig config;
  config.lock_name = lock;
  config.threads = threads;
  config.ops_per_thread = ops;
  config.key_space = 512;
  config.yield_after = 64;
  return config;
}

// --- Registry ----------------------------------------------------------------

TEST(ScenarioRegistry, ListsEverySystem) {
  const std::vector<ScenarioInfo> scenarios = RegisteredScenarios();
  EXPECT_GE(scenarios.size(), 15u);
  std::set<std::string> systems;
  std::set<std::string> names;
  for (const ScenarioInfo& info : scenarios) {
    systems.insert(info.system);
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate name " << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
    // Names follow "<system>/<mix>" so CLIs can group them.
    EXPECT_NE(info.name.find('/'), std::string::npos) << info.name;
  }
  const std::set<std::string> expected = {"KvStore", "MemCache", "NosqlDb", "GraphStore",
                                          "MiniSql", "WalStore", "CowList", "RwKv"};
  EXPECT_EQ(systems, expected);
}

TEST(ScenarioRegistry, ConstructsEveryListedScenario) {
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    EXPECT_NE(MakeScenario(info.name), nullptr) << info.name;
    EXPECT_NE(ScenarioRegistry::Instance().Find(info.name), nullptr) << info.name;
  }
}

TEST(ScenarioRegistry, UnknownNameContract) {
  // Mirrors the lock registry: Make -> nullptr, MakeOrThrow -> throws.
  EXPECT_EQ(MakeScenario("no/such-scenario"), nullptr);
  EXPECT_EQ(ScenarioRegistry::Instance().Find("no/such-scenario"), nullptr);
  EXPECT_THROW(MakeScenarioOrThrow("no/such-scenario"), std::invalid_argument);
  EXPECT_THROW(RunScenarioByName("no/such-scenario", ScenarioConfig{}), std::invalid_argument);
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  ScenarioRegistry local;
  local.Register({"x/one", "X", "d"}, [] { return MakeScenarioOrThrow("kvstore/WT"); });
  EXPECT_THROW(local.Register({"x/one", "X", "d"}, nullptr), std::invalid_argument);
}

TEST(ScenarioRegistry, UnknownLockThrowsAtSetup) {
  EXPECT_THROW(RunScenarioByName("kvstore/WT", TinyConfig("NOT-A-LOCK", 1, 10)),
               std::invalid_argument);
}

// --- Driver ------------------------------------------------------------------

class CountingWorkload : public ScenarioWorkload {
 public:
  explicit CountingWorkload(std::size_t counters = 1) : counters_(counters) {}
  void Setup(const ScenarioConfig&) override {}
  std::vector<std::string> CounterNames() const override {
    return std::vector<std::string>(counters_, "c");
  }
  void Op(ThreadContext& ctx) override { ++ctx.counters[0]; }

 private:
  std::size_t counters_;
};

TEST(ScenarioDriver, FixedOpModeRunsExactly) {
  CountingWorkload workload;
  ScenarioConfig config;
  config.threads = 3;
  config.ops_per_thread = 1000;
  const ScenarioResult result = RunScenario(workload, config, "test/counting");
  EXPECT_EQ(result.total_ops, 3000u);
  EXPECT_EQ(result.scenario, "test/counting");
  // With latency recording on, every op lands in the histogram.
  EXPECT_EQ(result.op_latency_cycles.count(), 3000u);
  ASSERT_FALSE(result.metrics.empty());
  EXPECT_EQ(result.metrics[0].name, "c");
  EXPECT_EQ(result.metrics[0].value, 3000.0);
  EXPECT_GT(result.ops_per_s, 0.0);
  EXPECT_EQ(result.MetricOr("missing", -1.0), -1.0);
}

TEST(ScenarioDriver, DurationModeStops) {
  CountingWorkload workload;
  ScenarioConfig config;
  config.threads = 2;
  config.duration_ms = 20;
  config.record_latency = false;
  const ScenarioResult result = RunScenario(workload, config, "test/duration");
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_GE(result.seconds, 0.015);
  EXPECT_EQ(result.op_latency_cycles.count(), 0u);
}

TEST(ScenarioDriver, RejectsTooManyCounters) {
  CountingWorkload workload(ScenarioWorkload::kMaxCounters + 1);
  EXPECT_THROW(RunScenario(workload, ScenarioConfig{}, "test/overflow"),
               std::invalid_argument);
}

// --- Every scenario x every registered lock ----------------------------------

TEST(ScenarioSweep, EveryScenarioUnderEveryLock) {
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    for (const std::string& lock : RegisteredLockNames()) {
      const ScenarioConfig config = TinyConfig(lock, 2, 300);
      const ScenarioResult result = RunScenarioByName(info.name, config);
      EXPECT_EQ(result.total_ops, 600u) << info.name << " under " << lock;
      EXPECT_EQ(result.lock_name, lock);
    }
  }
}

// --- Determinism -------------------------------------------------------------

TEST(ScenarioDeterminism, SeededSingleThreadRunsMatch) {
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    ScenarioConfig config = TinyConfig("MUTEX", 1, 2000);
    config.seed = 7;
    const ScenarioResult a = RunScenarioByName(info.name, config);
    const ScenarioResult b = RunScenarioByName(info.name, config);
    ASSERT_EQ(a.metrics.size(), b.metrics.size()) << info.name;
    for (std::size_t m = 0; m < a.metrics.size(); ++m) {
      EXPECT_EQ(a.metrics[m].name, b.metrics[m].name) << info.name;
      EXPECT_EQ(a.metrics[m].value, b.metrics[m].value)
          << info.name << " metric " << a.metrics[m].name;
    }
    EXPECT_EQ(a.total_ops, b.total_ops) << info.name;
  }
}

TEST(ScenarioDeterminism, SeedChangesTheWorkload) {
  ScenarioConfig config = TinyConfig("MUTEX", 1, 2000);
  config.seed = 1;
  const ScenarioResult a = RunScenarioByName("kvstore/WT-RD", config);
  config.seed = 2;
  const ScenarioResult b = RunScenarioByName("kvstore/WT-RD", config);
  // Any single counter could collide across seeds; all of them at once
  // will not.
  EXPECT_FALSE(a.MetricOr("get_hits") == b.MetricOr("get_hits") &&
               a.MetricOr("puts_new") == b.MetricOr("puts_new") &&
               a.MetricOr("scans") == b.MetricOr("scans") &&
               a.MetricOr("size") == b.MetricOr("size"));
}

// --- Per-system counter invariants -------------------------------------------

// The invariants are linearizability facts, so they must hold for any
// thread count and any lock; run them multi-threaded under two very
// different algorithms (sleeping MUTEX, spinning TICKET).
class ScenarioInvariants : public ::testing::TestWithParam<std::string> {
 protected:
  ScenarioResult Run(const std::string& scenario) {
    return RunScenarioByName(scenario, TinyConfig(GetParam(), 4, 2500));
  }
};

TEST_P(ScenarioInvariants, KvStoreSizeMatchesPutsMinusErases) {
  for (const char* name : {"kvstore/WT", "kvstore/WT-RD", "kvstore/RD"}) {
    const ScenarioResult r = Run(name);
    EXPECT_EQ(r.MetricOr("size"),
              r.MetricOr("preloaded") + r.MetricOr("puts_new") - r.MetricOr("erases_hit"))
        << name;
    EXPECT_EQ(r.MetricOr("invariants_ok"), 1.0) << name;
    EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << name;
  }
}

TEST_P(ScenarioInvariants, CacheHitsBoundedAndCapacityHeld) {
  for (const char* name : {"cache/set-heavy", "cache/get-heavy", "cache/set-heavy-seglru"}) {
    const ScenarioResult r = Run(name);
    EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << name;
    // Tiny key space: far below capacity, so nothing may be evicted and the
    // size is bounded by the distinct keys touched (SkewedKey's range is
    // inclusive, so key_space=512 spans 513 keys).
    EXPECT_EQ(r.MetricOr("evictions"), 0.0) << name;
    EXPECT_LE(r.MetricOr("size"), 513.0) << name;
    EXPECT_GT(r.MetricOr("size"), 0.0) << name;
  }
}

TEST_P(ScenarioInvariants, NosqlCountBoundedByWrites) {
  for (const char* name : {"nosql/cache", "nosql/hash", "nosql/btree"}) {
    const ScenarioResult r = Run(name);
    EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << name;
    EXPECT_LE(r.MetricOr("removes_hit"), r.MetricOr("removes")) << name;
    // Count can only grow by Set/Append creations and shrink by hits.
    EXPECT_LE(r.MetricOr("count"),
              r.MetricOr("preloaded") + r.MetricOr("sets") + r.MetricOr("appends"))
        << name;
    EXPECT_GE(r.MetricOr("count"), r.MetricOr("preloaded") - r.MetricOr("removes_hit")) << name;
  }
}

TEST_P(ScenarioInvariants, GraphLogRecordsMatchLoggedWrites) {
  for (const char* name : {"graph/traverse", "graph/update"}) {
    const ScenarioResult r = Run(name);
    EXPECT_EQ(r.MetricOr("log_records"),
              r.MetricOr("preload_log_records") + r.MetricOr("logged_writes"))
        << name;
    EXPECT_EQ(r.MetricOr("node_read_hits"), r.MetricOr("node_reads")) << name;
  }
}

TEST_P(ScenarioInvariants, MiniSqlTpccConsistency) {
  for (const char* name : {"minisql/neworder", "minisql/payment"}) {
    const ScenarioResult r = Run(name);
    EXPECT_EQ(r.MetricOr("order_count"), r.MetricOr("neworders")) << name;
    // TPC-C consistency: warehouse YTD == sum of district YTD == payments
    // (every payment moves 1.0 through both).
    EXPECT_DOUBLE_EQ(r.MetricOr("warehouse_ytd"), r.MetricOr("payments")) << name;
    EXPECT_DOUBLE_EQ(r.MetricOr("district_ytd"), r.MetricOr("warehouse_ytd")) << name;
  }
}

TEST_P(ScenarioInvariants, WalStoreEveryWriteLandsInTheWal) {
  for (const char* name : {"walstore/append", "walstore/readwrite"}) {
    const ScenarioResult r = Run(name);
    EXPECT_EQ(r.MetricOr("wal_records"),
              r.MetricOr("preloaded") + r.MetricOr("puts") + r.MetricOr("deletes"))
        << name;
    EXPECT_GT(r.MetricOr("batches"), 0.0) << name;
    EXPECT_LE(r.MetricOr("batches"), r.MetricOr("wal_records")) << name;
  }
}

TEST_P(ScenarioInvariants, CowListSizeMatchesAddsMinusRemoves) {
  for (const char* name : {"cowlist/readmostly", "cowlist/writeheavy"}) {
    const ScenarioResult r = Run(name);
    EXPECT_EQ(r.MetricOr("size"),
              r.MetricOr("preloaded") + r.MetricOr("adds") - r.MetricOr("removes_hit"))
        << name;
    EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Locks, ScenarioInvariants, ::testing::Values("MUTEX", "TICKET"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- Legacy cache wrapper ----------------------------------------------------

TEST(CacheWorkloadCompat, WrapperMatchesScenarioRun) {
  // RunCacheWorkload is a wrapper over the cache scenario; a seeded run
  // must agree with the registered scenario on the workload facts. Single
  // threaded: with concurrency, hit counts legitimately depend on the
  // Set/Get interleaving (as they did under the pre-API driver).
  CacheWorkloadConfig legacy;
  legacy.threads = 1;
  legacy.ops_per_thread = 10000;
  legacy.get_percent = 10;
  const CacheWorkloadResult a = RunCacheWorkload(legacy);
  const CacheWorkloadResult b = RunCacheWorkload(legacy);
  EXPECT_EQ(a.total_ops, 10000u);
  EXPECT_EQ(a.get_hits, b.get_hits);
  EXPECT_EQ(a.final_size, b.final_size);
  EXPECT_EQ(a.evictions, b.evictions);

  ScenarioConfig config;
  config.threads = legacy.threads;
  config.ops_per_thread = legacy.ops_per_thread;
  const ScenarioResult scenario = RunScenarioByName("cache/set-heavy", config);
  EXPECT_EQ(static_cast<std::uint64_t>(scenario.MetricOr("get_hits")), a.get_hits);
  EXPECT_EQ(static_cast<std::size_t>(scenario.MetricOr("size")), a.final_size);
}

TEST(CacheWorkloadCompat, SkewedCacheKeyAliasesSkewedKey) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SkewedCacheKey(&a, 60000), SkewedKey(&b, 60000));
  }
}

TEST(Skew, SkewedKeyStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(SkewedKey(&rng, 1000), 1000u);
  }
  // Degenerate space: always 0..16.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(SkewedKey(&rng, 16), 16u);
  }
}

}  // namespace
}  // namespace lockin
