// Waiting-experiment tests: the shapes of Figures 2-7 and the section 4.4
// table must come out of the models.
#include <gtest/gtest.h>

#include "src/sim/waiting.hpp"

namespace lockin {
namespace {

PowerModel XeonModel() { return PowerModel(Topology::PaperXeon(), PowerParams::PaperXeon()); }

TEST(Fig2PowerBreakdown, IdleAndMaxEndpoints) {
  const PowerModel model = XeonModel();
  const PowerBreakdownPoint idle = PowerBreakdown(model, 0, VfSetting::kMax);
  EXPECT_NEAR(idle.total_w, 55.5, 0.1);
  const PowerBreakdownPoint full = PowerBreakdown(model, 40, VfSetting::kMax);
  EXPECT_GT(full.total_w, 170.0);
  EXPECT_GT(full.dram_w, 70.0);     // paper: DRAM up to 74 W
  EXPECT_GT(full.package_w, 120.0); // paper: package up to 132 W
}

TEST(Fig2PowerBreakdown, MinFrequencyLower) {
  const PowerModel model = XeonModel();
  for (int threads : {5, 20, 40}) {
    EXPECT_LT(PowerBreakdown(model, threads, VfSetting::kMin).total_w,
              PowerBreakdown(model, threads, VfSetting::kMax).total_w)
        << threads;
  }
}

TEST(Fig2PowerBreakdown, PackageIncludesCores) {
  const PowerModel model = XeonModel();
  const PowerBreakdownPoint p = PowerBreakdown(model, 20, VfSetting::kMax);
  EXPECT_GT(p.package_w, p.cores_w);
  EXPECT_NEAR(p.total_w, p.package_w + p.dram_w, 1e-9);
}

TEST(Fig34WaitingPower, SleepingIsCheapestSpinningDearest) {
  const PowerModel model = XeonModel();
  const double sleeping = WaitingPowerWatts(model, 40, ActivityState::kSleeping);
  const double local = WaitingPowerWatts(model, 40, ActivityState::kSpinLocal);
  EXPECT_LT(sleeping, 62.0);  // near idle
  EXPECT_GT(local, 120.0);    // figure 3: ~140 W busy waiting
}

TEST(Fig34WaitingPower, PauseIncreasesPowerMbarDecreases) {
  // The headline counterintuitive result of section 4.2.
  const PowerModel model = XeonModel();
  const double local = WaitingPowerWatts(model, 40, ActivityState::kSpinLocal);
  const double pause = WaitingPowerWatts(model, 40, ActivityState::kSpinPause);
  const double mbar = WaitingPowerWatts(model, 40, ActivityState::kSpinMbar);
  const double global = WaitingPowerWatts(model, 40, ActivityState::kSpinGlobal);
  EXPECT_GT(pause, local);         // pause increases power (up to 4%)
  EXPECT_LT(pause / local, 1.06);
  EXPECT_LT(mbar, global);         // mbar below even global spinning
  EXPECT_LT(mbar / pause, 0.96);   // ~7% below pause
}

TEST(Fig34WaitingPower, CpiValuesMatchPaper) {
  EXPECT_DOUBLE_EQ(WaitingCpi(ActivityState::kSpinGlobal), 530.0);  // ~530 cycles/atomic
  EXPECT_DOUBLE_EQ(WaitingCpi(ActivityState::kSpinLocal), 1.0);     // load per cycle
  EXPECT_DOUBLE_EQ(WaitingCpi(ActivityState::kSpinPause), 4.6);     // pause CPI 4.6
  EXPECT_GT(WaitingCpi(ActivityState::kSpinMbar), WaitingCpi(ActivityState::kSpinPause));
  EXPECT_EQ(WaitingCpi(ActivityState::kSleeping), 0.0);
}

TEST(Fig5Dvfs, MwaitAndDvfsReducePower) {
  const PowerModel model = XeonModel();
  const double vf_max = WaitingPowerWatts(model, 40, ActivityState::kSpinLocal);
  const double vf_min = WaitingPowerWatts(model, 40, ActivityState::kSpinDvfsMin);
  const double mwait = WaitingPowerWatts(model, 40, ActivityState::kMwait);
  EXPECT_GT(vf_max / vf_min, 1.25);  // paper: up to 1.7x
  EXPECT_GT(vf_max / mwait, 1.3);    // paper: up to 1.5x
}

TEST(Fig6FutexLatency, TurnaroundAtLeast7000) {
  for (std::uint64_t delay : {5000ULL, 50000ULL, 300000ULL}) {
    const FutexLatencyPoint p = MeasureFutexLatency(delay, 7);
    EXPECT_GE(p.turnaround_cycles, 7000.0) << delay;
    EXPECT_GT(p.turnaround_cycles, p.wake_call_cycles) << delay;
  }
}

TEST(Fig6FutexLatency, WakeCallExpensiveAtLowDelay) {
  // "for low delays between the two calls, the wake-up call is more
  // expensive as it waits behind a kernel lock".
  const FutexLatencyPoint low = MeasureFutexLatency(300, 7);
  const FutexLatencyPoint high = MeasureFutexLatency(100000, 7);
  EXPECT_GT(low.wake_call_cycles, high.wake_call_cycles * 1.2);
}

TEST(Fig6FutexLatency, TurnaroundExplodesPastDeepIdleThreshold) {
  const FutexLatencyPoint shallow = MeasureFutexLatency(100000, 5);
  const FutexLatencyPoint deep = MeasureFutexLatency(20000000, 5);
  EXPECT_GT(deep.turnaround_cycles, shallow.turnaround_cycles * 5);
}

TEST(Sec44SleepPower, PowerFallsOnceePeriodExceedsSleepLatency) {
  // The paper's table: 1024 -> 72.03 W, 8192 -> 68.02 W.
  const SleepPowerPoint p1k = MeasureSleepPower(1024, 14'000'000);
  const SleepPowerPoint p8k = MeasureSleepPower(8192, 14'000'000);
  EXPECT_GT(p1k.watts, p8k.watts);
  // Short periods mostly miss (the sleeper barely gets to block).
  EXPECT_GT(p1k.sleep_miss_ratio, p8k.sleep_miss_ratio);
}

TEST(Fig7SpinThenSleep, LargerQuotaLowerPowerHigherThroughput) {
  const SpinThenSleepPoint ss10 = MeasureSpinThenSleep(20, 10, 14'000'000);
  const SpinThenSleepPoint ss1000 = MeasureSpinThenSleep(20, 1000, 14'000'000);
  EXPECT_LT(ss1000.watts, ss10.watts + 1.0);
  EXPECT_GT(ss1000.handovers_per_s, ss10.handovers_per_s);
}

TEST(Fig7SpinThenSleep, SpinOnlyBurnsPower) {
  const SpinThenSleepPoint spin = MeasureSpinThenSleep(30, kSpinOnly, 14'000'000);
  const SpinThenSleepPoint ss1000 = MeasureSpinThenSleep(30, 1000, 14'000'000);
  EXPECT_GT(spin.watts, ss1000.watts * 1.5);
}

TEST(Fig7SpinThenSleep, PureSleepChainIsSlow) {
  const SpinThenSleepPoint sleep = MeasureSpinThenSleep(20, 0, 14'000'000);
  const SpinThenSleepPoint ss1000 = MeasureSpinThenSleep(20, 1000, 14'000'000);
  // Every handover pays the futex turnaround: orders of magnitude slower.
  EXPECT_LT(sleep.handovers_per_s, ss1000.handovers_per_s / 10);
}

}  // namespace
}  // namespace lockin
