// MUTEXEE-specific behaviour: Table 1 protocol, statistics, mode
// adaptation, the unlock grace window and the fairness timeout.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/locks/mutexee.hpp"
#include "src/platform/cycles.hpp"

namespace lockin {
namespace {

TEST(Mutexee, DefaultConfigMatchesPaper) {
  // Table 1 / section 5.1: ~8000-cycle spin with mfence, ~384-cycle unlock
  // grace; mutex mode ~256 / ~128; mode switch at >30% futex handovers.
  MutexeeLock lock;
  EXPECT_EQ(lock.config().spin_mode_lock_cycles, 8000u);
  EXPECT_EQ(lock.config().spin_mode_grace_cycles, 384u);
  EXPECT_EQ(lock.config().mutex_mode_lock_cycles, 256u);
  EXPECT_EQ(lock.config().mutex_mode_grace_cycles, 128u);
  EXPECT_EQ(lock.config().pause, PauseKind::kMfence);
  EXPECT_DOUBLE_EQ(lock.config().futex_ratio_threshold, 0.30);
  EXPECT_EQ(lock.config().sleep_timeout_ns, 0u);  // timeouts off by default
  EXPECT_EQ(lock.mode(), MutexeeLock::Mode::kSpin);
}

TEST(Mutexee, UncontestedAcquiresAreSpinHandovers) {
  MutexeeLock lock;
  for (int i = 0; i < 100; ++i) {
    lock.lock();
    lock.unlock();
  }
  const MutexeeLock::Stats stats = lock.GetStats();
  EXPECT_EQ(stats.acquires, 100u);
  EXPECT_EQ(stats.spin_handovers, 100u);
  EXPECT_EQ(stats.futex_handovers, 0u);
  EXPECT_EQ(lock.futex_stats().wake_calls.load(), 0u);
}

TEST(Mutexee, TryLock) {
  MutexeeLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Mutexee, MutualExclusion) {
  MutexeeLock lock;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 12000);
}

TEST(Mutexee, SpinHandoversDominateUnderShortCriticalSections) {
  // The defining claim: for short critical sections MUTEXEE keeps most
  // handovers futex-free (section 5.1).
  MutexeeLock lock;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const MutexeeLock::Stats stats = lock.GetStats();
  EXPECT_EQ(stats.acquires, 20000u);
  EXPECT_GT(stats.spin_handovers, stats.futex_handovers);
  EXPECT_LT(stats.FutexHandoverRatio(), 0.30);
}

TEST(Mutexee, TimeoutWakesSleeperEventually) {
  MutexeeConfig config;
  config.sleep_timeout_ns = 2'000'000;  // 2 ms
  config.spin_mode_lock_cycles = 200;   // sleep fast
  MutexeeLock lock(config);

  lock.lock();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock();
    acquired.store(true);
    lock.unlock();
  });
  // Hold long enough that the waiter must sleep, time out, and then spin.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  // The waiter either timed out (then spun) or was woken by the unlock;
  // with a 2 ms timeout and a 20 ms hold it must have timed out at least once.
  EXPECT_GE(lock.futex_stats().timeouts.load(), 1u);
}

TEST(Mutexee, StatsResetClears) {
  MutexeeLock lock;
  lock.lock();
  lock.unlock();
  lock.ResetStats();
  const MutexeeLock::Stats stats = lock.GetStats();
  EXPECT_EQ(stats.acquires, 0u);
  EXPECT_EQ(stats.spin_handovers, 0u);
}

TEST(Mutexee, GraceWindowSkipsWakes) {
  // With the grace window on and constant pressure from a second thread,
  // some unlocks should detect the user-space grab and skip the futex wake:
  // wake_skips > 0 or zero wake calls at all.
  MutexeeConfig config;
  config.spin_mode_lock_cycles = 200000;  // spin long enough to never sleep
  MutexeeLock lock(config);
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 8000);
  // Ideally nobody slept (budget >> critical section) and the sleeper-count
  // fast path means zero futex wakes. The portable contract: with no real
  // sleeps, wakes can only come from the transient sleeper-advertisement
  // window (increment -> CAS-grab without waiting), and each one needs an
  // independent preemption spanning the grace window -- so they stay a tiny
  // fraction of the 8000 acquires. A broken sleeper-count/grace path would
  // wake on every contended unlock and blow the bound. Once a waiter truly
  // sleeps (preempted past the spin budget -- routine under sanitizers on a
  // small host), repeated wakes against the still-descheduled sleeper are
  // legitimate MUTEXEE behavior, so no wake bound applies.
  const std::uint64_t sleeps = lock.futex_stats().sleeps.load();
  const std::uint64_t wakes = lock.futex_stats().wake_calls.load();
  if (sleeps == 0) {
    EXPECT_LE(wakes, 80u) << "wake storm without any real futex sleeps; "
                          << "wake_skips=" << lock.GetStats().wake_skips;
  }
}

TEST(Mutexee, AblationNoGraceStillCorrect) {
  MutexeeConfig config;
  config.enable_unlock_grace = false;
  config.spin_mode_lock_cycles = 500;
  MutexeeLock lock(config);
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(Mutexee, ModeSwitchesToMutexUnderFutexChurn) {
  // Force futex handovers: minuscule spin budget, long critical sections.
  MutexeeConfig config;
  config.spin_mode_lock_cycles = 50;
  config.mutex_mode_lock_cycles = 50;
  config.adapt_period = 64;
  // On small hosts the unlocking thread often re-acquires before sleepers
  // run, keeping the futex-handover ratio low; any futex traffic at all
  // should flip the mode with a near-zero threshold.
  config.futex_ratio_threshold = 0.005;
  MutexeeLock lock(config);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 800; ++i) {
        lock.lock();
        SpinForCycles(20000);  // long critical section forces sleeping
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const MutexeeLock::Stats stats = lock.GetStats();
  EXPECT_GT(stats.futex_handovers, 0u);
  // With >30% futex handovers sustained, the lock must have adapted at
  // least once to mutex mode.
  EXPECT_GT(stats.mode_switches, 0u);
}

}  // namespace
}  // namespace lockin
