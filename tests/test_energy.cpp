// Power model and energy meter tests. The power model is the calibrated
// substitute for RAPL, so these tests pin it to the paper's reported
// numbers (section 3.1) and orderings (sections 4.1-4.2).
#include <gtest/gtest.h>

#include <thread>

#include "src/energy/model_meter.hpp"
#include "src/energy/power_model.hpp"
#include "src/energy/rapl_meter.hpp"

namespace lockin {
namespace {

PowerModel XeonModel() { return PowerModel(Topology::PaperXeon(), PowerParams::PaperXeon()); }

std::vector<ActivityState> States(int n, ActivityState s, int total = 40) {
  std::vector<ActivityState> states(static_cast<std::size_t>(total), ActivityState::kInactive);
  for (int i = 0; i < n; ++i) {
    states[static_cast<std::size_t>(i)] = s;
  }
  return states;
}

TEST(PowerModel, IdlePowerMatchesPaper) {
  // "the total idle power is 55.5 Watts" (section 3.1).
  const PowerModel model = XeonModel();
  EXPECT_NEAR(model.IdleWatts(), 55.5, 0.1);
  EXPECT_NEAR(model.TotalWatts(States(0, ActivityState::kWorking)), 55.5, 0.1);
}

TEST(PowerModel, FirstCoreActivationCost) {
  // "it costs ... 13.6 Watts in package power on the ... max VF settings"
  const PowerModel model = XeonModel();
  const std::vector<VfSetting> vf(40, VfSetting::kMax);
  const double idle = model.ComponentWatts(States(0, ActivityState::kWorking), vf).package_w;
  const double one = model.ComponentWatts(States(1, ActivityState::kWorking), vf).package_w;
  EXPECT_NEAR(one - idle, 13.6, 0.1);
}

TEST(PowerModel, SecondCoreCheaperThanFirst) {
  // "The second core costs 2.3 and 5.6 Watts" (min/max VF).
  const PowerModel model = XeonModel();
  const std::vector<VfSetting> vf(40, VfSetting::kMax);
  const double one = model.ComponentWatts(States(1, ActivityState::kWorking), vf).package_w;
  const double two = model.ComponentWatts(States(2, ActivityState::kWorking), vf).package_w;
  EXPECT_NEAR(two - one, 5.6, 0.1);
}

TEST(PowerModel, MinVfCheaperThanMax) {
  const PowerModel model = XeonModel();
  const auto states = States(20, ActivityState::kWorking);
  EXPECT_LT(model.TotalWatts(states, VfSetting::kMin),
            model.TotalWatts(states, VfSetting::kMax));
}

TEST(PowerModel, MonotonicInThreadCount) {
  const PowerModel model = XeonModel();
  double prev = 0;
  for (int threads = 0; threads <= 40; ++threads) {
    const double watts = model.TotalWatts(States(threads, ActivityState::kWorking));
    EXPECT_GE(watts, prev) << threads;
    prev = watts;
  }
}

TEST(PowerModel, KneeAtFullCoreOccupancy) {
  // After 20 threads (one per core), extra hyper-threads add less power
  // than extra cores did -- the knee visible in Figure 2.
  const PowerModel model = XeonModel();
  const double w19 = model.TotalWatts(States(19, ActivityState::kWorking));
  const double w20 = model.TotalWatts(States(20, ActivityState::kWorking));
  const double w21 = model.TotalWatts(States(21, ActivityState::kWorking));
  const double core_step = w20 - w19;
  const double smt_step = w21 - w20;
  EXPECT_LT(smt_step, core_step);
}

TEST(PowerModel, UncoreStepWhenSecondSocketWakes) {
  // Thread 11 in pinning order lands on socket 1: its activation includes
  // the uncore cost, so the step exceeds the per-core cost alone.
  const PowerModel model = XeonModel();
  const double w10 = model.TotalWatts(States(10, ActivityState::kWorking));
  const double w11 = model.TotalWatts(States(11, ActivityState::kWorking));
  const double w9_to_10 =
      w10 - model.TotalWatts(States(9, ActivityState::kWorking));
  EXPECT_GT(w11 - w10, w9_to_10);
}

TEST(PowerModel, PausingTechniqueOrdering) {
  // Figure 3/4: pause > local > global > mbar in power while spinning.
  const PowerModel model = XeonModel();
  const int n = 30;
  const double pause = model.TotalWatts(States(n, ActivityState::kSpinPause));
  const double local = model.TotalWatts(States(n, ActivityState::kSpinLocal));
  const double global = model.TotalWatts(States(n, ActivityState::kSpinGlobal));
  const double mbar = model.TotalWatts(States(n, ActivityState::kSpinMbar));
  EXPECT_GT(pause, local);
  EXPECT_GT(local, global);
  EXPECT_GT(global, mbar);
}

TEST(PowerModel, SleepingNearIdle) {
  const PowerModel model = XeonModel();
  const double sleeping = model.TotalWatts(States(40, ActivityState::kSleeping));
  EXPECT_LT(sleeping, model.IdleWatts() + 6.0);
  EXPECT_GE(sleeping, model.IdleWatts());
}

TEST(PowerModel, MwaitWellBelowSpinning) {
  // Figure 5: monitor/mwait reduces busy-wait power by ~1.5x.
  const PowerModel model = XeonModel();
  const double spin = model.TotalWatts(States(40, ActivityState::kSpinLocal));
  const double mwait = model.TotalWatts(States(40, ActivityState::kMwait));
  const double ratio = (spin) / (mwait);
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.8);
}

TEST(PowerModel, DvfsSpinWellBelowMaxVfSpin) {
  // Figure 5: VF-min spinning consumes up to ~1.7x less than VF-max.
  const PowerModel model = XeonModel();
  const double max_vf = model.TotalWatts(States(40, ActivityState::kSpinLocal));
  const double min_vf = model.TotalWatts(States(40, ActivityState::kSpinDvfsMin));
  EXPECT_GT(max_vf / min_vf, 1.25);
}

TEST(PowerModel, HyperThreadsShareTheHigherVf) {
  // Section 4.2: lowering one hyper-thread's VF has no effect unless the
  // sibling lowers too. Context 0 and 20 share core 0 of socket 0.
  const PowerModel model = XeonModel();
  std::vector<ActivityState> states(40, ActivityState::kInactive);
  states[0] = ActivityState::kWorking;       // sibling A at max VF
  states[20] = ActivityState::kSpinDvfsMin;  // sibling B requests min VF
  std::vector<VfSetting> vf(40, VfSetting::kMax);
  const double mixed = model.ComponentWatts(states, vf).package_w;

  // Same sibling B spinning at max VF for comparison: power must be equal
  // because the core stays at the higher setting.
  states[20] = ActivityState::kSpinLocal;
  const double both_max = model.ComponentWatts(states, vf).package_w;
  EXPECT_NEAR(mixed, both_max, 1e-9);
}

TEST(PowerModel, DramScalesOnlyWithWorkingContexts) {
  const PowerModel model = XeonModel();
  const std::vector<VfSetting> vf(40, VfSetting::kMax);
  const auto working = model.ComponentWatts(States(20, ActivityState::kWorking), vf);
  const auto spinning = model.ComponentWatts(States(20, ActivityState::kSpinLocal), vf);
  EXPECT_GT(working.dram_w, spinning.dram_w);
  EXPECT_NEAR(spinning.dram_w, 25.0, 0.1);  // DRAM background only
}

TEST(PowerModel, MaxPowerInPaperBallpark) {
  // Paper: 206 W max total. The additive model lands within ~25%.
  const PowerModel model = XeonModel();
  const double max_watts = model.TotalWatts(States(40, ActivityState::kWorking));
  EXPECT_GT(max_watts, 170.0);
  EXPECT_LT(max_watts, 260.0);
}

TEST(EnergySample, TppAndEpo) {
  EnergySample sample;
  sample.package_joules = 8.0;
  sample.dram_joules = 2.0;
  sample.seconds = 2.0;
  EXPECT_DOUBLE_EQ(sample.total_joules(), 10.0);
  EXPECT_DOUBLE_EQ(sample.average_watts(), 5.0);
  EXPECT_DOUBLE_EQ(sample.Tpp(1000), 100.0);
  EXPECT_DOUBLE_EQ(sample.Epo(1000), 0.01);
  // TPP = 1/EPO (section 2).
  EXPECT_NEAR(sample.Tpp(1000), 1.0 / sample.Epo(1000), 1e-9);
}

TEST(ActivityRegistryTest, IntegratesEnergyOverTime) {
  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::PaperCoreI7(), PowerParams::PaperXeon()));
  ModelMeter meter(registry);
  meter.Start();
  registry->SetState(0, ActivityState::kWorking);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  registry->SetState(0, ActivityState::kInactive);
  const EnergySample sample = meter.Stop();
  EXPECT_GT(sample.seconds, 0.02);
  EXPECT_GT(sample.total_joules(), 0.0);
  // Average power must be at least idle and include the active core.
  EXPECT_GT(sample.average_watts(), 55.0);
}

TEST(ActivityRegistryTest, ScopedActivityRestores) {
  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::PaperCoreI7(), PowerParams::PaperXeon()));
  {
    ScopedActivity scope(registry.get(), 0, ActivityState::kSpinMbar,
                         ActivityState::kWorking);
  }
  // After the scope, context 0 is kWorking: power above idle.
  ModelMeter meter(registry);
  meter.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const EnergySample sample = meter.Stop();
  EXPECT_GT(sample.average_watts(), 55.5);
}

TEST(RaplMeterTest, AvailabilityProbeDoesNotCrash) {
  const bool available = RaplMeter::Available();
  if (!available) {
    GTEST_SKIP() << "no RAPL on this host (expected in containers)";
  }
  RaplMeter meter;
  meter.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const EnergySample sample = meter.Stop();
  EXPECT_GE(sample.package_joules, 0.0);
}

TEST(MakeDefaultMeterTest, FallsBackToModel) {
  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::PaperCoreI7(), PowerParams::PaperXeon()));
  auto meter = MakeDefaultMeter(registry);
  ASSERT_NE(meter, nullptr);
  // Either backend is acceptable; it must produce a sane sample.
  meter->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const EnergySample sample = meter->Stop();
  EXPECT_GT(sample.seconds, 0.0);
}

TEST(ActivityStateNames, AllDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kActivityStateCount; ++i) {
    names.insert(ActivityStateName(static_cast<ActivityState>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kActivityStateCount));
}

}  // namespace
}  // namespace lockin
