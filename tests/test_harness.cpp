// Native measurement harness tests (short runs; host-speed independent).
#include <gtest/gtest.h>

#include <memory>

#include "src/energy/model_meter.hpp"
#include "src/locks/harness.hpp"
#include "src/platform/topology.hpp"

namespace lockin {
namespace {

NativeBenchConfig ShortConfig(const std::string& lock) {
  NativeBenchConfig config;
  config.lock_name = lock;
  config.threads = 2;
  config.cs_cycles = 200;
  config.non_cs_cycles = 100;
  config.duration_ms = 30;
  config.lock_options.spin.yield_after = 64;
  return config;
}

TEST(NativeHarness, ProducesThroughput) {
  const NativeBenchResult result = RunNativeBench(ShortConfig("MUTEXEE"));
  EXPECT_GT(result.total_acquires, 100u);
  EXPECT_GT(result.throughput_per_s, 0.0);
  EXPECT_NEAR(result.seconds, 0.03, 0.05);
  // One latency sample per acquire.
  EXPECT_EQ(result.acquire_latency_cycles.count(), result.total_acquires);
}

TEST(NativeHarness, UnknownLockThrows) {
  NativeBenchConfig config = ShortConfig("NOPE");
  EXPECT_THROW(RunNativeBench(config), std::invalid_argument);
}

TEST(NativeHarness, MultipleLocksSpreadContention) {
  NativeBenchConfig one = ShortConfig("TICKET");
  NativeBenchConfig many = ShortConfig("TICKET");
  many.locks = 8;
  many.seed = 2;
  const NativeBenchResult r1 = RunNativeBench(one);
  const NativeBenchResult r8 = RunNativeBench(many);
  EXPECT_GT(r1.total_acquires, 0u);
  EXPECT_GT(r8.total_acquires, 0u);
}

TEST(NativeHarness, MeterIntegration) {
  auto registry = std::make_shared<ActivityRegistry>(
      PowerModel(Topology::Detect(), PowerParams::PaperXeon()));
  ModelMeter meter(registry);
  const NativeBenchResult result = RunNativeBench(ShortConfig("MUTEX"), &meter);
  EXPECT_GT(result.energy.seconds, 0.0);
  EXPECT_GT(result.energy.total_joules(), 0.0);
  EXPECT_GT(result.tpp, 0.0);
}

TEST(NativeHarness, LatencyRecordingCanBeDisabled) {
  NativeBenchConfig config = ShortConfig("TTAS");
  config.record_latency = false;
  const NativeBenchResult result = RunNativeBench(config);
  EXPECT_EQ(result.acquire_latency_cycles.count(), 0u);
  EXPECT_GT(result.total_acquires, 0u);
}

// --- Dispatch tiers ----------------------------------------------------------

TEST(NativeHarness, ConcreteLocksRunOnTheStaticTier) {
  const NativeBenchResult result = RunNativeBench(ShortConfig("TAS"));
  EXPECT_TRUE(result.used_static_dispatch);
  EXPECT_GT(result.total_acquires, 0u);
}

TEST(NativeHarness, TypeErasedTierCanBeForced) {
  NativeBenchConfig config = ShortConfig("TAS");
  config.dispatch = DispatchTier::kTypeErased;
  const NativeBenchResult result = RunNativeBench(config);
  EXPECT_FALSE(result.used_static_dispatch);
  EXPECT_GT(result.total_acquires, 0u);
  // Both tiers keep the one-sample-per-acquire contract.
  EXPECT_EQ(result.acquire_latency_cycles.count(), result.total_acquires);
}

TEST(NativeHarness, AdaptiveFallsBackToTheHandleTier) {
  const NativeBenchResult result = RunNativeBench(ShortConfig("ADAPTIVE"));
  EXPECT_FALSE(result.used_static_dispatch);
  EXPECT_GT(result.total_acquires, 0u);
}

TEST(NativeHarness, StaticTierRefusesNamesWithoutConcreteType) {
  NativeBenchConfig config = ShortConfig("ADAPTIVE");
  config.dispatch = DispatchTier::kStatic;
  EXPECT_THROW(RunNativeBench(config), std::invalid_argument);
}

TEST(NativeHarness, StopCheckCadenceZeroBehavesAsOne) {
  NativeBenchConfig config = ShortConfig("TICKET");
  config.stop_check_every = 0;
  const NativeBenchResult result = RunNativeBench(config);
  EXPECT_GT(result.total_acquires, 0u);
}

}  // namespace
}  // namespace lockin
