// Whole-simulator determinism: the engine's contract is that a benchmark
// run is a repeatable event sequence, bit-for-bit. These tests run the
// heaviest workload shapes twice and require *identical* results -- not
// just close: acquire counts, executed-event counts, latency-histogram
// contents and energy totals. This is what lets the figure benches serve
// as regression baselines across the event-core rewrite.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/workload.hpp"

namespace lockin {
namespace {

// fig16's phase-change scenario on the ADAPTIVE runtime: the richest event
// mix in the repo (three inner lock models, futex sleeps/wakes/timeouts,
// epoch switching, drain-based backend handover).
PhasedWorkloadResult RunFig16Adaptive() {
  WorkloadConfig base;
  base.threads = 10;
  base.locks = 1;
  WorkloadPhase low;
  low.duration_cycles = 7'000'000;
  low.cs_cycles = 250;
  low.non_cs_cycles = 4000;
  WorkloadPhase high;
  high.duration_cycles = 7'000'000;
  high.cs_cycles = 16000;
  high.non_cs_cycles = 100;
  return RunPhasedLockWorkload("ADAPTIVE", base, {low, high, low, high});
}

TEST(SimDeterminism, Fig16AdaptiveWorkloadIsBitForBitRepeatable) {
  const PhasedWorkloadResult a = RunFig16Adaptive();
  const PhasedWorkloadResult b = RunFig16Adaptive();

  EXPECT_EQ(a.total_acquires, b.total_acquires);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.joules, b.joules);  // exact: same event order => same FP ops
  EXPECT_EQ(a.tpp, b.tpp);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t p = 0; p < a.phases.size(); ++p) {
    EXPECT_EQ(a.phases[p].acquires, b.phases[p].acquires);
    EXPECT_EQ(a.phases[p].joules, b.phases[p].joules);
    EXPECT_EQ(a.phases[p].throughput_per_s, b.phases[p].throughput_per_s);
  }
}

// A futex-heavy oversubscribed MUTEX run (the fig13 MySQL regime):
// scheduler quanta, futex timeouts, sleep misses and censored waits all in
// play. Histogram contents must match bucket-for-bucket.
TEST(SimDeterminism, OversubscribedMutexHistogramIsRepeatable) {
  WorkloadConfig config;
  config.threads = 30;  // > 2x the simulated machine's 40 contexts with SMT off
  config.locks = 4;
  config.cs_cycles = 3000;
  config.non_cs_cycles = 1000;
  config.duration_cycles = 5'000'000;
  config.seed = 9;

  const WorkloadResult a = RunLockWorkload("MUTEX", config);
  const WorkloadResult b = RunLockWorkload("MUTEX", config);

  EXPECT_EQ(a.total_acquires, b.total_acquires);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.acquire_latency_cycles.count(), b.acquire_latency_cycles.count());
  EXPECT_EQ(a.acquire_latency_cycles.min(), b.acquire_latency_cycles.min());
  EXPECT_EQ(a.acquire_latency_cycles.max(), b.acquire_latency_cycles.max());
  for (const double q : {0.5, 0.95, 0.99, 0.999, 0.9999}) {
    EXPECT_EQ(a.acquire_latency_cycles.Percentile(q), b.acquire_latency_cycles.Percentile(q));
  }
  EXPECT_EQ(a.package_joules, b.package_joules);
  EXPECT_EQ(a.dram_joules, b.dram_joules);
  EXPECT_EQ(a.kernel_time_share, b.kernel_time_share);
  EXPECT_EQ(a.futex_stats.sleep_calls, b.futex_stats.sleep_calls);
  EXPECT_EQ(a.futex_stats.timeouts, b.futex_stats.timeouts);
  EXPECT_EQ(a.lock_stats.resleeps, b.lock_stats.resleeps);
}

}  // namespace
}  // namespace lockin
