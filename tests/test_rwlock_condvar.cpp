// Reader-writer lock and condition-variable tests.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/locks/condvar.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/rwlock.hpp"

namespace lockin {
namespace {

TEST(RwLock, WriterExcludesWriter) {
  RwLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  EXPECT_TRUE(lock.WriterHeld());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RwLock, ReadersShare) {
  RwLock lock;
  lock.lock_shared();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_EQ(lock.ActiveReaders(), 2u);
  lock.unlock_shared();
  lock.unlock_shared();
  EXPECT_EQ(lock.ActiveReaders(), 0u);
}

TEST(RwLock, WriterExcludesReaders) {
  RwLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
}

TEST(RwLock, ReaderExcludesWriter) {
  RwLock lock;
  lock.lock_shared();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RwLock, ConcurrentReadersAndWritersKeepInvariant) {
  RwLock lock;
  long long value = 0;
  std::atomic<bool> torn_read{false};
  std::vector<std::thread> threads;
  // Writers increment twice (making the parity always even at rest);
  // readers must never observe odd parity.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        value = value + 1;
        value = value + 1;
        lock.unlock();
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        SharedGuard guard(lock);
        if (value % 2 != 0) {
          torn_read.store(true);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(torn_read.load());
  EXPECT_EQ(value, 8000);
}

TEST(RwLock, TryLockSharedFailsWhileWriterWaits) {
  // Writer preference: once a writer queues, new readers back off.
  RwLock lock;
  lock.lock_shared();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    lock.lock();
    writer_done.store(true);
    lock.unlock();
  });
  // Give the writer time to register as waiting, then release the read.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(writer_done.load());
  lock.unlock_shared();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(CondVar, SignalWakesWaiter) {
  FutexLock lock;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    lock.lock();
    while (!ready) {
      cv.Wait(lock);
    }
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lock.lock();
  ready = true;
  lock.unlock();
  cv.Signal();
  waiter.join();
  SUCCEED();
}

TEST(CondVar, BroadcastWakesAll) {
  MutexeeLock lock;
  CondVar cv;
  int ready = 0;
  std::atomic<int> released{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      lock.lock();
      while (ready == 0) {
        cv.Wait(lock);
      }
      lock.unlock();
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.lock();
  ready = 1;
  lock.unlock();
  cv.Broadcast();
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(released.load(), kWaiters);
}

TEST(CondVar, TimedWaitExpires) {
  FutexLock lock;
  CondVar cv;
  lock.lock();
  const bool signalled = cv.WaitFor(lock, 3'000'000);  // 3 ms, nobody signals
  lock.unlock();
  EXPECT_FALSE(signalled);
}

TEST(CondVar, NoLostWakeupStress) {
  // Producer/consumer ping-pong: a lost wake-up would deadlock (the 300 s
  // ctest timeout would catch it; in practice this finishes in ms).
  FutexLock lock;
  CondVar cv;
  int items = 0;
  long long consumed = 0;
  constexpr int kRounds = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kRounds; ++i) {
      lock.lock();
      ++items;
      lock.unlock();
      cv.Signal();
    }
  });
  std::thread consumer([&] {
    while (consumed < kRounds) {
      lock.lock();
      while (items == 0 && consumed + items < kRounds) {
        if (!cv.WaitFor(lock, 50'000'000)) {
          break;  // periodic timeout guards against missed edge cases
        }
      }
      consumed += items;
      items = 0;
      lock.unlock();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed, kRounds);
}

}  // namespace
}  // namespace lockin
