// Simulated-lock tests: ownership token invariants (parameterized over all
// algorithms) and the paper's qualitative orderings that the figure benches
// rely on.
#include <gtest/gtest.h>

#include "src/sim/workload.hpp"

namespace lockin {
namespace {

// --- Ownership invariant, per algorithm -------------------------------------

class SimLockParamTest : public ::testing::TestWithParam<std::string> {};

// Drives one simulated lock with N threads directly (no workload driver)
// and checks that ownership is exclusive and every acquire completes with a
// matching release.
TEST_P(SimLockParamTest, OwnershipIsExclusive) {
  SimEngine engine;
  SimMachine machine(&engine, Topology::PaperXeon(), PowerParams::PaperXeon(),
                     SimParams::PaperXeon());
  auto lock = MakeSimLock(GetParam(), &machine);
  ASSERT_NE(lock, nullptr);

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  int inside = 0;
  bool violation = false;
  int completed = 0;

  std::function<void(int, int)> loop = [&](int tid, int rounds) {
    if (rounds == 0) {
      return;
    }
    lock->Acquire(tid, [&, tid, rounds] {
      if (++inside != 1) {
        violation = true;
      }
      machine.RunFor(tid, 500, ActivityState::kCritical, [&, tid, rounds] {
        --inside;
        ++completed;
        lock->Release(tid, [&, tid, rounds] {
          machine.RunFor(tid, 200, ActivityState::kWorking,
                         [&, tid, rounds] { loop(tid, rounds - 1); });
        });
      });
    });
  };

  for (int t = 0; t < kThreads; ++t) {
    machine.AddThread();
  }
  for (int t = 0; t < kThreads; ++t) {
    machine.Start(t);
    loop(t, kRounds);
  }
  engine.RunAll();

  EXPECT_FALSE(violation);
  EXPECT_EQ(completed, kThreads * kRounds);
  EXPECT_EQ(lock->stats().acquires, static_cast<std::uint64_t>(kThreads * kRounds));
}

TEST_P(SimLockParamTest, WorkloadConservesAcquires) {
  WorkloadConfig config;
  config.threads = 6;
  config.locks = 2;
  config.cs_cycles = 800;
  config.non_cs_cycles = 400;
  config.duration_cycles = 5'000'000;
  const WorkloadResult result = RunLockWorkload(GetParam(), config);
  EXPECT_GT(result.total_acquires, 0u);
  // Lock-side acquires may exceed driver-side completions by the in-flight
  // tail at cutoff, but never by more than the thread count.
  EXPECT_GE(result.lock_stats.acquires, result.total_acquires);
  EXPECT_LE(result.lock_stats.acquires, result.total_acquires + 6);
  // Handover kinds partition acquires.
  EXPECT_EQ(result.lock_stats.acquires,
            result.lock_stats.spin_handovers + result.lock_stats.futex_handovers +
                result.lock_stats.timeout_handovers);
}

INSTANTIATE_TEST_SUITE_P(AllSimLocks, SimLockParamTest,
                         ::testing::Values("MUTEX", "TAS", "TTAS", "TICKET", "MCS", "CLH",
                                           "TAS-BO", "COHORT", "MUTEXEE"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Paper orderings ---------------------------------------------------------

WorkloadResult RunSweep(const std::string& lock, int threads, std::uint64_t cs,
                   std::uint64_t non_cs = 100, std::uint64_t duration = 28'000'000) {
  WorkloadConfig config;
  config.threads = threads;
  config.cs_cycles = cs;
  config.non_cs_cycles = non_cs;
  config.duration_cycles = duration;
  return RunLockWorkload(lock, config);
}

TEST(SimLockOrdering, SingleThreadMatchesTable2) {
  // Table 2 of the paper (throughput in Macq/s, cs = 100 cycles):
  //   MUTEX 11.88, TAS 16.88, TTAS 16.98, TICKET 16.97, MCS 12.04,
  //   MUTEXEE 13.32. Simple locks beat the complex ones; tolerances 10%.
  const double mutex = RunSweep("MUTEX", 1, 100, 0).ThroughputM();
  const double tas = RunSweep("TAS", 1, 100, 0).ThroughputM();
  const double ticket = RunSweep("TICKET", 1, 100, 0).ThroughputM();
  const double mcs = RunSweep("MCS", 1, 100, 0).ThroughputM();
  const double mutexee = RunSweep("MUTEXEE", 1, 100, 0).ThroughputM();
  EXPECT_NEAR(mutex, 11.88, 1.2);
  EXPECT_NEAR(tas, 16.88, 1.7);
  EXPECT_NEAR(ticket, 16.97, 1.7);
  EXPECT_NEAR(mcs, 12.04, 1.2);
  EXPECT_NEAR(mutexee, 13.32, 1.4);
  // Uncontested: throughput and TPP trends are identical (section 5.2).
  EXPECT_GT(tas, mutexee);
  EXPECT_GT(mutexee, mutex);
}

TEST(SimLockOrdering, ContendedMcsBeatsTicketBeatsTas) {
  // Figure 11 at full-but-not-over subscription: queue locks avoid the
  // release burst; TAS suffers the atomic storm.
  const double mcs = RunSweep("MCS", 20, 1000).throughput_per_s;
  const double ticket = RunSweep("TICKET", 20, 1000).throughput_per_s;
  const double tas = RunSweep("TAS", 20, 1000).throughput_per_s;
  EXPECT_GE(mcs, ticket * 0.99);
  EXPECT_GT(ticket, tas * 1.05);
}

TEST(SimLockOrdering, MutexLosesThroughputUnderContention) {
  const double mutex = RunSweep("MUTEX", 20, 1000).throughput_per_s;
  const double ticket = RunSweep("TICKET", 20, 1000).throughput_per_s;
  EXPECT_LT(mutex, ticket * 0.85);
}

TEST(SimLockOrdering, MutexeeBeatsMutexInThroughputAndTpp) {
  // The paper's core result (Figure 8 / section 5.1 table). The margin is
  // 1.2x: since the futex model gained glibc's pre-sleep exchange (a waiter
  // whose spin expired right after a release acquires in user space instead
  // of sleeping), simulated MUTEX no longer loses those handovers and sits
  // ~23% behind MUTEXEE here -- in line with the paper's average 28% gap
  // across configurations.
  const WorkloadResult mutex = RunSweep("MUTEX", 20, 2000);
  const WorkloadResult mutexee = RunSweep("MUTEXEE", 20, 2000);
  EXPECT_GT(mutexee.throughput_per_s, mutex.throughput_per_s * 1.2);
  EXPECT_GT(mutexee.tpp, mutex.tpp * 1.2);
  EXPECT_LT(mutexee.average_watts, mutex.average_watts * 1.05);
}

TEST(SimLockOrdering, MutexeePaysTailLatencyForEfficiency) {
  // Unfairness: MUTEXEE parks sleepers for essentially the whole run (the
  // paper's 99.99th percentiles reach hundreds of Mcycles in Figure 9).
  const WorkloadResult mutex = RunSweep("MUTEX", 20, 1000);
  const WorkloadResult mutexee = RunSweep("MUTEXEE", 20, 1000);
  EXPECT_GT(mutexee.acquire_latency_cycles.P9999(), 1'000'000u);
  // ...while its p95 is far lower (fast user-space handovers; Figure 9
  // shows MUTEXEE's much lower 95th percentile for short critical sections).
  EXPECT_LT(mutexee.acquire_latency_cycles.P95(), mutex.acquire_latency_cycles.P95());
}

TEST(SimLockOrdering, FairLocksCollapseWhenOversubscribed) {
  // Figure 11 beyond 40 threads: "TICKET and MCS, the two fair locks,
  // suffer the most."
  const double ticket40 = RunSweep("TICKET", 40, 1000).throughput_per_s;
  const double ticket60 = RunSweep("TICKET", 60, 1000).throughput_per_s;
  EXPECT_LT(ticket60, ticket40 * 0.2);
  const double mutexee60 = RunSweep("MUTEXEE", 60, 1000).throughput_per_s;
  EXPECT_GT(mutexee60, ticket60 * 5);
}

TEST(SimLockOrdering, MutexeeKeepsHandoversFutexFree) {
  const WorkloadResult result = RunSweep("MUTEXEE", 20, 1000);
  const double futex_ratio =
      static_cast<double>(result.lock_stats.futex_handovers) /
      static_cast<double>(result.lock_stats.acquires);
  EXPECT_LT(futex_ratio, 0.05);
  // MUTEX, in contrast, churns futex calls.
  const WorkloadResult mutex = RunSweep("MUTEX", 20, 1000);
  EXPECT_GT(mutex.futex_stats.wake_calls, result.futex_stats.wake_calls * 10);
}

TEST(SimLockOrdering, MutexeePowerBelowSpinlocks) {
  // Sleeping long saves power (section 4.4): MUTEXEE's waiters sleep while
  // a spinlock keeps every context hot.
  const WorkloadResult mutexee = RunSweep("MUTEXEE", 30, 1000);
  const WorkloadResult ticket = RunSweep("TICKET", 30, 1000);
  EXPECT_LT(mutexee.average_watts, ticket.average_watts * 0.75);
}

TEST(SimLockOrdering, TimeoutBoundsTailLatency) {
  // Figure 10: short timeouts trade throughput for bounded tails.
  WorkloadEnv env;
  env.lock_options.mutexee.sleep_timeout_ns = 100'000;  // 0.1 ms
  WorkloadConfig config;
  config.threads = 20;
  config.cs_cycles = 2000;
  config.non_cs_cycles = 100;
  config.duration_cycles = 28'000'000;
  const WorkloadResult with_timeout = RunLockWorkload("MUTEXEE-TO", config, env);
  const WorkloadResult without = RunLockWorkload("MUTEXEE", config, env);
  EXPECT_LT(with_timeout.acquire_latency_cycles.max(),
            without.acquire_latency_cycles.max());
  EXPECT_LT(with_timeout.throughput_per_s, without.throughput_per_s);
}

TEST(SimLockOrdering, BackoffRescuesTas) {
  // Anderson '90: exponential backoff drains the TAS atomic storm.
  const double tas = RunSweep("TAS", 30, 1000).throughput_per_s;
  const double tas_bo = RunSweep("TAS-BO", 30, 1000).throughput_per_s;
  EXPECT_GT(tas_bo, tas * 1.1);
}

TEST(SimLockOrdering, CohortBeatsTicketUnderContention) {
  // Dice et al. '12: socket-local handovers are cheaper than the ticket
  // lock's cross-socket invalidation bursts.
  const double ticket = RunSweep("TICKET", 30, 1000).throughput_per_s;
  const double cohort = RunSweep("COHORT", 30, 1000).throughput_per_s;
  EXPECT_GT(cohort, ticket);
}

TEST(SimLockOrdering, GraceWindowAblation) {
  // Disabling MUTEXEE's unlock grace window reintroduces futex wakes (the
  // paper's sensitivity analysis: power back to MUTEX-like levels).
  WorkloadEnv no_grace;
  no_grace.lock_options.mutexee.enable_unlock_grace = false;
  WorkloadConfig config;
  config.threads = 20;
  config.cs_cycles = 1000;
  config.non_cs_cycles = 100;
  config.duration_cycles = 28'000'000;
  const WorkloadResult without_grace = RunLockWorkload("MUTEXEE", config, no_grace);
  const WorkloadResult with_grace = RunLockWorkload("MUTEXEE", config);
  EXPECT_GE(without_grace.futex_stats.wake_calls, with_grace.futex_stats.wake_calls);
}

}  // namespace
}  // namespace lockin
