// FailSafe tests: deterministic failpoints, timed/cancellable acquisition,
// WAL crash recovery (kill-at-every-failpoint sweep), per-op deadlines with
// shed accounting, the stall watchdog, and the chaos sweep proving every
// scenario's counter invariants survive the default fault profile.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/locks/futex_lock.hpp"
#include "src/locks/lock_api.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/spinlocks.hpp"
#include "src/obs/trace.hpp"
#include "src/platform/failpoint.hpp"
#include "src/systems/wal_log.hpp"
#include "src/systems/walstore.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

// --- Failpoint registry ------------------------------------------------------

TEST(Failpoints, NamesRoundTrip) {
  for (std::size_t i = 0; i < kFailpointCount; ++i) {
    const FailpointId id = static_cast<FailpointId>(i);
    EXPECT_EQ(FailpointFromName(FailpointName(id)), id);
  }
  EXPECT_EQ(FailpointFromName("no/such-site"), FailpointId::kCount);
}

TEST(Failpoints, DisarmedSitesNeverFire) {
  FailpointsDisarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FailpointFired(FailpointId::kFutexWait));
  }
}

TEST(Failpoints, AlwaysEveryOnceSemantics) {
  ScopedFailpoints arm("futex/wait=always,cache/evict=every3,wal/append=once@2", 1);
  for (int hit = 1; hit <= 6; ++hit) {
    EXPECT_TRUE(FailpointFired(FailpointId::kFutexWait)) << hit;
    EXPECT_EQ(FailpointFired(FailpointId::kCacheEvict), hit % 3 == 0) << hit;
    EXPECT_EQ(FailpointFired(FailpointId::kWalAppend), hit == 2) << hit;
  }
}

TEST(Failpoints, OffRuleAndUnarmedSitesStayQuiet) {
  ScopedFailpoints arm("futex/wait=off", 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FailpointFired(FailpointId::kFutexWait));
    EXPECT_FALSE(FailpointFired(FailpointId::kFutexWake));
  }
}

TEST(Failpoints, DelayRulesStallButDoNotFail) {
  ScopedFailpoints arm("futex/wake=always~1000", 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(FailpointFired(FailpointId::kFutexWake));
  }
  const std::vector<FailpointStatus> snapshot = FailpointsSnapshot();
  const FailpointStatus& wake =
      snapshot[static_cast<std::size_t>(FailpointId::kFutexWake)];
  EXPECT_EQ(wake.hits, 5u);
  EXPECT_EQ(wake.fires, 5u);
  EXPECT_EQ(wake.delays, 5u);
}

std::vector<bool> ProbabilisticPattern(std::uint64_t seed) {
  FailpointsArm("futex/wait=p0.3", seed);
  std::vector<bool> pattern;
  pattern.reserve(200);
  for (int i = 0; i < 200; ++i) {
    pattern.push_back(FailpointFired(FailpointId::kFutexWait));
  }
  FailpointsDisarm();
  return pattern;
}

TEST(Failpoints, ProbabilisticTriggersAreSeedDeterministic) {
  // Whether hit #k fires is a pure function of (seed, k): the same seed
  // replays exactly; a different seed gives a different pattern.
  const std::vector<bool> a = ProbabilisticPattern(42);
  EXPECT_EQ(a, ProbabilisticPattern(42));
  EXPECT_NE(a, ProbabilisticPattern(43));
  int fires = 0;
  for (const bool fired : a) {
    fires += fired ? 1 : 0;
  }
  EXPECT_GT(fires, 20);  // ~60 expected at p=0.3 over 200 hits
  EXPECT_LT(fires, 120);
}

TEST(Failpoints, MalformedSpecsThrowAndEnumerateSites) {
  EXPECT_THROW(FailpointsArm("bogus/site=always"), std::invalid_argument);
  EXPECT_THROW(FailpointsArm("futex/wait"), std::invalid_argument);
  EXPECT_THROW(FailpointsArm("futex/wait=notarule"), std::invalid_argument);
  EXPECT_THROW(FailpointsArm("=always"), std::invalid_argument);
  try {
    FailpointsArm("bogus/site=always");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    // The unknown-site message lists the valid sites.
    EXPECT_NE(std::string(error.what()).find("futex/wait"), std::string::npos)
        << error.what();
  }
  // A failed arm must not leave sites half-armed.
  EXPECT_FALSE(FailpointFired(FailpointId::kFutexWait));
}

TEST(Failpoints, ScopedArmingDisarmsOnExit) {
  {
    ScopedFailpoints arm("futex/wait=always", 1);
    EXPECT_TRUE(FailpointFired(FailpointId::kFutexWait));
  }
  EXPECT_FALSE(FailpointFired(FailpointId::kFutexWait));
}

TEST(Failpoints, ReportNamesFiringSites) {
  ScopedFailpoints arm("futex/wait=always", 1);
  (void)FailpointFired(FailpointId::kFutexWait);
  const std::string report = FailpointsReport();
  EXPECT_NE(report.find("futex/wait"), std::string::npos) << report;
}

TEST(Failpoints, DefaultChaosSpecParsesAndExcludesWalCrashSites) {
  const std::string spec = DefaultChaosSpec();
  ScopedFailpoints arm(spec, 1);  // throws if the profile ever goes stale
  EXPECT_EQ(spec.find("wal/append"), std::string::npos);
  EXPECT_EQ(spec.find("wal/flush"), std::string::npos);
}

TEST(Failpoints, NewTraceEventKindsHaveNames) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kAcquireTimeout), "acquire_timeout");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kOpShed), "op_shed");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kWatchdogStall), "watchdog_stall");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kFailpointFire), "failpoint_fire");
}

// --- Timed acquisition -------------------------------------------------------

// Holds `lock` on a helper thread until `release` is set; `held` confirms
// the acquisition happened before the test proceeds.
template <typename L>
class ScopedHolder {
 public:
  explicit ScopedHolder(L& lock) {
    thread_ = std::thread([this, &lock] {
      lock.lock();
      held_.store(true, std::memory_order_release);
      while (!release_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      lock.unlock();
    });
    while (!held_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ~ScopedHolder() { Release(); }
  void Release() {
    release_.store(true, std::memory_order_release);
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  std::thread thread_;
  std::atomic<bool> held_{false};
  std::atomic<bool> release_{false};
};

template <typename L>
void ExpectTimedLockContract(L& lock) {
  // Free: a timed acquire succeeds immediately.
  ASSERT_TRUE(lock.try_lock_for_ns(1'000'000));
  lock.unlock();
  // Held elsewhere: a short timed acquire gives up and returns false.
  {
    ScopedHolder<L> holder(lock);
    EXPECT_FALSE(lock.try_lock_for_ns(2'000'000));
  }
  // Released: acquirable again (the timeout left no stale waiter state).
  ASSERT_TRUE(lock.try_lock_for_ns(1'000'000));
  lock.unlock();
}

TEST(TimedLocks, FutexLockTimedContract) {
  FutexLock lock;
  ExpectTimedLockContract(lock);
}

TEST(TimedLocks, MutexeeTimedContract) {
  MutexeeLock lock;
  ExpectTimedLockContract(lock);
}

TEST(TimedLocks, TimedAdapterGivesSpinlocksTimeouts) {
  TimedLock<TasLock> lock;
  ExpectTimedLockContract(lock);
}

TEST(TimedLocks, EveryRegisteredLockHonorsAcquireFor) {
  for (const std::string& name : RegisteredLockNames()) {
    std::unique_ptr<LockHandle> handle = MakeLockOrThrow(name);
    ASSERT_TRUE(handle->AcquireFor(5'000'000)) << name;
    handle->unlock();
    {
      ScopedHolder<LockHandle> holder(*handle);
      EXPECT_FALSE(handle->AcquireFor(2'000'000)) << name;
    }
    ASSERT_TRUE(handle->AcquireFor(5'000'000)) << name;
    handle->unlock();
  }
}

TEST(TimedLocks, ZeroTimeoutActsAsTryLock) {
  FutexLock lock;
  ScopedHolder<FutexLock> holder(lock);
  EXPECT_FALSE(lock.try_lock_for_ns(0));
}

// --- WalLog crash consistency ------------------------------------------------

std::string TempWalPath(const char* tag) {
  return std::string("failsafe_") + tag + ".wal";
}

TEST(WalLog, Crc32KnownVectors) {
  EXPECT_EQ(WalLog::Crc32(""), 0u);
  EXPECT_EQ(WalLog::Crc32("123456789"), 0xCBF43926u);  // IEEE check value
}

TEST(WalLog, AppendRecoverRoundTrip) {
  const std::string path = TempWalPath("roundtrip");
  std::remove(path.c_str());
  {
    WalLog log(path);
    log.Append("first");
    log.Append("");
    log.Append("third record with spaces");
  }
  WalLog reopened(path);
  std::vector<std::string> records;
  const WalLog::RecoverResult result = reopened.Recover(&records);
  EXPECT_EQ(result.valid_records, 3u);
  EXPECT_FALSE(result.truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], "third record with spaces");
  std::remove(path.c_str());
}

TEST(WalLog, RecoveryTruncatesGarbageTail) {
  const std::string path = TempWalPath("garbage");
  std::remove(path.c_str());
  {
    WalLog log(path);
    log.Append("keep-me");
  }
  {
    // Simulate a torn write by appending raw garbage to the file.
    std::FILE* raw = std::fopen(path.c_str(), "ab");
    ASSERT_NE(raw, nullptr);
    const char garbage[] = "\xff\xff\xff\xff partial nonsense";
    std::fwrite(garbage, 1, sizeof(garbage), raw);
    std::fclose(raw);
  }
  WalLog reopened(path);
  std::vector<std::string> records;
  const WalLog::RecoverResult result = reopened.Recover(&records);
  EXPECT_EQ(result.valid_records, 1u);
  EXPECT_TRUE(result.truncated);
  EXPECT_GT(result.dropped_bytes, 0u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "keep-me");
  // Recovery physically truncated: a second recover sees a clean log.
  WalLog again(path);
  const WalLog::RecoverResult second = again.Recover(nullptr);
  EXPECT_EQ(second.valid_records, 1u);
  EXPECT_FALSE(second.truncated);
  std::remove(path.c_str());
}

TEST(WalLog, AppendFailpointTearsTheTail) {
  const std::string path = TempWalPath("torn");
  std::remove(path.c_str());
  {
    WalLog log(path);
    log.Append("one");
    log.Append("two");
    ScopedFailpoints arm("wal/append=once", 3);
    EXPECT_THROW(log.Append("never-lands"), WalCrashInjected);
  }
  WalLog reopened(path);
  std::vector<std::string> records;
  const WalLog::RecoverResult result = reopened.Recover(&records);
  EXPECT_EQ(result.valid_records, 2u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "two");
  std::remove(path.c_str());
}

TEST(WalLog, FlushFailpointCrashesAfterDurableWrite) {
  const std::string path = TempWalPath("flush");
  std::remove(path.c_str());
  {
    WalLog log(path);
    ScopedFailpoints arm("wal/flush=once", 3);
    EXPECT_THROW(log.Append("durable-despite-crash"), WalCrashInjected);
  }
  // The crash struck after the record fully hit the file: it must survive.
  WalLog reopened(path);
  std::vector<std::string> records;
  const WalLog::RecoverResult result = reopened.Recover(&records);
  EXPECT_EQ(result.valid_records, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "durable-despite-crash");
  std::remove(path.c_str());
}

// --- WalStore kill-at-every-failpoint sweep ----------------------------------

LockFactory MutexFactory() {
  return [] { return MakeLockOrThrow("MUTEX"); };
}

// Kill the store at every possible append (torn write) and after every
// possible append (post-write crash); recovery must always produce exactly
// the writes that were confirmed -- plus at most the one in-flight record
// for the post-write crash, whose Put never returned.
TEST(WalStoreRecovery, KillAtEveryFailpointSweep) {
  const std::string path = TempWalPath("sweep");
  constexpr int kWrites = 8;
  for (const char* site : {"wal/append", "wal/flush"}) {
    for (int kill_at = 1; kill_at <= kWrites; ++kill_at) {
      std::remove(path.c_str());
      std::uint64_t confirmed = 0;
      {
        ScopedFailpoints arm(std::string(site) + "=once@" + std::to_string(kill_at),
                             static_cast<std::uint64_t>(kill_at));
        try {
          WalStore store(MutexFactory(), path);
          for (int i = 0; i < kWrites; ++i) {
            store.Put(static_cast<std::uint64_t>(i), "value-" + std::to_string(i));
            ++confirmed;
          }
        } catch (const WalCrashInjected&) {
          // Simulated kill: the store is dead, recovery happens on reopen.
        }
      }
      EXPECT_EQ(confirmed, static_cast<std::uint64_t>(kill_at - 1)) << site;

      WalStore reopened(MutexFactory(), path);
      const WalStore::RecoveryInfo& info = reopened.recovery_info();
      if (std::string(site) == "wal/append") {
        // Torn write: the in-flight record must be dropped.
        EXPECT_EQ(info.records, confirmed) << site << "@" << kill_at;
      } else {
        // Post-write crash: the record is durable even though Put threw.
        EXPECT_EQ(info.records, confirmed + 1) << site << "@" << kill_at;
      }
      // Every confirmed write is readable after recovery.
      for (std::uint64_t key = 0; key < confirmed; ++key) {
        std::string value;
        EXPECT_TRUE(reopened.Get(key, &value)) << site << "@" << kill_at << " key " << key;
        EXPECT_EQ(value, "value-" + std::to_string(key));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(WalStoreRecovery, DurableStoreReplaysPutsAndDeletes) {
  const std::string path = TempWalPath("replay");
  std::remove(path.c_str());
  {
    WalStore store(MutexFactory(), path);
    store.Put(1, "one");
    store.Put(2, "two");
    store.Delete(1);
    store.Put(3, "three three");  // value with a space survives the format
  }
  WalStore reopened(MutexFactory(), path);
  EXPECT_EQ(reopened.recovery_info().records, 4u);
  std::string value;
  EXPECT_FALSE(reopened.Get(1, nullptr));
  EXPECT_TRUE(reopened.Get(2, &value));
  EXPECT_EQ(value, "two");
  EXPECT_TRUE(reopened.Get(3, &value));
  EXPECT_EQ(value, "three three");
  EXPECT_EQ(reopened.MemtableSize(), 2u);
  std::remove(path.c_str());
}

// --- Per-op deadlines & shed accounting --------------------------------------

// Every op acquires one shared lock and holds it for ~2ms: under a 100us
// deadline, whoever is not holding the lock sheds.
class SlowHolderWorkload : public ScenarioWorkload {
 public:
  void Setup(const ScenarioConfig& config) override { lock_ = config.MakeLockFactory()(); }
  void Op(ThreadContext&) override {
    lock_->lock();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    lock_->unlock();
  }

 private:
  std::unique_ptr<LockHandle> lock_;
};

TEST(OpDeadlines, ContendedOpsShedAndAccountingBalances) {
  SlowHolderWorkload workload;
  ScenarioConfig config;
  config.lock_name = "MUTEX";
  config.threads = 4;
  config.ops_per_thread = 8;
  config.op_deadline_ns = 100'000;  // 100us vs a 2ms hold
  config.op_retries = 1;
  config.meter = MeterChoice::kOff;
  const ScenarioResult result = RunScenario(workload, config, "test/shed");
  // Fixed-op mode: every scheduled op either completed or was shed.
  EXPECT_EQ(result.total_ops + result.ops_shed,
            static_cast<std::uint64_t>(config.threads) * config.ops_per_thread);
  EXPECT_GT(result.ops_shed, 0u);
  EXPECT_GT(result.total_ops, 0u);  // the holder itself always completes
  // Latency histogram records completed ops only.
  EXPECT_EQ(result.op_latency_cycles.count(), result.total_ops);
}

TEST(OpDeadlines, UncontendedRunsShedNothing) {
  SlowHolderWorkload workload;
  ScenarioConfig config;
  config.lock_name = "MUTEX";
  config.threads = 1;
  config.ops_per_thread = 4;
  config.op_deadline_ns = 50'000'000;
  config.meter = MeterChoice::kOff;
  const ScenarioResult result = RunScenario(workload, config, "test/no-shed");
  EXPECT_EQ(result.ops_shed, 0u);
  EXPECT_EQ(result.shed_retries, 0u);
  EXPECT_EQ(result.total_ops, 4u);
}

TEST(OpDeadlines, ManualArmConsumesOnFirstAcquire) {
  std::unique_ptr<LockHandle> handle = WrapDeadline(MakeLockOrThrow("MUTEX"));
  // Unarmed: behaves like a plain lock.
  handle->lock();
  handle->unlock();
  // Armed but free: acquires within the deadline.
  ArmOpDeadline(50'000'000);
  handle->lock();
  handle->unlock();
  // Armed and held: throws OpShedError instead of blocking forever.
  ScopedHolder<LockHandle> holder(*handle);
  ArmOpDeadline(1'000'000);
  EXPECT_THROW(handle->lock(), OpShedError);
  holder.Release();
  // The deadline was consumed by the failed acquire: next lock() blocks
  // normally (and succeeds, since the holder released).
  handle->lock();
  handle->unlock();
  DisarmOpDeadline();
}

// --- Stall watchdog ----------------------------------------------------------

// Thread 0 wedges (sleeps inside its first op) long enough for the
// watchdog to notice; everyone else finishes quickly.
class WedgeOnceWorkload : public ScenarioWorkload {
 public:
  explicit WedgeOnceWorkload(int wedge_ms) : wedge_ms_(wedge_ms) {}
  void Setup(const ScenarioConfig&) override {}
  void Op(ThreadContext& ctx) override {
    if (ctx.thread_index == 0 && !wedged_.exchange(true, std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wedge_ms_));
    }
  }

 private:
  int wedge_ms_;
  std::atomic<bool> wedged_{false};
};

TEST(Watchdog, CountsStallsWithoutAborting) {
  WedgeOnceWorkload workload(/*wedge_ms=*/400);
  ScenarioConfig config;
  config.threads = 2;
  config.ops_per_thread = 3;
  config.watchdog_ms = 50;
  config.watchdog_abort = false;
  config.meter = MeterChoice::kOff;
  bool on_stall_ran = false;
  config.on_stall = [&on_stall_ran] { on_stall_ran = true; };
  const ScenarioResult result = RunScenario(workload, config, "test/wedge");
  EXPECT_GE(result.watchdog_stalls, 1u);
  EXPECT_TRUE(on_stall_ran);
  // The wedge cleared, so the run still completed every op.
  EXPECT_EQ(result.total_ops, 6u);
}

TEST(Watchdog, QuickRunsSeeNoStalls) {
  WedgeOnceWorkload workload(/*wedge_ms=*/0);
  ScenarioConfig config;
  config.threads = 2;
  config.ops_per_thread = 100;
  config.watchdog_ms = 2000;
  config.watchdog_abort = false;
  config.meter = MeterChoice::kOff;
  const ScenarioResult result = RunScenario(workload, config, "test/quick");
  EXPECT_EQ(result.watchdog_stalls, 0u);
}

TEST(WatchdogDeathTest, AbortsWedgedRunWithExitCode3) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        WedgeOnceWorkload workload(/*wedge_ms=*/30000);
        ScenarioConfig config;
        config.threads = 2;
        config.ops_per_thread = 2;
        config.watchdog_ms = 50;
        config.watchdog_abort = true;
        config.meter = MeterChoice::kOff;
        RunScenario(workload, config, "test/wedge-abort");
      },
      ::testing::ExitedWithCode(3), "watchdog");
}

// --- Error-message enumeration -----------------------------------------------

TEST(ErrorMessages, UnknownLockEnumeratesAvailableNames) {
  try {
    MakeLockOrThrow("NOT-A-LOCK");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("NOT-A-LOCK"), std::string::npos) << what;
    for (const std::string& name : RegisteredLockNames()) {
      EXPECT_NE(what.find(name), std::string::npos) << what << " missing " << name;
    }
  }
}

TEST(ErrorMessages, UnknownScenarioEnumeratesAvailableNames) {
  try {
    MakeScenarioOrThrow("no/such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no/such-scenario"), std::string::npos) << what;
    EXPECT_NE(what.find("kvstore/WT"), std::string::npos) << what;
    EXPECT_NE(what.find("walstore/append"), std::string::npos) << what;
  }
}

// --- Chaos sweep: invariants survive the default fault profile ---------------

// Every registered scenario runs under MUTEX with DefaultChaosSpec armed
// (spurious futex wakes, wake-all herds, delay injection) and must still
// satisfy the same per-system counter invariants tests/test_scenarios.cpp
// checks for clean runs: the faults perturb timing and wake-ups, never
// linearizable state.
TEST(ChaosSweep, EveryScenarioSurvivesDefaultChaosUnderMutex) {
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    ScenarioConfig config;
    config.lock_name = "MUTEX";
    config.threads = 4;
    config.ops_per_thread = 1500;
    config.key_space = 512;
    config.yield_after = 64;
    config.failpoints = DefaultChaosSpec();
    config.meter = MeterChoice::kOff;
    const ScenarioResult r = RunScenarioByName(info.name, config);
    EXPECT_EQ(r.total_ops, 6000u) << info.name;

    if (info.system == "KvStore") {
      EXPECT_EQ(r.MetricOr("size"),
                r.MetricOr("preloaded") + r.MetricOr("puts_new") - r.MetricOr("erases_hit"))
          << info.name;
      EXPECT_EQ(r.MetricOr("invariants_ok"), 1.0) << info.name;
      EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << info.name;
    } else if (info.system == "MemCache") {
      EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << info.name;
      EXPECT_EQ(r.MetricOr("evictions"), 0.0) << info.name;
      EXPECT_LE(r.MetricOr("size"), 513.0) << info.name;
      EXPECT_GT(r.MetricOr("size"), 0.0) << info.name;
    } else if (info.system == "NosqlDb") {
      EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << info.name;
      EXPECT_LE(r.MetricOr("removes_hit"), r.MetricOr("removes")) << info.name;
      EXPECT_LE(r.MetricOr("count"),
                r.MetricOr("preloaded") + r.MetricOr("sets") + r.MetricOr("appends"))
          << info.name;
      EXPECT_GE(r.MetricOr("count"), r.MetricOr("preloaded") - r.MetricOr("removes_hit"))
          << info.name;
    } else if (info.system == "GraphStore") {
      EXPECT_EQ(r.MetricOr("log_records"),
                r.MetricOr("preload_log_records") + r.MetricOr("logged_writes"))
          << info.name;
      EXPECT_EQ(r.MetricOr("node_read_hits"), r.MetricOr("node_reads")) << info.name;
    } else if (info.system == "MiniSql") {
      EXPECT_EQ(r.MetricOr("order_count"), r.MetricOr("neworders")) << info.name;
      EXPECT_DOUBLE_EQ(r.MetricOr("warehouse_ytd"), r.MetricOr("payments")) << info.name;
      EXPECT_DOUBLE_EQ(r.MetricOr("district_ytd"), r.MetricOr("warehouse_ytd")) << info.name;
    } else if (info.system == "WalStore") {
      EXPECT_EQ(r.MetricOr("wal_records"),
                r.MetricOr("preloaded") + r.MetricOr("puts") + r.MetricOr("deletes"))
          << info.name;
      EXPECT_GT(r.MetricOr("batches"), 0.0) << info.name;
      EXPECT_LE(r.MetricOr("batches"), r.MetricOr("wal_records")) << info.name;
    } else if (info.system == "CowList") {
      EXPECT_EQ(r.MetricOr("size"),
                r.MetricOr("preloaded") + r.MetricOr("adds") - r.MetricOr("removes_hit"))
          << info.name;
      EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << info.name;
    } else if (info.system == "RwKv") {
      EXPECT_LE(r.MetricOr("get_hits"), r.MetricOr("gets")) << info.name;
    }
  }
  // The RAII scope inside the driver disarmed everything on the way out.
  EXPECT_FALSE(FailpointFired(FailpointId::kScenarioOp));
}

}  // namespace
}  // namespace lockin
