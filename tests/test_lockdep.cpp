// LockLint runtime detector (src/analysis/lockdep): seeded violations are
// caught and reported exactly once, and a clean sweep of every registered
// scenario stays cycle-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/lockdep.hpp"
#include "src/locks/lock_api.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

std::unique_ptr<TracedHandle> MakeTraced(const std::string& name) {
  return std::make_unique<TracedHandle>(MakeLockOrThrow(name));
}

bool ChainContains(const LockdepReport& report, std::uint32_t site) {
  return std::find(report.chain, report.chain + report.chain_len, site) !=
         report.chain + report.chain_len;
}

TEST(LockdepTest, SeededAbbaReportedOnceWithBothSites) {
  LockdepReset();
  ScopedLockdep enable;
  std::unique_ptr<TracedHandle> a = MakeTraced("TICKET");
  std::unique_ptr<TracedHandle> b = MakeTraced("TICKET");

  // The classic inversion, sequentially (each thread joins before the next
  // starts), so the cycle is observed in the acquisition graph without an
  // actual deadlock.
  auto order_ab = [&] {
    a->lock();
    b->lock();
    b->unlock();
    a->unlock();
  };
  auto order_ba = [&] {
    b->lock();
    a->lock();
    a->unlock();
    b->unlock();
  };
  std::thread(order_ab).join();
  std::thread(order_ba).join();
  // Repeat both orders: the edges already exist, so the same cycle must not
  // be reported a second time.
  std::thread(order_ab).join();
  std::thread(order_ba).join();

  const std::vector<LockdepReport> reports = LockdepReports();
  ASSERT_EQ(reports.size(), 1u);
  const LockdepReport& report = reports[0];
  EXPECT_EQ(report.kind, LockdepViolationKind::kCycle);
  // Closed chain through both acquisition sites (A -> B -> A).
  ASSERT_EQ(report.chain_len, 3u);
  EXPECT_EQ(report.chain[0], report.chain[report.chain_len - 1]);
  EXPECT_TRUE(ChainContains(report, a->site()));
  EXPECT_TRUE(ChainContains(report, b->site()));
  // TracedHandle registered the algorithm name for the site label.
  EXPECT_NE(report.Describe().find("TICKET"), std::string::npos) << report.Describe();

  const LockdepStats stats = LockdepGetStats();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.self_deadlocks, 0u);
  EXPECT_EQ(stats.unlock_unheld, 0u);
}

TEST(LockdepTest, ThreeLockCycleCaught) {
  LockdepReset();
  ScopedLockdep enable;
  std::unique_ptr<TracedHandle> a = MakeTraced("TTAS");
  std::unique_ptr<TracedHandle> b = MakeTraced("TTAS");
  std::unique_ptr<TracedHandle> c = MakeTraced("TTAS");

  auto nest = [](TracedHandle& outer, TracedHandle& inner) {
    outer.lock();
    inner.lock();
    inner.unlock();
    outer.unlock();
  };
  std::thread([&] { nest(*a, *b); }).join();
  std::thread([&] { nest(*b, *c); }).join();
  std::thread([&] { nest(*c, *a); }).join();  // closes a -> b -> c -> a

  const std::vector<LockdepReport> reports = LockdepReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, LockdepViolationKind::kCycle);
  EXPECT_EQ(reports[0].chain_len, 4u);
  EXPECT_TRUE(ChainContains(reports[0], a->site()));
  EXPECT_TRUE(ChainContains(reports[0], b->site()));
  EXPECT_TRUE(ChainContains(reports[0], c->site()));
}

TEST(LockdepTest, RecursiveSelfAcquireCaught) {
  LockdepReset();
  ScopedLockdep enable;
  std::unique_ptr<TracedHandle> a = MakeTraced("TICKET");

  a->lock();
  // Re-entry on the holding thread. try_lock fails (and must: TicketLock is
  // not recursive) but the acquire attempt itself is the violation.
  EXPECT_FALSE(a->try_lock());
  a->unlock();

  const std::vector<LockdepReport> reports = LockdepReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, LockdepViolationKind::kSelfDeadlock);
  EXPECT_EQ(reports[0].chain_len, 1u);
  EXPECT_EQ(reports[0].chain[0], a->site());
  EXPECT_EQ(LockdepGetStats().self_deadlocks, 1u);
}

TEST(LockdepTest, UnlockOfUnheldCaught) {
  LockdepReset();
  ScopedLockdep enable;
  // TAS unlock is a plain store, so releasing an unheld lock is harmless at
  // the machine level -- exactly the bug class the detector must flag.
  std::unique_ptr<TracedHandle> a = MakeTraced("TAS");

  a->unlock();

  const std::vector<LockdepReport> reports = LockdepReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, LockdepViolationKind::kUnlockUnheld);
  EXPECT_EQ(reports[0].chain_len, 1u);
  EXPECT_EQ(reports[0].chain[0], a->site());
  EXPECT_EQ(LockdepGetStats().unlock_unheld, 1u);
}

TEST(LockdepTest, ResetClearsReportsAndStats) {
  LockdepReset();
  ScopedLockdep enable;
  std::unique_ptr<TracedHandle> a = MakeTraced("TAS");
  a->unlock();  // seed one violation
  ASSERT_EQ(LockdepReports().size(), 1u);

  LockdepReset();
  EXPECT_TRUE(LockdepReports().empty());
  const LockdepStats stats = LockdepGetStats();
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.edges, 0u);
  EXPECT_EQ(stats.unlock_unheld, 0u);
}

TEST(LockdepTest, DisabledHookRecordsNothing) {
  LockdepReset();
  ScopedLockdep disable(false);
  std::unique_ptr<TracedHandle> a = MakeTraced("TAS");
  a->unlock();
  EXPECT_TRUE(LockdepReports().empty());
  EXPECT_EQ(LockdepGetStats().events, 0u);
}

// The acceptance sweep: every registered scenario under MUTEX with lockdep
// armed must finish with zero lock-order cycles. Other report kinds are not
// asserted on (a scenario handing a lock between threads would show as
// unlock-of-unheld, which is a different property).
TEST(LockdepTest, CleanScenarioSweepHasNoCycles) {
  LockdepReset();
  ScenarioConfig config;
  config.lock_name = "MUTEX";
  config.threads = 2;
  config.ops_per_thread = 300;
  config.record_latency = false;
  config.meter = MeterChoice::kOff;
  config.lockdep = true;

  for (const ScenarioInfo& info : RegisteredScenarios()) {
    const ScenarioResult result = RunScenarioByName(info.name, config);
    EXPECT_GT(result.total_ops, 0u) << info.name;
  }

  const LockdepStats stats = LockdepGetStats();
  EXPECT_GT(stats.events, 0u);
  EXPECT_EQ(stats.cycles, 0u);
  for (const LockdepReport& report : LockdepReports()) {
    EXPECT_NE(report.kind, LockdepViolationKind::kCycle) << report.Describe();
  }
}

}  // namespace
}  // namespace lockin
