// Workload-driver tests: determinism, censoring, multi-lock spreading.
#include <gtest/gtest.h>

#include "src/sim/workload.hpp"

namespace lockin {
namespace {

TEST(Workload, DeterministicForSeed) {
  WorkloadConfig config;
  config.threads = 8;
  config.locks = 4;
  config.cs_cycles = 700;
  config.non_cs_cycles = 300;
  config.duration_cycles = 8'000'000;
  config.seed = 7;
  config.randomize_cs = true;
  const WorkloadResult a = RunLockWorkload("MUTEXEE", config);
  const WorkloadResult b = RunLockWorkload("MUTEXEE", config);
  EXPECT_EQ(a.total_acquires, b.total_acquires);
  EXPECT_DOUBLE_EQ(a.average_watts, b.average_watts);
  EXPECT_EQ(a.acquire_latency_cycles.max(), b.acquire_latency_cycles.max());
}

TEST(Workload, SeedChangesRandomizedRuns) {
  WorkloadConfig config;
  config.threads = 8;
  config.locks = 4;
  config.cs_cycles = 700;
  config.non_cs_cycles = 300;
  config.duration_cycles = 8'000'000;
  config.randomize_cs = true;
  config.seed = 1;
  const WorkloadResult a = RunLockWorkload("TICKET", config);
  config.seed = 2;
  const WorkloadResult b = RunLockWorkload("TICKET", config);
  EXPECT_NE(a.total_acquires, b.total_acquires);
}

TEST(Workload, MoreLocksMoreThroughputUnderContention) {
  WorkloadConfig config;
  config.threads = 16;
  config.cs_cycles = 1000;
  config.non_cs_cycles = 100;
  config.duration_cycles = 14'000'000;
  config.locks = 1;
  const double one = RunLockWorkload("TICKET", config).throughput_per_s;
  config.locks = 16;
  const double sixteen = RunLockWorkload("TICKET", config).throughput_per_s;
  EXPECT_GT(sixteen, one * 2);
}

TEST(Workload, CensoredWaitsAppearInTail) {
  // MUTEXEE starves sleepers; with censoring on, the tail must show waits
  // on the order of the run length.
  WorkloadConfig config;
  config.threads = 20;
  config.cs_cycles = 1000;
  config.non_cs_cycles = 100;
  config.duration_cycles = 14'000'000;
  config.record_censored_waits = true;
  const WorkloadResult with_censoring = RunLockWorkload("MUTEXEE", config);
  EXPECT_GT(with_censoring.acquire_latency_cycles.max(), config.duration_cycles / 2);

  config.record_censored_waits = false;
  const WorkloadResult without = RunLockWorkload("MUTEXEE", config);
  EXPECT_LE(without.acquire_latency_cycles.max(),
            with_censoring.acquire_latency_cycles.max());
}

TEST(Workload, EnergyAccountingConsistent) {
  WorkloadConfig config;
  config.threads = 10;
  config.cs_cycles = 500;
  config.non_cs_cycles = 500;
  config.duration_cycles = 14'000'000;
  const WorkloadResult result = RunLockWorkload("TICKET", config);
  EXPECT_NEAR(result.seconds, 0.005, 1e-9);  // 14M cycles at 2.8 GHz
  EXPECT_GT(result.package_joules, 0.0);
  EXPECT_GT(result.dram_joules, 0.0);
  const double watts = (result.package_joules + result.dram_joules) / result.seconds;
  EXPECT_NEAR(watts, result.average_watts, 0.5);
  EXPECT_NEAR(result.tpp, static_cast<double>(result.total_acquires) /
                              (result.package_joules + result.dram_joules),
              1e-6);
}

TEST(Workload, ZeroCsStillProgresses) {
  WorkloadConfig config;
  config.threads = 4;
  config.cs_cycles = 0;
  config.non_cs_cycles = 0;
  config.duration_cycles = 1'000'000;
  const WorkloadResult result = RunLockWorkload("TAS", config);
  EXPECT_GT(result.total_acquires, 1000u);
}

TEST(Workload, SmallTopologyEnvHonored) {
  WorkloadEnv env;
  env.topology = Topology::PaperCoreI7();  // 8 contexts
  WorkloadConfig config;
  config.threads = 16;  // oversubscribed on the desktop
  config.cs_cycles = 1000;
  config.non_cs_cycles = 100;
  config.duration_cycles = 14'000'000;
  const WorkloadResult ticket = RunLockWorkload("TICKET", config, env);
  const WorkloadResult mutexee = RunLockWorkload("MUTEXEE", config, env);
  EXPECT_GT(mutexee.throughput_per_s, ticket.throughput_per_s);
}

}  // namespace
}  // namespace lockin
