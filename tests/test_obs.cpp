// LockScope observability tests: trace-ring overflow semantics, SPSC
// liveness, exporter JSON strictness (round-tripped through a strict RFC
// 8259 parser written below -- no external JSON dependency), metrics
// snapshot consistency under concurrent increments, the energy sampler,
// and TPP surfacing in scenario results via the model meter.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/energy/model_meter.hpp"
#include "src/energy/power_model.hpp"
#include "src/energy/rapl_meter.hpp"
#include "src/locks/lock_api.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/locks/spinlocks.hpp"
#include "src/obs/export.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/platform/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

// --- A strict RFC 8259 recursive-descent validator ---------------------------
// Deliberately unforgiving: no trailing commas, no NaN/Infinity, no bare
// values the grammar forbids. If WriteChromeTrace or MetricsRegistry::
// WriteJson emit anything loose, this rejects it.
class StrictJson {
 public:
  explicit StrictJson(std::string text) : text_(std::move(text)) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are forbidden
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() || !std::isxdigit(static_cast<unsigned char>(
                                                text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!Digits()) {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!Digits()) {
        return false;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!Digits()) {
        return false;
      }
    }
    return pos_ > start;
  }

  bool Digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return false;
      }
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string text_;
  std::size_t pos_ = 0;
};

// --- Trace ring --------------------------------------------------------------

TEST(TraceBufferTest, OverflowDropsAndCountsWithoutCorruptingEarlierEvents) {
  TraceBuffer ring(/*capacity=*/16, /*tid=*/3);
  EXPECT_EQ(ring.capacity(), 16u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    ring.Push(i, TraceEventKind::kAcquired, i);
  }
  EXPECT_EQ(ring.size(), 16u);
  EXPECT_EQ(ring.dropped(), 84u);
  std::vector<TraceEvent> events;
  EXPECT_EQ(ring.Drain(&events), 16u);
  ASSERT_EQ(events.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(events[i].timestamp, i);        // oldest events survive, in order
    EXPECT_EQ(events[i].arg, i);
    EXPECT_EQ(events[i].tid, 3);
    EXPECT_EQ(events[i].kind, static_cast<std::uint16_t>(TraceEventKind::kAcquired));
  }
  // Drained ring accepts events again and the drop counter persists.
  ring.Emit(TraceEventKind::kReleased, 7);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 84u);
}

TEST(TraceBufferTest, CapacityRoundsUpToPowerOfTwo) {
  TraceBuffer ring(/*capacity=*/20, /*tid=*/0);
  EXPECT_EQ(ring.capacity(), 32u);
}

TEST(TraceBufferTest, SpscLiveDrainSeesEveryUndroppedEventInOrder) {
  TraceBuffer ring(/*capacity=*/256, /*tid=*/1);
  constexpr std::uint32_t kEvents = 100000;
  std::thread producer([&ring] {
    for (std::uint32_t i = 0; i < kEvents; ++i) {
      ring.Push(i, TraceEventKind::kAcquired, i);
    }
  });
  // Consume concurrently; args must arrive strictly increasing (drops skip
  // values but never reorder or tear).
  std::uint64_t popped = 0;
  std::int64_t last = -1;
  TraceEvent event;
  while (popped < kEvents) {
    if (ring.Pop(&event)) {
      EXPECT_GT(static_cast<std::int64_t>(event.arg), last);
      EXPECT_EQ(event.timestamp, event.arg);  // torn writes would break this
      last = static_cast<std::int64_t>(event.arg);
      ++popped;
      if (event.arg == kEvents - 1) {
        break;
      }
    } else if (ring.dropped() + popped >= kEvents) {
      break;
    }
  }
  producer.join();
  std::vector<TraceEvent> tail;
  ring.Drain(&tail);
  EXPECT_EQ(popped + tail.size() + ring.dropped(), kEvents);
}

TEST(TraceSinkTest, ScopedSinkRoutesEmitsAndRestores) {
  TraceBuffer ring(/*capacity=*/64, /*tid=*/0);
  TraceEmit(TraceEventKind::kAcquired, 1);  // no sink installed: discarded
  EXPECT_EQ(ring.size(), 0u);
  {
    ScopedTraceSink sink(&ring);
    TraceEmit(TraceEventKind::kAcquired, 2);
    EXPECT_EQ(ring.size(), 1u);
  }
  TraceEmit(TraceEventKind::kAcquired, 3);  // sink restored to null
  EXPECT_EQ(ring.size(), 1u);
}

// --- TracedLock / TracedHandle ----------------------------------------------

static_assert(sizeof(TracedLock<TasLock>) == sizeof(TasLock),
              "NullTracePolicy must not change lock layout");
static_assert(sizeof(TracedLock<TicketLock>) == sizeof(TicketLock),
              "NullTracePolicy must not change lock layout");

TEST(TracedLockTest, ThreadPolicyEmitsAcquireAcquiredReleased) {
  TraceBuffer ring(/*capacity=*/64, /*tid=*/0);
  ScopedTraceSink sink(&ring);
  TracedLock<TasLock, ThreadTracePolicy> lock{SpinConfig{}};
  lock.lock();
  lock.unlock();
  std::vector<TraceEvent> events;
  ring.Drain(&events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, static_cast<std::uint16_t>(TraceEventKind::kAcquireBegin));
  EXPECT_EQ(events[1].kind, static_cast<std::uint16_t>(TraceEventKind::kAcquired));
  EXPECT_EQ(events[2].kind, static_cast<std::uint16_t>(TraceEventKind::kReleased));
  EXPECT_EQ(events[0].arg, events[2].arg);  // same site id throughout
  EXPECT_LE(events[0].timestamp, events[1].timestamp);
}

TEST(TracedLockTest, NullPolicyEmitsNothing) {
  TraceBuffer ring(/*capacity=*/64, /*tid=*/0);
  ScopedTraceSink sink(&ring);
  TracedLock<TasLock> lock{SpinConfig{}};
  lock.lock();
  lock.unlock();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TracedHandleTest, WrapsAnyRegisteredLockAndEmits) {
  TraceBuffer ring(/*capacity=*/64, /*tid=*/0);
  ScopedTraceSink sink(&ring);
  std::unique_ptr<LockHandle> handle = WrapTraced(MakeLockOrThrow("TICKET", {}));
  EXPECT_EQ(handle->name(), "TICKET");
  handle->lock();
  handle->unlock();
  EXPECT_TRUE(handle->try_lock());
  handle->unlock();
  std::vector<TraceEvent> events;
  ring.Drain(&events);
  EXPECT_EQ(events.size(), 6u);  // (begin, acquired, released) x 2
}

// --- Exporter ----------------------------------------------------------------

std::vector<TraceEvent> SyntheticEvents() {
  TraceBuffer ring(/*capacity=*/256, /*tid=*/1);
  ring.Push(100, TraceEventKind::kPhaseBegin, 0);
  ring.Push(200, TraceEventKind::kPhaseEnd, 0);
  ring.Push(250, TraceEventKind::kPhaseBegin, 1);
  ring.Push(300, TraceEventKind::kAcquireBegin, 42);
  ring.Push(350, TraceEventKind::kContended, 42);
  ring.Push(400, TraceEventKind::kAcquired, 42);
  ring.Push(500, TraceEventKind::kReleased, 42);
  ring.Push(600, TraceEventKind::kFutexSleepBegin, 0);
  ring.Push(700, TraceEventKind::kFutexSleepEnd, 0);
  ring.Push(800, TraceEventKind::kFutexWake, 2);
  ring.Push(900, TraceEventKind::kEpochSwitch, 1);
  ring.Push(950, TraceEventKind::kWattsSample, 41500);
  ring.Push(1000, TraceEventKind::kPhaseEnd, 1);
  std::vector<TraceEvent> events;
  ring.Drain(&events);
  return events;
}

TEST(ChromeTraceTest, OutputIsStrictJson) {
  std::ostringstream out;
  ChromeTraceOptions options;
  options.process_name = "test \"quoted\" name\nwith control";  // must be escaped
  WriteChromeTrace(out, SyntheticEvents(), options);
  const std::string text = out.str();
  StrictJson parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
}

TEST(ChromeTraceTest, PairsSlicesAndDiscardsUnmatchedBegins) {
  std::vector<TraceEvent> events = SyntheticEvents();
  // An acquire-begin whose end was dropped must not become a slice.
  TraceEvent orphan;
  orphan.timestamp = 2000;
  orphan.kind = static_cast<std::uint16_t>(TraceEventKind::kAcquireBegin);
  orphan.tid = 1;
  orphan.arg = 99;
  events.push_back(orphan);
  std::ostringstream out;
  WriteChromeTrace(out, events, {});
  const std::string text = out.str();
  // Slices produced: lock_wait (300->400), lock_hold (400->500), futex_sleep
  // (600->700), phase:setup, phase:run. Instants: contended, futex_wake,
  // epoch_switch. Counter: watts.
  EXPECT_NE(text.find("\"lock_wait\""), std::string::npos);
  EXPECT_NE(text.find("\"lock_hold\""), std::string::npos);
  EXPECT_NE(text.find("\"futex_sleep\""), std::string::npos);
  EXPECT_NE(text.find("\"phase:setup\""), std::string::npos);
  EXPECT_NE(text.find("\"phase:run\""), std::string::npos);
  EXPECT_NE(text.find("\"contended\""), std::string::npos);
  EXPECT_NE(text.find("\"futex_wake\""), std::string::npos);
  EXPECT_NE(text.find("\"epoch_switch\""), std::string::npos);
  EXPECT_NE(text.find("\"watts\""), std::string::npos);
  EXPECT_EQ(text.find("99"), text.rfind("99"));  // orphan site appears at most once (tid row)
  StrictJson parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
}

TEST(ChromeTraceTest, EmptyEventListIsValidJson) {
  std::ostringstream out;
  WriteChromeTrace(out, {}, {});
  StrictJson parser(out.str());
  EXPECT_TRUE(parser.Valid()) << out.str();
}

// --- Metrics registry --------------------------------------------------------

TEST(MetricsTest, SnapshotConsistentUnderConcurrentIncrements) {
  MetricCounter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(1);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots must be monotonic and never exceed the true total.
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t value = counter.Value();
    EXPECT_GE(value, last);
    EXPECT_LE(value, kThreads * kPerThread);
    last = value;
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsTest, RegistryReturnsStableRefsAndSnapshots) {
  MetricsRegistry registry;
  MetricCounter& a = registry.Counter("test.a");
  MetricCounter& a2 = registry.Counter("test.a");
  EXPECT_EQ(&a, &a2);  // same name, same counter
  a.Add(5);
  registry.Gauge("test.watts").Set(41.5);
  registry.Histogram("test.lat").Record(100);
  registry.Histogram("test.lat").Record(200);
  const auto samples = registry.Snapshot();
  bool saw_counter = false;
  for (const auto& sample : samples) {
    if (sample.name == "test.a") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(sample.value, 5.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(MetricsTest, WriteJsonIsStrictAndEscapes) {
  MetricsRegistry registry;
  registry.Counter("weird\"name\\with\nstuff").Add(1);
  registry.Gauge("g").Set(0.125);
  registry.Histogram("h").Record(1000);
  std::ostringstream out;
  registry.WriteJson(out);
  StrictJson parser(out.str());
  EXPECT_TRUE(parser.Valid()) << out.str();
}

// --- Energy sampler + TPP ----------------------------------------------------

std::shared_ptr<ActivityRegistry> TestRegistry() {
  return std::make_shared<ActivityRegistry>(
      PowerModel(Topology::Detect(), PowerParams::PaperXeon()));
}

TEST(EnergySamplerTest, CollectsMonotonicSeriesFromModelMeter) {
  auto registry = TestRegistry();
  ModelMeter meter(registry);
  registry->SetState(0, ActivityState::kCritical);
  meter.Start();
  TraceBuffer ring(/*capacity=*/256, /*tid=*/9);
  std::vector<EnergyPoint> series;
  {
    EnergySampler sampler(&meter, /*interval_ms=*/1, &ring);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    series = sampler.Finish();
  }
  registry->SetState(0, ActivityState::kInactive);
  ASSERT_GE(series.size(), 2u);  // several interval samples plus the final one
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].joules, series[i - 1].joules);  // cumulative, nondecreasing
    EXPECT_GE(series[i].seconds, series[i - 1].seconds);
  }
  EXPECT_GT(series.back().joules, 0.0);
  EXPECT_GT(ring.size(), 0u);  // watts landed on the trace counter track
}

TEST(ScenarioEnergyTest, ModelMeteredRunReportsTpp) {
  ScenarioConfig config;
  config.lock_name = "MUTEX";
  config.threads = 2;
  config.ops_per_thread = 2000;
  config.meter = MeterChoice::kModel;
  const ScenarioResult result = RunScenarioByName("kvstore/WT", config);
  EXPECT_EQ(result.meter_name, "model");
  EXPECT_GT(result.energy.total_joules(), 0.0);
  EXPECT_GT(result.energy.seconds, 0.0);
  EXPECT_GT(result.Tpp(), 0.0);
  EXPECT_GT(result.AvgWatts(), 0.0);
  EXPECT_EQ(result.total_ops, 2u * 2000u);
}

TEST(ScenarioEnergyTest, MeterOffLeavesEnergyZero) {
  ScenarioConfig config;
  config.lock_name = "MUTEX";
  config.threads = 1;
  config.ops_per_thread = 500;
  config.meter = MeterChoice::kOff;
  const ScenarioResult result = RunScenarioByName("kvstore/WT", config);
  EXPECT_TRUE(result.meter_name.empty());
  EXPECT_DOUBLE_EQ(result.energy.total_joules(), 0.0);
  EXPECT_DOUBLE_EQ(result.Tpp(), 0.0);
}

TEST(ScenarioEnergyTest, DefaultMeterChainAlwaysYieldsAMeter) {
  // On any host: RAPL if readable, else the model. Never silently meterless.
  auto meter = MakeDefaultMeter(TestRegistry());
  ASSERT_NE(meter, nullptr);
  EXPECT_TRUE(meter->Name() == "rapl" || meter->Name() == "model");
  // PowercapPresent must not throw/crash regardless of host permissions.
  (void)RaplMeter::PowercapPresent();
}

// --- Traced scenario + rwlock scenario ---------------------------------------

TEST(ScenarioTraceTest, TracedRunLandsLockEventsInSession) {
  TraceSession::Instance().Reset();
  ScenarioConfig config;
  config.lock_name = "MUTEX";
  config.threads = 2;
  config.ops_per_thread = 500;
  config.trace = true;
  config.trace_buffer_events = 1u << 12;
  config.meter = MeterChoice::kOff;
  const ScenarioResult result = RunScenarioByName("kvstore/WT", config);
  EXPECT_GT(result.total_ops, 0u);
  const std::vector<TraceEvent> events = TraceSession::Instance().Collect();
  ASSERT_FALSE(events.empty());
  bool saw_acquired = false;
  bool saw_phase = false;
  for (const TraceEvent& event : events) {
    if (event.kind == static_cast<std::uint16_t>(TraceEventKind::kAcquired)) {
      saw_acquired = true;
    }
    if (event.kind == static_cast<std::uint16_t>(TraceEventKind::kPhaseBegin)) {
      saw_phase = true;
    }
  }
  EXPECT_TRUE(saw_acquired);
  EXPECT_TRUE(saw_phase);
  // Exported form is strict JSON.
  std::ostringstream out;
  WriteChromeTrace(out, events, {});
  StrictJson parser(out.str());
  EXPECT_TRUE(parser.Valid());
  TraceSession::Instance().Reset();
  EXPECT_EQ(TraceSession::Instance().buffer_count(), 0u);
}

TEST(RwScenarioTest, ReadHeavyReportsReaderWriterCounters) {
  const std::uint64_t readers_before =
      MetricsRegistry::Instance().Counter("rwkv.reader_acquires").Value();
  ScenarioConfig config;
  config.lock_name = "MUTEX";  // recorded but ignored by design
  config.threads = 4;
  config.ops_per_thread = 2000;
  config.meter = MeterChoice::kOff;
  const ScenarioResult result = RunScenarioByName("rwkv/read-heavy", config);
  const double readers = result.MetricOr("reader_acquires");
  const double writers = result.MetricOr("writer_acquires");
  EXPECT_GT(readers, 0.0);
  EXPECT_GT(writers, 0.0);
  EXPECT_DOUBLE_EQ(readers + writers, static_cast<double>(result.total_ops));
  EXPECT_GT(readers, writers * 4);  // 90% read mix
  EXPECT_DOUBLE_EQ(result.MetricOr("invariants_ok"), 1.0);
  // The same totals flowed through the process MetricsRegistry.
  const std::uint64_t readers_after =
      MetricsRegistry::Instance().Counter("rwkv.reader_acquires").Value();
  EXPECT_EQ(readers_after - readers_before, static_cast<std::uint64_t>(readers));
}

// --- Simulator-stamped traces ------------------------------------------------

TEST(SimTraceTest, EngineStampsEventsWithSimTime) {
  SimEngine engine;
  TraceBuffer ring(/*capacity=*/64, /*tid=*/0);
  engine.AttachTrace(&ring);
  engine.Schedule(100, [&engine] {
    engine.EmitTrace(TraceEventKind::kAcquired, 2, 7);
  });
  engine.Schedule(250, [&engine] {
    engine.EmitTrace(TraceEventKind::kReleased, 2, 7);
  });
  engine.RunAll();
  std::vector<TraceEvent> events;
  ring.Drain(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].timestamp, 100u);  // sim cycles, not rdtsc
  EXPECT_EQ(events[1].timestamp, 250u);
  EXPECT_EQ(events[0].tid, 2);
  EXPECT_EQ(events[0].arg, 7u);
  // Detached engine emits nothing (null check, no crash).
  engine.AttachTrace(nullptr);
  engine.Schedule(10, [&engine] { engine.EmitTrace(TraceEventKind::kAcquired, 0, 0); });
  engine.RunAll();
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace lockin
