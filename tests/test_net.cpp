// NetServe tests: the RESP codec under adversarial framing (torn at every
// byte boundary, pipelined batches, oversized/garbage/binary input, all
// without allocation blowup), and the full server end-to-end over a real
// loopback socket -- reply correctness per system x lock, counter
// invariants after shutdown, deterministic BUSY shedding under an armed
// `scenario/op` delay failpoint, and the graceful drain path flushing
// every in-flight pipelined reply before EOF.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/net/channel.hpp"
#include "src/net/dispatcher.hpp"
#include "src/net/loadgen.hpp"
#include "src/net/resp.hpp"
#include "src/net/server.hpp"
#include "src/platform/failpoint.hpp"

namespace lockin {
namespace {

// Builds "<prefix><i>" without the operator+ temporaries GCC 12 trips a
// bogus -Wrestrict warning on when inlining into gtest bodies.
std::string NumberedKey(const char* prefix, int i) {
  std::string key(prefix);
  key += std::to_string(i);
  return key;
}

// --- Codec: request parser ---------------------------------------------------

// Feeds `wire` one byte at a time and collects every parsed command --
// incremental parsing must be byte-granularity agnostic.
std::vector<RespCommand> ParseByteByByte(const std::string& wire, RespLimits limits = {}) {
  RespParser parser(limits);
  std::vector<RespCommand> commands;
  RespCommand command;
  std::string error;
  for (const char byte : wire) {
    parser.Feed(std::string_view(&byte, 1));
    for (;;) {
      const RespParseStatus status = parser.Next(&command, &error);
      if (status == RespParseStatus::kNeedMore) {
        break;
      }
      EXPECT_EQ(status, RespParseStatus::kCommand) << error;
      if (status != RespParseStatus::kCommand) {
        return commands;
      }
      commands.push_back(command);
    }
  }
  return commands;
}

TEST(RespParser, TornFramesAtEveryByteBoundary) {
  const std::string wire =
      "*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$5\r\nhello\r\n"
      "*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"
      "PING\r\n"
      "*1\r\n$4\r\nQUIT\r\n";
  // Every split point: [0, wire) fed as two chunks, plus the byte-by-byte
  // worst case via ParseByteByByte.
  const std::vector<RespCommand> reference = ParseByteByByte(wire);
  ASSERT_EQ(reference.size(), 4u);
  EXPECT_EQ(reference[0].args, (std::vector<std::string>{"SET", "foo", "hello"}));
  EXPECT_EQ(reference[1].args, (std::vector<std::string>{"GET", "foo"}));
  EXPECT_EQ(reference[2].args, (std::vector<std::string>{"PING"}));
  EXPECT_EQ(reference[3].args, (std::vector<std::string>{"QUIT"}));
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    RespParser parser;
    parser.Feed(std::string_view(wire).substr(0, split));
    std::vector<RespCommand> commands;
    RespCommand command;
    std::string error;
    while (parser.Next(&command, &error) == RespParseStatus::kCommand) {
      commands.push_back(command);
    }
    parser.Feed(std::string_view(wire).substr(split));
    while (parser.Next(&command, &error) == RespParseStatus::kCommand) {
      commands.push_back(command);
    }
    ASSERT_EQ(commands.size(), reference.size()) << "split at " << split;
    for (std::size_t i = 0; i < commands.size(); ++i) {
      EXPECT_EQ(commands[i].args, reference[i].args) << "split at " << split;
    }
  }
}

TEST(RespParser, PipelinedBatchInOneFeed) {
  std::string wire;
  for (int i = 0; i < 100; ++i) {
    RespAppendCommand(&wire, {"SET", NumberedKey("k", i), NumberedKey("v", i)});
  }
  RespParser parser;
  parser.Feed(wire);
  RespCommand command;
  std::string error;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(parser.Next(&command, &error), RespParseStatus::kCommand) << i;
    EXPECT_EQ(command.args[1], NumberedKey("k", i));
  }
  EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RespParser, BinaryArgsWithEmbeddedNulRoundTrip) {
  const std::string key("k\0ey", 4);
  const std::string value("\x00\x01\xff\r\n\x00", 6);
  std::string wire;
  RespAppendCommand(&wire, {"SET", key, value});
  const std::vector<RespCommand> commands = ParseByteByByte(wire);
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].args[1], key);
  EXPECT_EQ(commands[0].args[2], value);
}

TEST(RespParser, OversizedBulkRejectedFromHeaderWithoutBuffering) {
  RespParser parser;
  // The 999999999-byte payload never arrives; the header alone must latch
  // the error with nothing buffered (no allocation blowup).
  parser.Feed("*2\r\n$3\r\nSET\r\n$999999999\r\n");
  RespCommand command;
  std::string error;
  EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError);
  EXPECT_EQ(error, "bulk string too large");
  EXPECT_TRUE(parser.broken());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  // The error latches: more bytes are dropped, Next keeps failing.
  parser.Feed("PING\r\n");
  EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RespParser, GarbageHeadersError) {
  const char* cases[] = {
      "*abc\r\n",            // non-numeric array count
      "*-3\r\n",             // negative array count
      "*2\r\nGET foo\r\n",   // array element that is not a bulk string
      "*1\r\n$abc\r\n",      // non-numeric bulk length
      "$5\r\nhello\r\n",     // bulk string outside an array
      "*1\r\n$3\r\nGETxy",   // payload terminator is neither CR nor LF
  };
  for (const char* wire : cases) {
    RespParser parser;
    parser.Feed(wire);
    RespCommand command;
    std::string error;
    EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError) << wire;
    EXPECT_TRUE(parser.broken()) << wire;
  }
}

TEST(RespParser, HeaderWithoutTerminatorErrorsOnceImplausible) {
  RespParser parser;
  parser.Feed("*123456789012345678901234567890123456789");  // > 32 bytes, no newline
  RespCommand command;
  std::string error;
  EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError);
}

TEST(RespParser, LimitsEnforced) {
  {
    RespLimits limits;
    limits.max_args = 4;
    RespParser parser(limits);
    parser.Feed("*5\r\n");
    RespCommand command;
    std::string error;
    EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError);
    EXPECT_EQ(error, "too many arguments");
  }
  {
    RespLimits limits;
    limits.max_inline_bytes = 16;
    RespParser parser(limits);
    parser.Feed(std::string(17, 'x'));  // no newline yet, already over budget
    RespCommand command;
    std::string error;
    EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError);
    EXPECT_EQ(error, "inline command too long");
  }
  {
    // Whole-frame cap: an incomplete bulk payload may not buffer without
    // bound even when each header is individually legal.
    RespLimits limits;
    limits.max_command_bytes = 64;
    RespParser parser(limits);
    parser.Feed("*2\r\n$3\r\nSET\r\n$900\r\n" + std::string(60, 'x'));
    RespCommand command;
    std::string error;
    EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kError);
    EXPECT_EQ(error, "command too large");
  }
}

TEST(RespParser, InlineCommandsAndNoOpFramesSkipped) {
  RespParser parser;
  parser.Feed("\r\n*0\r\n  \t \r\nGET  foo\r\nset bar baz\r\n");
  RespCommand command;
  std::string error;
  ASSERT_EQ(parser.Next(&command, &error), RespParseStatus::kCommand);
  EXPECT_EQ(command.args, (std::vector<std::string>{"GET", "foo"}));
  ASSERT_EQ(parser.Next(&command, &error), RespParseStatus::kCommand);
  EXPECT_EQ(command.args, (std::vector<std::string>{"set", "bar", "baz"}));
  EXPECT_EQ(parser.Next(&command, &error), RespParseStatus::kNeedMore);
}

TEST(RespParser, CompactionKeepsPipelinedStreamBounded) {
  RespParser parser;
  std::string frame;
  RespAppendCommand(&frame, {"SET", "key", std::string(512, 'v')});
  RespCommand command;
  std::string error;
  for (int i = 0; i < 1000; ++i) {
    parser.Feed(frame);
    ASSERT_EQ(parser.Next(&command, &error), RespParseStatus::kCommand);
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

// --- Codec: reply parser -----------------------------------------------------

TEST(RespReplyParser, AllReplyTypesTornAtEveryBoundary) {
  std::string wire;
  RespAppendSimple(&wire, "OK");
  RespAppendError(&wire, "BUSY op shed");
  RespAppendInteger(&wire, 42);
  RespAppendInteger(&wire, -7);
  RespAppendBulk(&wire, std::string("he\0llo", 6));
  RespAppendNil(&wire);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    RespReplyParser parser;
    parser.Feed(std::string_view(wire).substr(0, split));
    std::vector<RespReply> replies;
    RespReply reply;
    std::string error;
    while (parser.Next(&reply, &error) == RespParseStatus::kCommand) {
      replies.push_back(reply);
    }
    parser.Feed(std::string_view(wire).substr(split));
    while (parser.Next(&reply, &error) == RespParseStatus::kCommand) {
      replies.push_back(reply);
    }
    ASSERT_EQ(replies.size(), 6u) << "split at " << split;
    EXPECT_EQ(replies[0].type, RespReply::Type::kSimple);
    EXPECT_EQ(replies[0].text, "OK");
    EXPECT_EQ(replies[1].type, RespReply::Type::kError);
    EXPECT_TRUE(replies[1].IsBusy());
    EXPECT_EQ(replies[2].integer, 42);
    EXPECT_EQ(replies[3].integer, -7);
    EXPECT_EQ(replies[4].type, RespReply::Type::kBulk);
    EXPECT_EQ(replies[4].text, std::string("he\0llo", 6));
    EXPECT_EQ(replies[5].type, RespReply::Type::kNil);
  }
}

TEST(RespReplyParser, InvalidTypeByteErrors) {
  RespReplyParser parser;
  parser.Feed("~wat\r\n");
  RespReply reply;
  std::string error;
  EXPECT_EQ(parser.Next(&reply, &error), RespParseStatus::kError);
}

// --- Key mapping -------------------------------------------------------------

TEST(NetKey, DecimalKeysAreTheirValueOthersHash) {
  EXPECT_EQ(NetKeyToUint64("0"), 0u);
  EXPECT_EQ(NetKeyToUint64("42"), 42u);
  EXPECT_EQ(NetKeyToUint64("1234567890"), 1234567890u);
  EXPECT_NE(NetKeyToUint64("foo"), NetKeyToUint64("bar"));
  EXPECT_EQ(NetKeyToUint64("foo"), NetKeyToUint64("foo"));
}

// --- End-to-end over loopback ------------------------------------------------

// Minimal blocking client for the in-process server.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) : fd_(ConnectLoopback(port)) {}
  ~TestClient() { Close(); }

  bool ok() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

  void SendRaw(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = write(fd_, data.data(), data.size());
      ASSERT_GT(n, 0);
      data.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  void Send(const std::vector<std::string>& args) {
    std::string wire;
    RespAppendCommand(&wire, args);
    SendRaw(wire);
  }

  // Blocking read of the next reply; false on EOF or protocol error.
  bool ReadReply(RespReply* out) {
    std::string error;
    char buf[4096];
    for (;;) {
      const RespParseStatus status = parser_.Next(out, &error);
      if (status == RespParseStatus::kCommand) {
        return true;
      }
      if (status == RespParseStatus::kError) {
        return false;
      }
      const ssize_t n = read(fd_, buf, sizeof buf);
      if (n <= 0) {
        return false;
      }
      parser_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  // Reads until EOF, collecting every reply.
  std::vector<RespReply> ReadUntilEof() {
    std::vector<RespReply> replies;
    RespReply reply;
    while (ReadReply(&reply)) {
      replies.push_back(reply);
    }
    return replies;
  }

 private:
  int fd_;
  RespReplyParser parser_;
};

std::uint64_t CounterValue(LockServer& server, const std::string& name) {
  return server.metrics().Counter(name).Value();
}

TEST(NetServer, RoundTripAcrossSystemsAndLocks) {
  for (const char* system : {"kvstore", "cache"}) {
    for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE"}) {
      SCOPED_TRACE(std::string(system) + " / " + lock);
      NetServerOptions options;
      options.workers = 2;
      options.backend.system = system;
      options.backend.lock_name = lock;
      LockServer server(options);
      server.Start();
      ASSERT_GT(server.port(), 0);

      TestClient client(server.port());
      ASSERT_TRUE(client.ok());
      // One pipelined burst: SET, GET hit, GET miss, DEL, DEL again, PING.
      std::string burst;
      RespAppendCommand(&burst, {"SET", "alpha", "one"});
      RespAppendCommand(&burst, {"GET", "alpha"});
      RespAppendCommand(&burst, {"GET", "missing"});
      RespAppendCommand(&burst, {"DEL", "alpha"});
      RespAppendCommand(&burst, {"DEL", "alpha"});
      burst += "PING\r\n";  // inline form on the same connection
      client.SendRaw(burst);

      RespReply reply;
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.type, RespReply::Type::kSimple);
      EXPECT_EQ(reply.text, "OK");
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.type, RespReply::Type::kBulk);
      EXPECT_EQ(reply.text, "one");
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.type, RespReply::Type::kNil);
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.integer, 1);
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.integer, 0);
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.text, "PONG");

      // QUIT: +OK then the server closes.
      client.Send({"QUIT"});
      ASSERT_TRUE(client.ReadReply(&reply));
      EXPECT_EQ(reply.text, "OK");
      EXPECT_FALSE(client.ReadReply(&reply));  // EOF
      client.Close();

      server.Drain();
      server.Join();

      // Counter invariants after a quiesced shutdown.
      EXPECT_EQ(CounterValue(server, "net.requests"), 7u);
      EXPECT_EQ(CounterValue(server, "net.replies"), 7u);
      EXPECT_EQ(CounterValue(server, "net.conn.accepted"),
                CounterValue(server, "net.conn.closed"));
      EXPECT_EQ(CounterValue(server, "net.hits") + CounterValue(server, "net.misses"),
                CounterValue(server, "net.cmd.get"));
      EXPECT_EQ(CounterValue(server, "net.cmd.get"), 2u);
      EXPECT_EQ(CounterValue(server, "net.cmd.set"), 1u);
      EXPECT_EQ(CounterValue(server, "net.cmd.del"), 2u);
      EXPECT_EQ(CounterValue(server, "net.protocol_errors"), 0u);
    }
  }
}

TEST(NetServer, NosqlAppendAndUnknownCommands) {
  NetServerOptions options;
  options.backend.system = "nosql-hash";
  LockServer server(options);
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  client.Send({"APPEND", "log", "a"});
  client.Send({"APPEND", "log", "b"});
  client.Send({"GET", "log"});
  client.Send({"FLY", "me"});
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.text, "OK");
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.text, "OK");
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.text, "ab");
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.type, RespReply::Type::kError);
  EXPECT_EQ(reply.text.rfind("ERR unknown command", 0), 0u);
  client.Close();
  server.Drain();
  server.Join();
  EXPECT_EQ(CounterValue(server, "net.cmd.append"), 2u);
  EXPECT_EQ(CounterValue(server, "net.cmd.unknown"), 1u);
}

TEST(NetServer, StatsReturnsServerMetricsJson) {
  NetServerOptions options;
  LockServer server(options);
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  client.Send({"STATS"});
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.type, RespReply::Type::kBulk);
  EXPECT_NE(reply.text.find("\"net.requests\""), std::string::npos);
  client.Close();
  server.Drain();
  server.Join();
}

TEST(NetServer, ProtocolErrorRepliesThenCloses) {
  NetServerOptions options;
  LockServer server(options);
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  client.SendRaw("*abc\r\n");
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.type, RespReply::Type::kError);
  EXPECT_EQ(reply.text.rfind("ERR protocol error", 0), 0u);
  EXPECT_FALSE(client.ReadReply(&reply));  // EOF after the diagnostic
  client.Close();
  server.Drain();
  server.Join();
  EXPECT_EQ(CounterValue(server, "net.protocol_errors"), 1u);
}

TEST(NetServer, DeadlineShedsBusyUnderDelayFailpoint) {
  NetServerOptions options;
  options.backend.system = "kvstore";
  options.backend.op_deadline_ns = 1'000'000;  // 1 ms budget per command
  LockServer server(options);
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  {
    // 5 ms delay per command, burned *inside* the armed deadline window, so
    // the entry lock acquisition deterministically starts past the budget.
    ScopedFailpoints chaos("scenario/op=always~5000000", 1);
    client.Send({"SET", "k", "v"});
    client.Send({"GET", "k"});
    RespReply reply;
    ASSERT_TRUE(client.ReadReply(&reply));
    EXPECT_TRUE(reply.IsBusy()) << reply.text;
    ASSERT_TRUE(client.ReadReply(&reply));
    EXPECT_TRUE(reply.IsBusy()) << reply.text;
  }
  // Shedding is per-op, not per-connection: with the failpoint disarmed the
  // same connection serves normally again (never a hung or killed socket).
  client.Send({"SET", "k", "v"});
  client.Send({"GET", "k"});
  RespReply reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.text, "OK");
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.text, "v");
  client.Close();
  server.Drain();
  server.Join();
  EXPECT_EQ(CounterValue(server, "net.busy"), 2u);
  EXPECT_EQ(CounterValue(server, "net.requests"), 4u);
  EXPECT_EQ(CounterValue(server, "net.replies"), 4u);
}

TEST(NetServer, DrainFlushesEveryInFlightReply) {
  NetServerOptions options;
  options.backend.system = "cache";
  LockServer server(options);
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  // 2 ms per command: the 40-deep pipeline takes ~80 ms to serve, so the
  // Drain below lands while the burst is demonstrably still in flight.
  ScopedFailpoints slow("scenario/op=always~2000000", 1);
  std::string burst;
  for (int i = 0; i < 40; ++i) {
    RespAppendCommand(&burst, {"SET", NumberedKey("k", i), "v"});
  }
  client.SendRaw(burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Drain();
  const std::vector<RespReply> replies = client.ReadUntilEof();
  ASSERT_EQ(replies.size(), 40u);  // nothing lost, then EOF
  for (const RespReply& reply : replies) {
    EXPECT_EQ(reply.text, "OK");
  }
  client.Close();
  server.Join();
  EXPECT_EQ(CounterValue(server, "net.requests"), 40u);
  EXPECT_EQ(CounterValue(server, "net.replies"), 40u);
  EXPECT_EQ(CounterValue(server, "net.conn.accepted"), CounterValue(server, "net.conn.closed"));
}

TEST(NetServer, LoadgenDrivesServerInProcess) {
  NetServerOptions options;
  options.backend.system = "cache";
  options.workers = 2;
  LockServer server(options);
  server.Start();
  LoadgenOptions load;
  load.port = server.port();
  load.connections = 2;
  load.pipeline = 8;
  load.duration_ms = 200;
  load.threads = 1;
  const LoadgenResult result = RunLoadgen(load);
  EXPECT_GT(result.requests, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.latency_ns.count(), result.requests);
  const std::string json = result.ToJson();
  EXPECT_NE(json.find("\"requests_per_s\""), std::string::npos);
  server.Drain();
  server.Join();
  EXPECT_EQ(CounterValue(server, "net.requests"), result.requests);
  EXPECT_EQ(CounterValue(server, "net.replies"), result.requests);
}

}  // namespace
}  // namespace lockin
