// Unit tests for the native futex wrappers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/futex/futex.hpp"

namespace lockin {
namespace {

TEST(Futex, WaitReturnsStaleWhenValueChanged) {
  std::atomic<std::uint32_t> word{1};
  // Expected 0, actual 1: must return immediately with kValueStale.
  EXPECT_EQ(FutexWait(&word, 0), FutexWaitResult::kValueStale);
}

TEST(Futex, TimedWaitTimesOut) {
  std::atomic<std::uint32_t> word{0};
  const auto result = FutexWaitTimeout(&word, 0, 5'000'000);  // 5 ms
  EXPECT_EQ(result, FutexWaitResult::kTimedOut);
}

TEST(Futex, WakeWithNoSleepersReturnsZero) {
  std::atomic<std::uint32_t> word{0};
  EXPECT_EQ(FutexWake(&word, 1), 0);
}

TEST(Futex, WakeUnblocksSleeper) {
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    while (word.load() == 0) {
      if (FutexWait(&word, 0) == FutexWaitResult::kValueStale) {
        break;
      }
    }
    woke.store(true);
  });
  // Let the sleeper block, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  word.store(1);
  FutexWake(&word, 1);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(Futex, CountedWrappersAccount) {
  std::atomic<std::uint32_t> word{1};
  FutexStats stats;
  // A stale wait is a sleep miss.
  EXPECT_EQ(FutexWaitCounted(&word, 0, &stats), FutexWaitResult::kValueStale);
  EXPECT_EQ(stats.sleeps.load(), 1u);
  EXPECT_EQ(stats.sleep_misses.load(), 1u);

  // A timed-out wait is a timeout.
  word.store(0);
  EXPECT_EQ(FutexWaitTimeoutCounted(&word, 0, 2'000'000, &stats), FutexWaitResult::kTimedOut);
  EXPECT_EQ(stats.timeouts.load(), 1u);
  EXPECT_EQ(stats.sleeps.load(), 2u);

  FutexWakeCounted(&word, 1, &stats);
  EXPECT_EQ(stats.wake_calls.load(), 1u);
  EXPECT_EQ(stats.threads_woken.load(), 0u);

  stats.Reset();
  EXPECT_EQ(stats.sleeps.load(), 0u);
  EXPECT_EQ(stats.wake_calls.load(), 0u);
}

TEST(Futex, WakeCountsWokenThreads) {
  std::atomic<std::uint32_t> word{0};
  FutexStats stats;
  constexpr int kSleepers = 3;
  std::atomic<int> awake{0};
  std::vector<std::thread> threads;
  threads.reserve(kSleepers);
  for (int i = 0; i < kSleepers; ++i) {
    threads.emplace_back([&] {
      while (word.load() == 0) {
        if (FutexWait(&word, 0) == FutexWaitResult::kValueStale) {
          break;
        }
      }
      awake.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  word.store(1);
  int woken = 0;
  // Sleepers may not all have blocked yet; wake until all are accounted.
  for (int tries = 0; tries < 100 && woken < kSleepers; ++tries) {
    woken += FutexWakeCounted(&word, kSleepers, &stats);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (awake.load() == kSleepers) {
      break;
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(awake.load(), kSleepers);
  EXPECT_EQ(stats.threads_woken.load(), static_cast<std::uint64_t>(woken));
}

}  // namespace
}  // namespace lockin
