// Property-based tests: randomized reference checks and parameterized
// sweeps over the library's core invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include "src/lockin.hpp"
#include "src/sim/workload.hpp"

namespace lockin {
namespace {

// ---------------------------------------------------------------------------
// Histogram: percentiles against an exact sorted-vector reference, over
// several random distributions (seed-parameterized).
// ---------------------------------------------------------------------------
class HistogramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramProperty, PercentilesWithinRelativeErrorOfReference) {
  Xoshiro256 rng(GetParam());
  LatencyHistogram hist;
  std::vector<std::uint64_t> reference;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    // Mixture: mostly small values, a heavy log-uniform tail -- the shape
    // of real lock-acquire distributions.
    std::uint64_t value;
    if (rng.NextDouble() < 0.9) {
      value = 100 + rng.NextBelow(5000);
    } else {
      value = 1ULL << (10 + rng.NextBelow(24));
      value += rng.NextBelow(value);
    }
    hist.Record(value);
    reference.push_back(value);
  }
  std::sort(reference.begin(), reference.end());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999, 0.9999}) {
    const std::size_t rank = std::min(
        reference.size() - 1,
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(kSamples))) - 1);
    const double exact = static_cast<double>(reference[rank]);
    const double approx = static_cast<double>(hist.Percentile(q));
    // Log-bucket resolution: ~3.2% worst-case relative error (5 sub-bucket
    // bits), plus one-rank slack at the ends.
    EXPECT_LE(approx, exact * 1.001 + 1) << "q=" << q;
    EXPECT_GE(approx, exact * 0.96 - 1) << "q=" << q;
  }
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(hist.max(), reference.back());
  EXPECT_EQ(hist.min(), reference.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------------
// Power model: structural invariants over all states and counts.
// ---------------------------------------------------------------------------
TEST(PowerModelProperty, ActivityNeverDecreasesPower) {
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());
  for (int state_index = 0; state_index < kActivityStateCount; ++state_index) {
    const auto state = static_cast<ActivityState>(state_index);
    if (state == ActivityState::kSpinDvfsMin) {
      // Legitimately non-monotone: when the 21st+ thread lands on an
      // already-active core, both siblings now request the min VF point and
      // the whole core drops its frequency -- power falls (Figure 5's
      // DVFS-normal knee).
      continue;
    }
    double prev = 0;
    for (int threads = 0; threads <= 40; threads += 4) {
      std::vector<ActivityState> states(40, ActivityState::kInactive);
      for (int i = 0; i < threads; ++i) {
        states[static_cast<std::size_t>(i)] = state;
      }
      const double watts = model.TotalWatts(states);
      EXPECT_GE(watts + 1e-9, prev) << ActivityStateName(state) << " at " << threads;
      prev = watts;
    }
  }
}

TEST(PowerModelProperty, BreakdownComponentsSumToTotal) {
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ActivityState> states(40);
    for (auto& s : states) {
      s = static_cast<ActivityState>(rng.NextBelow(kActivityStateCount));
    }
    const std::vector<VfSetting> vf(40, rng.NextBelow(2) == 0 ? VfSetting::kMax
                                                              : VfSetting::kMin);
    const PowerModel::Breakdown b = model.ComponentWatts(states, vf);
    EXPECT_NEAR(b.total(), model.TotalWatts(states, vf), 1e-9);
    EXPECT_GE(b.package_w, b.cores_w);  // package power includes core power
    EXPECT_GE(b.dram_w, 24.9);          // DRAM background is always there
  }
}

TEST(PowerModelProperty, MinVfNeverAboveMaxVf) {
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ActivityState> states(40, ActivityState::kInactive);
    const int active = static_cast<int>(rng.NextBelow(41));
    for (int i = 0; i < active; ++i) {
      states[static_cast<std::size_t>(i)] = ActivityState::kWorking;
    }
    EXPECT_LE(model.TotalWatts(states, VfSetting::kMin),
              model.TotalWatts(states, VfSetting::kMax) + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Simulated workload invariants over a (lock x threads x cs) grid.
// ---------------------------------------------------------------------------
using GridParam = std::tuple<std::string, int, std::uint64_t>;

class WorkloadGridProperty : public ::testing::TestWithParam<GridParam> {};

TEST_P(WorkloadGridProperty, AccountingInvariantsHold) {
  const auto& [lock, threads, cs] = GetParam();
  WorkloadConfig config;
  config.threads = threads;
  config.cs_cycles = cs;
  config.non_cs_cycles = 150;
  config.duration_cycles = 8'000'000;
  config.seed = 3;
  const WorkloadResult r = RunLockWorkload(lock, config);

  // Work conservation: the lock cannot complete more critical sections than
  // the serial capacity of one lock allows.
  const double max_possible =
      static_cast<double>(config.duration_cycles) / std::max<std::uint64_t>(cs, 1);
  EXPECT_LE(static_cast<double>(r.total_acquires), max_possible + threads + 1);
  EXPECT_GT(r.total_acquires, 0u);

  // Handover kinds partition lock-side acquires.
  EXPECT_EQ(r.lock_stats.acquires,
            r.lock_stats.spin_handovers + r.lock_stats.futex_handovers +
                r.lock_stats.timeout_handovers);

  // Energy sanity: average power between idle and the machine maximum.
  EXPECT_GE(r.average_watts, 55.0);
  EXPECT_LE(r.average_watts, 260.0);
  EXPECT_NEAR(r.seconds, static_cast<double>(config.duration_cycles) / 2.8e9, 1e-9);

  // Latency records: one per completed acquire plus at most `threads`
  // censored waiters.
  EXPECT_GE(r.acquire_latency_cycles.count(), r.total_acquires);
  EXPECT_LE(r.acquire_latency_cycles.count(),
            r.total_acquires + static_cast<std::uint64_t>(threads));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadGridProperty,
    ::testing::Combine(::testing::Values("MUTEX", "TICKET", "MCS", "MUTEXEE"),
                       ::testing::Values(2, 8, 24, 48),
                       ::testing::Values(std::uint64_t{200}, std::uint64_t{2000},
                                         std::uint64_t{10000})),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_t" + std::to_string(std::get<1>(info.param)) + "_cs" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// POLY as a property: across random configurations, throughput and TPP
// correlate strongly for every lock.
// ---------------------------------------------------------------------------
TEST(PolyProperty, ThroughputTppCorrelationIsStrong) {
  std::vector<double> tput;
  std::vector<double> tpp;
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 24; ++trial) {
    WorkloadConfig config;
    config.threads = 1 + static_cast<int>(rng.NextBelow(16));
    config.locks = 1 << rng.NextBelow(5);
    config.cs_cycles = rng.NextBelow(6000);
    config.non_cs_cycles = rng.NextBelow(2000);
    config.duration_cycles = 6'000'000;
    config.seed = rng.Next();
    const char* locks[] = {"MUTEX", "TICKET", "MUTEXEE"};
    const WorkloadResult r = RunLockWorkload(locks[trial % 3], config);
    tput.push_back(r.throughput_per_s);
    tpp.push_back(r.tpp);
  }
  EXPECT_GT(PearsonCorrelation(tput, tpp), 0.85);
}

// ---------------------------------------------------------------------------
// Core-i7 desktop (the paper's second platform): same shapes on the
// smaller topology.
// ---------------------------------------------------------------------------
TEST(CoreI7Property, ShapesHoldOnTheDesktopTopology) {
  WorkloadEnv env;
  env.topology = Topology::PaperCoreI7();  // 1 socket x 4 cores x 2 HTs
  auto run = [&](const char* lock, int threads) {
    WorkloadConfig config;
    config.threads = threads;
    config.cs_cycles = 1000;
    config.non_cs_cycles = 100;
    config.duration_cycles = 14'000'000;
    return RunLockWorkload(lock, config, env);
  };
  // At full subscription (8 threads), the paper's ordering holds.
  const WorkloadResult mutex = run("MUTEX", 8);
  const WorkloadResult ticket = run("TICKET", 8);
  const WorkloadResult mutexee = run("MUTEXEE", 8);
  EXPECT_GT(ticket.throughput_per_s, mutex.throughput_per_s);
  EXPECT_GT(mutexee.tpp, mutex.tpp);
  // Oversubscription beyond 8 hardware threads collapses the fair lock.
  const WorkloadResult ticket16 = run("TICKET", 16);
  EXPECT_LT(ticket16.throughput_per_s, ticket.throughput_per_s * 0.25);
  const WorkloadResult mutexee16 = run("MUTEXEE", 16);
  EXPECT_GT(mutexee16.throughput_per_s, ticket16.throughput_per_s);
}

// ---------------------------------------------------------------------------
// Native locks: randomized hold/think times across every algorithm (the
// registry sweep complements test_locks' fixed-pattern tests).
// ---------------------------------------------------------------------------
class NativeLockFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(NativeLockFuzz, RandomizedHoldTimesPreserveExclusion) {
  LockBuildOptions options;
  options.spin.yield_after = 48;
  auto lock = MakeLock(GetParam(), options);
  ASSERT_NE(lock, nullptr);
  long long counter = 0;
  std::atomic<bool> violated{false};
  std::atomic<int> inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 5);
      for (int i = 0; i < 800; ++i) {
        lock->lock();
        if (inside.fetch_add(1) != 0) {
          violated.store(true);
        }
        SpinForCycles(rng.NextBelow(2000));
        counter = counter + 1;
        inside.fetch_sub(1);
        lock->unlock();
        if (rng.NextBelow(4) == 0) {
          SpinForCycles(rng.NextBelow(1000));
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter, 3200);
}

INSTANTIATE_TEST_SUITE_P(AllLocks, NativeLockFuzz,
                         ::testing::Values("MUTEX", "TAS", "TTAS", "TICKET", "MCS", "CLH",
                                           "TAS-BO", "COHORT", "MUTEXEE"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace lockin
