// Futex-model tests: the latencies of section 4.3 must come out of the
// model by construction, plus sleep misses, timeouts, kernel-bucket
// serialization and the deep-idle penalty.
#include <gtest/gtest.h>

#include "src/sim/futex_model.hpp"

namespace lockin {
namespace {

struct Fixture {
  SimEngine engine;
  SimMachine machine;
  SimFutex futex;

  Fixture()
      : machine(&engine, Topology::PaperXeon(), PowerParams::PaperXeon(),
                SimParams::PaperXeon()),
        futex(&machine) {}

  int NewThread() {
    const int tid = machine.AddThread();
    machine.Start(tid);
    return tid;
  }
};

TEST(SimFutex, SleepBlocksUntilWake) {
  Fixture f;
  const int sleeper = f.NewThread();
  const int waker = f.NewThread();

  SimTime woke_at = 0;
  f.futex.Sleep(sleeper, 0, [&](SimFutex::WakeReason reason) {
    EXPECT_EQ(reason, SimFutex::WakeReason::kSignalled);
    woke_at = f.engine.now();
  });
  SimTime wake_invoked = 0;
  f.machine.RunFor(waker, 100000, ActivityState::kWorking, [&] {
    wake_invoked = f.engine.now();
    f.futex.Wake(waker, 1, [] {});
  });
  f.engine.RunAll();

  ASSERT_GT(woke_at, 0u);
  // Turnaround: at least the paper's 7000 cycles from wake invocation.
  EXPECT_GE(woke_at - wake_invoked, 7000u);
  EXPECT_LE(woke_at - wake_invoked, 9000u);
}

TEST(SimFutex, SleepCallTakesSleepLatency) {
  Fixture f;
  const int sleeper = f.NewThread();
  f.futex.Sleep(sleeper, 0, [](SimFutex::WakeReason) {});
  f.engine.RunUntil(SimParams::PaperXeon().futex_sleep_cycles - 1);
  EXPECT_EQ(f.futex.sleeper_count(), 0);  // still entering the kernel
  EXPECT_EQ(f.futex.entering_count(), 1);
  f.engine.RunUntil(SimParams::PaperXeon().futex_sleep_cycles + 1);
  EXPECT_EQ(f.futex.sleeper_count(), 1);
  EXPECT_TRUE(f.machine.IsBlocked(sleeper));
}

TEST(SimFutex, WakeCallCostOnWakersPath) {
  Fixture f;
  f.NewThread();  // sleeper placeholder so ids differ
  const int waker = f.NewThread();
  SimTime done_at = 0;
  f.futex.Wake(waker, 1, [&] { done_at = f.engine.now(); });
  f.engine.RunAll();
  // No sleepers: still pays the wake call (bucket + 2700 cycles).
  EXPECT_GE(done_at, SimParams::PaperXeon().futex_wake_call_cycles);
}

TEST(SimFutex, WakeDuringSleepEntryIsAMiss) {
  // Section 4.4: waking faster than the sleep latency wastes both calls.
  Fixture f;
  const int sleeper = f.NewThread();
  const int waker = f.NewThread();
  bool missed = false;
  f.futex.Sleep(sleeper, 0, [&](SimFutex::WakeReason reason) {
    missed = reason == SimFutex::WakeReason::kSleepMiss;
  });
  // Wake after 500 cycles -- before the 2100-cycle sleep call completes.
  f.machine.RunFor(waker, 500, ActivityState::kWorking,
                   [&] { f.futex.Wake(waker, 1, [] {}); });
  f.engine.RunAll();
  EXPECT_TRUE(missed);
  EXPECT_EQ(f.futex.stats().sleep_misses, 1u);
  EXPECT_FALSE(f.machine.IsBlocked(sleeper));
}

TEST(SimFutex, TimeoutFiresWithoutWake) {
  Fixture f;
  const int sleeper = f.NewThread();
  bool timed_out = false;
  SimTime woke_at = 0;
  f.futex.Sleep(sleeper, 50000, [&](SimFutex::WakeReason reason) {
    timed_out = reason == SimFutex::WakeReason::kTimedOut;
    woke_at = f.engine.now();
  });
  f.engine.RunAll();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(f.futex.stats().timeouts, 1u);
  // Timeout counts from the moment of blocking; add the wake tail.
  EXPECT_GT(woke_at, 50000u);
}

TEST(SimFutex, WakeCancelsTimeout) {
  Fixture f;
  const int sleeper = f.NewThread();
  const int waker = f.NewThread();
  SimFutex::WakeReason reason = SimFutex::WakeReason::kTimedOut;
  f.futex.Sleep(sleeper, 10'000'000, [&](SimFutex::WakeReason r) { reason = r; });
  f.machine.RunFor(waker, 50000, ActivityState::kWorking,
                   [&] { f.futex.Wake(waker, 1, [] {}); });
  f.engine.RunAll();
  EXPECT_EQ(reason, SimFutex::WakeReason::kSignalled);
  EXPECT_EQ(f.futex.stats().timeouts, 0u);
}

TEST(SimFutex, DeepSleepPaysExtraTurnaround) {
  const SimParams params = SimParams::PaperXeon();
  auto turnaround_for_delay = [&](std::uint64_t delay) {
    Fixture f;
    const int sleeper = f.NewThread();
    const int waker = f.NewThread();
    SimTime woke_at = 0;
    SimTime wake_invoked = 0;
    f.futex.Sleep(sleeper, 0, [&](SimFutex::WakeReason) { woke_at = f.engine.now(); });
    f.machine.RunFor(waker, delay, ActivityState::kWorking, [&] {
      wake_invoked = f.engine.now();
      f.futex.Wake(waker, 1, [] {});
    });
    f.engine.RunAll();
    return woke_at - wake_invoked;
  };
  const std::uint64_t shallow = turnaround_for_delay(100'000);
  const std::uint64_t deep = turnaround_for_delay(20'000'000);
  EXPECT_GE(deep, shallow + params.deep_idle_penalty_cycles / 2);
  EXPECT_EQ(SimParams::PaperXeon().deep_idle_threshold_cycles, 600000u);
}

TEST(SimFutex, BucketSerializesConcurrentSleeps) {
  // Two sleep calls entering together: the second queues behind the first's
  // bucket hold, so it blocks later.
  Fixture f;
  const int s1 = f.NewThread();
  const int s2 = f.NewThread();
  f.futex.Sleep(s1, 0, [](SimFutex::WakeReason) {});
  f.futex.Sleep(s2, 0, [](SimFutex::WakeReason) {});
  const SimParams params = SimParams::PaperXeon();
  f.engine.RunUntil(params.futex_sleep_cycles + 10);
  EXPECT_EQ(f.futex.sleeper_count(), 1);  // only the first is asleep yet
  f.engine.RunUntil(params.futex_sleep_cycles + params.futex_sleep_bucket_cycles + 10);
  EXPECT_EQ(f.futex.sleeper_count(), 2);
}

TEST(SimFutex, WakeNWakesUpToN) {
  Fixture f;
  const int s1 = f.NewThread();
  const int s2 = f.NewThread();
  const int s3 = f.NewThread();
  const int waker = f.NewThread();
  int woken = 0;
  for (int tid : {s1, s2, s3}) {
    f.futex.Sleep(tid, 0, [&](SimFutex::WakeReason) { ++woken; });
  }
  f.machine.RunFor(waker, 100000, ActivityState::kWorking,
                   [&] { f.futex.Wake(waker, 2, [] {}); });
  f.engine.RunAll();
  EXPECT_EQ(woken, 2);
  EXPECT_EQ(f.futex.sleeper_count(), 1);
  EXPECT_EQ(f.futex.stats().threads_woken, 2u);
}

TEST(SimFutex, StatsAccumulateAndReset) {
  Fixture f;
  const int sleeper = f.NewThread();
  const int waker = f.NewThread();
  f.futex.Sleep(sleeper, 0, [](SimFutex::WakeReason) {});
  f.machine.RunFor(waker, 50000, ActivityState::kWorking,
                   [&] { f.futex.Wake(waker, 1, [] {}); });
  f.engine.RunAll();
  EXPECT_EQ(f.futex.stats().sleep_calls, 1u);
  EXPECT_EQ(f.futex.stats().wake_calls, 1u);
  f.futex.ResetStats();
  EXPECT_EQ(f.futex.stats().sleep_calls, 0u);
}

}  // namespace
}  // namespace lockin
