// Event-engine tests: ordering, cancellation, determinism, pool recycling.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/sim/engine.hpp"

namespace lockin {
namespace {

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.Schedule(30, [&] { order.push_back(3); });
  engine.Schedule(10, [&] { order.push_back(1); });
  engine.Schedule(20, [&] { order.push_back(2); });
  engine.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30u);
}

TEST(SimEngine, FifoAmongEqualTimestamps) {
  SimEngine engine;
  std::vector<int> order;
  engine.Schedule(5, [&] { order.push_back(1); });
  engine.Schedule(5, [&] { order.push_back(2); });
  engine.Schedule(5, [&] { order.push_back(3); });
  engine.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, NestedScheduling) {
  SimEngine engine;
  std::vector<SimTime> times;
  engine.Schedule(10, [&] {
    times.push_back(engine.now());
    engine.Schedule(5, [&] { times.push_back(engine.now()); });
  });
  engine.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool ran = false;
  const EventId id = engine.Schedule(10, [&] { ran = true; });
  engine.Cancel(id);
  engine.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SimEngine, CancelIsIdempotentAndSelective) {
  SimEngine engine;
  int runs = 0;
  const EventId a = engine.Schedule(10, [&] { ++runs; });
  engine.Schedule(20, [&] { ++runs; });
  engine.Cancel(a);
  engine.Cancel(a);
  engine.RunAll();
  EXPECT_EQ(runs, 1);
}

// Regression: cancelling events that already ran (or stale/bogus handles)
// must not accumulate tombstones or corrupt the pending count. The original
// engine inserted every cancelled id into an unordered_set unconditionally,
// so a long-running workload that cancels already-fired timers (quantum
// timers, futex timeouts) grew that set without bound and pending_events()
// underflowed.
TEST(SimEngine, CancelAfterExecutionDoesNotAccumulate) {
  SimEngine engine;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(engine.Schedule(static_cast<SimTime>(i), [] {}));
  }
  engine.RunAll();
  for (const EventId id : ids) {
    engine.Cancel(id);  // every one of these already ran
    engine.Cancel(id);
  }
  EXPECT_EQ(engine.cancel_backlog(), 0u);
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.executed_events(), 1000u);
}

TEST(SimEngine, CancelOfUnknownHandleIsNoOp) {
  SimEngine engine;
  engine.Cancel(0);
  engine.Cancel(123456789u);
  bool ran = false;
  engine.Schedule(5, [&] { ran = true; });
  EXPECT_EQ(engine.cancel_backlog(), 0u);
  engine.RunAll();
  EXPECT_TRUE(ran);
}

TEST(SimEngine, CancelBacklogDrainsLazily) {
  SimEngine engine;
  const EventId id = engine.Schedule(10, [] {});
  engine.Schedule(20, [] {});
  engine.Cancel(id);
  EXPECT_EQ(engine.cancel_backlog(), 1u);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.RunAll();
  EXPECT_EQ(engine.cancel_backlog(), 0u);
  EXPECT_EQ(engine.executed_events(), 1u);
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  SimEngine engine;
  int runs = 0;
  engine.Schedule(10, [&] { ++runs; });
  engine.Schedule(100, [&] { ++runs; });
  engine.RunUntil(50);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(engine.now(), 50u);
  engine.RunUntil(200);
  EXPECT_EQ(runs, 2);
}

TEST(SimEngine, RunUntilAdvancesClockWithNoEvents) {
  SimEngine engine;
  engine.RunUntil(1234);
  EXPECT_EQ(engine.now(), 1234u);
}

TEST(SimEngine, ExecutedEventCount) {
  SimEngine engine;
  for (int i = 0; i < 5; ++i) {
    engine.Schedule(static_cast<SimTime>(i), [] {});
  }
  engine.RunAll();
  EXPECT_EQ(engine.executed_events(), 5u);
}

TEST(SimEngine, SlotReuseInvalidatesOldHandles) {
  SimEngine engine;
  int runs = 0;
  const EventId first = engine.Schedule(10, [&] { ++runs; });
  engine.RunAll();
  // The slot is recycled: the next event likely lands in the same slot but
  // carries a new generation, so cancelling the stale handle must not kill
  // the new event.
  engine.Schedule(10, [&] { ++runs; });
  engine.Cancel(first);
  engine.RunAll();
  EXPECT_EQ(runs, 2);
}

TEST(SimEngine, SteadyStateRecyclesSlots) {
  SimEngine engine;
  // Warm the pool, then verify a sustained schedule/run cycle allocates
  // nothing new (slab count, queue capacity and spill count all frozen).
  std::uint64_t executed = 0;
  std::function<void()> reschedule;  // drives a self-rescheduling chain
  std::uint64_t remaining = 50000;
  reschedule = [&] {
    ++executed;
    if (--remaining > 0) {
      engine.Schedule(5, [&] { reschedule(); });
    }
  };
  engine.Schedule(1, [&] { reschedule(); });
  engine.RunUntil(10 * 5);  // warm up a few events
  const SimEngine::PoolStats before = engine.pool_stats();
  engine.RunAll();
  const SimEngine::PoolStats after = engine.pool_stats();
  EXPECT_EQ(executed, 50000u);
  EXPECT_EQ(after.slab_blocks, before.slab_blocks);
  EXPECT_EQ(after.queue_capacity, before.queue_capacity);
  EXPECT_EQ(after.slot_capacity, before.slot_capacity);
}

TEST(SimEngine, CountsHeapSpillsForOversizedClosures) {
  SimEngine engine;
  struct Fat {
    unsigned char payload[512] = {};
  };
  Fat fat;
  bool ran = false;
  engine.Schedule(1, [fat, &ran] {
    (void)fat;
    ran = true;
  });
  EXPECT_EQ(engine.pool_stats().heap_spills, 1u);
  engine.RunAll();
  EXPECT_TRUE(ran);
  // Small closures stay inline: no further spills.
  engine.Schedule(1, [&ran] { ran = !ran; });
  engine.RunAll();
  EXPECT_EQ(engine.pool_stats().heap_spills, 1u);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto run = []() {
    SimEngine engine;
    std::vector<SimTime> trace;
    // A little self-scheduling cascade.
    std::function<void(int)> step = [&](int depth) {
      trace.push_back(engine.now());
      if (depth > 0) {
        engine.Schedule(7, [&step, depth] { step(depth - 1); });
        engine.Schedule(3, [&step, depth] { step(depth - 2); });
      }
    };
    engine.Schedule(1, [&] { step(6); });
    engine.RunAll();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lockin
