// System-workload model tests: the per-system trend directions of
// Figures 13-15, run on shortened durations.
#include <gtest/gtest.h>

#include "src/sim/sysmodel.hpp"

namespace lockin {
namespace {

SystemWorkload Find(const std::string& system, const std::string& config) {
  for (const SystemWorkload& w : PaperSystemWorkloads()) {
    if (w.system == system && w.config == config) {
      return w;
    }
  }
  ADD_FAILURE() << system << "/" << config << " not found";
  return {};
}

SystemResult RunShort(SystemWorkload spec) {
  spec.workload.duration_cycles = 42'000'000;  // 15 ms: enough for trends
  return RunSystemWorkload(spec);
}

TEST(SysModel, HasAll17Configurations) {
  const auto specs = PaperSystemWorkloads();
  EXPECT_EQ(specs.size(), 17u);
  int hamster = 0, kyoto = 0, memcached = 0, mysql = 0, rocksdb = 0, sqlite = 0;
  for (const auto& w : specs) {
    if (w.system == "HamsterDB") ++hamster;
    if (w.system == "Kyoto") ++kyoto;
    if (w.system == "Memcached") ++memcached;
    if (w.system == "MySQL") ++mysql;
    if (w.system == "RocksDB") ++rocksdb;
    if (w.system == "SQLite") ++sqlite;
  }
  EXPECT_EQ(hamster, 3);
  EXPECT_EQ(kyoto, 3);
  EXPECT_EQ(memcached, 3);
  EXPECT_EQ(mysql, 2);
  EXPECT_EQ(rocksdb, 3);
  EXPECT_EQ(sqlite, 3);
}

TEST(SysModel, PaperReferencesPopulated) {
  for (const auto& w : PaperSystemWorkloads()) {
    EXPECT_GT(w.paper_throughput_ticket, 0.0) << w.system << "/" << w.config;
    EXPECT_GT(w.paper_throughput_mutexee, 0.0) << w.system << "/" << w.config;
  }
}

TEST(SysModel, KyotoBothReplacementsWinBig) {
  // Kyoto CACHE: paper 1.85x (TICKET) / 1.78x (MUTEXEE).
  const SystemResult r = RunShort(Find("Kyoto", "CACHE"));
  EXPECT_GT(r.ThroughputRatioTicket(), 1.2);
  EXPECT_GT(r.ThroughputRatioMutexee(), 1.2);
}

TEST(SysModel, MySqlTicketCollapses) {
  // Paper: TICKET at 0.01x of MUTEX on the MEM configuration; MUTEXEE ~1x.
  const SystemResult r = RunShort(Find("MySQL", "MEM"));
  EXPECT_LT(r.ThroughputRatioTicket(), 0.2);
  EXPECT_GT(r.ThroughputRatioMutexee(), 0.75);
}

TEST(SysModel, SqliteDegradesWithConnections) {
  const SystemResult c16 = RunShort(Find("SQLite", "16 CON"));
  const SystemResult c64 = RunShort(Find("SQLite", "64 CON"));
  // TICKET's relative throughput falls as oversubscription grows.
  EXPECT_LT(c64.ThroughputRatioTicket(), c16.ThroughputRatioTicket());
  // MUTEXEE stays near or above MUTEX while TICKET collapses.
  EXPECT_GT(c64.ThroughputRatioMutexee(), 0.85);
}

TEST(SysModel, RocksDbMovesLittle) {
  // Paper: RocksDB ratios within ~12% of MUTEX for both replacements.
  const SystemResult r = RunShort(Find("RocksDB", "WT/RD"));
  EXPECT_GT(r.ThroughputRatioTicket(), 0.8);
  EXPECT_LT(r.ThroughputRatioTicket(), 1.35);
  EXPECT_GT(r.ThroughputRatioMutexee(), 0.8);
  EXPECT_LT(r.ThroughputRatioMutexee(), 1.4);
}

TEST(SysModel, HamsterDbMutexeeTailBlowsUp) {
  // Figure 15: HamsterDB RD tail ~19-22x with MUTEXEE (unfairness), while
  // TICKET's tail is far below MUTEX's. In the simulation the starved
  // sleepers are few (4 worker threads), so the blow-up is visible in the
  // worst-case acquire latency rather than a fixed percentile.
  const SystemResult r = RunShort(Find("HamsterDB", "RD"));
  EXPECT_GT(r.MaxTailRatioMutexee(), 10.0);
  EXPECT_LT(r.TailRatioTicket(), 1.0);
}

TEST(SysModel, TppTracksThroughput) {
  // POLY: per configuration, the lock with better throughput has better or
  // equal TPP in the vast majority of cases. Check a handful.
  for (const char* name : {"CACHE", "HT DB"}) {
    const SystemResult r = RunShort(Find("Kyoto", name));
    if (r.ThroughputRatioTicket() > r.ThroughputRatioMutexee()) {
      EXPECT_GT(r.TppRatioTicket(), r.TppRatioMutexee() * 0.8) << name;
    } else {
      EXPECT_GT(r.TppRatioMutexee(), r.TppRatioTicket() * 0.8) << name;
    }
  }
}

}  // namespace
}  // namespace lockin
