// Machine-model tests: CPU-time accounting, scheduling, oversubscription,
// blocking, and energy integration in simulated time.
#include <gtest/gtest.h>

#include "src/sim/machine.hpp"

namespace lockin {
namespace {

struct Fixture {
  SimEngine engine;
  SimMachine machine;

  explicit Fixture(Topology topo = Topology::PaperXeon())
      : machine(&engine, std::move(topo), PowerParams::PaperXeon(), SimParams::PaperXeon()) {}
};

TEST(SimMachine, RunForCompletesAfterExactCycles) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  SimTime done_at = 0;
  f.machine.RunFor(tid, 1000, ActivityState::kWorking, [&] { done_at = f.engine.now(); });
  f.engine.RunAll();
  EXPECT_EQ(done_at, 1000u);
}

TEST(SimMachine, SequentialWorkAccumulates) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  SimTime done_at = 0;
  f.machine.RunFor(tid, 100, ActivityState::kWorking, [&] {
    f.machine.RunFor(tid, 200, ActivityState::kCritical, [&] { done_at = f.engine.now(); });
  });
  f.engine.RunAll();
  EXPECT_EQ(done_at, 300u);
}

TEST(SimMachine, BlockReleasesContext) {
  Fixture f(Topology(1, 1, 1));  // one hardware context
  const int a = f.machine.AddThread();
  const int b = f.machine.AddThread();
  f.machine.Start(a);
  f.machine.Start(b);  // b waits: no context free
  EXPECT_TRUE(f.machine.IsRunning(a));
  EXPECT_TRUE(f.machine.IsReady(b));

  SimTime b_done = 0;
  f.machine.RunFor(b, 100, ActivityState::kWorking, [&] { b_done = f.engine.now(); });
  f.machine.RunFor(a, 500, ActivityState::kWorking, [&] { f.machine.Block(a); });
  f.engine.RunAll();
  // b could only run after a blocked at t=500.
  EXPECT_EQ(b_done, 600u);
  EXPECT_TRUE(f.machine.IsBlocked(a));
  EXPECT_TRUE(f.machine.IsRunning(b));
}

TEST(SimMachine, UnblockAfterDelayResumes) {
  Fixture f(Topology(1, 2, 1));
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  SimTime resumed = 0;
  f.machine.RunFor(tid, 10, ActivityState::kWorking, [&] {
    f.machine.Block(tid);
    f.machine.Unblock(tid, 990);
    f.machine.NotifyWhenRunning(tid, [&] { resumed = f.engine.now(); });
  });
  f.engine.RunAll();
  EXPECT_EQ(resumed, 1000u);
}

TEST(SimMachine, CancelWorkSuppressesCallback) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  bool fired = false;
  f.machine.RunFor(tid, 1000, ActivityState::kWorking, [&] { fired = true; });
  f.engine.Schedule(500, [&] { f.machine.CancelWork(tid); });
  f.engine.RunAll();
  EXPECT_FALSE(fired);
}

TEST(SimMachine, InfiniteWorkNeverCompletes) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  bool fired = false;
  f.machine.RunFor(tid, SimMachine::kInfiniteWork, ActivityState::kSpinMbar,
                   [&] { fired = true; });
  f.engine.RunUntil(10'000'000);
  EXPECT_FALSE(fired);
}

TEST(SimMachine, OversubscriptionTimeSharesFairly) {
  // 2 threads on 1 context: each gets ~half the CPU time.
  Fixture f(Topology(1, 1, 1));
  const int a = f.machine.AddThread();
  const int b = f.machine.AddThread();
  f.machine.Start(a);
  f.machine.Start(b);
  const std::uint64_t quantum = SimParams::PaperXeon().scheduler_quantum_cycles;
  const std::uint64_t work = quantum * 4;
  SimTime a_done = 0;
  SimTime b_done = 0;
  f.machine.RunFor(a, work, ActivityState::kWorking, [&] { a_done = f.engine.now(); });
  f.machine.RunFor(b, work, ActivityState::kWorking, [&] { b_done = f.engine.now(); });
  // RunUntil, not RunAll: with runnable-but-workless threads the scheduler
  // keeps rotating them, so the event queue never drains by itself.
  f.engine.RunUntil(3 * work);
  ASSERT_GT(a_done, 0u);
  ASSERT_GT(b_done, 0u);
  // Both need 4 quanta of CPU; interleaved they finish within one quantum of
  // each other around t = 8 quanta.
  EXPECT_GT(a_done, work);
  EXPECT_GT(b_done, work);
  EXPECT_NEAR(static_cast<double>(a_done > b_done ? a_done - b_done : b_done - a_done), 0.0,
              static_cast<double>(quantum) * 1.5);
  EXPECT_NEAR(static_cast<double>(std::max(a_done, b_done)), static_cast<double>(2 * work),
              static_cast<double>(quantum) * 1.5);
}

TEST(SimMachine, NoPreemptionWhenUndersubscribed) {
  Fixture f(Topology(1, 2, 1));
  const int a = f.machine.AddThread();
  const int b = f.machine.AddThread();
  f.machine.Start(a);
  f.machine.Start(b);
  const std::uint64_t work = SimParams::PaperXeon().scheduler_quantum_cycles * 3;
  SimTime a_done = 0;
  f.machine.RunFor(a, work, ActivityState::kWorking, [&] { a_done = f.engine.now(); });
  f.machine.RunFor(b, work, ActivityState::kWorking, [] {});
  f.engine.RunAll();
  EXPECT_EQ(a_done, work);  // ran uninterrupted on its own context
}

TEST(SimMachine, NotifyWhenRunningFiresImmediatelyIfRunning) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  bool fired = false;
  f.machine.NotifyWhenRunning(tid, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(SimMachine, EnergyIdleMachineIsIdlePower) {
  Fixture f;
  f.engine.RunUntil(static_cast<SimTime>(SimParams::PaperXeon().cycles_per_second));  // 1 s
  const SimMachine::EnergyTotals energy = f.machine.Energy();
  EXPECT_NEAR(energy.seconds, 1.0, 1e-6);
  EXPECT_NEAR(energy.average_watts(), 55.5, 0.2);
}

TEST(SimMachine, EnergyTracksActivity) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  const std::uint64_t second = static_cast<std::uint64_t>(SimParams::PaperXeon().cycles_per_second);
  f.machine.RunFor(tid, second, ActivityState::kWorking, [&] { f.machine.Block(tid); });
  f.engine.RunUntil(2 * second);
  const SimMachine::EnergyTotals energy = f.machine.Energy();
  // First second: idle + one working core (~+14.8 W); second second: idle +
  // sleeping bookkeeping. Average ~ idle + ~7.5 W.
  EXPECT_GT(energy.average_watts(), 59.0);
  EXPECT_LT(energy.average_watts(), 68.0);
}

TEST(SimMachine, ResetEnergyZeroes) {
  Fixture f;
  f.engine.RunUntil(1'000'000);
  f.machine.ResetEnergy();
  const SimMachine::EnergyTotals energy = f.machine.Energy();
  EXPECT_NEAR(energy.seconds, 0.0, 1e-9);
}

TEST(SimMachine, ActiveContextsCountsRunners) {
  Fixture f;
  EXPECT_EQ(f.machine.ActiveContexts(), 0);
  const int a = f.machine.AddThread();
  const int b = f.machine.AddThread();
  f.machine.Start(a);
  f.machine.Start(b);
  EXPECT_EQ(f.machine.ActiveContexts(), 2);
}

// The incrementally-maintained power breakdown must track a full
// PowerModel recomputation through a busy mix of state changes (core
// wake-ups, SMT siblings, sleeps, DVFS-min spinning, socket transitions).
// The delta updates re-associate floating point, so the bound is a small
// epsilon rather than equality; drift beyond that means the incremental
// bookkeeping is wrong, not just reordered.
TEST(SimMachine, IncrementalPowerMatchesFullRecompute) {
  Fixture f;
  const int threads = 30;
  for (int t = 0; t < threads; ++t) {
    f.machine.AddThread();
  }
  for (int t = 0; t < threads; ++t) {
    f.machine.Start(t);
  }
  const ActivityState states[] = {
      ActivityState::kWorking,  ActivityState::kCritical, ActivityState::kSpinMbar,
      ActivityState::kKernel,   ActivityState::kSpinDvfsMin,
      ActivityState::kSpinPause, ActivityState::kMwait};
  std::uint64_t x = 88172645463325252ULL;  // xorshift: deterministic churn
  for (int step = 0; step < 2000; ++step) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const int tid = static_cast<int>(x % threads);
    const ActivityState state = states[(x >> 8) % (sizeof(states) / sizeof(states[0]))];
    f.machine.SetActivity(tid, state);
    if (step % 97 == 0) {
      f.machine.SetVf(step % 194 == 0 ? VfSetting::kMin : VfSetting::kMax);
    }
    EXPECT_LT(f.machine.PowerCacheDriftForTest(), 1e-9) << "at step " << step;
  }
}

TEST(SimMachine, StateSecondsTracksResidencyExactly) {
  Fixture f;
  const int tid = f.machine.AddThread();
  f.machine.Start(tid);
  f.machine.RunFor(tid, 1000, ActivityState::kWorking, [&] {
    f.machine.RunFor(tid, 3000, ActivityState::kKernel, nullptr);
  });
  f.engine.RunAll();
  const std::vector<double> seconds = f.machine.StateSeconds();
  const double cps = SimParams::PaperXeon().cycles_per_second;
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(ActivityState::kWorking)], 1000.0 / cps);
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(ActivityState::kKernel)], 3000.0 / cps);
}

}  // namespace
}  // namespace lockin
