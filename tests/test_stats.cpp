// Unit tests for src/stats: histogram percentiles, run summaries, tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "src/platform/rng.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/summary.hpp"
#include "src/stats/table.hpp"

namespace lockin {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-bucketed: percentile returns the bucket lower bound, within the
  // configured ~3% relative error.
  EXPECT_NEAR(static_cast<double>(h.P50()), 1000.0, 1000.0 * 0.04);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below the sub-bucket count land in the linear region.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.Percentile(1.0), 31u);
}

TEST(Histogram, PercentilesOfUniformRange) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.P50()), 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.P95()), 9500.0, 9500.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.P99()), 9900.0, 9900.0 * 0.05);
}

TEST(Histogram, RelativeErrorBounded) {
  LatencyHistogram h;
  for (std::uint64_t v : {7ULL, 123ULL, 4096ULL, 70001ULL, 12345678ULL, 999999999999ULL}) {
    h.Reset();
    h.Record(v);
    const double p = static_cast<double>(h.Percentile(0.5));
    EXPECT_LE(p, static_cast<double>(v));
    EXPECT_GE(p, static_cast<double>(v) * 0.96) << v;
  }
}

TEST(Histogram, MeanIsExact) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(300);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(Histogram, RecordNWeightsCount) {
  LatencyHistogram h;
  h.RecordN(10, 99);
  h.RecordN(1000000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.P95(), 1000u);           // the heavy mass dominates p95
  EXPECT_GT(h.Percentile(0.999), 900000u);  // tail sees the outlier
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(100);
    b.Record(10000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 10000u);
  EXPECT_NEAR(static_cast<double>(a.P50()), 100.0, 10000.0 * 0.04);
}

TEST(Histogram, MergeWithMismatchedEmptiness) {
  // Empty absorbing non-empty: adopts the other's extremes.
  LatencyHistogram empty_side;
  LatencyHistogram full;
  full.Record(100);
  full.Record(200);
  empty_side.Merge(full);
  EXPECT_EQ(empty_side.count(), 2u);
  EXPECT_EQ(empty_side.min(), 100u);
  EXPECT_EQ(empty_side.max(), 200u);

  // Non-empty absorbing empty: min/max/count must be untouched (an empty
  // histogram's sentinel min is ~0ULL and must not leak in).
  LatencyHistogram full2;
  full2.Record(100);
  full2.Record(200);
  LatencyHistogram empty2;
  full2.Merge(empty2);
  EXPECT_EQ(full2.count(), 2u);
  EXPECT_EQ(full2.min(), 100u);
  EXPECT_EQ(full2.max(), 200u);

  // Empty absorbing empty stays empty.
  LatencyHistogram a;
  LatencyHistogram b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

TEST(Histogram, PercentileExtremesOnSingleBucketData) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(1000);
  h.Record(1000);
  EXPECT_EQ(h.Percentile(0.0), h.min());
  EXPECT_EQ(h.Percentile(0.0), 1000u);
  EXPECT_EQ(h.Percentile(1.0), h.max());
  EXPECT_EQ(h.Percentile(1.0), 1000u);
  // Out-of-range quantiles clamp to the extremes.
  EXPECT_EQ(h.Percentile(-0.5), 1000u);
  EXPECT_EQ(h.Percentile(1.5), 1000u);
}

TEST(Histogram, BatchedRecordMatchesScalarPath) {
  // Deterministic pseudo-random values spanning the linear and log regions.
  std::uint64_t state = 42;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(SplitMix64(state) % 5000000);
  }
  LatencyHistogram scalar;
  for (const std::uint64_t v : values) {
    scalar.Record(v);
  }
  LatencyHistogram batched;
  // Uneven chunks exercise the flush boundaries.
  std::size_t offset = 0;
  for (const std::size_t chunk : {7u, 64u, 1u, 500u}) {
    batched.RecordBatch(values.data() + offset, chunk);
    offset += chunk;
  }
  batched.RecordBatch(values.data() + offset, values.size() - offset);
  batched.RecordBatch(values.data(), 0);  // empty batch is a no-op

  EXPECT_EQ(batched.count(), scalar.count());
  EXPECT_EQ(batched.min(), scalar.min());
  EXPECT_EQ(batched.max(), scalar.max());
  EXPECT_DOUBLE_EQ(batched.Mean(), scalar.Mean());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(batched.Percentile(q), scalar.Percentile(q)) << q;
  }
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ToStringMentionsPercentiles) {
  LatencyHistogram h;
  h.Record(5);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(Summary, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(Summary, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({2, 2, 2}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(StdDev({1}), 0.0);
}

TEST(Summary, PearsonCorrelation) {
  // Perfectly correlated.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-9);
  // Perfectly anti-correlated.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-9);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);
}

TEST(Summary, RepeatedTrialTakesMedian) {
  RepeatedTrial trial({"metric"}, 5);
  int call = 0;
  trial.Run([&call]() -> std::vector<double> {
    static const double values[] = {10, 50, 30, 20, 40};
    return {values[call++]};
  });
  EXPECT_EQ(call, 5);
  EXPECT_DOUBLE_EQ(trial.MedianOf(0), 30.0);
  EXPECT_DOUBLE_EQ(trial.MeanOf(0), 30.0);
}

TEST(Summary, RepeatedTrialRejectsWrongArity) {
  RepeatedTrial trial({"a", "b"}, 1);
  EXPECT_THROW(trial.Run([]() -> std::vector<double> { return {1.0}; }), std::runtime_error);
}

TEST(Table, PrintsHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddNumericRow("y", {2.5}, 1);
  std::ostringstream out;
  table.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, CsvFormat) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(Table, JsonQuotesStringsAndUnquotesNumbers) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1.5"});
  std::ostringstream out;
  table.PrintJson(out);
  EXPECT_EQ(out.str(), "[\n  {\"name\": \"x\", \"value\": 1.5}\n]\n");
}

TEST(Table, JsonEscapesControlCharacters) {
  // Control characters must round-trip as proper JSON escapes, not be
  // flattened to spaces (which silently corrupted cell contents).
  TextTable table({"cell"});
  table.AddRow({std::string("a\nb\tc\rd\be\ff") + '\x01' + "g"});
  std::ostringstream out;
  table.PrintJson(out);
  EXPECT_NE(out.str().find("\"a\\nb\\tc\\rd\\be\\ff\\u0001g\""), std::string::npos)
      << out.str();
}

TEST(Table, JsonEscapesQuotesAndBackslashes) {
  TextTable table({"cell"});
  table.AddRow({"say \"hi\" \\ bye"});
  std::ostringstream out;
  table.PrintJson(out);
  EXPECT_NE(out.str().find("\"say \\\"hi\\\" \\\\ bye\""), std::string::npos) << out.str();
}

TEST(Table, JsonDeduplicatesRepeatedHeaders) {
  TextTable table({"paper", "paper"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintJson(out);
  EXPECT_NE(out.str().find("\"paper_2\": 2"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace lockin
