// Negative-compilation case: a lock acquired through an LL_ACQUIRE function
// is still held when the function returns. Under clang -Wthread-safety
// -Werror this file MUST NOT compile (registered WILL_FAIL by
// CMakeLists.txt).
#include "src/locks/spinlocks.hpp"

namespace {

lockin::TtasLock g_lock;

}  // namespace

int main() {
  g_lock.lock();
  // The violation: no matching unlock() before the end of the function.
  return 0;
}
