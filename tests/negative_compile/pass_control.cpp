// Positive control for the negative-compilation harness: idiomatic use of
// every annotated pattern. This file MUST compile cleanly under clang
// -Wthread-safety -Werror; if it fails, the harness (not the fail_* cases)
// is broken.
#include "src/locks/lock_api.hpp"
#include "src/locks/spinlocks.hpp"

namespace {

// GUARDED_BY member accessed only through the scoped guard.
class Account {
 public:
  void Deposit(long amount) {
    lockin::LockGuard<lockin::TasLock> guard(lock_);
    balance_ += amount;
  }
  long Balance() {
    lockin::LockGuard<lockin::TasLock> guard(lock_);
    return balance_;
  }

 private:
  lockin::TasLock lock_;
  long balance_ LL_GUARDED_BY(lock_) = 0;
};

// REQUIRES function called with the lock visibly held.
lockin::TicketLock g_lock;
int g_value LL_GUARDED_BY(g_lock) = 0;

void BumpLocked() LL_REQUIRES(g_lock) { ++g_value; }

// Type-erased tier: HandleGuard over a LockHandle capability.
void HandlePath() {
  lockin::LockAdapter<lockin::TtasLock> handle("TTAS");
  lockin::HandleGuard guard(handle);
}

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  const long total = account.Balance();

  g_lock.lock();
  BumpLocked();
  g_lock.unlock();

  HandlePath();
  return static_cast<int>(total);
}
