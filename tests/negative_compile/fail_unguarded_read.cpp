// Negative-compilation case: reading an LL_GUARDED_BY member without
// holding its lock. Under clang -Wthread-safety -Werror this file MUST NOT
// compile; the CMake harness registers it with WILL_FAIL (see the
// negative-compilation section of CMakeLists.txt).
#include "src/locks/lock_api.hpp"
#include "src/locks/spinlocks.hpp"

namespace {

class Account {
 public:
  void Deposit(long amount) {
    lockin::LockGuard<lockin::TasLock> guard(lock_);
    balance_ += amount;
  }

  // The violation: balance_ is guarded by lock_, and nothing is held here.
  long UnsafePeek() { return balance_; }

 private:
  lockin::TasLock lock_;
  long balance_ LL_GUARDED_BY(lock_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return static_cast<int>(account.UnsafePeek());
}
