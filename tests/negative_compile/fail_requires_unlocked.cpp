// Negative-compilation case: calling an LL_REQUIRES(lock) function without
// holding the lock. Under clang -Wthread-safety -Werror this file MUST NOT
// compile (registered WILL_FAIL by CMakeLists.txt).
#include "src/locks/spinlocks.hpp"
#include "src/platform/thread_annotations.hpp"

namespace {

lockin::TicketLock g_lock;
int g_value LL_GUARDED_BY(g_lock) = 0;

void BumpLocked() LL_REQUIRES(g_lock) { ++g_value; }

}  // namespace

int main() {
  // The violation: g_lock is not held at this call.
  BumpLocked();
  return 0;
}
