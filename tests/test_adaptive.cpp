// Adaptive lock runtime tests: policy decisions under synthetic statistics,
// profiler epoch accounting, MUTEXEE budget retuning, epoch-switch safety
// under threads, the "ADAPTIVE" registry round-trip, and the simulated
// counterpart (MakeSimLock + phased workloads).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/adaptive/adaptive_lock.hpp"
#include "src/adaptive/lock_stats.hpp"
#include "src/adaptive/policy.hpp"
#include "src/locks/harness.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/sim/workload.hpp"
#include "src/systems/common.hpp"

namespace lockin {
namespace {

LockSiteSnapshot SnapshotWithWait(double wait_cycles, double sleep_ratio = 0.0) {
  LockSiteSnapshot snap;
  snap.epoch = 1;
  snap.acquires = 256;
  snap.avg_wait_cycles = wait_cycles;
  snap.avg_hold_cycles = 500;
  snap.sleep_ratio = sleep_ratio;
  snap.energy_per_acquire_joules =
      EstimateEnergyPerAcquire(wait_cycles, 500, sleep_ratio, AdaptiveEnergyParams{});
  return snap;
}

// --- Policy engine ----------------------------------------------------------

TEST(EwmaThresholdPolicyTest, ClassifiesTheThreeRegimes) {
  PolicyConfig config;
  EwmaThresholdPolicy policy(config);
  // Short waits: spinning wins (sleeping costs more than the wait itself).
  EXPECT_EQ(policy.Decide(SnapshotWithWait(500), AdaptiveBackend::kMutexee),
            AdaptiveBackend::kSpin);
  // Long waits: sleeping wins (spinning burns power for nothing).
  EXPECT_EQ(policy.Decide(SnapshotWithWait(200000), AdaptiveBackend::kMutexee),
            AdaptiveBackend::kSleep);
  // The middle ground: MUTEXEE's spin-then-sleep.
  EXPECT_EQ(policy.Decide(SnapshotWithWait(15000), AdaptiveBackend::kSpin),
            AdaptiveBackend::kMutexee);
}

TEST(EwmaThresholdPolicyTest, HeavyKernelInvolvementForcesSleep) {
  PolicyConfig config;
  EwmaThresholdPolicy policy(config);
  // Middle-ground waits but most acquisitions already reach the futex:
  // spinning first only adds power.
  EXPECT_EQ(policy.Decide(SnapshotWithWait(15000, /*sleep_ratio=*/0.8),
                          AdaptiveBackend::kMutexee),
            AdaptiveBackend::kSleep);
}

TEST(EwmaThresholdPolicyTest, SleepBackendCanStillReturnToMutexee) {
  PolicyConfig config;
  EwmaThresholdPolicy policy(config);
  // On kSleep the sleep ratio is inherently ~1 (FutexLock sleeps on nearly
  // every contended acquire); that must not pin the policy to kSleep once
  // waits fall back into the middle regime.
  EXPECT_EQ(policy.Decide(SnapshotWithWait(15000, /*sleep_ratio=*/0.95),
                          AdaptiveBackend::kSleep),
            AdaptiveBackend::kMutexee);
}

TEST(EwmaThresholdPolicyTest, HysteresisPreventsFlappingAtTheBoundary) {
  PolicyConfig config;
  config.spin_wait_max_cycles = 4000;
  config.hysteresis = 1.5;
  EwmaThresholdPolicy policy(config);
  // Just past the boundary: a spinning site stays spinning...
  EXPECT_EQ(policy.Decide(SnapshotWithWait(5000), AdaptiveBackend::kSpin),
            AdaptiveBackend::kSpin);
  // ...but a site already in the middle ground does not flip back to spin.
  EXPECT_EQ(policy.Decide(SnapshotWithWait(3500), AdaptiveBackend::kMutexee),
            AdaptiveBackend::kMutexee);
  // Far past the boundary, hysteresis yields.
  EXPECT_EQ(policy.Decide(SnapshotWithWait(8000), AdaptiveBackend::kSpin),
            AdaptiveBackend::kMutexee);
}

TEST(EpsilonGreedyPolicyTest, TriesEveryBackendThenConvergesToTheBest) {
  PolicyConfig config;
  config.kind = PolicyConfig::Kind::kEpsilonGreedy;
  config.epsilon = 0.1;
  config.epsilon_decay = 0.9;
  config.epsilon_min = 0.0;
  config.seed = 7;
  EpsilonGreedyPolicy policy(config);

  // Synthetic bandit: the spin backend yields 3x the TPP of the others.
  auto reward_for = [](AdaptiveBackend b) {
    LockSiteSnapshot snap;
    snap.acquires = 256;
    snap.energy_per_acquire_joules = b == AdaptiveBackend::kSpin ? 1e-6 : 3e-6;
    return snap;
  };

  AdaptiveBackend current = AdaptiveBackend::kMutexee;
  int spin_picks = 0;
  for (int round = 0; round < 200; ++round) {
    current = policy.Decide(reward_for(current), current);
    if (round >= 100 && current == AdaptiveBackend::kSpin) {
      ++spin_picks;
    }
  }
  // After the exploration phase the best arm dominates.
  EXPECT_GT(spin_picks, 80);
  EXPECT_GT(policy.value(AdaptiveBackend::kSpin),
            policy.value(AdaptiveBackend::kSleep));
}

TEST(MutexeeRetuneTest, BudgetsClampToTunerDerivedBounds) {
  MutexeeBudgetBounds bounds;
  bounds.spin_min_cycles = 4000;
  bounds.spin_max_cycles = 32000;
  bounds.grace_min_cycles = 128;
  bounds.grace_max_cycles = 1536;

  // Tiny waits: spin budget clamps to the lower bound.
  MutexeeBudgets low = RetuneMutexeeBudgets(SnapshotWithWait(100), bounds);
  EXPECT_EQ(low.spin_cycles, bounds.spin_min_cycles);
  // Huge waits: clamps to the upper bound.
  MutexeeBudgets high = RetuneMutexeeBudgets(SnapshotWithWait(1000000), bounds);
  EXPECT_EQ(high.spin_cycles, bounds.spin_max_cycles);
  // Middling waits: ~2x the EWMA.
  MutexeeBudgets mid = RetuneMutexeeBudgets(SnapshotWithWait(10000), bounds);
  EXPECT_EQ(mid.spin_cycles, 20000u);
  // Grace stretches with kernel involvement but stays bounded.
  MutexeeBudgets quiet = RetuneMutexeeBudgets(SnapshotWithWait(10000, 0.0), bounds);
  MutexeeBudgets busy = RetuneMutexeeBudgets(SnapshotWithWait(10000, 1.0), bounds);
  EXPECT_LT(quiet.grace_cycles, busy.grace_cycles);
  EXPECT_LE(busy.grace_cycles, bounds.grace_max_cycles);
}

TEST(MutexeeRetuneTest, BoundsDeriveFromTunerReport) {
  TunerReport report;
  report.futex_turnaround_cycles = 8000;
  report.line_transfer_cycles = 300;
  const MutexeeBudgetBounds bounds = MutexeeBudgetBounds::FromTunerReport(report);
  EXPECT_EQ(bounds.spin_min_cycles, 8000u);
  EXPECT_EQ(bounds.spin_max_cycles, 32000u);
  EXPECT_EQ(bounds.grace_min_cycles, 300u);
  EXPECT_EQ(bounds.grace_max_cycles, 1200u);
  EXPECT_LT(bounds.spin_min_cycles, bounds.spin_max_cycles);
  EXPECT_LT(bounds.grace_min_cycles, bounds.grace_max_cycles);
}

TEST(MutexeeRetuneTest, LiveLockAcceptsRetunedBudgets) {
  MutexeeLock lock;
  EXPECT_EQ(lock.spin_lock_budget(), MutexeeConfig{}.spin_mode_lock_cycles);
  lock.Retune(12345, 678);
  EXPECT_EQ(lock.spin_lock_budget(), 12345u);
  EXPECT_EQ(lock.spin_grace_budget(), 678u);
  lock.lock();
  lock.unlock();
}

// --- Profiler ---------------------------------------------------------------

TEST(LockSiteStatsTest, EpochDigestAggregatesAcquisitions) {
  AdaptiveEnergyParams energy;
  energy.cycles_per_second = 1e9;
  LockSiteStats stats(energy, /*ewma_alpha=*/1.0, /*contended_threshold_cycles=*/1000);

  stats.EndEpoch(0, 0);  // open the rate window
  stats.RecordAcquire(500, 2000);    // uncontended
  stats.RecordAcquire(5000, 2000);   // contended
  stats.RecordAcquire(5000, 2000);   // contended
  EXPECT_EQ(stats.epoch_acquires(), 3u);

  const LockSiteSnapshot snap = stats.EndEpoch(3000000, /*epoch_sleep_calls=*/1);
  EXPECT_EQ(snap.acquires, 3u);
  EXPECT_DOUBLE_EQ(snap.avg_wait_cycles, 5000.0);  // alpha=1: last sample
  EXPECT_NEAR(snap.contended_ratio, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(snap.sleep_ratio, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(snap.acquires_per_second, 3.0 / 0.003, 1.0);
  EXPECT_GT(snap.energy_per_acquire_joules, 0.0);
  EXPECT_GT(snap.EstimatedTpp(), 0.0);
  // The epoch counters reset; the EWMAs persist.
  EXPECT_EQ(stats.epoch_acquires(), 0u);
  EXPECT_EQ(stats.total_acquires(), 3u);
}

TEST(LockSiteStatsTest, EnergyEstimateOrdersTheRegimesLikeThePaper) {
  const AdaptiveEnergyParams params;
  // Spinning through a long wait costs more than sleeping through it
  // (Figure 3: busy-waiting power dwarfs the futex transition cost)...
  const double long_wait = 500000;
  EXPECT_GT(EstimateEnergyPerAcquire(long_wait, 1000, 0.0, params),
            EstimateEnergyPerAcquire(long_wait, 1000, 1.0, params));
  // ...while for a short wait the futex round trip dominates (Figure 6:
  // sleeping for waits cheaper than the sleep itself wastes energy).
  const double short_wait = 1000;
  EXPECT_LT(EstimateEnergyPerAcquire(short_wait, 1000, 0.0, params),
            EstimateEnergyPerAcquire(short_wait, 1000, 1.0, params));
}

// --- Adaptive lock ----------------------------------------------------------

TEST(AdaptiveLockTest, LockUnlockAndTryLockSemantics) {
  AdaptiveLock lock;
  for (int i = 0; i < 100; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
  lock.lock();
  std::thread other([&] { EXPECT_FALSE(lock.try_lock()); });
  other.join();
  lock.unlock();
}

TEST(AdaptiveLockTest, UncontendedSiteSettlesOnSpinning) {
  AdaptiveLockConfig config;
  config.epoch_acquires = 16;
  config.initial = AdaptiveBackend::kMutexee;
  config.spin.yield_after = 64;
  AdaptiveLock lock(config);
  for (int i = 0; i < 200; ++i) {
    lock.lock();
    lock.unlock();
  }
  // Uncontended acquires wait ~0 cycles; the EWMA policy must pick TTAS.
  EXPECT_EQ(lock.backend(), AdaptiveBackend::kSpin);
  EXPECT_GE(lock.backend_switches(), 1u);
  EXPECT_GT(lock.epochs(), 0u);
  EXPECT_GT(lock.last_snapshot().acquires, 0u);
}

// Deterministic policy that rotates backends every epoch: maximizes switch
// pressure for the safety test below.
class RotatingPolicy final : public AdaptivePolicy {
 public:
  AdaptiveBackend Decide(const LockSiteSnapshot&, AdaptiveBackend current) override {
    return static_cast<AdaptiveBackend>((static_cast<int>(current) + 1) %
                                        kAdaptiveBackendCount);
  }
  std::string name() const override { return "rotating"; }
};

TEST(AdaptiveLockTest, EpochSwitchingPreservesMutualExclusion) {
  AdaptiveLockConfig config;
  config.epoch_acquires = 32;  // switch every 32 acquisitions
  config.spin.yield_after = 64;
  AdaptiveLock lock(config, std::make_unique<RotatingPolicy>());

  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  long long counter = 0;  // plain: lost updates appear without exclusion
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        if (inside.fetch_add(1) != 0) {
          violated.store(true);
        }
        counter = counter + 1;
        inside.fetch_sub(1);
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
  // The rotating policy switched through all three backends many times.
  EXPECT_GT(lock.backend_switches(), 50u);
}

TEST(AdaptiveLockTest, BanditPolicyAlsoPreservesExclusionUnderThreads) {
  AdaptiveLockConfig config;
  config.epoch_acquires = 64;
  config.policy.kind = PolicyConfig::Kind::kEpsilonGreedy;
  config.spin.yield_after = 64;
  AdaptiveLock lock(config);

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  long long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

// --- Registry round-trip ----------------------------------------------------

TEST(AdaptiveRegistryTest, MakeLockBuildsAWorkingAdaptiveLock) {
  LockBuildOptions options;
  options.spin.yield_after = 64;
  auto lock = MakeLock("ADAPTIVE", options);
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->name(), "ADAPTIVE");
  lock->lock();
  lock->unlock();
  EXPECT_TRUE(lock->try_lock());
  lock->unlock();
}

TEST(AdaptiveRegistryTest, RegisteredAlongsideEveryStaticLock) {
  const auto names = RegisteredLockNames();
  bool found = false;
  for (const auto& name : names) {
    if (name == "ADAPTIVE") {
      found = true;
    }
    EXPECT_NE(MakeLock(name), nullptr) << name;
  }
  EXPECT_TRUE(found);
}

TEST(AdaptiveRegistryTest, SystemsFactoryUsesTheThrowingContract) {
  // The mini-systems must never receive a null lock: a typo'd name raises
  // at construction instead of segfaulting on first use.
  EXPECT_THROW(NamedLockFactory("NOPE")(), std::invalid_argument);
  EXPECT_NE(NamedLockFactory("ADAPTIVE")(), nullptr);
}

TEST(AdaptiveRegistryTest, RegistryKnobsReachTheBackends) {
  LockBuildOptions options;
  options.mutex_spin_tries = 100;  // PTHREAD_MUTEX_ADAPTIVE_NP-style
  options.spin.yield_after = 77;
  auto lock = MakeLock("ADAPTIVE", options);
  ASSERT_NE(lock, nullptr);
  const AdaptiveLock& adaptive =
      static_cast<LockAdapter<AdaptiveLock>*>(lock.get())->impl();
  EXPECT_EQ(adaptive.config().sleep.spin_tries, 100u);
  EXPECT_EQ(adaptive.config().spin.yield_after, 77u);
  EXPECT_EQ(adaptive.config().mutexee.sleep_timeout_ns, 0u);
}

TEST(AdaptiveRegistryTest, NativeHarnessRunsAdaptive) {
  NativeBenchConfig config;
  config.lock_name = "ADAPTIVE";
  config.threads = 2;
  config.cs_cycles = 200;
  config.non_cs_cycles = 100;
  config.duration_ms = 30;
  config.lock_options.spin.yield_after = 64;
  const NativeBenchResult result = RunNativeBench(config);
  EXPECT_GT(result.total_acquires, 100u);
  EXPECT_EQ(result.lock_name, "ADAPTIVE");
}

// --- Simulated counterpart --------------------------------------------------

TEST(SimAdaptiveTest, RunsInTheWorkloadDriver) {
  WorkloadConfig config;
  config.threads = 8;
  config.cs_cycles = 2000;
  config.non_cs_cycles = 200;
  config.duration_cycles = 8000000;
  const WorkloadResult result = RunLockWorkload("ADAPTIVE", config);
  EXPECT_EQ(result.lock_name, "ADAPTIVE");
  EXPECT_GT(result.total_acquires, 100u);
  EXPECT_GT(result.tpp, 0.0);
  // The delegating lock's aggregated stats cover every acquisition. Inner
  // locks count at grant time while the driver counts at critical-section
  // completion, so up to one grant per thread may be in flight at cutoff.
  EXPECT_GE(result.lock_stats.acquires, result.total_acquires);
  EXPECT_LE(result.lock_stats.acquires - result.total_acquires,
            static_cast<std::uint64_t>(config.threads));
}

TEST(SimAdaptiveTest, DeterministicAcrossRuns) {
  WorkloadConfig config;
  config.threads = 6;
  config.cs_cycles = 4000;
  config.non_cs_cycles = 400;
  config.duration_cycles = 4000000;
  const WorkloadResult a = RunLockWorkload("ADAPTIVE", config);
  const WorkloadResult b = RunLockWorkload("ADAPTIVE", config);
  EXPECT_EQ(a.total_acquires, b.total_acquires);
  EXPECT_DOUBLE_EQ(a.tpp, b.tpp);
}

TEST(PhasedWorkloadTest, PhaseTotalsSumToTheRun) {
  WorkloadConfig base;
  base.threads = 6;
  std::vector<WorkloadPhase> phases(2);
  phases[0].duration_cycles = 3000000;
  phases[0].cs_cycles = 400;
  phases[0].non_cs_cycles = 800;
  phases[1].duration_cycles = 3000000;
  phases[1].cs_cycles = 12000;
  phases[1].non_cs_cycles = 100;

  for (const char* name : {"MUTEXEE", "ADAPTIVE"}) {
    const PhasedWorkloadResult result = RunPhasedLockWorkload(name, base, phases);
    ASSERT_EQ(result.phases.size(), 2u) << name;
    std::uint64_t acquires = 0;
    double joules = 0.0;
    for (const PhaseResult& phase : result.phases) {
      EXPECT_GT(phase.acquires, 0u) << name;
      EXPECT_GT(phase.joules, 0.0) << name;
      EXPECT_GT(phase.tpp, 0.0) << name;
      acquires += phase.acquires;
      joules += phase.joules;
    }
    EXPECT_EQ(acquires, result.total_acquires) << name;
    EXPECT_NEAR(joules, result.joules, 1e-6) << name;
    EXPECT_GT(result.tpp, 0.0) << name;
  }
}

}  // namespace
}  // namespace lockin
