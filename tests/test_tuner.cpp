// MUTEXEE tuner tests: the derived configuration must respect the paper's
// structural constraints regardless of host noise.
#include <gtest/gtest.h>

#include <thread>

#include "src/locks/tuner.hpp"

namespace lockin {
namespace {

TEST(Tuner, ProducesBoundedConfig) {
  const TunerReport report = RunMutexeeTuner();
  // Spin budget: never below 4000 cycles ("spinning for more than 4000
  // cycles is crucial for throughput") and never absurd.
  EXPECT_GE(report.config.spin_mode_lock_cycles, 4000u);
  EXPECT_LE(report.config.spin_mode_lock_cycles, 65536u);
  // Grace window: bounded around the coherence latency.
  EXPECT_GE(report.config.spin_mode_grace_cycles, 128u);
  EXPECT_LE(report.config.spin_mode_grace_cycles, 2048u);
  // Mutex mode budgets are strictly smaller than spin mode.
  EXPECT_LT(report.config.mutex_mode_lock_cycles, report.config.spin_mode_lock_cycles);
  EXPECT_LT(report.config.mutex_mode_grace_cycles,
            report.config.spin_mode_grace_cycles + 1);
}

TEST(Tuner, MeasuresNonZeroLatencies) {
  const TunerReport report = RunMutexeeTuner();
  EXPECT_GT(report.futex_wake_call_cycles, 0u);
  EXPECT_GT(report.futex_turnaround_cycles, 0u);
  EXPECT_GT(report.line_transfer_cycles, 0u);
  // On multi-core hosts the turnaround includes the wake call plus
  // scheduling, so it exceeds the wake call alone. On a single CPU the
  // kernel can switch to the woken thread *during* the waker's syscall
  // (wake-up preemption), making the comparison meaningless.
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_GE(report.futex_turnaround_cycles, report.futex_wake_call_cycles);
  }
}

TEST(Tuner, ReportIsPrintable) {
  const TunerReport report = RunMutexeeTuner();
  const std::string text = report.ToString();
  EXPECT_NE(text.find("spin_mode_lock_cycles"), std::string::npos);
  EXPECT_NE(text.find("futex turnaround"), std::string::npos);
}

}  // namespace
}  // namespace lockin
