// Mini-system tests, parameterized over lock algorithms where concurrency
// is involved: the systems must behave identically regardless of the lock,
// which is precisely the property the paper's experiment relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/systems/cache.hpp"
#include "src/systems/cowlist.hpp"
#include "src/systems/graphstore.hpp"
#include "src/systems/kvstore.hpp"
#include "src/systems/minisql.hpp"
#include "src/systems/nosql.hpp"
#include "src/systems/walstore.hpp"

namespace lockin {
namespace {

class SystemsLockParam : public ::testing::TestWithParam<std::string> {
 protected:
  LockFactory Factory() const { return NamedLockFactory(GetParam(), /*yield_after=*/64); }
};

// snprintf-based key builder: `prefix + std::to_string(n)` trips GCC 12's
// -Wrestrict false positive (PR105329) once MemCache's string handling
// inlines into the test bodies.
std::string CacheKey(const char* prefix, long n) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof buf, "%s%ld", prefix, n);
  return std::string(buf, static_cast<std::size_t>(len));
}

// --- CowList -----------------------------------------------------------------

TEST_P(SystemsLockParam, CowListBasics) {
  CowList list(Factory());
  list.Add(1);
  list.Add(2);
  list.Add(3);
  EXPECT_EQ(list.Size(), 3u);
  std::int64_t v = 0;
  ASSERT_TRUE(list.Get(1, &v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(list.Set(1, 20));
  EXPECT_EQ(list.Sum(), 24);
  EXPECT_TRUE(list.RemoveAt(0));
  EXPECT_EQ(list.Size(), 2u);
  EXPECT_FALSE(list.Get(5, &v));
  EXPECT_FALSE(list.Set(5, 1));
  EXPECT_FALSE(list.RemoveAt(5));
}

TEST_P(SystemsLockParam, CowListConcurrentReadersSeeConsistentSnapshots) {
  CowList list(Factory());
  for (int i = 0; i < 64; ++i) {
    list.Add(0);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  // Writers keep the invariant "all elements equal" within one snapshot.
  std::thread writer([&] {
    for (int round = 1; round < 300; ++round) {
      for (int i = 0; i < 64; ++i) {
        list.Set(static_cast<std::size_t>(i), round);
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      const std::int64_t sum = list.Sum();
      // Sum of 64 equal values under per-element writes need not be a
      // multiple of 64, but any *single* Get must return a valid round.
      std::int64_t v = -1;
      if (list.Get(0, &v)) {
        if (v < 0 || v >= 300) {
          torn.store(true);
        }
      }
      (void)sum;
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(torn.load());
  std::int64_t v = 0;
  ASSERT_TRUE(list.Get(63, &v));
  EXPECT_EQ(v, 299);
}

// --- KvStore -----------------------------------------------------------------

TEST_P(SystemsLockParam, KvStoreBasics) {
  KvStore store(Factory());
  EXPECT_TRUE(store.Put(10, "ten"));
  EXPECT_FALSE(store.Put(10, "TEN"));
  std::string out;
  ASSERT_TRUE(store.Get(10, &out));
  EXPECT_EQ(out, "TEN");
  EXPECT_EQ(store.CountRange(0, 100), 1u);
  EXPECT_TRUE(store.Erase(10));
  EXPECT_FALSE(store.Get(10, &out));
}

TEST_P(SystemsLockParam, KvStoreConcurrentDisjointWriters) {
  KvStore store(Factory());
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        store.Put(static_cast<std::uint64_t>(t) * kPerThread + i, "v");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(store.Size(), kThreads * kPerThread);
  EXPECT_TRUE(store.CheckInvariants());
  EXPECT_EQ(store.CountRange(0, kThreads * kPerThread), kThreads * kPerThread);
}

// --- MemCache ----------------------------------------------------------------

TEST_P(SystemsLockParam, CacheSetGetDelete) {
  MemCache cache(Factory(), MemCache::Config{4, 1000});
  cache.Set("a", "1");
  cache.Set("b", "2");
  std::string out;
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, "1");
  EXPECT_TRUE(cache.Delete("a"));
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_FALSE(cache.Delete("a"));
  EXPECT_EQ(cache.Size(), 1u);
}

TEST_P(SystemsLockParam, CacheEvictsAtCapacity) {
  MemCache cache(Factory(), MemCache::Config{2, 50});
  for (int i = 0; i < 200; ++i) {
    cache.Set("key" + std::to_string(i), "v");
  }
  EXPECT_LE(cache.Size(), 60u);  // capacity + some slack during eviction
  EXPECT_GT(cache.evictions(), 100u);
}

TEST_P(SystemsLockParam, CacheConcurrentMixedWorkload) {
  MemCache cache(Factory(), MemCache::Config{8, 10000});
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = CacheKey("k", (t * 37 + i) % 500);
        if (i % 3 == 0) {
          cache.Set(key, std::to_string(i));
        } else {
          std::string out;
          if (cache.Get(key, &out)) {
            hits.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(hits.load(), 0);
  EXPECT_LE(cache.Size(), 500u);
}

// Shard routing must stay hash(key) % shards across storage reworks: the
// open-addressing table stores the hash per entry now, but the key -> stripe
// mapping the benches and the paper-shape contention rely on is unchanged
// from the original unordered_map layout (which routed by
// std::hash<std::string> modulo the shard count).
TEST(CacheShardRouting, StableAcrossStorageRework) {
  for (const std::string key :
       {"a", "k123", "key-with-longer-content", "", "k0", "k59999"}) {
    for (const std::size_t shards : {1u, 2u, 16u, 64u}) {
      EXPECT_EQ(MemCache::ShardIndexFor(key, shards),
                std::hash<std::string>{}(key) % shards)
          << key << "/" << shards;
    }
  }
}

TEST_P(SystemsLockParam, CachePerShardLruEvictsWithinBudget) {
  // 2 shards x 25-item budget: the segmented LRU caps each shard
  // independently, no global lock involved.
  MemCache cache(Factory(), MemCache::Config{2, 50, MemCache::LruMode::kPerShard});
  for (int i = 0; i < 200; ++i) {
    cache.Set("key" + std::to_string(i), "v");
  }
  EXPECT_LE(cache.Size(), 50u);
  EXPECT_GT(cache.evictions(), 100u);
  // Recently set keys survive more often than old ones; the very last key
  // must still be resident (it was just written under its shard's clock).
  std::string out;
  EXPECT_TRUE(cache.Get("key199", &out));
}

TEST_P(SystemsLockParam, CachePerShardConcurrentMixedWorkload) {
  MemCache cache(Factory(), MemCache::Config{8, 10000, MemCache::LruMode::kPerShard});
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = CacheKey("k", (t * 37 + i) % 500);
        if (i % 3 == 0) {
          cache.Set(key, std::to_string(i));
        } else {
          std::string out;
          if (cache.Get(key, &out)) {
            hits.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(hits.load(), 0);
  EXPECT_LE(cache.Size(), 500u);
}

TEST_P(SystemsLockParam, CacheDeleteReusesTombstonedSlots) {
  // Delete leaves a tombstone; re-inserting the same key must find it again
  // and Size must stay consistent (regression guard on the probe path).
  MemCache cache(Factory(), MemCache::Config{1, 1000});
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      cache.Set(CacheKey("k", i), CacheKey("r", round));
    }
    EXPECT_EQ(cache.Size(), 50u);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(cache.Delete(CacheKey("k", i)));
    }
    EXPECT_EQ(cache.Size(), 0u);
  }
  cache.Set("k1", "final");
  std::string out;
  ASSERT_TRUE(cache.Get("k1", &out));
  EXPECT_EQ(out, "final");
}

// --- NoSQL backends ----------------------------------------------------------

TEST_P(SystemsLockParam, NosqlBackendsBehaveIdentically) {
  CacheDb cache_db(Factory());
  HashDb hash_db(Factory());
  TreeDb tree_db(Factory());
  for (NosqlDb* db : std::vector<NosqlDb*>{&cache_db, &hash_db, &tree_db}) {
    db->Set(1, "one");
    db->Set(2, "two");
    db->Append(1, "!");
    std::string out;
    ASSERT_TRUE(db->Get(1, &out)) << db->backend();
    EXPECT_EQ(out, "one!") << db->backend();
    EXPECT_TRUE(db->Remove(2)) << db->backend();
    EXPECT_FALSE(db->Get(2, &out)) << db->backend();
    EXPECT_EQ(db->Count(), 1u) << db->backend();
  }
}

TEST_P(SystemsLockParam, NosqlConcurrentAppendsAllLand) {
  HashDb db(Factory());
  constexpr int kThreads = 4;
  constexpr int kAppends = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAppends; ++i) {
        db.Append(7, "x");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::string out;
  ASSERT_TRUE(db.Get(7, &out));
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads * kAppends));
}

// --- WalStore ----------------------------------------------------------------

TEST_P(SystemsLockParam, WalStorePutGetDelete) {
  WalStore store(Factory());
  store.Put(1, "one");
  store.Put(2, "two");
  std::string out;
  ASSERT_TRUE(store.Get(1, &out));
  EXPECT_EQ(out, "one");
  store.Delete(1);
  EXPECT_FALSE(store.Get(1, &out));
  EXPECT_EQ(store.MemtableSize(), 1u);
  EXPECT_EQ(store.wal_records(), 3u);
}

TEST_P(SystemsLockParam, WalStoreConcurrentWritersBatch) {
  WalStore store(Factory());
  constexpr int kThreads = 4;
  constexpr std::uint64_t kWrites = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kWrites; ++i) {
        store.Put(static_cast<std::uint64_t>(t) * kWrites + i, std::to_string(i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(store.MemtableSize(), kThreads * kWrites);
  EXPECT_EQ(store.wal_records(), kThreads * kWrites);
  // Group commit must have batched at least some writes (strictly fewer
  // batches than records unless there was zero concurrency).
  EXPECT_LE(store.batches(), store.wal_records());
  EXPECT_GT(store.batches(), 0u);
}

// --- MiniSql -----------------------------------------------------------------

TEST_P(SystemsLockParam, MiniSqlNewOrderAndStockLevel) {
  MiniSql db(Factory(), MiniSql::Config{2, 2, 100});
  Xoshiro256 rng(1);
  const std::uint64_t order = db.NewOrder(0, 1, {1, 2, 3}, &rng);
  EXPECT_NE(order, 0u);
  EXPECT_EQ(db.OrderCount(), 1u);
  EXPECT_GE(db.StockLevel(0, 1, 1000), 0);
}

TEST_P(SystemsLockParam, MiniSqlPaymentConsistency) {
  // TPC-C consistency condition: warehouse YTD equals the sum of its
  // districts' YTD after any number of concurrent payments.
  MiniSql db(Factory(), MiniSql::Config{1, 4, 50});
  constexpr int kThreads = 4;
  constexpr int kPayments = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPayments; ++i) {
        db.Payment(0, static_cast<int>(rng.NextBelow(4)), rng.NextBelow(100), 1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(db.WarehouseYtd(0), kThreads * kPayments * 1.0);
  EXPECT_DOUBLE_EQ(db.DistrictYtdSum(0), db.WarehouseYtd(0));
}

TEST_P(SystemsLockParam, MiniSqlConcurrentNewOrdersCount) {
  MiniSql db(Factory(), MiniSql::Config{2, 4, 200});
  constexpr int kThreads = 4;
  constexpr int kOrders = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < kOrders; ++i) {
        db.NewOrder(static_cast<int>(rng.NextBelow(2)), static_cast<int>(rng.NextBelow(4)),
                    {static_cast<int>(rng.NextBelow(200))}, &rng);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(db.OrderCount(), static_cast<std::uint64_t>(kThreads * kOrders));
}

// --- GraphStore --------------------------------------------------------------

TEST_P(SystemsLockParam, GraphStoreNodesAndLinks) {
  GraphStore graph(Factory(), GraphStore::Config{8});
  const std::uint64_t a = graph.AddNode("alice");
  const std::uint64_t b = graph.AddNode("bob");
  EXPECT_NE(a, b);
  std::string out;
  ASSERT_TRUE(graph.GetNode(a, &out));
  EXPECT_EQ(out, "alice");
  EXPECT_TRUE(graph.UpdateNode(a, "alice2"));
  EXPECT_FALSE(graph.UpdateNode(999999, "x"));

  graph.AddLink(a, 0, b);
  graph.AddLink(a, 0, b);  // duplicate ignored
  EXPECT_EQ(graph.CountLinks(a, 0), 1u);
  EXPECT_EQ(graph.GetLinkList(a, 0, 10).size(), 1u);
  EXPECT_TRUE(graph.DeleteLink(a, 0, b));
  EXPECT_FALSE(graph.DeleteLink(a, 0, b));
  EXPECT_EQ(graph.CountLinks(a, 0), 0u);
}

TEST_P(SystemsLockParam, GraphStoreConcurrentLinkWrites) {
  GraphStore graph(Factory(), GraphStore::Config{16});
  const std::uint64_t hub = graph.AddNode("hub");
  constexpr int kThreads = 4;
  constexpr int kLinks = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kLinks; ++i) {
        graph.AddLink(hub, t, static_cast<std::uint64_t>(i) + 1000);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(graph.CountLinks(hub, t), static_cast<std::size_t>(kLinks));
  }
  // Every write crossed the log lock exactly once.
  EXPECT_EQ(graph.log_records(), 1u + kThreads * kLinks);
}

INSTANTIATE_TEST_SUITE_P(Locks, SystemsLockParam,
                         ::testing::Values("MUTEX", "TICKET", "MUTEXEE", "MCS", "ADAPTIVE"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace lockin
