// Compile-time dispatch layer tests: the static tier must cover every
// registered concrete lock, configure it exactly as the registry does, and
// refuse the names that only exist behind the type-erased interface.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/locks/static_dispatch.hpp"

namespace lockin {
namespace {

TEST(StaticDispatch, CoversEveryRegisteredNameExceptAdaptive) {
  for (const std::string& name : RegisteredLockNames()) {
    if (name == "ADAPTIVE") {
      EXPECT_FALSE(IsStaticallyDispatchable(name))
          << "ADAPTIVE switches algorithms at run time; it cannot be devirtualized";
    } else {
      EXPECT_TRUE(IsStaticallyDispatchable(name)) << name;
    }
  }
}

TEST(StaticDispatch, RejectsUnknownNamesWithoutCallingVisitor) {
  bool called = false;
  const bool dispatched =
      WithConcreteLock("NOPE", LockBuildOptions{}, [&](auto, auto&&...) { called = true; });
  EXPECT_FALSE(dispatched);
  EXPECT_FALSE(called);
}

TEST(StaticDispatch, ConstructedLocksSatisfyLockable) {
  LockBuildOptions options;
  options.spin.yield_after = 64;
  for (const std::string& name : RegisteredLockNames()) {
    if (!IsStaticallyDispatchable(name)) {
      continue;
    }
    const bool dispatched = WithConcreteLock(name, options, [&](auto tag, auto&&... args) {
      using L = typename decltype(tag)::type;
      static_assert(Lockable<L>);
      L lock(args...);
      lock.lock();
      EXPECT_FALSE(lock.try_lock()) << name;
      lock.unlock();
      EXPECT_TRUE(lock.try_lock()) << name;
      lock.unlock();
    });
    EXPECT_TRUE(dispatched) << name;
  }
}

// The MUTEXEE / MUTEXEE-TO split: the plain name forces the sleep timeout
// off regardless of the options; the -TO name honors it. Both tiers must
// agree (the shared *ConfigFrom helpers are the single source of truth).
TEST(StaticDispatch, MutexeeTimeoutPlumbingMatchesRegistry) {
  LockBuildOptions options;
  options.mutexee.sleep_timeout_ns = 5'000'000;

  WithConcreteLock("MUTEXEE", options, [&](auto tag, auto&&... args) {
    using L = typename decltype(tag)::type;
    L lock(args...);
    if constexpr (std::is_same_v<L, MutexeeLock>) {
      EXPECT_EQ(lock.config().sleep_timeout_ns, 0u);
    } else {
      FAIL() << "MUTEXEE must dispatch to MutexeeLock";
    }
  });
  WithConcreteLock("MUTEXEE-TO", options, [&](auto tag, auto&&... args) {
    using L = typename decltype(tag)::type;
    L lock(args...);
    if constexpr (std::is_same_v<L, MutexeeLock>) {
      EXPECT_EQ(lock.config().sleep_timeout_ns, 5'000'000u);
    } else {
      FAIL() << "MUTEXEE-TO must dispatch to MutexeeLock";
    }
  });
}

TEST(StaticDispatch, MutexSpinTriesReachFutexLock) {
  LockBuildOptions options;
  options.mutex_spin_tries = 100;
  const FutexLockConfig config = MutexConfigFrom(options);
  EXPECT_EQ(config.spin_tries, 100u);
}

TEST(StaticDispatch, RegistryBuildsConcreteNamesThroughSameTable) {
  // MakeLock must succeed exactly for {statically dispatchable} + ADAPTIVE.
  for (const std::string& name : RegisteredLockNames()) {
    const std::unique_ptr<LockHandle> handle = MakeLock(name);
    ASSERT_NE(handle, nullptr) << name;
    EXPECT_EQ(handle->name(), name);
  }
  EXPECT_EQ(MakeLock("NOPE"), nullptr);
}

}  // namespace
}  // namespace lockin
