// Figure 14: normalized (to MUTEX) energy efficiency (TPP) of the six
// systems with TICKET and MUTEXEE.
//
// Paper: 33% average TPP improvement, driven by the throughput gains
// (POLY); SQLite additionally saves 15-18% power with MUTEXEE.
#include "bench/bench_common.hpp"
#include "src/sim/sysmodel.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"system", "config", "TICKET", "paper", "MUTEXEE", "paper"});
  double ticket_sum = 0;
  double mutexee_sum = 0;
  int count = 0;
  for (SystemWorkload spec : PaperSystemWorkloads()) {
    if (options.quick) {
      spec.workload.duration_cycles = 42'000'000;
    }
    const SystemResult r = RunSystemWorkload(spec);
    table.AddRow({spec.system, spec.config, FormatDouble(r.TppRatioTicket(), 2),
                  FormatDouble(spec.paper_tpp_ticket, 2),
                  FormatDouble(r.TppRatioMutexee(), 2),
                  FormatDouble(spec.paper_tpp_mutexee, 2)});
    ticket_sum += r.TppRatioTicket();
    mutexee_sum += r.TppRatioMutexee();
    ++count;
  }
  table.AddRow({"Avg", "", FormatDouble(ticket_sum / count, 2), "1.05",
                FormatDouble(mutexee_sum / count, 2), "1.28"});
  EmitTable(table, options, "Figure 14: normalized energy efficiency (TPP) of the six systems");
  return 0;
}
