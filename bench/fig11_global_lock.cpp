// Figure 11: throughput and TPP of a single (global) lock, 1000-cycle
// critical sections, across thread counts.
//
// Paper shapes: MCS best up to full subscription; TAS worst spinlock (its
// release fights the atomic storm); MUTEX well below the spinlocks (futex
// churn); MUTEXEE highest TPP (better throughput and lower power); the fair
// locks (TICKET, MCS) collapse past 40 threads, where oversubscription
// begins; MUTEXEE stays stable.
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  const std::vector<std::string> locks = {"MUTEX", "TAS", "TTAS", "TICKET", "MCS", "MUTEXEE"};
  TextTable tput({"threads", "MUTEX", "TAS", "TTAS", "TICKET", "MCS", "MUTEXEE"});
  TextTable tpp({"threads", "MUTEX", "TAS", "TTAS", "TICKET", "MCS", "MUTEXEE"});

  for (int threads : {1, 5, 10, 20, 30, 40, 50, 60}) {
    std::vector<double> tput_row;
    std::vector<double> tpp_row;
    for (const std::string& lock : locks) {
      WorkloadConfig config;
      config.threads = threads;
      config.cs_cycles = 1000;
      config.non_cs_cycles = 100;
      config.duration_cycles = options.quick ? 14'000'000 : 28'000'000;
      const WorkloadResult result = RunLockWorkload(lock, config);
      tput_row.push_back(result.ThroughputM());
      tpp_row.push_back(result.TppK());
    }
    tput.AddNumericRow(std::to_string(threads), tput_row, 3);
    tpp.AddNumericRow(std::to_string(threads), tpp_row, 2);
  }
  EmitTable(tput, options,
            "Figure 11 (left): single-lock throughput, Macq/s (paper: MCS best <=40 "
            "threads; fair locks collapse past 40; MUTEX lowest)");
  EmitTable(tpp, options,
            "Figure 11 (right): single-lock TPP, Kacq/Joule (paper: MUTEXEE best; MUTEX "
            "73% below TICKET at 40 threads)");
  return 0;
}
