// Section 6.1 kernel-time claim:
//
// "with MUTEX, SQLite spends more than 40% of the CPU time on the
//  raw spin lock function of the kernel due to contention on futex calls.
//  In contrast, MUTEXEE spends just 4% of the time on kernel locks, and
//  21% on the user-space lock functions."
//
// Reproduced from the simulator's per-activity-state time accounting on the
// SQLite 64-connection workload model.
#include "bench/bench_common.hpp"
#include "src/sim/sysmodel.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  SystemWorkload spec;
  for (const SystemWorkload& w : PaperSystemWorkloads()) {
    if (w.system == "SQLite" && w.config == "64 CON") {
      spec = w;
    }
  }
  if (options.quick) {
    spec.workload.duration_cycles = 42'000'000;
  }

  TextTable table({"lock", "kernel_time_share", "paper", "user_spin_share", "paper"});
  struct Row {
    const char* name;
    const char* paper_kernel;
    const char* paper_spin;
  };
  const Row rows[] = {{"MUTEX", ">40%", "-"}, {"MUTEXEE", "4%", "21%"}};
  for (const Row& row : rows) {
    const WorkloadResult r = RunLockWorkload(row.name, spec.workload);
    table.AddRow({row.name, FormatDouble(100.0 * r.kernel_time_share, 1) + "%",
                  row.paper_kernel, FormatDouble(100.0 * r.spin_time_share, 1) + "%",
                  row.paper_spin});
  }
  EmitTable(table, options,
            "Section 6.1: CPU-time share in the futex kernel path, SQLite 64 CON "
            "(paper: MUTEX >40% kernel; MUTEXEE 4% kernel / 21% user-space spinning)");
  return 0;
}
