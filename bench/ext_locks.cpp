// Extension-lock comparison (beyond the paper's six): backoff TAS and the
// two-level cohort lock next to the paper's spinlocks on the simulated
// Xeon. The related-work predictions to check:
//   * backoff rescues TAS from its atomic storm (Anderson '90): TAS-BO
//     should land between TAS and TTAS or better;
//   * cohort handovers avoid cross-socket transfers (Dice et al. '12):
//     COHORT should beat TICKET under contention while remaining fair
//     enough to avoid MUTEXEE-scale tails.
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  const std::vector<std::string> locks = {"TAS", "TAS-BO", "TTAS", "TICKET", "COHORT", "MCS"};
  TextTable tput({"threads", "TAS", "TAS-BO", "TTAS", "TICKET", "COHORT", "MCS"});
  TextTable tpp({"threads", "TAS", "TAS-BO", "TTAS", "TICKET", "COHORT", "MCS"});
  for (int threads : {4, 10, 20, 30, 40}) {
    std::vector<double> tput_row;
    std::vector<double> tpp_row;
    for (const std::string& lock : locks) {
      WorkloadConfig config;
      config.threads = threads;
      config.cs_cycles = 1000;
      config.non_cs_cycles = 100;
      config.duration_cycles = options.quick ? 14'000'000 : 28'000'000;
      const WorkloadResult r = RunLockWorkload(lock, config);
      tput_row.push_back(r.ThroughputM());
      tpp_row.push_back(r.TppK());
    }
    tput.AddNumericRow(std::to_string(threads), tput_row, 3);
    tpp.AddNumericRow(std::to_string(threads), tpp_row, 2);
  }
  EmitTable(tput, options,
            "Extension locks: throughput, Macq/s (expected: TAS-BO > TAS; COHORT >= "
            "TICKET under contention)");
  EmitTable(tpp, options, "Extension locks: TPP, Kacq/Joule");
  return 0;
}
