// Table 2: single-threaded (uncontested) lock throughput and TPP.
//
// Paper (Macq/s | Kacq/Joule, 100-cycle critical sections):
//   MUTEX 11.88|174.31  TAS 16.88|248.14  TTAS 16.98|249.41
//   TICKET 16.97|249.24 MCS 12.04|176.72  MUTEXEE 13.32|195.48
// Shape: locks perform inversely to their complexity; with no contention
// the throughput and TPP trends are identical.
//
// Prints the simulated reproduction and, below it, the *native* throughput
// of the real lock library on this host (no RAPL -> throughput only).
#include <memory>

#include "bench/bench_common.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/platform/cycles.hpp"
#include "src/sim/workload.hpp"

namespace lockin {
namespace {

double NativeUncontestedMacqPerS(const std::string& name) {
  auto lock = MakeLock(name);
  if (lock == nullptr) {
    return 0;
  }
  constexpr int kIters = 200000;
  // Warm up.
  for (int i = 0; i < 1000; ++i) {
    lock->lock();
    lock->unlock();
  }
  const std::uint64_t start = ReadCycles();
  for (int i = 0; i < kIters; ++i) {
    lock->lock();
    SpinForCycles(100);  // the paper's 100-cycle critical section
    lock->unlock();
  }
  const std::uint64_t cycles = ReadCycles() - start;
  const double seconds =
      static_cast<double>(CyclesToNs(cycles)) / 1e9;
  return kIters / seconds / 1e6;
}

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  const struct {
    const char* name;
    double paper_tput;
    double paper_tpp;
  } locks[] = {{"MUTEX", 11.88, 174.31}, {"TAS", 16.88, 248.14},  {"TTAS", 16.98, 249.41},
               {"TICKET", 16.97, 249.24}, {"MCS", 12.04, 176.72}, {"MUTEXEE", 13.32, 195.48}};

  TextTable sim({"lock", "tput_Macq/s", "paper", "TPP_Kacq/J", "paper"});
  for (const auto& lock : locks) {
    WorkloadConfig config;
    config.threads = 1;
    config.cs_cycles = 100;
    config.non_cs_cycles = 0;
    config.duration_cycles = options.quick ? 14'000'000 : 28'000'000;
    const WorkloadResult result = RunLockWorkload(lock.name, config);
    sim.AddRow({lock.name, FormatDouble(result.ThroughputM(), 2),
                FormatDouble(lock.paper_tput, 2), FormatDouble(result.TppK(), 1),
                FormatDouble(lock.paper_tpp, 1)});
  }
  EmitTable(sim, options, "Table 2 (simulated Xeon): uncontested throughput and TPP");

  TextTable native({"lock", "native_tput_Macq/s"});
  for (const auto& lock : locks) {
    native.AddNumericRow(lock.name, {NativeUncontestedMacqPerS(lock.name)}, 2);
  }
  native.AddNumericRow("PTHREAD", {NativeUncontestedMacqPerS("PTHREAD")}, 2);
  EmitTable(native, options,
            "Table 2 (native, this host): uncontested throughput of the real lock "
            "library (absolute values depend on the host clock)");
  return 0;
}
