// Figure 5: power of busy waiting with DVFS and monitor/mwait.
//
// Paper: VF-min spinning draws up to 1.7x less than VF-max; monitor/mwait
// ~1.5x less than conventional spinning; "DVFS-normal" (each spinning
// thread individually requesting the low VF point) only drops once both
// hyper-threads of a core lower their setting -- i.e., past 20 threads on
// the 20-core Xeon.
#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

namespace lockin {
namespace {

// DVFS-normal: spinning threads request min VF; idle siblings hold their
// cores at max (the PowerModel applies the shared-VF rule).
double DvfsNormalWatts(const PowerModel& model, int threads) {
  std::vector<ActivityState> states(model.topology().total_contexts(),
                                    ActivityState::kInactive);
  for (int i = 0; i < threads && i < static_cast<int>(states.size()); ++i) {
    states[static_cast<std::size_t>(i)] = ActivityState::kSpinDvfsMin;
  }
  // Inactive contexts keep requesting max VF.
  const std::vector<VfSetting> vf(states.size(), VfSetting::kMax);
  return model.TotalWatts(states, vf);
}

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());

  TextTable table({"threads", "VF-max_W", "VF-min_W", "DVFS-normal_W", "mwait_W"});
  for (int threads : {1, 5, 10, 15, 20, 25, 30, 35, 40}) {
    std::vector<ActivityState> spin(model.topology().total_contexts(),
                                    ActivityState::kInactive);
    for (int i = 0; i < threads; ++i) {
      spin[static_cast<std::size_t>(i)] = ActivityState::kSpinLocal;
    }
    const double vf_max = model.TotalWatts(spin, VfSetting::kMax);
    const double vf_min = model.TotalWatts(spin, VfSetting::kMin);
    table.AddNumericRow(std::to_string(threads),
                        {vf_max, vf_min, DvfsNormalWatts(model, threads),
                         WaitingPowerWatts(model, threads, ActivityState::kMwait)},
                        1);
  }
  EmitTable(table, options,
            "Figure 5: busy-wait power with DVFS and monitor/mwait (paper: VF-min up to "
            "1.7x below VF-max; mwait ~1.5x below spinning; DVFS-normal only drops past "
            "20 threads)");
  return 0;
}
