// Figure 8: throughput and TPP ratios of MUTEXEE over MUTEX across thread
// counts and critical-section sizes (single lock).
//
// Paper: MUTEXEE >= MUTEX nearly everywhere, with the largest wins (2-6x)
// for critical sections up to ~4000 cycles, where MUTEX pathologically
// sleeps although the queueing time is below the sleep latency.
//
// Extra ablations (design knobs from section 5.1):
//   --no-grace     disable the user-space unlock grace window
//   (the spin-budget sensitivity lives in the ratios across the cs axis)
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv, {"--no-grace"});
  const bool no_grace = options.HasExtra("--no-grace");

  WorkloadEnv env;
  env.lock_options.mutexee.enable_unlock_grace = !no_grace;

  const std::vector<int> thread_axis = {10, 20, 30, 40, 50, 60};
  const std::vector<std::uint64_t> cs_axis = {0, 1000, 2000, 4000, 8000, 16000};

  TextTable tput({"cs\\threads", "10", "20", "30", "40", "50", "60"});
  TextTable tpp({"cs\\threads", "10", "20", "30", "40", "50", "60"});
  for (std::uint64_t cs : cs_axis) {
    std::vector<double> tput_row;
    std::vector<double> tpp_row;
    for (int threads : thread_axis) {
      WorkloadConfig config;
      config.threads = threads;
      config.cs_cycles = cs;
      config.non_cs_cycles = 100;
      config.duration_cycles = options.quick ? 14'000'000 : 28'000'000;
      const WorkloadResult mutex = RunLockWorkload("MUTEX", config, env);
      const WorkloadResult mutexee = RunLockWorkload("MUTEXEE", config, env);
      tput_row.push_back(mutex.throughput_per_s > 0
                             ? mutexee.throughput_per_s / mutex.throughput_per_s
                             : 0);
      tpp_row.push_back(mutex.tpp > 0 ? mutexee.tpp / mutex.tpp : 0);
    }
    tput.AddNumericRow(std::to_string(cs), tput_row, 2);
    tpp.AddNumericRow(std::to_string(cs), tpp_row, 2);
  }
  const char* suffix = no_grace ? " [ablation: unlock grace disabled]" : "";
  EmitTable(tput, options,
            std::string("Figure 8 (left): MUTEXEE/MUTEX throughput ratio (paper: >1 nearly "
                        "everywhere; largest below cs=4000)") +
                suffix);
  EmitTable(tpp, options,
            std::string("Figure 8 (right): MUTEXEE/MUTEX TPP ratio (paper: up to ~6x)") +
                suffix);
  return 0;
}
