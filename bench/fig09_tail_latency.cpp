// Figure 9: 95th and 99.99th percentile acquire latency of a single MUTEX
// vs MUTEXEE across critical-section sizes (20 threads).
//
// Paper: up to ~4000-cycle critical sections MUTEXEE's p95 is far below
// MUTEX's (fast user-space handovers), while its p99.99 is orders of
// magnitude higher (long-sleeping threads) -- the fairness/efficiency trade.
// As the critical section grows the two locks converge (both unfair).
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"cs_cycles", "MUTEX_p95", "MUTEXEE_p95", "MUTEX_p9999", "MUTEXEE_p9999"});
  for (std::uint64_t cs : {0ULL, 1000ULL, 2000ULL, 4000ULL, 8000ULL, 12000ULL, 16000ULL}) {
    WorkloadConfig config;
    config.threads = 20;
    config.cs_cycles = cs;
    config.non_cs_cycles = 100;
    config.duration_cycles = options.quick ? 28'000'000 : 140'000'000;
    const WorkloadResult mutex = RunLockWorkload("MUTEX", config);
    const WorkloadResult mutexee = RunLockWorkload("MUTEXEE", config);
    table.AddNumericRow(std::to_string(cs),
                        {static_cast<double>(mutex.acquire_latency_cycles.P95()),
                         static_cast<double>(mutexee.acquire_latency_cycles.P95()),
                         static_cast<double>(mutex.acquire_latency_cycles.P9999()),
                         static_cast<double>(mutexee.acquire_latency_cycles.P9999())},
                        0);
  }
  EmitTable(table, options,
            "Figure 9: tail latency, MUTEX vs MUTEXEE at 20 threads (paper: MUTEXEE p95 "
            "much lower below cs=4000; p99.99 orders of magnitude higher)");
  return 0;
}
