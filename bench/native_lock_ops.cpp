// google-benchmark microbenchmarks of the *native* lock library on this
// host: uncontested acquire/release and a contended counter. Sanity checks
// that the real implementations behave (relative ordering of Table 2),
// independent of the simulator.
#include <benchmark/benchmark.h>

#include "src/locks/clh.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/mcs.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/pthread_adapter.hpp"
#include "src/locks/rwlock.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {
namespace {

// Spin configuration safe for small hosts: yield after a bounded spin.
SpinConfig BenchSpin() {
  SpinConfig config;
  config.yield_after = 256;
  return config;
}

template <typename Lock>
void UncontestedLoop(benchmark::State& state, Lock& lock) {
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Tas(benchmark::State& state) {
  TasLock lock(BenchSpin());
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Tas);

void BM_Ttas(benchmark::State& state) {
  TtasLock lock(BenchSpin());
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Ttas);

void BM_Ticket(benchmark::State& state) {
  TicketLock lock(BenchSpin());
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Ticket);

void BM_Mcs(benchmark::State& state) {
  McsLock lock(BenchSpin());
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Mcs);

void BM_Clh(benchmark::State& state) {
  ClhLock lock(BenchSpin());
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Clh);

void BM_FutexMutex(benchmark::State& state) {
  FutexLock lock;
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_FutexMutex);

void BM_Mutexee(benchmark::State& state) {
  MutexeeLock lock;
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Mutexee);

void BM_Pthread(benchmark::State& state) {
  PthreadMutex lock;
  UncontestedLoop(state, lock);
}
BENCHMARK(BM_Pthread);

void BM_RwLockRead(benchmark::State& state) {
  RwLock lock;
  for (auto _ : state) {
    lock.lock_shared();
    benchmark::DoNotOptimize(&lock);
    lock.unlock_shared();
  }
}
BENCHMARK(BM_RwLockRead);

// Contended counter across threads (google-benchmark threading).
void BM_MutexeeContended(benchmark::State& state) {
  static MutexeeLock lock;
  static long counter = 0;
  for (auto _ : state) {
    lock.lock();
    counter = counter + 1;
    lock.unlock();
  }
}
BENCHMARK(BM_MutexeeContended)->Threads(2)->Threads(4);

void BM_FutexMutexContended(benchmark::State& state) {
  static FutexLock lock;
  static long counter = 0;
  for (auto _ : state) {
    lock.lock();
    counter = counter + 1;
    lock.unlock();
  }
}
BENCHMARK(BM_FutexMutexContended)->Threads(2)->Threads(4);

}  // namespace
}  // namespace lockin

BENCHMARK_MAIN();
