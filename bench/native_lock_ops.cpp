// google-benchmark microbenchmarks of the *native* lock library on this
// host: uncontested acquire/release for every registered lock via both
// dispatch tiers, and a contended counter. Sanity checks that the real
// implementations behave (relative ordering of Table 2) and that the
// devirtualized tier (src/locks/static_dispatch.hpp) beats the type-erased
// LockHandle tier, independent of the simulator.
//
//   static/<NAME> -- templated loop, lock()/unlock() inlined
//   handle/<NAME> -- LockHandle loop, two virtual calls per iteration
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/locks/futex_lock.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/rwlock.hpp"
#include "src/locks/static_dispatch.hpp"

namespace lockin {
namespace {

// Spin configuration safe for small hosts: yield after a bounded spin.
LockBuildOptions TierBuildOptions() {
  LockBuildOptions options;
  options.spin.yield_after = 256;
  return options;
}

template <typename Lock>
void UncontestedLoop(benchmark::State& state, Lock& lock) {
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StaticTier(benchmark::State& state, const std::string& name) {
  WithConcreteLock(name, TierBuildOptions(), [&](auto tag, auto&&... args) {
    using L = typename decltype(tag)::type;
    L lock(args...);
    UncontestedLoop(state, lock);
  });
}

void BM_HandleTier(benchmark::State& state, const std::string& name) {
  const std::unique_ptr<LockHandle> lock = MakeLockOrThrow(name, TierBuildOptions());
  UncontestedLoop(state, *lock);
}

void RegisterTierBenchmarks() {
  for (const std::string& name : RegisteredLockNames()) {
    if (IsStaticallyDispatchable(name)) {
      benchmark::RegisterBenchmark(("static/" + name).c_str(),
                                   [name](benchmark::State& state) { BM_StaticTier(state, name); });
    }
    // ADAPTIVE only exists behind the type-erased interface; every other
    // name gets the handle row as the dispatch-overhead baseline.
    benchmark::RegisterBenchmark(("handle/" + name).c_str(),
                                 [name](benchmark::State& state) { BM_HandleTier(state, name); });
  }
}

void BM_RwLockRead(benchmark::State& state) {
  RwLock lock;
  for (auto _ : state) {
    lock.lock_shared();
    benchmark::DoNotOptimize(&lock);
    lock.unlock_shared();
  }
}
BENCHMARK(BM_RwLockRead);

// Contended counter across threads (google-benchmark threading).
void BM_MutexeeContended(benchmark::State& state) {
  static MutexeeLock lock;
  static long counter = 0;
  for (auto _ : state) {
    lock.lock();
    counter = counter + 1;
    lock.unlock();
  }
}
BENCHMARK(BM_MutexeeContended)->Threads(2)->Threads(4);

void BM_FutexMutexContended(benchmark::State& state) {
  static FutexLock lock;
  static long counter = 0;
  for (auto _ : state) {
    lock.lock();
    counter = counter + 1;
    lock.unlock();
  }
}
BENCHMARK(BM_FutexMutexContended)->Threads(2)->Threads(4);

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  lockin::RegisterTierBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
