// Figure 1: power consumption and energy efficiency of a copy-on-write
// array-list stress test with a mutex vs a spinlock.
//
// Paper: the spinlock version consumes up to 50% more power than mutex (the
// mutex saves up to 33% power by sleeping), but delivers ~2x the throughput
// and therefore ~25% higher energy efficiency -- the win-win/odd-trade
// example that motivates the whole study.
//
// Reproduced on the simulated Xeon: writers copy the array under one lock
// (a few-thousand-cycle critical section) and read between writes.
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"threads", "lock", "power_W", "tput_Mops", "TPP_Kops/J", "power_vs_mutex",
                   "TPP_vs_mutex"});
  for (int threads : {10, 20}) {
    WorkloadConfig config;
    config.threads = threads;
    config.cs_cycles = 3500;    // copying the backing array
    config.non_cs_cycles = 9000;  // wait-free reads between mutations
    config.randomize_cs = true;
    config.duration_cycles = options.quick ? 14'000'000 : 56'000'000;

    const WorkloadResult mutex = RunLockWorkload("MUTEX", config);
    const WorkloadResult spin = RunLockWorkload("TTAS", config);
    for (const WorkloadResult* r : {&mutex, &spin}) {
      table.AddRow({std::to_string(threads), r == &mutex ? "mutex" : "spinlock",
                    FormatDouble(r->average_watts, 1), FormatDouble(r->ThroughputM(), 3),
                    FormatDouble(r->TppK(), 2),
                    FormatDouble(r->average_watts / mutex.average_watts, 2),
                    FormatDouble(mutex.tpp > 0 ? r->tpp / mutex.tpp : 0, 2)});
    }
  }
  EmitTable(table, options,
            "Figure 1: COW array list, mutex vs spinlock (paper: spinlock ~1.5x power but "
            "~1.25x TPP via ~2x throughput)");
  return 0;
}
