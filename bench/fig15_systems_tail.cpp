// Figure 15: normalized (to MUTEX) tail latency of the systems.
//
// Paper (99th percentile of request latency): better throughput usually
// means a lower tail; the exceptions are MUTEXEE's unfairness on HamsterDB
// RD (~19-22x) and TICKET's oversubscribed configurations. One simulated
// request maps to a single lock acquisition here, so the percentile that
// corresponds to the paper's request-level p99 sits deeper in the acquire
// distribution: the table reports the p99.9 ratio and the worst-case ratio.
#include "bench/bench_common.hpp"
#include "src/sim/sysmodel.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"system", "config", "TICKET_p99.9", "MUTEXEE_p99.9", "MUTEXEE_worst",
                   "paper_p99(T)", "paper_p99(M)"});
  for (SystemWorkload spec : PaperSystemWorkloads()) {
    // Figure 15 plots 11 of the 17 configurations.
    if (spec.paper_tail_ticket == 0 && spec.paper_tail_mutexee == 0) {
      continue;
    }
    if (options.quick) {
      spec.workload.duration_cycles = 42'000'000;
    }
    const SystemResult r = RunSystemWorkload(spec);
    table.AddRow({spec.system, spec.config, FormatDouble(r.TailRatioTicket(), 2),
                  FormatDouble(r.TailRatioMutexee(), 2),
                  FormatDouble(r.MaxTailRatioMutexee(), 1),
                  FormatDouble(spec.paper_tail_ticket, 2),
                  FormatDouble(spec.paper_tail_mutexee, 2)});
  }
  EmitTable(table, options,
            "Figure 15: normalized tail latency (paper: HamsterDB RD ~19-22x with "
            "MUTEXEE; SQLite tails do not grow despite lock-level unfairness)");
  return 0;
}
