// Ablation study of MUTEXEE's design knobs (the paper's design sensitivity
// analysis, section 5.1):
//
//   * spin budget -- "spinning for more than 4000 cycles is crucial for
//     throughput: MUTEXEE with 500 cycles spin behaves similarly to MUTEX";
//   * unlock grace window -- "the 'wait in user space' functionality is
//     crucial for power consumption (and improves throughput): if we remove
//     it, MUTEXEE consumes similar power to MUTEX".
//
// Run at 20 threads on the simulated Xeon, 2000-cycle critical sections.
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  WorkloadConfig config;
  config.threads = 20;
  config.cs_cycles = 2000;
  config.non_cs_cycles = 100;
  config.duration_cycles = options.quick ? 14'000'000 : 56'000'000;

  const WorkloadResult mutex = RunLockWorkload("MUTEX", config);

  TextTable budget({"spin_budget_cycles", "tput_Kacq/s", "power_W", "TPP_Kacq/J",
                    "futex_wakes", "vs_MUTEX_tput"});
  for (std::uint64_t spin : {500ULL, 1000ULL, 2000ULL, 4000ULL, 8000ULL, 16000ULL, 32000ULL}) {
    WorkloadEnv env;
    env.lock_options.mutexee.spin_mode_lock_cycles = spin;
    const WorkloadResult r = RunLockWorkload("MUTEXEE", config, env);
    budget.AddRow({std::to_string(spin), FormatDouble(r.throughput_per_s / 1e3, 0),
                   FormatDouble(r.average_watts, 1), FormatDouble(r.TppK(), 1),
                   std::to_string(r.futex_stats.wake_calls),
                   FormatDouble(r.throughput_per_s / mutex.throughput_per_s, 2)});
  }
  budget.AddRow({"(MUTEX)", FormatDouble(mutex.throughput_per_s / 1e3, 0),
                 FormatDouble(mutex.average_watts, 1), FormatDouble(mutex.TppK(), 1),
                 std::to_string(mutex.futex_stats.wake_calls), "1.00"});
  EmitTable(budget, options,
            "Ablation: MUTEXEE spin budget (paper: <=500 cycles behaves like MUTEX; >4000 "
            "crucial for throughput)");

  // Grace matters when sleepers exist and the spinner pool drains: use
  // longer critical sections so waiters exhaust their spin budget.
  WorkloadConfig grace_config = config;
  grace_config.cs_cycles = 10000;
  grace_config.non_cs_cycles = 200;
  grace_config.randomize_cs = true;
  TextTable grace({"grace_window", "tput_Kacq/s", "power_W", "TPP_Kacq/J", "futex_wakes",
                   "wake_skips"});
  for (const bool enabled : {true, false}) {
    WorkloadEnv env;
    env.lock_options.mutexee.enable_unlock_grace = enabled;
    const WorkloadResult r = RunLockWorkload("MUTEXEE", grace_config, env);
    grace.AddRow({enabled ? "on (384 cycles)" : "off",
                  FormatDouble(r.throughput_per_s / 1e3, 0), FormatDouble(r.average_watts, 1),
                  FormatDouble(r.TppK(), 1), std::to_string(r.futex_stats.wake_calls),
                  std::to_string(r.lock_stats.wake_skips)});
  }
  EmitTable(grace, options,
            "Ablation: unlock grace window (paper: removing it brings power back to "
            "MUTEX-like levels; in this simulator arrivals rarely land inside the 384-cycle "
            "window, so the effect is smaller -- see EXPERIMENTS.md)");

  TextTable adapt({"adaptation", "long_cs_tput_Kacq/s", "long_cs_power_W", "mode_note"});
  for (const bool adaptive : {true, false}) {
    WorkloadConfig long_cs = config;
    long_cs.cs_cycles = 16000;  // long critical sections: mutex mode saves power
    WorkloadEnv env;
    if (!adaptive) {
      // Freeze the lock in spin mode by making the switch impossible.
      env.lock_options.mutexee.futex_ratio_threshold = 2.0;
    }
    const WorkloadResult r = RunLockWorkload("MUTEXEE", long_cs, env);
    adapt.AddRow({adaptive ? "on (mutex mode allowed)" : "off (pinned to spin mode)",
                  FormatDouble(r.throughput_per_s / 1e3, 0), FormatDouble(r.average_watts, 1),
                  adaptive ? "switches when futex ratio >30%" : "never switches"});
  }
  EmitTable(adapt, options,
            "Ablation: spin/mutex mode adaptation on long critical sections (paper: the "
            "modes save power on lengthy critical sections)");
  return 0;
}
