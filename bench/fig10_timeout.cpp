// Figure 10: throughput and TPP ratios of MUTEXEE *without* over *with*
// futex-sleep timeouts, as a function of the timeout.
//
// Paper: for an 8 us timeout MUTEXEE-without delivers up to 14x the
// throughput (24x the TPP) of MUTEXEE-with; for timeouts beyond ~16-32 ms
// the two converge -- the fairness/performance trade-off dial.
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"timeout", "threads", "tput_ratio(no/with)", "tpp_ratio(no/with)",
                   "max_latency_with_Mcyc"});
  const struct {
    const char* label;
    std::uint64_t ns;
  } timeouts[] = {{"8us", 8'000},        {"128us", 128'000},   {"2ms", 2'000'000},
                  {"32ms", 32'000'000},  {"512ms", 512'000'000}};
  for (const auto& timeout : timeouts) {
    for (int threads : {10, 20, 40}) {
      WorkloadConfig config;
      config.threads = threads;
      config.cs_cycles = 2000;  // the paper's Figure 10 workload
      config.non_cs_cycles = 100;
      config.duration_cycles = options.quick ? 14'000'000 : 56'000'000;

      WorkloadEnv with_timeout;
      with_timeout.lock_options.mutexee.sleep_timeout_ns = timeout.ns;
      const WorkloadResult timed = RunLockWorkload("MUTEXEE-TO", config, with_timeout);
      const WorkloadResult plain = RunLockWorkload("MUTEXEE", config);

      table.AddRow({timeout.label, std::to_string(threads),
                    FormatDouble(timed.throughput_per_s > 0
                                     ? plain.throughput_per_s / timed.throughput_per_s
                                     : 0,
                                 2),
                    FormatDouble(timed.tpp > 0 ? plain.tpp / timed.tpp : 0, 2),
                    FormatDouble(static_cast<double>(timed.acquire_latency_cycles.max()) / 1e6,
                                 1)});
    }
  }
  EmitTable(table, options,
            "Figure 10: MUTEXEE without/with timeouts (paper: short timeouts cost up to "
            "14x throughput / 24x TPP; converges past 16-32 ms)");
  return 0;
}
