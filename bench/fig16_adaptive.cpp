// Figure 16 (extension): the energy-aware adaptive lock runtime under phase
// changes.
//
// The paper's figures show that each waiting policy wins a different regime:
// spinning under light contention/short waits, sleeping (or MUTEXEE) under
// heavy contention/long waits. This benchmark alternates those regimes
// within one run -- low-contention phases (short critical sections, long
// private work) and high-contention phases (long critical sections, barely
// any private work) -- and compares the static locks against the ADAPTIVE
// runtime (src/adaptive/), which re-decides its backend per epoch.
//
// Expectation: TTAS loses the high-contention phases, MUTEX loses the
// low-contention ones (2x behind on TPP), while ADAPTIVE tracks the
// per-phase winner's TPP (acquires/Joule) within ~10% -- with no
// per-platform tuning and per-lock-site decisions. MUTEXEE's own two-mode
// adaptation keeps it competitive throughout, which is the paper's
// conclusion; the adaptive runtime generalizes that idea to the full
// spin/sleep/MUTEXEE policy space.
#include <algorithm>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const std::uint64_t phase_cycles = options.quick ? 14'000'000 : 28'000'000;

  const std::vector<std::string> static_locks = {"TTAS", "MUTEX", "MUTEXEE"};
  std::vector<std::string> all_locks = static_locks;
  all_locks.push_back("ADAPTIVE");

  WorkloadConfig base;
  base.threads = 10;
  base.locks = 1;

  WorkloadPhase low;  // light contention: short CS, mostly private work
  low.duration_cycles = phase_cycles;
  low.cs_cycles = 250;
  low.non_cs_cycles = 4000;

  WorkloadPhase high;  // heavy contention: long CS, barely any private work
  high.duration_cycles = phase_cycles;
  high.cs_cycles = 16000;
  high.non_cs_cycles = 100;

  const std::vector<WorkloadPhase> phases = {low, high, low, high};

  std::vector<PhasedWorkloadResult> results;
  results.reserve(all_locks.size());
  for (const std::string& name : all_locks) {
    results.push_back(RunPhasedLockWorkload(name, base, phases));
  }
  const PhasedWorkloadResult& adaptive = results.back();

  std::vector<std::string> header = {"phase"};
  for (const std::string& name : all_locks) {
    header.push_back(name + "_KTPP");
  }
  header.push_back("best_static");
  header.push_back("adp/best");

  TextTable tpp(header);
  TextTable tput({"phase", "TTAS_Macq", "MUTEX_Macq", "MUTEXEE_Macq", "ADAPTIVE_Macq"});
  for (std::size_t p = 0; p < phases.size(); ++p) {
    std::vector<double> row;
    double best = 0.0;
    std::size_t best_lock = 0;
    for (std::size_t l = 0; l < results.size(); ++l) {
      const double phase_tpp = results[l].phases[p].tpp;
      row.push_back(phase_tpp / 1e3);
      if (l < static_locks.size() && phase_tpp > best) {
        best = phase_tpp;
        best_lock = l;
      }
    }
    row.push_back(best > 0 ? adaptive.phases[p].tpp / best : 0.0);
    const std::string label =
        std::to_string(p + 1) + (phases[p].cs_cycles == low.cs_cycles ? ":low" : ":high");
    std::vector<std::string> cells = {label};
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      cells.push_back(FormatDouble(row[i], 1));
    }
    cells.push_back(static_locks[best_lock]);
    cells.push_back(FormatDouble(row.back(), 3));
    tpp.AddRow(cells);

    std::vector<double> tputs;
    for (const PhasedWorkloadResult& r : results) {
      tputs.push_back(r.phases[p].throughput_per_s / 1e6);
    }
    tput.AddNumericRow(label, tputs, 2);
  }

  EmitTable(tpp, options,
            "Figure 16 (left): TPP per phase, Kacq/Joule (adaptive tracks the best "
            "static lock in every phase; each static lock loses somewhere)");
  EmitTable(tput, options, "Figure 16 (right): throughput per phase (Macq/s)");

  TextTable overall({"lock", "total_Macq", "Joules", "KTPP"});
  for (const PhasedWorkloadResult& r : results) {
    overall.AddNumericRow(r.lock_name,
                          {static_cast<double>(r.total_acquires) / 1e6, r.joules,
                           r.tpp / 1e3},
                          2);
  }
  EmitTable(overall, options,
            "Figure 16 (bottom): whole-run totals (adaptive tracks the per-phase "
            "winner with no per-platform tuning; TTAS and MUTEX each lose a phase "
            "outright)");
  return 0;
}
