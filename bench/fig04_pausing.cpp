// Figure 4: power consumption and CPI of spin-loop pausing techniques.
//
// Paper's headline counterintuitive result (section 4.2): the x86 `pause`
// instruction *increases* the power of a local spin loop by up to 4%, while
// a memory barrier reduces it below even global spinning (and ~7% below
// pause). Expected ordering at every thread count:
//   local-pause > local > global > local-mbar.
#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());

  TextTable power({"threads", "global_W", "local_W", "local-pause_W", "local-mbar_W"});
  for (int threads : {1, 5, 10, 15, 20, 25, 30, 35, 40}) {
    power.AddNumericRow(std::to_string(threads),
                        {WaitingPowerWatts(model, threads, ActivityState::kSpinGlobal),
                         WaitingPowerWatts(model, threads, ActivityState::kSpinLocal),
                         WaitingPowerWatts(model, threads, ActivityState::kSpinPause),
                         WaitingPowerWatts(model, threads, ActivityState::kSpinMbar)},
                        1);
  }
  EmitTable(power, options,
            "Figure 4 (left): pausing-technique power (paper: pause +4% over local; mbar "
            "-7% under pause and below global)");

  TextTable cpi({"technique", "CPI"});
  for (auto [name, state] :
       {std::pair{"global", ActivityState::kSpinGlobal}, {"local", ActivityState::kSpinLocal},
        {"local-pause", ActivityState::kSpinPause}, {"local-mbar", ActivityState::kSpinMbar}}) {
    cpi.AddNumericRow(name, {WaitingCpi(state)}, 1);
  }
  EmitTable(cpi, options, "Figure 4 (right): CPI (paper: local ~1, pause 4.6, global ~530)");
  return 0;
}
