// Figure 6: latency of futex operations vs the delay between the sleep and
// wake-up invocations.
//
// Paper: the turnaround (wake invocation -> woken thread running) is at
// least ~7000 cycles and always above the wake-call latency; for low delays
// the wake call queues behind the in-flight sleep call's kernel lock; past
// ~600K-cycle delays the turnaround explodes because the context fell into
// a deep idle state.
//
// The simulated series is printed always; with a multi-core host the native
// microbenchmark (same shape, host latencies) runs too.
#include <thread>

#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"delay_cycles", "wake_call_cycles", "turnaround_cycles"});
  for (std::uint64_t delay :
       {100ULL, 316ULL, 1000ULL, 3160ULL, 10000ULL, 31600ULL, 100000ULL, 316000ULL,
        1000000ULL, 3160000ULL, 10000000ULL}) {
    const FutexLatencyPoint p = MeasureFutexLatency(delay, options.quick ? 5 : 15);
    table.AddNumericRow(std::to_string(delay), {p.wake_call_cycles, p.turnaround_cycles}, 0);
  }
  EmitTable(table, options,
            "Figure 6: futex latencies (paper: turnaround >= 7000 cycles, above the wake "
            "call; wake call expensive at low delays; explosion past ~600K-cycle delays)");
  return 0;
}
