// Figure 13: normalized (to MUTEX) throughput of the six systems with
// TICKET and MUTEXEE.
//
// Paper: swapping MUTEX out raises throughput by 31% on average; TICKET
// collapses on the oversubscribed MySQL (0.01x/0.16x) and SQLite 64-CON
// (0.25x) configurations; Kyoto gains the most (up to 1.85x).
#include "bench/bench_common.hpp"
#include "src/sim/sysmodel.hpp"
#include "src/systems/cache_workload.hpp"

namespace lockin {
namespace {

// Native Memcached-shape scale scenario: the same striped cache the
// simulated Memcached rows model, run on this host per LRU mode. The
// global-LRU rows are the paper-shape contention (every SET crosses one
// lock); the per-shard rows are the segmented-LRU scale mode.
void EmitNativeCacheSection(const BenchOptions& options) {
  TextTable table({"lru_mode", "mix", "Mops/s", "evictions"});
  for (const MemCache::LruMode mode :
       {MemCache::LruMode::kGlobalLock, MemCache::LruMode::kPerShard}) {
    const char* mode_name = mode == MemCache::LruMode::kGlobalLock ? "global" : "per_shard";
    for (const int get_percent : {10, 90}) {
      CacheWorkloadConfig config;
      config.lru_mode = mode;
      config.get_percent = get_percent;
      config.ops_per_thread = options.quick ? 20000 : 60000;
      const CacheWorkloadResult r = RunCacheWorkload(config);
      table.AddRow({mode_name, get_percent >= 50 ? "GET-heavy" : "SET-heavy",
                    FormatDouble(r.MopsPerS(), 3), std::to_string(r.evictions)});
    }
  }
  EmitTable(table, options,
            "Figure 13 (native, this host): MemCache by LRU mode (4 threads, MUTEX; global = "
            "paper-shape SET contention, per_shard = segmented-LRU scale scenario)");
}

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"system", "config", "TICKET", "paper", "MUTEXEE", "paper"});
  double ticket_sum = 0;
  double mutexee_sum = 0;
  int count = 0;
  for (SystemWorkload spec : PaperSystemWorkloads()) {
    if (options.quick) {
      spec.workload.duration_cycles = 42'000'000;
    }
    const SystemResult r = RunSystemWorkload(spec);
    table.AddRow({spec.system, spec.config, FormatDouble(r.ThroughputRatioTicket(), 2),
                  FormatDouble(spec.paper_throughput_ticket, 2),
                  FormatDouble(r.ThroughputRatioMutexee(), 2),
                  FormatDouble(spec.paper_throughput_mutexee, 2)});
    ticket_sum += r.ThroughputRatioTicket();
    mutexee_sum += r.ThroughputRatioMutexee();
    ++count;
  }
  table.AddRow({"Avg", "", FormatDouble(ticket_sum / count, 2), "1.06",
                FormatDouble(mutexee_sum / count, 2), "1.26"});
  EmitTable(table, options, "Figure 13: normalized throughput of the six systems");
  EmitNativeCacheSection(options);
  return 0;
}
