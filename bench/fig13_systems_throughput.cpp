// Figure 13: normalized (to MUTEX) throughput of the six systems with
// TICKET and MUTEXEE.
//
// Paper: swapping MUTEX out raises throughput by 31% on average; TICKET
// collapses on the oversubscribed MySQL (0.01x/0.16x) and SQLite 64-CON
// (0.25x) configurations; Kyoto gains the most (up to 1.85x).
#include "bench/bench_common.hpp"
#include "src/sim/sysmodel.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"system", "config", "TICKET", "paper", "MUTEXEE", "paper"});
  double ticket_sum = 0;
  double mutexee_sum = 0;
  int count = 0;
  for (SystemWorkload spec : PaperSystemWorkloads()) {
    if (options.quick) {
      spec.workload.duration_cycles = 42'000'000;
    }
    const SystemResult r = RunSystemWorkload(spec);
    table.AddRow({spec.system, spec.config, FormatDouble(r.ThroughputRatioTicket(), 2),
                  FormatDouble(spec.paper_throughput_ticket, 2),
                  FormatDouble(r.ThroughputRatioMutexee(), 2),
                  FormatDouble(spec.paper_throughput_mutexee, 2)});
    ticket_sum += r.ThroughputRatioTicket();
    mutexee_sum += r.ThroughputRatioMutexee();
    ++count;
  }
  table.AddRow({"Avg", "", FormatDouble(ticket_sum / count, 2), "1.06",
                FormatDouble(mutexee_sum / count, 2), "1.26"});
  EmitTable(table, options, "Figure 13: normalized throughput of the six systems");
  return 0;
}
