// Figure 13: normalized (to MUTEX) throughput of the six systems with
// TICKET and MUTEXEE.
//
// Paper: swapping MUTEX out raises throughput by 31% on average; TICKET
// collapses on the oversubscribed MySQL (0.01x/0.16x) and SQLite 64-CON
// (0.25x) configurations; Kyoto gains the most (up to 1.85x).
#include "bench/bench_common.hpp"
#include "src/sim/sysmodel.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

// Native Memcached-shape scale scenario: the same striped cache the
// simulated Memcached rows model, run on this host per LRU mode through the
// unified scenario driver (the registered "cache/*" scenarios keep the
// pre-API shard/capacity/key-space defaults, and latency recording stays
// off, so these rows are comparable across the refactor). The global-LRU
// rows are the paper-shape contention (every SET crosses one lock); the
// per-shard rows are the segmented-LRU scale mode.
void EmitNativeCacheSection(const BenchOptions& options) {
  struct Row {
    const char* scenario;
    const char* mode;
    const char* mix;
  };
  const Row rows[] = {
      {"cache/set-heavy", "global", "SET-heavy"},
      {"cache/get-heavy", "global", "GET-heavy"},
      {"cache/set-heavy-seglru", "per_shard", "SET-heavy"},
      {"cache/get-heavy-seglru", "per_shard", "GET-heavy"},
  };
  TextTable table({"lru_mode", "mix", "Mops/s", "evictions"});
  for (const Row& row : rows) {
    ScenarioConfig config;
    // Pinned explicitly (not via ScenarioConfig defaults): the title and the
    // pre-refactor comparability of these rows assume MUTEX at 4 threads.
    config.lock_name = "MUTEX";
    config.threads = 4;
    config.ops_per_thread = options.quick ? 20000 : 60000;
    config.record_latency = false;
    const ScenarioResult r = RunScenarioByName(row.scenario, config);
    table.AddRow({row.mode, row.mix, FormatDouble(r.MopsPerS(), 3),
                  FormatDouble(r.MetricOr("evictions"), 0)});
  }
  EmitTable(table, options,
            "Figure 13 (native, this host): MemCache by LRU mode (4 threads, MUTEX; global = "
            "paper-shape SET contention, per_shard = segmented-LRU scale scenario)");
}

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  TextTable table({"system", "config", "TICKET", "paper", "MUTEXEE", "paper"});
  double ticket_sum = 0;
  double mutexee_sum = 0;
  int count = 0;
  for (SystemWorkload spec : PaperSystemWorkloads()) {
    if (options.quick) {
      spec.workload.duration_cycles = 42'000'000;
    }
    const SystemResult r = RunSystemWorkload(spec);
    table.AddRow({spec.system, spec.config, FormatDouble(r.ThroughputRatioTicket(), 2),
                  FormatDouble(spec.paper_throughput_ticket, 2),
                  FormatDouble(r.ThroughputRatioMutexee(), 2),
                  FormatDouble(spec.paper_throughput_mutexee, 2)});
    ticket_sum += r.ThroughputRatioTicket();
    mutexee_sum += r.ThroughputRatioMutexee();
    ++count;
  }
  table.AddRow({"Avg", "", FormatDouble(ticket_sum / count, 2), "1.06",
                FormatDouble(mutexee_sum / count, 2), "1.26"});
  EmitTable(table, options, "Figure 13: normalized throughput of the six systems");
  EmitNativeCacheSection(options);
  return 0;
}
