// Section 5.1 table: MUTEX vs MUTEXEE vs MUTEXEE with a 4 ms timeout, at 20
// threads with 2000-cycle critical sections.
//
// Paper (Xeon):
//   lock             throughput   TPP          max latency
//   MUTEX            317 Kacq/s   4.0 Kacq/J     2.0 Mcycles
//   MUTEXEE          855 Kacq/s  10.9 Kacq/J   206.5 Mcycles
//   MUTEXEE timeout  474 Kacq/s   6.5 Kacq/J    12.0 Mcycles
#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  WorkloadConfig config;
  config.threads = 20;
  config.cs_cycles = 2000;
  config.non_cs_cycles = 100;
  config.duration_cycles = options.quick ? 28'000'000 : 140'000'000;

  WorkloadEnv timeout_env;
  timeout_env.lock_options.mutexee.sleep_timeout_ns = 4'000'000;  // 4 ms

  struct Row {
    const char* name;
    WorkloadResult result;
    double paper_tput;
    double paper_tpp;
    double paper_max;
  };
  Row rows[] = {
      {"MUTEX", RunLockWorkload("MUTEX", config), 317, 4.0, 2.0},
      {"MUTEXEE", RunLockWorkload("MUTEXEE", config), 855, 10.9, 206.5},
      {"MUTEXEE timeout", RunLockWorkload("MUTEXEE-TO", config, timeout_env), 474, 6.5, 12.0},
  };

  TextTable table({"lock", "tput_Kacq/s", "paper", "TPP_Kacq/J", "paper", "max_lat_Mcyc",
                   "paper"});
  for (const Row& row : rows) {
    table.AddRow({row.name, FormatDouble(row.result.throughput_per_s / 1e3, 0),
                  FormatDouble(row.paper_tput, 0), FormatDouble(row.result.TppK(), 1),
                  FormatDouble(row.paper_tpp, 1),
                  FormatDouble(static_cast<double>(row.result.acquire_latency_cycles.max()) / 1e6,
                               1),
                  FormatDouble(row.paper_max, 1)});
  }
  EmitTable(table, options,
            "Section 5.1 table: 20 threads, 2000-cycle critical sections (ordering: "
            "MUTEXEE > timeout > MUTEX in throughput/TPP; timeout bounds the max latency)");
  return 0;
}
