// Figure 7: power and communication throughput of sleeping, spinning, and
// spin-then-sleep (ss-T) for various quotas T.
//
// Paper: the more unfair the execution (larger T), the better the energy
// efficiency -- larger T lowers power (sleepers sleep long) and raises
// handover throughput (most handovers stay in user space). Pure spinning
// collapses with many threads; ss-10/ss-100 pay idle-to-active switching.
#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const std::uint64_t duration = options.quick ? 14'000'000 : 28'000'000;

  TextTable power({"threads", "sleep_W", "spin_W", "ss-1_W", "ss-10_W", "ss-100_W",
                   "ss-1000_W"});
  TextTable tput({"threads", "sleep_Mops", "spin_Mops", "ss-1_Mops", "ss-10_Mops",
                  "ss-100_Mops", "ss-1000_Mops"});
  for (int threads : {4, 10, 20, 30, 40}) {
    std::vector<double> watts;
    std::vector<double> mops;
    for (std::uint64_t quota :
         {std::uint64_t{0}, kSpinOnly, std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{100},
          std::uint64_t{1000}}) {
      const SpinThenSleepPoint p = MeasureSpinThenSleep(threads, quota, duration);
      watts.push_back(p.watts);
      mops.push_back(p.handovers_per_s / 1e6);
    }
    power.AddNumericRow(std::to_string(threads), watts, 1);
    tput.AddNumericRow(std::to_string(threads), mops, 2);
  }
  EmitTable(power, options,
            "Figure 7 (left): power (paper: larger T -> lower power; spinning most "
            "expensive)");
  EmitTable(tput, options,
            "Figure 7 (right): communication throughput (paper: ss-1000 highest, ~12-14 "
            "Mops/s; spin collapses under contention; sleep slowest)");
  return 0;
}
