// Figure 2: power-consumption breakdown on Xeon.
//
// Paper: total/package/cores/DRAM power of a memory-intensive benchmark vs
// the number of active hyper-threads, at the minimum and maximum
// voltage-frequency settings. Expected shape: 55.5 W idle; a 13.6 W step
// when the first core of a socket wakes (max VF); a knee at 20 threads when
// hyper-thread sharing begins; DRAM up to ~74 W, package up to ~132 W.
#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());

  for (const VfSetting vf : {VfSetting::kMin, VfSetting::kMax}) {
    TextTable table({"hyper-threads", "total_W", "package_W", "cores_W", "dram_W"});
    for (int threads = 0; threads <= 40; threads += 5) {
      const PowerBreakdownPoint p = PowerBreakdown(model, threads, vf);
      table.AddNumericRow(std::to_string(threads),
                          {p.total_w, p.package_w, p.cores_w, p.dram_w}, 1);
    }
    EmitTable(table, options,
              std::string("Figure 2: power breakdown, ") +
                  (vf == VfSetting::kMin ? "minimum" : "maximum") + " frequency " +
                  "(paper: idle 55.5 W total; max ~206 W = 132 W package + 74 W DRAM)");
  }
  return 0;
}
