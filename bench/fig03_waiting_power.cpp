// Figure 3: power consumption and CPI while waiting.
//
// Paper: all threads wait behind a lock that is never released, using
// sleeping, global spinning, or local spinning. Expected shape: sleeping
// stays near idle power; local spinning draws up to ~3% more than global;
// global spinning's CPI is ~530 (one atomic every ~530 cycles) while local
// spinning retires ~1 load/cycle.
#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);
  const PowerModel model(Topology::PaperXeon(), PowerParams::PaperXeon());

  TextTable power({"threads", "sleeping_W", "global_W", "local_W"});
  for (int threads : {1, 5, 10, 15, 20, 25, 30, 35, 40}) {
    power.AddNumericRow(std::to_string(threads),
                        {WaitingPowerWatts(model, threads, ActivityState::kSleeping),
                         WaitingPowerWatts(model, threads, ActivityState::kSpinGlobal),
                         WaitingPowerWatts(model, threads, ActivityState::kSpinLocal)},
                        1);
  }
  EmitTable(power, options,
            "Figure 3 (left): power while waiting (paper: sleeping ~idle; local ~3% above "
            "global; busy waiting ~140 W at 40 threads)");

  TextTable cpi({"technique", "CPI"});
  cpi.AddNumericRow("sleeping", {WaitingCpi(ActivityState::kSleeping)}, 1);
  cpi.AddNumericRow("global", {WaitingCpi(ActivityState::kSpinGlobal)}, 1);
  cpi.AddNumericRow("local", {WaitingCpi(ActivityState::kSpinLocal)}, 1);
  EmitTable(cpi, options,
            "Figure 3 (right): cycles per instruction (paper: global ~530, local ~1)");
  return 0;
}
