// Simulator engine throughput tracker (BENCH_sim.json).
//
// Every figure bench and every ctest in this repo runs on the discrete-event
// simulator, so simulator wall-clock *is* the repo's iteration speed. This
// binary measures it two ways and emits a machine-readable record so the
// perf trajectory is visible PR-over-PR:
//
//   1. A raw engine microbench shaped like the lock workloads' event
//      pattern: per-thread self-rescheduling chains with near-monotonic
//      delays, each step arming a companion timeout that is almost always
//      cancelled before it fires (the futex-timeout / scheduler-quantum
//      pattern machine.cpp and futex_model.cpp generate).
//   2. End-to-end simulated workloads on the fig16 (adaptive phase-change)
//      and fig13 (oversubscribed systems) shapes, reporting simulated
//      cycles per wall-second.
//
// Output: aligned tables (or --csv/--json), plus BENCH_sim.json in the
// current directory with at least
//   {"events_per_sec": ..., "workload_sim_cycles_per_sec": ...}.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sysmodel.hpp"
#include "src/sim/workload.hpp"

namespace lockin {
namespace {

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// --- 1. Raw engine microbench ----------------------------------------------
struct EngineBenchResult {
  std::uint64_t executed = 0;
  std::uint64_t cancels = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

struct ChainDriver {
  SimEngine engine;
  std::uint64_t remaining = 0;
  std::uint64_t cancels = 0;
  std::vector<EventId> timeout;  // pending companion timeout per chain

  void Step(int chain) {
    if (remaining == 0) {
      // Chain winds down: drop its armed timeout so the queue drains clean.
      if (timeout[chain] != 0) {
        engine.Cancel(timeout[chain]);
        timeout[chain] = 0;
      }
      return;
    }
    --remaining;
    // Re-arm the companion timeout: cancel the previous one (it has not
    // fired -- steps are far shorter than the timeout), arm a fresh one.
    if (timeout[chain] != 0) {
      engine.Cancel(timeout[chain]);
      ++cancels;
    }
    const int c = chain;
    timeout[chain] = engine.Schedule(50000, [this, c] { timeout[c] = 0; });
    engine.Schedule(100 + static_cast<SimTime>(chain) * 13, [this, c] { Step(c); });
  }
};

EngineBenchResult RunEngineMicrobench(int chains, std::uint64_t target_events) {
  ChainDriver driver;
  driver.remaining = target_events;
  driver.timeout.assign(static_cast<std::size_t>(chains), 0);
  for (int c = 0; c < chains; ++c) {
    const int chain = c;
    driver.engine.Schedule(static_cast<SimTime>(c) * 97,
                           [&driver, chain] { driver.Step(chain); });
  }
  const auto start = std::chrono::steady_clock::now();
  driver.engine.RunAll();
  EngineBenchResult result;
  result.wall_seconds = WallSeconds(start);
  result.executed = driver.engine.executed_events();
  result.cancels = driver.cancels;
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.executed) / result.wall_seconds
                              : 0.0;
  return result;
}

// Steady-state allocation check: after a warmup that sizes the slab pool
// and heap array, pushing millions more events through the engine must not
// allocate (slab blocks, queue capacity and callback heap-spills all
// frozen). This is the pool-stats contract the event core promises.
struct SteadyStateResult {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;  // pool growth events after warmup (want 0)
  SimEngine::PoolStats stats;
};

SteadyStateResult RunSteadyStateCheck(int chains, std::uint64_t target_events) {
  ChainDriver warm;
  warm.remaining = target_events / 4;
  warm.timeout.assign(static_cast<std::size_t>(chains), 0);
  for (int c = 0; c < chains; ++c) {
    const int chain = c;
    warm.engine.Schedule(static_cast<SimTime>(c) * 97,
                         [&warm, chain] { warm.Step(chain); });
  }
  warm.engine.RunAll();
  const SimEngine::PoolStats before = warm.engine.pool_stats();
  // Same chain pattern again on the warmed engine.
  warm.remaining = target_events;
  for (int c = 0; c < chains; ++c) {
    const int chain = c;
    warm.engine.Schedule(static_cast<SimTime>(c) * 97,
                         [&warm, chain] { warm.Step(chain); });
  }
  const std::uint64_t executed_before = warm.engine.executed_events();
  warm.engine.RunAll();
  const SimEngine::PoolStats after = warm.engine.pool_stats();

  SteadyStateResult result;
  result.events = warm.engine.executed_events() - executed_before;
  result.allocs = (after.slab_blocks - before.slab_blocks) +
                  (after.queue_capacity - before.queue_capacity) +
                  (after.heap_spills - before.heap_spills);
  result.stats = after;
  return result;
}

// --- 2. End-to-end workload shapes -----------------------------------------
struct ShapeResult {
  std::string name;
  double wall_seconds = 0.0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t engine_events = 0;
  std::uint64_t acquires = 0;

  double CyclesPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(sim_cycles) / wall_seconds : 0.0;
  }
  double EventsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(engine_events) / wall_seconds : 0.0;
  }
};

// fig16's phase-change scenario, ADAPTIVE lock (the heaviest event mix:
// three inner lock models, futexes, epoch switching).
ShapeResult RunFig16Shape(bool quick) {
  const std::uint64_t phase_cycles = quick ? 14'000'000 : 28'000'000;
  WorkloadConfig base;
  base.threads = 10;
  base.locks = 1;
  WorkloadPhase low;
  low.duration_cycles = phase_cycles;
  low.cs_cycles = 250;
  low.non_cs_cycles = 4000;
  WorkloadPhase high;
  high.duration_cycles = phase_cycles;
  high.cs_cycles = 16000;
  high.non_cs_cycles = 100;
  const std::vector<WorkloadPhase> phases = {low, high, low, high};

  const auto start = std::chrono::steady_clock::now();
  const PhasedWorkloadResult r = RunPhasedLockWorkload("ADAPTIVE", base, phases);
  ShapeResult shape;
  shape.name = "fig16_adaptive";
  shape.wall_seconds = WallSeconds(start);
  shape.sim_cycles = 4 * phase_cycles;
  shape.engine_events = r.engine_events;
  shape.acquires = r.total_acquires;
  return shape;
}

// fig13's oversubscribed system profiles under MUTEX (the futex-heavy
// regime: sleeps, wakes, timeouts, scheduler quanta).
ShapeResult RunFig13Shape(const std::string& system, bool quick) {
  ShapeResult shape;
  shape.name = "fig13_" + system;
  for (SystemWorkload spec : PaperSystemWorkloads()) {
    if (spec.system != system) {
      continue;
    }
    if (quick) {
      spec.workload.duration_cycles = 21'000'000;
    }
    const auto start = std::chrono::steady_clock::now();
    const WorkloadResult r = RunLockWorkload("MUTEX", spec.workload);
    shape.wall_seconds += WallSeconds(start);
    shape.sim_cycles += spec.workload.duration_cycles;
    shape.engine_events += r.engine_events;
    shape.acquires += r.total_acquires;
  }
  return shape;
}

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  // 40 chains ~ the benches' max simulated thread count.
  const std::uint64_t target = options.quick ? 1'000'000 : 4'000'000;
  const EngineBenchResult engine = RunEngineMicrobench(40, target);
  const SteadyStateResult steady = RunSteadyStateCheck(40, target / 2);

  std::vector<ShapeResult> shapes;
  shapes.push_back(RunFig16Shape(options.quick));
  shapes.push_back(RunFig13Shape("MySQL", options.quick));
  shapes.push_back(RunFig13Shape("SQLite", options.quick));

  double shape_wall = 0.0;
  double shape_cycles = 0.0;
  for (const ShapeResult& s : shapes) {
    shape_wall += s.wall_seconds;
    shape_cycles += static_cast<double>(s.sim_cycles);
  }
  const double workload_cycles_per_sec = shape_wall > 0 ? shape_cycles / shape_wall : 0.0;

  TextTable engine_table({"bench", "events", "cancels", "wall_s", "Mevents/s"});
  engine_table.AddRow({"engine_chains", std::to_string(engine.executed),
                       std::to_string(engine.cancels), FormatDouble(engine.wall_seconds, 3),
                       FormatDouble(engine.events_per_sec / 1e6, 2)});
  EmitTable(engine_table, options, "Engine microbench (self-rescheduling chains + cancels)");

  TextTable pool_table({"steady_events", "pool_allocs", "slabs", "slots", "heap_spills"});
  pool_table.AddRow({std::to_string(steady.events), std::to_string(steady.allocs),
                     std::to_string(steady.stats.slab_blocks),
                     std::to_string(steady.stats.slot_capacity),
                     std::to_string(steady.stats.heap_spills)});
  EmitTable(pool_table, options,
            "Steady-state pool check (pool_allocs must be 0: no allocator traffic per event)");

  TextTable shape_table(
      {"shape", "acquires", "events", "wall_s", "Mcycles/s", "Mevents/s"});
  for (const ShapeResult& s : shapes) {
    shape_table.AddRow({s.name, std::to_string(s.acquires), std::to_string(s.engine_events),
                        FormatDouble(s.wall_seconds, 3),
                        FormatDouble(s.CyclesPerSec() / 1e6, 1),
                        FormatDouble(s.EventsPerSec() / 1e6, 2)});
  }
  EmitTable(shape_table, options, "End-to-end workload shapes (simulated cycles per wall-second)");

  // Machine-readable trajectory record.
  std::ofstream json("BENCH_sim.json");
  json << "{\n"
       << "  \"events_per_sec\": " << FormatDouble(engine.events_per_sec, 0) << ",\n"
       << "  \"workload_sim_cycles_per_sec\": " << FormatDouble(workload_cycles_per_sec, 0)
       << ",\n"
       << "  \"engine_microbench_events\": " << engine.executed << ",\n"
       << "  \"steady_state_pool_allocs\": " << steady.allocs << ",\n"
       << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n"
       << "  \"shapes\": [\n";
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const ShapeResult& s = shapes[i];
    json << "    {\"name\": \"" << s.name << "\", \"acquires\": " << s.acquires
         << ", \"engine_events\": " << s.engine_events
         << ", \"sim_cycles_per_sec\": " << FormatDouble(s.CyclesPerSec(), 0)
         << ", \"events_per_sec\": " << FormatDouble(s.EventsPerSec(), 0) << "}"
         << (i + 1 < shapes.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_sim.json\n";
  return 0;
}
