// Native hot-path perf tracker (BENCH_native.json).
//
// PR-over-PR trajectory for the *native* measurement path (the code a user
// runs on real hardware for paper-style numbers), complementing the
// simulator tracker (bench_sim_perf / BENCH_sim.json). Five sections:
//
//   1. Uncontested lock+unlock ns/op for every concrete lock, measured via
//      both dispatch tiers: the devirtualized static tier (templated loop,
//      src/locks/static_dispatch.hpp) and the type-erased LockHandle tier.
//      The gap between them is pure dispatch overhead -- measurement
//      distortion the harness no longer pays on the static tier.
//   2. Harness loop overhead: RunNativeBench with an empty critical section
//      on one thread, per tier, plus the latency-recording (batched rdtsc +
//      histogram) increment.
//   3. MemCache Mops/s per LRU mode (kGlobalLock = paper-shape SET
//      contention, kPerShard = segmented-LRU scale scenario) on GET- and
//      SET-heavy mixes.
//   4. Every registered scenario (src/systems/workload_api.hpp) through the
//      unified native driver, so the trajectory tracks all mini-systems,
//      not just the cache. --scenario restricts to one, --lock/--threads
//      override the defaults (MUTEX, 4).
//   5. ShardCombine thread scaling: per-scenario 1/2/4/8-thread rows for
//      single-lock vs sharded vs flat-combined (src/systems/sharded.hpp),
//      emitted as `scenario_scaling`.
//
// Output: aligned tables (or --csv/--json), plus BENCH_native.json in the
// current directory. Numbers are best-of-3 (uncontested) on whatever host
// runs this; the tracked signal is the tier ratio and the mode ratio, which
// are host-relative.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/locks/harness.hpp"
#include "src/locks/static_dispatch.hpp"
#include "src/net/loadgen.hpp"
#include "src/net/server.hpp"
#include "src/platform/cycles.hpp"
#include "src/systems/cache_workload.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {
namespace {

constexpr int kReps = 5;

// One timed pass of the uncontested lock+unlock loop. Instantiated with a
// concrete lock type (static tier: lock()/unlock() inline into the loop) or
// with LockHandle (type-erased tier: two virtual calls per iteration).
template <typename Lock>
double UncontestedPassNs(Lock& lock, int iters) {
  const std::uint64_t start = ReadCycles();
  for (int i = 0; i < iters; ++i) {
    lock.lock();
    lock.unlock();
  }
  return static_cast<double>(CyclesToNs(ReadCycles() - start)) / static_cast<double>(iters);
}

template <typename Lock>
void WarmLock(Lock& lock) {
  for (int i = 0; i < 1000; ++i) {  // warm the line and any TLS nodes
    lock.lock();
    lock.unlock();
  }
}

struct TierRow {
  std::string lock;
  double static_ns = 0;
  double handle_ns = 0;

  double Speedup() const { return static_ns > 0 ? handle_ns / static_ns : 0; }
};

// Hardware floor for a TAS-shaped op: one implicitly-locked exchange plus a
// release store on a private line. The static tier's TAS ns/op should sit
// on this floor -- any gap is residual dispatch/loop overhead. (On hosts
// where the locked RMW is slow -- e.g. virtualized CPUs at ~17 cycles --
// the floor dominates both tiers and compresses the tier speedup on
// single-RMW locks; TICKET/MUTEX, with two RMWs per op, expose the
// dispatch overhead more.)
double RawExchangeStoreFloorNs(int iters) {
  alignas(64) static std::atomic<std::uint32_t> word{0};
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t start = ReadCycles();
    for (int i = 0; i < iters; ++i) {
      word.exchange(1, std::memory_order_acquire);
      word.store(0, std::memory_order_release);
    }
    const double per_op =
        static_cast<double>(CyclesToNs(ReadCycles() - start)) / static_cast<double>(iters);
    best = rep == 0 ? per_op : std::min(best, per_op);
  }
  return best;
}

TierRow MeasureLock(const std::string& name, int iters) {
  TierRow row;
  row.lock = name;
  LockBuildOptions options;
  options.spin.yield_after = 1024;  // oversubscription escape hatch
  const std::unique_ptr<LockHandle> handle = MakeLockOrThrow(name, options);
  WarmLock(*handle);
  // Interleave the tiers rep by rep and take each tier's minimum: scheduler
  // noise (this may run on a shared 1-vCPU CI host) then shifts both tiers
  // alike instead of corrupting the ratio.
  WithConcreteLock(name, options, [&](auto tag, auto&&... args) {
    using L = typename decltype(tag)::type;
    L lock(args...);
    WarmLock(lock);
    for (int rep = 0; rep < kReps; ++rep) {
      const double s = UncontestedPassNs(lock, iters);
      const double h = UncontestedPassNs(*handle, iters);
      row.static_ns = rep == 0 ? s : std::min(row.static_ns, s);
      row.handle_ns = rep == 0 ? h : std::min(row.handle_ns, h);
    }
  });
  return row;
}

struct HarnessRow {
  double static_ns = 0;         // ns/acquire, static tier, no latency recording
  double handle_ns = 0;         // ns/acquire, type-erased tier
  double record_latency_ns = 0; // ns/acquire, static tier + batched rdtsc histogram
};

double HarnessNsPerAcquire(DispatchTier tier, bool record_latency, std::uint64_t duration_ms) {
  NativeBenchConfig config;
  config.lock_name = "TAS";
  config.threads = 1;
  config.cs_cycles = 0;
  config.non_cs_cycles = 0;
  config.duration_ms = duration_ms;
  config.record_latency = record_latency;
  config.dispatch = tier;
  config.pin_threads = false;  // one thread; let the scheduler place it
  config.lock_options.spin.yield_after = 1024;
  const NativeBenchResult result = RunNativeBench(config);
  return result.total_acquires > 0
             ? result.seconds * 1e9 / static_cast<double>(result.total_acquires)
             : 0;
}

// Min-of-reps for the harness rows, for the same reason as the tier rows.
double MinHarnessNs(DispatchTier tier, bool record_latency, std::uint64_t duration_ms) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const double ns = HarnessNsPerAcquire(tier, record_latency, duration_ms);
    best = rep == 0 ? ns : std::min(best, ns);
  }
  return best;
}

struct CacheRow {
  std::string mode;
  double set_heavy_mops = 0;  // 10% GET / 90% SET
  double get_heavy_mops = 0;  // 90% GET / 10% SET
  std::uint64_t evictions = 0;
};

CacheRow MeasureCache(MemCache::LruMode mode, int ops_per_thread) {
  CacheRow row;
  row.mode = mode == MemCache::LruMode::kGlobalLock ? "global" : "per_shard";
  CacheWorkloadConfig config;
  config.lock_name = "MUTEX";
  config.lru_mode = mode;
  config.threads = 4;
  config.ops_per_thread = ops_per_thread;
  // Capacity below the hot-key working set so the eviction scan (the LRU
  // mode's actual cost) is part of the measured workload.
  config.capacity = 10000;
  config.get_percent = 10;
  const CacheWorkloadResult set_heavy = RunCacheWorkload(config);
  row.set_heavy_mops = set_heavy.MopsPerS();
  row.evictions = set_heavy.evictions;
  config.get_percent = 90;
  row.get_heavy_mops = RunCacheWorkload(config).MopsPerS();
  return row;
}

struct ScenarioRow {
  std::string name;
  std::string system;
  double mops = 0;
  double p99_cycles = 0;
  double joules = 0;
  double avg_watts = 0;
  double tpp = 0;  // ops/Joule via the meter fallback chain (RAPL -> model)
  std::string meter;
};

// One run per registered scenario through the unified driver, using the
// lock/threads resolved once in main (the same values label the table and
// the JSON record). Per-op latency recording stays on here (unlike the
// legacy cache rows): the p99 is part of the tracked trajectory. The driver
// attaches the default meter chain, so every row also carries joules/TPP --
// RAPL numbers on permitted hosts, calibrated-model numbers elsewhere.
std::vector<ScenarioRow> MeasureScenarios(const BenchOptions& options,
                                          const std::string& lock, int threads) {
  ScenarioConfig config;
  config.lock_name = lock;
  config.threads = threads;
  config.ops_per_thread = options.quick ? 6000 : 25000;
  std::vector<ScenarioRow> rows;
  for (const ScenarioInfo& info : RegisteredScenarios()) {
    if (!options.scenario.empty() && options.scenario != info.name) {
      continue;
    }
    const ScenarioResult result = RunScenarioByName(info.name, config);
    rows.push_back({info.name, info.system, result.MopsPerS(),
                    static_cast<double>(result.op_latency_cycles.P99()),
                    result.energy.total_joules(), result.AvgWatts(), result.Tpp(),
                    result.meter_name});
  }
  return rows;
}

// --- 5. ShardCombine thread scaling -----------------------------------------

struct ScalingVariant {
  const char* name;      // "single" | "sharded" | "combined"
  std::uint32_t shards;  // explicit count (0 never used here: "single" pins 1)
  bool combine;
};

struct ScalingRow {
  std::string scenario;
  std::string variant;
  std::uint32_t shards = 0;
  bool combine = false;
  int threads = 0;
  double mops = 0;
};

// The scaling section deliberately runs under TICKET, not the section-4
// MUTEX default: the paper's fair spinlock is the lock whose single-lock
// collapse under oversubscription (Figures 13-14) sharding and combining
// exist to fix, and on a small CI host it is the only regime where lock
// contention is visible at all -- the blocking MUTEX serializes through
// the kernel and hides it (see README "Sharding & combining" caveats).
constexpr const char* kScalingLock = "TICKET";

// Per-scenario 1/2/4/8-thread rows for single-lock vs sharded vs combined
// (src/systems/sharded.hpp), covering the four systems the scaling
// acceptance tracks (KvStore, NosqlDb, GraphStore, WalStore) on read-heavy
// and mixed mixes. Emitted as `scenario_scaling` in BENCH_native.json.
// Throughput is best-of-3 per point: these runs are milliseconds long and
// shared CI hosts routinely steal half a timeslice.
std::vector<ScalingRow> MeasureScaling(const BenchOptions& options) {
  struct Target {
    const char* scenario;
    std::uint32_t sharded_shards;  // the "sharded"/"combined" shard count
  };
  // Shard counts: kvstore stays at 8 because its range scans fan out over
  // every shard (hash-partitioned trees), so more shards buy contention
  // relief but pay a wider fan-out; nosql/btree has no scans and 8 matches
  // the HT region count; graph's registered default is already 32 shards
  // (its "single" variant pins shards=1 so the single-lock baseline is a
  // real one-lock system).
  const Target targets[] = {
      {"kvstore/RD", 8},      {"kvstore/WT-RD", 8},        {"nosql/btree", 8},
      {"graph/traverse", 32}, {"walstore/readwrite", 8},
  };
  const int thread_counts[] = {1, 2, 4, 8};
  constexpr int kScalingReps = 3;
  std::vector<ScalingRow> rows;
  ScenarioConfig config;
  config.lock_name = kScalingLock;
  config.ops_per_thread = options.quick ? 2500 : 10000;
  config.record_latency = false;  // throughput-only section
  config.meter = MeterChoice::kOff;
  for (const Target& target : targets) {
    if (!options.scenario.empty() && options.scenario != target.scenario) {
      continue;
    }
    const ScalingVariant variants[] = {
        {"single", 1, false},
        {"sharded", target.sharded_shards, false},
        {"combined", target.sharded_shards, true},
    };
    for (const ScalingVariant& variant : variants) {
      config.shards = variant.shards;
      config.combine = variant.combine;
      for (const int threads : thread_counts) {
        config.threads = threads;
        double best = 0;
        for (int rep = 0; rep < kScalingReps; ++rep) {
          const ScenarioResult result = RunScenarioByName(target.scenario, config);
          best = std::max(best, result.MopsPerS());
        }
        rows.push_back({target.scenario, variant.name, variant.shards, variant.combine,
                        threads, best});
      }
    }
  }
  return rows;
}

// --- NetServe loopback serving -----------------------------------------------

struct NetServeRow {
  std::string lock;
  std::size_t pipeline = 0;
  double requests_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t busy = 0;
};

// Requests/s and service percentiles for the epoll front-end over real
// loopback sockets, per lock and pipeline depth. Client and server run in
// one process (src/net/loadgen.hpp); on this 1-vCPU-class host the numbers
// measure the full stack -- epoll, RESP parsing, the lock under the cache
// -- not isolated lock throughput, so the tracked signal is the pipeline
// scaling ratio and the lock-to-lock ordering, not the absolute rate.
std::vector<NetServeRow> MeasureNetServe(const BenchOptions& options) {
  const std::size_t pipelines[] = {1, 8, 64};
  std::vector<NetServeRow> rows;
  for (const char* lock : {"MUTEX", "TICKET", "MUTEXEE"}) {
    NetServerOptions server_options;
    server_options.backend.system = "cache";
    server_options.backend.lock_name = lock;
    server_options.workers = 1;
    LockServer server(server_options);
    server.Start();
    for (const std::size_t pipeline : pipelines) {
      LoadgenOptions load;
      load.port = server.port();
      load.connections = 2;
      load.pipeline = pipeline;
      load.duration_ms = options.quick ? 150 : 500;
      const LoadgenResult result = RunLoadgen(load);
      NetServeRow row;
      row.lock = lock;
      row.pipeline = pipeline;
      row.requests_per_s = result.RequestsPerS();
      row.p50_us = static_cast<double>(result.latency_ns.P50()) / 1000.0;
      row.p99_us = static_cast<double>(result.latency_ns.P99()) / 1000.0;
      row.busy = result.busy;
      rows.push_back(row);
    }
    server.Drain();
    server.Join();
  }
  return rows;
}

}  // namespace
}  // namespace lockin

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options =
      BenchOptions::Parse(argc, argv, /*extra_flags=*/{}, /*with_scenario_flags=*/true);
  // Validate the scenario-section overrides up front: a typo must fail
  // loudly here, not abort mid-run (--lock) or silently empty the tracked
  // scenarios array (--scenario).
  if (!options.lock.empty() && MakeLock(options.lock) == nullptr) {
    std::cerr << argv[0] << ": unknown lock: " << options.lock << "\n";
    return 2;
  }
  if (!options.scenario.empty() &&
      ScenarioRegistry::Instance().Find(options.scenario) == nullptr) {
    std::cerr << argv[0] << ": unknown scenario: " << options.scenario
              << " (see scenario_runner --list)\n";
    return 2;
  }

  // --- 1. Dispatch tiers, uncontested -------------------------------------
  const int iters = options.quick ? 200000 : 1000000;
  const std::vector<std::string> lock_names = {"TAS",  "TTAS",    "TICKET",  "MCS",
                                               "CLH",  "MUTEX",   "MUTEXEE", "PTHREAD"};
  std::vector<TierRow> tier_rows;
  for (const std::string& name : lock_names) {
    tier_rows.push_back(MeasureLock(name, iters));
  }
  const double floor_ns = RawExchangeStoreFloorNs(iters);

  TextTable tier_table({"lock", "static_ns/op", "handle_ns/op", "speedup"});
  for (const TierRow& row : tier_rows) {
    tier_table.AddRow({row.lock, FormatDouble(row.static_ns, 2), FormatDouble(row.handle_ns, 2),
                       FormatDouble(row.Speedup(), 2)});
  }
  tier_table.AddRow({"xchg+store floor", FormatDouble(floor_ns, 2), "-", "-"});
  EmitTable(tier_table, options,
            "Uncontested lock+unlock by dispatch tier (static = devirtualized templated loop, "
            "handle = LockHandle virtual calls; floor = bare locked exchange + release store)");

  // --- 2. Harness loop overhead -------------------------------------------
  const std::uint64_t duration_ms = options.quick ? 40 : 150;
  HarnessRow harness;
  harness.static_ns = MinHarnessNs(DispatchTier::kStatic, false, duration_ms);
  harness.handle_ns = MinHarnessNs(DispatchTier::kTypeErased, false, duration_ms);
  harness.record_latency_ns = MinHarnessNs(DispatchTier::kStatic, true, duration_ms);

  TextTable harness_table(
      {"harness_static_ns", "harness_handle_ns", "harness_record_latency_ns"});
  harness_table.AddRow({FormatDouble(harness.static_ns, 2), FormatDouble(harness.handle_ns, 2),
                        FormatDouble(harness.record_latency_ns, 2)});
  EmitTable(harness_table, options,
            "RunNativeBench loop overhead (1 thread, TAS, empty critical section, ns/acquire)");

  // --- 3. MemCache per LRU mode -------------------------------------------
  const int cache_ops = options.quick ? 30000 : 120000;
  std::vector<CacheRow> cache_rows;
  cache_rows.push_back(MeasureCache(MemCache::LruMode::kGlobalLock, cache_ops));
  cache_rows.push_back(MeasureCache(MemCache::LruMode::kPerShard, cache_ops));

  TextTable cache_table({"lru_mode", "set_heavy_Mops/s", "get_heavy_Mops/s", "evictions"});
  for (const CacheRow& row : cache_rows) {
    cache_table.AddRow({row.mode, FormatDouble(row.set_heavy_mops, 3),
                        FormatDouble(row.get_heavy_mops, 3), std::to_string(row.evictions)});
  }
  EmitTable(cache_table, options,
            "MemCache Mops/s by LRU mode (global = paper-shape SET contention, per_shard = "
            "segmented-LRU scale scenario; 4 threads, MUTEX)");

  // --- 4. Scenario layer: every mini-system through the unified driver -----
  const std::string scenario_lock = options.lock.empty() ? "MUTEX" : options.lock;
  const int scenario_threads = options.threads > 0 ? options.threads : 4;
  const std::vector<ScenarioRow> scenario_rows =
      MeasureScenarios(options, scenario_lock, scenario_threads);
  TextTable scenario_table({"scenario", "system", "Mops/s", "op_p99_kcycles", "joules",
                            "TPP(op/J)", "meter"});
  for (const ScenarioRow& row : scenario_rows) {
    scenario_table.AddRow({row.name, row.system, FormatDouble(row.mops, 3),
                           FormatDouble(row.p99_cycles / 1e3, 1), FormatDouble(row.joules, 3),
                           FormatDouble(row.tpp, 0), row.meter});
  }
  EmitTable(scenario_table, options,
            "Registered scenarios via the unified native driver (" + scenario_lock + ", " +
                std::to_string(scenario_threads) + " threads; energy via RAPL-or-model chain)");

  // --- 5. ShardCombine thread scaling --------------------------------------
  const std::vector<ScalingRow> scaling_rows = MeasureScaling(options);
  TextTable scaling_table({"scenario", "variant", "shards", "threads", "Mops/s"});
  for (const ScalingRow& row : scaling_rows) {
    scaling_table.AddRow({row.scenario, row.variant, std::to_string(row.shards),
                          std::to_string(row.threads), FormatDouble(row.mops, 3)});
  }
  EmitTable(scaling_table, options,
            std::string("ShardCombine thread scaling (") + kScalingLock +
                ", best-of-3): single-lock vs sharded vs flat-combined, 1/2/4/8 threads");

  // --- 6. NetServe: served throughput over loopback -------------------------
  const std::vector<NetServeRow> net_rows = MeasureNetServe(options);
  TextTable net_table({"lock", "pipeline", "requests/s", "p50_us", "p99_us", "busy"});
  for (const NetServeRow& row : net_rows) {
    net_table.AddRow({row.lock, std::to_string(row.pipeline),
                      FormatDouble(row.requests_per_s, 0), FormatDouble(row.p50_us, 1),
                      FormatDouble(row.p99_us, 1), std::to_string(row.busy)});
  }
  EmitTable(net_table,
            options,
            "NetServe loopback serving (cache system, 1 worker, 2 connections): requests/s "
            "and reply latency per lock x pipeline depth");

  // --- Machine-readable trajectory record ----------------------------------
  std::ofstream json("BENCH_native.json");
  json << "{\n"
       << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n"
       << "  \"uncontested_ns_per_op\": [\n";
  for (std::size_t i = 0; i < tier_rows.size(); ++i) {
    const TierRow& row = tier_rows[i];
    json << "    {\"lock\": \"" << row.lock << "\", \"static_ns\": "
         << FormatDouble(row.static_ns, 3) << ", \"handle_ns\": "
         << FormatDouble(row.handle_ns, 3) << ", \"speedup\": "
         << FormatDouble(row.Speedup(), 3) << "}" << (i + 1 < tier_rows.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n"
       << "  \"raw_xchg_store_floor_ns\": " << FormatDouble(floor_ns, 3) << ",\n"
       << "  \"harness_ns_per_acquire\": {\"static\": " << FormatDouble(harness.static_ns, 3)
       << ", \"handle\": " << FormatDouble(harness.handle_ns, 3)
       << ", \"static_record_latency\": " << FormatDouble(harness.record_latency_ns, 3)
       << "},\n"
       << "  \"memcache_mops\": [\n";
  for (std::size_t i = 0; i < cache_rows.size(); ++i) {
    const CacheRow& row = cache_rows[i];
    json << "    {\"lru_mode\": \"" << row.mode << "\", \"set_heavy\": "
         << FormatDouble(row.set_heavy_mops, 4) << ", \"get_heavy\": "
         << FormatDouble(row.get_heavy_mops, 4) << ", \"evictions\": " << row.evictions << "}"
         << (i + 1 < cache_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"scenario_lock\": \"" << scenario_lock << "\",\n"
       << "  \"scenario_threads\": " << scenario_threads << ",\n"
       << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenario_rows.size(); ++i) {
    const ScenarioRow& row = scenario_rows[i];
    json << "    {\"name\": \"" << row.name << "\", \"system\": \"" << row.system
         << "\", \"mops\": " << FormatDouble(row.mops, 4)
         << ", \"op_p99_cycles\": " << FormatDouble(row.p99_cycles, 0)
         << ", \"joules\": " << FormatDouble(row.joules, 6)
         << ", \"tpp\": " << FormatDouble(row.tpp, 3)
         << ", \"meter\": \"" << row.meter << "\"}"
         << (i + 1 < scenario_rows.size() ? "," : "") << "\n";
  }
  // LockScope trajectory section: the paper's efficiency metric (TPP,
  // ops/Joule) per scenario, from the same runs as the scenarios array.
  json << "  ],\n"
       << "  \"scenario_tpp\": [\n";
  for (std::size_t i = 0; i < scenario_rows.size(); ++i) {
    const ScenarioRow& row = scenario_rows[i];
    json << "    {\"name\": \"" << row.name << "\", \"tpp\": " << FormatDouble(row.tpp, 3)
         << ", \"avg_watts\": " << FormatDouble(row.avg_watts, 3)
         << ", \"meter\": \"" << row.meter << "\"}"
         << (i + 1 < scenario_rows.size() ? "," : "") << "\n";
  }
  // ShardCombine trajectory section: thread-scaling curves per scenario and
  // sharding variant (see MeasureScaling).
  json << "  ],\n"
       << "  \"scenario_scaling_lock\": \"" << kScalingLock << "\",\n"
       << "  \"scenario_scaling\": [\n";
  for (std::size_t i = 0; i < scaling_rows.size(); ++i) {
    const ScalingRow& row = scaling_rows[i];
    json << "    {\"scenario\": \"" << row.scenario << "\", \"variant\": \"" << row.variant
         << "\", \"lock\": \"" << kScalingLock << "\", \"shards\": " << row.shards
         << ", \"combine\": " << (row.combine ? "true" : "false")
         << ", \"threads\": " << row.threads << ", \"mops\": " << FormatDouble(row.mops, 4)
         << "}" << (i + 1 < scaling_rows.size() ? "," : "") << "\n";
  }
  // NetServe trajectory section: served requests/s + reply latency over
  // loopback per lock and pipeline depth (see MeasureNetServe).
  json << "  ],\n"
       << "  \"net_serve\": [\n";
  for (std::size_t i = 0; i < net_rows.size(); ++i) {
    const NetServeRow& row = net_rows[i];
    json << "    {\"lock\": \"" << row.lock << "\", \"system\": \"cache\", \"pipeline\": "
         << row.pipeline << ", \"requests_per_s\": " << FormatDouble(row.requests_per_s, 0)
         << ", \"p50_us\": " << FormatDouble(row.p50_us, 2)
         << ", \"p99_us\": " << FormatDouble(row.p99_us, 2)
         << ", \"busy\": " << row.busy << "}" << (i + 1 < net_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_native.json\n";
  return 0;
}
