// Figure 12: correlation of throughput with energy efficiency (TPP) across
// a diverse set of configurations -- the POLY conjecture's headline plot.
//
// Paper: threads 1-16, critical sections 0-8000 cycles, 1-512 locks; "most
// data points fall on, or very close to, the linear line"; on 85% of the
// configurations the lock with the best throughput also achieves the best
// TPP; on the rest the gap is small (best-throughput lock within ~5-8%).
#include <algorithm>

#include "bench/bench_common.hpp"
#include "src/sim/workload.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  const std::vector<std::string> locks = {"MUTEX", "TAS", "TTAS", "TICKET", "MCS", "MUTEXEE"};
  const std::vector<int> thread_axis = options.quick ? std::vector<int>{2, 8}
                                                     : std::vector<int>{1, 2, 4, 8, 16};
  const std::vector<std::uint64_t> cs_axis =
      options.quick ? std::vector<std::uint64_t>{500, 4000}
                    : std::vector<std::uint64_t>{0, 500, 2000, 8000};
  const std::vector<int> locks_axis =
      options.quick ? std::vector<int>{1, 64} : std::vector<int>{1, 4, 64, 512};

  std::vector<double> all_tput;
  std::vector<double> all_tpp;
  int configs = 0;
  int best_coincide = 0;
  double tput_gap_sum = 0;  // when they differ: best-tput's TPP deficit
  int differ = 0;

  for (int threads : thread_axis) {
    for (std::uint64_t cs : cs_axis) {
      for (int nlocks : locks_axis) {
        double best_tput = -1;
        double best_tpp = -1;
        std::string best_tput_lock;
        std::string best_tpp_lock;
        double tpp_of_best_tput = 0;
        for (const std::string& lock : locks) {
          WorkloadConfig config;
          config.threads = threads;
          config.locks = nlocks;
          config.cs_cycles = cs;
          config.non_cs_cycles = 200;
          config.duration_cycles = 14'000'000;
          config.seed = static_cast<std::uint64_t>(threads) * 977 + cs + nlocks;
          const WorkloadResult result = RunLockWorkload(lock, config);
          all_tput.push_back(result.throughput_per_s);
          all_tpp.push_back(result.tpp);
          if (result.throughput_per_s > best_tput) {
            best_tput = result.throughput_per_s;
            best_tput_lock = lock;
            tpp_of_best_tput = result.tpp;
          }
          if (result.tpp > best_tpp) {
            best_tpp = result.tpp;
            best_tpp_lock = lock;
          }
        }
        ++configs;
        if (best_tput_lock == best_tpp_lock) {
          ++best_coincide;
        } else {
          ++differ;
          tput_gap_sum += best_tpp > 0 ? (best_tpp - tpp_of_best_tput) / best_tpp : 0;
        }
      }
    }
  }

  // Normalize to the overall maxima, as in the paper's plot.
  const double max_tput = *std::max_element(all_tput.begin(), all_tput.end());
  const double max_tpp = *std::max_element(all_tpp.begin(), all_tpp.end());
  std::vector<double> norm_tput;
  std::vector<double> norm_tpp;
  for (std::size_t i = 0; i < all_tput.size(); ++i) {
    norm_tput.push_back(all_tput[i] / max_tput);
    norm_tpp.push_back(all_tpp[i] / max_tpp);
  }

  TextTable table({"metric", "value", "paper"});
  table.AddRow({"configurations", std::to_string(configs), "2084"});
  table.AddRow({"data points", std::to_string(norm_tput.size()), "-"});
  table.AddRow({"Pearson r (tput, TPP)", FormatDouble(PearsonCorrelation(norm_tput, norm_tpp), 3),
                "~1 (\"on or very close to the linear line\")"});
  table.AddRow({"best-tput == best-TPP",
                FormatDouble(100.0 * best_coincide / configs, 1) + "%", "85%"});
  table.AddRow({"avg TPP deficit when differing",
                differ > 0 ? FormatDouble(100.0 * tput_gap_sum / differ, 1) + "%" : "n/a",
                "5%"});
  EmitTable(table, options, "Figure 12: throughput <-> TPP correlation (POLY)");
  return 0;
}
