// Section 4.4 table: power vs the period between futex wake-up calls.
//
// Paper's numbers (two threads, Xeon):
//   period 1024 -> 72.03 W, 2048 -> 69.18 W, 4096 -> 68.75 W, 8192 -> 68.02 W.
// The shape to reproduce: no power reduction until the period exceeds the
// futex-sleep latency (~2100 cycles) because the sleeper is woken before it
// ever blocks ("sleep misses").
#include "bench/bench_common.hpp"
#include "src/sim/waiting.hpp"

int main(int argc, char** argv) {
  using namespace lockin;
  const BenchOptions options = BenchOptions::Parse(argc, argv);

  const double paper[] = {72.03, 69.18, 68.75, 68.02};
  TextTable table({"period_cycles", "power_W", "paper_W", "sleep_miss_ratio"});
  int i = 0;
  for (std::uint64_t period : {1024ULL, 2048ULL, 4096ULL, 8192ULL}) {
    const SleepPowerPoint p = MeasureSleepPower(period, options.quick ? 14'000'000 : 56'000'000);
    table.AddNumericRow(std::to_string(period), {p.watts, paper[i++], p.sleep_miss_ratio}, 2);
  }
  EmitTable(table, options,
            "Section 4.4 table: power vs wake-up period (power falls once the period "
            "exceeds the ~2100-cycle sleep latency)");
  return 0;
}
