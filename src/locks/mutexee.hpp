// MUTEXEE: the paper's optimized futex mutex (section 5.1, Table 1).
//
// Differences from MUTEX, as specified by the paper:
//
//   lock    | MUTEX: spin ~1000 cycles with `pause`, then futex sleep.
//           | MUTEXEE: spin up to ~8000 cycles with `mfence` pausing, then
//           | futex sleep. (Their sensitivity analysis: "spinning for more
//           | than 4000 cycles is crucial for throughput".)
//
//   unlock  | MUTEX: release in user space, wake one sleeper.
//           | MUTEXEE: release in user space, then *wait in user space* for
//           | ~the maximum coherence latency (384 cycles on their Xeon). If
//           | another thread grabs the lock during that grace window, the
//           | futex wake is skipped entirely -- the handover happened with
//           | busy waiting and the sleepers keep sleeping (this is the
//           | fairness-for-energy trade of section 4.4).
//
//   modes   | MUTEXEE tracks how many handovers happen via futex vs via
//           | spinning and periodically switches between
//           |   spin mode  (~8000-cycle lock spin, ~384-cycle unlock grace)
//           |   mutex mode (~256-cycle lock spin, ~128-cycle unlock grace)
//           | choosing mutex mode when the futex-handover ratio is >30%
//           | (useless spinning would only burn power).
//
//   timeout | Optionally, futex sleeps carry a timeout; a thread woken by
//           | timeout spins until it acquires, without sleeping again,
//           | bounding the tail latency (Figure 10).
#ifndef SRC_LOCKS_MUTEXEE_HPP_
#define SRC_LOCKS_MUTEXEE_HPP_

#include <atomic>
#include <cstdint>

#include "src/futex/futex.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

struct MutexeeConfig {
  // Spin-mode budgets (cycles). Defaults are the paper's Xeon values; the
  // tuner (src/locks/tuner.hpp) re-derives them per platform.
  std::uint64_t spin_mode_lock_cycles = 8000;
  std::uint64_t spin_mode_grace_cycles = 384;

  // Mutex-mode budgets (cycles): "~256 cycles in lock and ~128 in unlock
  // (used to avoid useless spinning)".
  std::uint64_t mutex_mode_lock_cycles = 256;
  std::uint64_t mutex_mode_grace_cycles = 128;

  // Pausing technique in the spin phase; the paper uses mfence (section 4.2).
  PauseKind pause = PauseKind::kMfence;

  // Futex sleep timeout in nanoseconds; 0 disables (the paper's default).
  // "For timeouts shorter than 16-32 ms, both throughput and TPP suffer."
  std::uint64_t sleep_timeout_ns = 0;

  // Mode adaptation: re-evaluate every `adapt_period` acquisitions and use
  // mutex mode when futex handovers exceed `futex_ratio_threshold`.
  std::uint32_t adapt_period = 512;
  double futex_ratio_threshold = 0.30;

  // Ablation switch: disabling the unlock grace window makes MUTEXEE behave
  // like MUTEX power-wise (the paper's sensitivity analysis); kept for the
  // fig08 --no-grace experiment and unit tests.
  bool enable_unlock_grace = true;
};

class LL_CAPABILITY("mutex") MutexeeLock {
 public:
  enum class Mode { kSpin, kMutex };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t spin_handovers = 0;   // acquired while busy-waiting
    std::uint64_t futex_handovers = 0;  // acquired after a futex sleep
    std::uint64_t timeout_handovers = 0;  // acquired after a timeout wake
    std::uint64_t wake_skips = 0;  // unlock grace detected a user-space grab
    std::uint64_t mode_switches = 0;

    double FutexHandoverRatio() const {
      return acquires == 0 ? 0.0
                           : static_cast<double>(futex_handovers + timeout_handovers) /
                                 static_cast<double>(acquires);
    }
  };

  MutexeeLock() = default;
  explicit MutexeeLock(MutexeeConfig config)
      : config_(config),
        spin_lock_budget_(config.spin_mode_lock_cycles),
        spin_grace_budget_(config.spin_mode_grace_cycles) {}

  void lock() LL_ACQUIRE();
  bool try_lock() LL_TRY_ACQUIRE(true);
  void unlock() LL_RELEASE();

  // Timed acquisition (FailSafe tier): MUTEXEE's spin-then-sleep protocol
  // with both phases bounded by the deadline -- the spin phase takes the
  // smaller of the mode budget and the remaining time, the sleep phase
  // uses timed futex waits. Returns false once the deadline passes.
  bool try_lock_for_ns(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true);

  // Retunes the spin-mode budgets online (the adaptive runtime derives new
  // budgets per contention regime; see src/adaptive/policy.hpp). Safe to
  // call concurrently with lock/unlock: budgets are atomics read once per
  // acquire/release. Mutex-mode budgets stay at their configured values.
  void Retune(std::uint64_t spin_lock_cycles, std::uint64_t spin_grace_cycles) {
    spin_lock_budget_.store(spin_lock_cycles, std::memory_order_relaxed);
    spin_grace_budget_.store(spin_grace_cycles, std::memory_order_relaxed);
  }
  std::uint64_t spin_lock_budget() const {
    return spin_lock_budget_.load(std::memory_order_relaxed);
  }
  std::uint64_t spin_grace_budget() const {
    return spin_grace_budget_.load(std::memory_order_relaxed);
  }

  Mode mode() const { return mode_.load(std::memory_order_relaxed); }
  Stats GetStats() const;
  const FutexStats& futex_stats() const { return futex_stats_; }
  void ResetStats();

  const MutexeeConfig& config() const { return config_; }

 private:
  // Spins up to `budget` cycles trying to move state 0 -> locked. Returns
  // true on acquisition.
  bool SpinAcquire(std::uint64_t budget);

  void MaybeAdapt();

  MutexeeConfig config_{};

  // Live spin-mode budgets; initialized from config_, updated by Retune().
  std::atomic<std::uint64_t> spin_lock_budget_{MutexeeConfig{}.spin_mode_lock_cycles};
  std::atomic<std::uint64_t> spin_grace_budget_{MutexeeConfig{}.spin_mode_grace_cycles};

  // 0 = free, 1 = locked, no advertised sleepers, 2 = locked, sleepers.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> state_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> sleepers_{0};

  std::atomic<Mode> mode_{Mode::kSpin};

  // Statistics; relaxed counters off the critical path.
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> spin_handovers_{0};
  std::atomic<std::uint64_t> futex_handovers_{0};
  std::atomic<std::uint64_t> timeout_handovers_{0};
  std::atomic<std::uint64_t> wake_skips_{0};
  std::atomic<std::uint64_t> mode_switches_{0};
  // Window counters for adaptation.
  std::atomic<std::uint64_t> window_acquires_{0};
  std::atomic<std::uint64_t> window_futex_{0};
  FutexStats futex_stats_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_MUTEXEE_HPP_
