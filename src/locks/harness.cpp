#include "src/locks/harness.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/platform/cycles.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/rng.hpp"
#include "src/platform/topology.hpp"

namespace lockin {

NativeBenchResult RunNativeBench(const NativeBenchConfig& config, EnergyMeter* meter) {
  std::vector<std::unique_ptr<LockHandle>> locks;
  locks.reserve(static_cast<std::size_t>(config.locks));
  for (int i = 0; i < config.locks; ++i) {
    locks.push_back(MakeLockOrThrow(config.lock_name, config.lock_options));
  }

  const Topology topology = Topology::Detect();
  const std::vector<CpuInfo> pinning = topology.PinningOrder();

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> acquires(static_cast<std::size_t>(config.threads), 0);
  std::vector<LatencyHistogram> latencies(static_cast<std::size_t>(config.threads));

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      if (config.pin_threads && !pinning.empty()) {
        PinThreadToCpu(pinning[static_cast<std::size_t>(t) % pinning.size()].os_cpu);
      }
      Xoshiro256 rng(config.seed * 40503 + static_cast<std::uint64_t>(t));
      while (!start.load(std::memory_order_acquire)) {
        SpinPause(PauseKind::kYield);
      }
      std::uint64_t local_acquires = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        LockHandle& lock = locks.size() == 1
                               ? *locks[0]
                               : *locks[rng.NextBelow(locks.size())];
        const std::uint64_t before = config.record_latency ? ReadCycles() : 0;
        lock.lock();
        if (config.record_latency) {
          latencies[static_cast<std::size_t>(t)].Record(ReadCycles() - before);
        }
        SpinForCycles(config.cs_cycles);
        lock.unlock();
        ++local_acquires;
        if (config.non_cs_cycles != 0) {
          SpinForCycles(config.non_cs_cycles);
        }
      }
      acquires[static_cast<std::size_t>(t)] = local_acquires;
    });
  }

  if (meter != nullptr) {
    meter->Start();
  }
  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  NativeBenchResult result;
  result.lock_name = config.lock_name;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  if (meter != nullptr) {
    result.energy = meter->Stop();
  }
  for (int t = 0; t < config.threads; ++t) {
    result.total_acquires += acquires[static_cast<std::size_t>(t)];
    result.acquire_latency_cycles.Merge(latencies[static_cast<std::size_t>(t)]);
  }
  result.throughput_per_s = result.seconds > 0
                                ? static_cast<double>(result.total_acquires) / result.seconds
                                : 0;
  result.tpp = result.energy.total_joules() > 0
                   ? static_cast<double>(result.total_acquires) / result.energy.total_joules()
                   : 0;
  return result;
}

}  // namespace lockin
