#include "src/locks/harness.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/locks/static_dispatch.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/rng.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/topology.hpp"

namespace lockin {
namespace {

// Per-worker hot state, one slot per thread. Regression note: the harness
// used to collect counters in a bare std::vector<std::uint64_t>, which
// packs 8 threads' per-acquire counters into a single cache line; the
// resulting false sharing serialized the "uncontested" multi-lock configs
// on coherence traffic. Every field a worker writes in the hot loop lives
// in its own slot, each slot starting on a cache-line boundary and spanning
// a whole number of lines (static_asserts below keep it that way).
struct alignas(kCacheLineSize) WorkerSlot {
  // Latency samples buffered per thread between histogram flushes; one
  // flush per kLatencyBatch acquires keeps the histogram's bucket array
  // (a per-thread heap block) out of the per-acquire path.
  static constexpr std::size_t kLatencyBatch = 64;

  explicit WorkerSlot(std::uint64_t rng_seed) : rng(rng_seed) {}

  std::uint64_t acquires = 0;
  std::uint32_t pending = 0;  // buffered samples not yet in the histogram
  Xoshiro256 rng;
  LatencyHistogram latency;
  std::uint64_t samples[kLatencyBatch];
};
static_assert(alignof(WorkerSlot) == kCacheLineSize,
              "worker slots must start on a cache-line boundary");
static_assert(sizeof(WorkerSlot) % kCacheLineSize == 0,
              "worker slots must span whole cache lines so adjacent slots "
              "never share one (false-sharing regression guard)");

// Zero-cost-when-off fences: with the default NullTracePolicy, TracedLock
// must add no state (so the traced wrapper can sit in the static-dispatch
// path without perturbing layout) and the untraced tier below never
// instantiates it anyway -- the default-config measured loop is the same
// WorkerLoop<L> symbol as before tracing existed.
static_assert(sizeof(TracedLock<TasLock>) == sizeof(TasLock),
              "NullTracePolicy TracedLock must be byte-identical to the bare lock");
static_assert(sizeof(TracedLock<FutexLock>) == sizeof(FutexLock),
              "NullTracePolicy TracedLock must be byte-identical to the bare lock");
static_assert(sizeof(TracedLock<MutexeeLock>) == sizeof(MutexeeLock),
              "NullTracePolicy TracedLock must be byte-identical to the bare lock");

// The lockdep detector (src/analysis/lockdep.hpp) rides the same fence: its
// hook lives inside TraceEmit, NullTracePolicy::Emit never calls TraceEmit,
// so the static untraced tier has no lockdep entry points at all -- its
// ns/op cannot move with the detector compiled in, enabled or not.
static_assert(!NullTracePolicy::kEnabled,
              "the untraced tier must compile out every emit (and lockdep hook) site");

// The measured loop. `Lock` is either a concrete lock type (static tier:
// lock()/unlock() inline here) or LockHandle (type-erased tier: two virtual
// calls per iteration). Everything the loop writes lives in `slot`; the
// only cross-thread reads are the start/stop flags, and the stop flag is
// polled once per `stop_check_every` iterations.
template <typename Lock>
void WorkerLoop(const NativeBenchConfig& config, Lock* const* locks, std::size_t lock_count,
                WorkerSlot& slot, const std::atomic<bool>& start_flag,
                const std::atomic<bool>& stop_flag) {
  while (!start_flag.load(std::memory_order_acquire)) {
    SpinPause(PauseKind::kYield);
  }
  const std::uint32_t cadence = config.stop_check_every == 0 ? 1 : config.stop_check_every;
  const bool record = config.record_latency;
  const std::uint64_t cs_cycles = config.cs_cycles;
  const std::uint64_t non_cs_cycles = config.non_cs_cycles;
  std::uint32_t countdown = 0;
  for (;;) {
    if (countdown == 0) {
      if (stop_flag.load(std::memory_order_relaxed)) {
        break;
      }
      countdown = cadence;
    }
    --countdown;
    Lock& lock = lock_count == 1 ? *locks[0] : *locks[slot.rng.NextBelow(lock_count)];
    if (record) {
      const std::uint64_t before = ReadCycles();
      lock.lock();
      slot.samples[slot.pending] = ReadCycles() - before;
      if (++slot.pending == WorkerSlot::kLatencyBatch) {
        slot.latency.RecordBatch(slot.samples, slot.pending);
        slot.pending = 0;
      }
    } else {
      lock.lock();
    }
    SpinForCycles(cs_cycles);
    lock.unlock();
    ++slot.acquires;
    if (non_cs_cycles != 0) {
      SpinForCycles(non_cs_cycles);
    }
  }
  if (slot.pending != 0) {
    slot.latency.RecordBatch(slot.samples, slot.pending);
    slot.pending = 0;
  }
}

// Shared driver, instantiated once per lock type: builds the lock set via
// `make_lock`, runs the workers, merges the slots.
template <typename Lock, typename Factory>
NativeBenchResult RunWithLockType(const NativeBenchConfig& config, EnergyMeter* meter,
                                  Factory&& make_lock) {
  std::vector<std::unique_ptr<Lock>> locks;
  std::vector<Lock*> lock_ptrs;
  locks.reserve(static_cast<std::size_t>(config.locks));
  lock_ptrs.reserve(static_cast<std::size_t>(config.locks));
  for (int i = 0; i < config.locks; ++i) {
    locks.push_back(make_lock());
    lock_ptrs.push_back(locks.back().get());
  }

  const Topology topology = Topology::Detect();
  const std::vector<CpuInfo> pinning = topology.PinningOrder();

  std::atomic<bool> start_flag{false};
  std::atomic<bool> stop_flag{false};
  std::vector<WorkerSlot> slots;
  slots.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    slots.emplace_back(config.seed * 40503 + static_cast<std::uint64_t>(t));
  }

  // Per-worker trace rings, owned by the process session so they survive
  // the joins below and can be collected/exported by the caller.
  std::vector<TraceBuffer*> trace_buffers(static_cast<std::size_t>(config.threads), nullptr);
  if (config.trace) {
    for (int t = 0; t < config.threads; ++t) {
      trace_buffers[static_cast<std::size_t>(t)] = TraceSession::Instance().NewBuffer(
          static_cast<std::uint16_t>(t), config.trace_buffer_events);
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    WorkerSlot& slot = slots[static_cast<std::size_t>(t)];
    TraceBuffer* trace_buffer = trace_buffers[static_cast<std::size_t>(t)];
    workers.emplace_back([&, &slot = slot, trace_buffer, t] {
      ScopedTraceSink sink(trace_buffer);  // null when tracing is off
      if (config.pin_threads && !pinning.empty()) {
        PinThreadToCpu(pinning[static_cast<std::size_t>(t) % pinning.size()].os_cpu);
      }
      WorkerLoop<Lock>(config, lock_ptrs.data(), lock_ptrs.size(), slot, start_flag, stop_flag);
    });
  }

  if (meter != nullptr) {
    meter->Start();
  }
  const auto t0 = std::chrono::steady_clock::now();
  start_flag.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
  stop_flag.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  NativeBenchResult result;
  result.lock_name = config.lock_name;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  if (meter != nullptr) {
    result.energy = meter->Stop();
  }
  for (const WorkerSlot& slot : slots) {
    result.total_acquires += slot.acquires;
    result.acquire_latency_cycles.Merge(slot.latency);
  }
  result.throughput_per_s = result.seconds > 0
                                ? static_cast<double>(result.total_acquires) / result.seconds
                                : 0;
  result.tpp = result.energy.total_joules() > 0
                   ? static_cast<double>(result.total_acquires) / result.energy.total_joules()
                   : 0;
  return result;
}

}  // namespace

NativeBenchResult RunNativeBench(const NativeBenchConfig& config, EnergyMeter* meter) {
  NativeBenchResult result;
  if (config.dispatch != DispatchTier::kTypeErased) {
    // Traced runs dispatch to TracedLock<L, ThreadTracePolicy>
    // instantiations; untraced runs use the bare concrete types, so the
    // default path's codegen is untouched by the tracing layer.
    auto visit = [&](auto tag, auto&&... args) {
      using L = typename decltype(tag)::type;
      result = RunWithLockType<L>(config, meter, [&] { return std::make_unique<L>(args...); });
      result.used_static_dispatch = true;
    };
    const bool dispatched =
        config.trace
            ? WithConcreteTracedLock<ThreadTracePolicy>(config.lock_name, config.lock_options,
                                                        visit)
            : WithConcreteLock(config.lock_name, config.lock_options, visit);
    if (dispatched) {
      return result;
    }
    if (config.dispatch == DispatchTier::kStatic) {
      throw std::invalid_argument("no static dispatch for lock: " + config.lock_name);
    }
  }
  // Type-erased fallback (ADAPTIVE, unknown names -> MakeLockOrThrow's
  // std::invalid_argument) or an explicitly requested kTypeErased baseline.
  return RunWithLockType<LockHandle>(config, meter, [&]() -> std::unique_ptr<LockHandle> {
    auto handle = MakeLockOrThrow(config.lock_name, config.lock_options);
    return config.trace ? WrapTraced(std::move(handle)) : std::move(handle);
  });
}

}  // namespace lockin
