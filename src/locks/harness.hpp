// Native measurement harness: runs the paper's microbenchmark shape (N
// threads, L locks, C-cycle critical sections) against the *real* lock
// library on the host, measuring throughput with the cycle counter and
// energy through the EnergyMeter stack (RAPL when available, the model
// otherwise). This is the harness a user with a multi-socket machine runs
// to get paper-style numbers on real hardware; the simulator benches in
// bench/ are its calibrated stand-in for this repository's 1-CPU CI host.
#ifndef SRC_LOCKS_HARNESS_HPP_
#define SRC_LOCKS_HARNESS_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/energy/energy_meter.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/stats/histogram.hpp"

namespace lockin {

struct NativeBenchConfig {
  std::string lock_name = "MUTEXEE";
  int threads = 2;
  int locks = 1;
  std::uint64_t cs_cycles = 1000;
  std::uint64_t non_cs_cycles = 100;
  // Wall-clock run length. The paper uses 10 s x 11 repetitions; tests and
  // examples use much shorter runs.
  std::uint64_t duration_ms = 100;
  std::uint64_t seed = 1;
  bool pin_threads = true;        // pin in the paper's socket-first order
  bool record_latency = true;     // per-acquire rdtsc latency histogram
  LockBuildOptions lock_options;  // pause kind, yield threshold, budgets
};

struct NativeBenchResult {
  std::string lock_name;
  double seconds = 0;
  std::uint64_t total_acquires = 0;
  double throughput_per_s = 0;
  EnergySample energy;            // zero when no meter was supplied
  double tpp = 0;                 // acquires/Joule (0 without a meter)
  LatencyHistogram acquire_latency_cycles;
};

// Runs the workload. `meter` may be null (throughput only). Builds locks
// via MakeLockOrThrow, so an unknown lock name raises std::invalid_argument
// (the registry's probing API, MakeLock, returns nullptr instead; see
// src/locks/lock_registry.hpp for the two-level contract).
NativeBenchResult RunNativeBench(const NativeBenchConfig& config, EnergyMeter* meter = nullptr);

}  // namespace lockin

#endif  // SRC_LOCKS_HARNESS_HPP_
