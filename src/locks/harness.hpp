// Native measurement harness: runs the paper's microbenchmark shape (N
// threads, L locks, C-cycle critical sections) against the *real* lock
// library on the host, measuring throughput with the cycle counter and
// energy through the EnergyMeter stack (RAPL when available, the model
// otherwise). This is the harness a user with a multi-socket machine runs
// to get paper-style numbers on real hardware; the simulator benches in
// bench/ are its calibrated stand-in for this repository's 1-CPU CI host.
//
// The measured loop runs on one of two dispatch tiers:
//   * static  -- the loop is a template instantiated per concrete lock type
//                (src/locks/static_dispatch.hpp), so lock()/unlock() inline
//                into the loop body with zero indirect calls;
//   * handle  -- the type-erased LockHandle path (two virtual calls per
//                acquire/release pair), used for ADAPTIVE and kept around
//                as the measurable-overhead baseline (BENCH_native.json
//                reports both tiers).
// Worker threads keep all hot state (acquire counter, RNG, latency batch
// buffer, histogram) in cache-line-aligned per-thread slots, so the loop
// shares no written cache line across threads and performs no per-acquire
// heap allocation.
#ifndef SRC_LOCKS_HARNESS_HPP_
#define SRC_LOCKS_HARNESS_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/energy/energy_meter.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/histogram.hpp"

namespace lockin {

// Which measured-loop implementation RunNativeBench uses.
enum class DispatchTier {
  kAuto,        // static when the name has a concrete type, else type-erased
  kStatic,      // devirtualized only; std::invalid_argument otherwise
  kTypeErased,  // force the LockHandle loop (dispatch-overhead baseline)
};

struct NativeBenchConfig {
  std::string lock_name = "MUTEXEE";
  int threads = 2;
  int locks = 1;
  std::uint64_t cs_cycles = 1000;
  std::uint64_t non_cs_cycles = 100;
  // Wall-clock run length. The paper uses 10 s x 11 repetitions; tests and
  // examples use much shorter runs.
  std::uint64_t duration_ms = 100;
  std::uint64_t seed = 1;
  bool pin_threads = true;        // pin in the paper's socket-first order
  bool record_latency = true;     // per-acquire rdtsc latency histogram
  DispatchTier dispatch = DispatchTier::kAuto;
  // Hot-loop iterations between stop-flag loads (0 behaves as 1). The stop
  // flag is the only cross-thread line the loop reads; checking it every
  // iteration would put one shared load inside every measured acquire.
  std::uint32_t stop_check_every = 32;
  LockBuildOptions lock_options;  // pause kind, yield threshold, budgets
  // LockScope tracing. Off (the default) costs nothing: the static tier is
  // instantiated with NullTracePolicy and stays byte-identical to the
  // untraced loop. On, each worker gets a per-thread ring in the process
  // TraceSession and the measured loop emits acquire/contended/release
  // events (plus futex sleep/wake from the instrumented slow paths).
  bool trace = false;
  std::uint32_t trace_buffer_events = TraceBuffer::kDefaultCapacity;
};

struct NativeBenchResult {
  std::string lock_name;
  double seconds = 0;
  std::uint64_t total_acquires = 0;
  double throughput_per_s = 0;
  EnergySample energy;            // zero when no meter was supplied
  double tpp = 0;                 // acquires/Joule (0 without a meter)
  bool used_static_dispatch = false;  // which tier the measured loop ran on
  LatencyHistogram acquire_latency_cycles;
};

// Runs the workload. `meter` may be null (throughput only). Unknown lock
// names raise std::invalid_argument (the registry's throwing contract via
// MakeLockOrThrow on the type-erased tier; the static tier throws the same
// for names with no concrete type, i.e. ADAPTIVE and unknown).
NativeBenchResult RunNativeBench(const NativeBenchConfig& config, EnergyMeter* meter = nullptr);

}  // namespace lockin

#endif  // SRC_LOCKS_HARNESS_HPP_
