#include "src/locks/backoff.hpp"

#include <thread>

#include "src/platform/cycles.hpp"

namespace lockin {

void BackoffTasLock::lock() {
  // Per-thread RNG so concurrent waiters decorrelate.
  thread_local Xoshiro256 rng(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1);
  std::uint64_t window = config_.min_cycles;
  std::uint32_t iteration = 0;
  while (locked_.exchange(1, std::memory_order_acquire) != 0) {
    const std::uint64_t wait = config_.min_cycles + rng.NextBelow(window);
    const std::uint64_t start = ReadCycles();
    while (ReadCycles() - start < wait) {
      if (config_.yield_after != 0 && ++iteration >= config_.yield_after) {
        iteration = 0;
        SpinPause(PauseKind::kYield);
      } else {
        SpinPause(config_.pause);
      }
    }
    window = std::min(window * 2, config_.max_cycles);
  }
}

bool BackoffTasLock::try_lock() {
  return locked_.exchange(1, std::memory_order_acquire) == 0;
}

void BackoffTasLock::unlock() { locked_.store(0, std::memory_order_release); }

CohortLock::CohortLock(Config config) : config_(config) {
  if (config_.sockets < 1) {
    config_.sockets = 1;
  }
  locals_.reserve(static_cast<std::size_t>(config_.sockets));
  for (int i = 0; i < config_.sockets; ++i) {
    locals_.push_back(std::make_unique<Local>(config_.spin));
  }
}

void CohortLock::lock(int socket) {
  Local& local = *locals_[static_cast<std::size_t>(socket) %
                          static_cast<std::size_t>(config_.sockets)];
  local.waiters.fetch_add(1, std::memory_order_relaxed);
  local.lock.lock();
  local.waiters.fetch_sub(1, std::memory_order_relaxed);
  // Inside the cohort: if a previous holder left the global lock to us,
  // we own the critical section already.
  if (local.global_held) {
    return;
  }
  global_.lock();
  local.global_held = true;
  local.handovers = 0;
}

void CohortLock::unlock(int socket) {
  Local& local = *locals_[static_cast<std::size_t>(socket) %
                          static_cast<std::size_t>(config_.sockets)];
  // Hand over within the socket while the budget lasts *and* a local
  // waiter exists to take it; the next local acquirer inherits the global
  // lock (global_held stays true).
  if (local.handovers < config_.max_cohort_handovers &&
      local.waiters.load(std::memory_order_relaxed) > 0) {
    local.handovers++;
    local.lock.unlock();
    return;
  }
  local.global_held = false;
  global_.unlock();
  local.lock.unlock();
}

int CohortLock::SocketOfThisThread() const {
  thread_local const std::size_t tid_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<int>(tid_hash % static_cast<std::size_t>(config_.sockets));
}

void CohortLock::lock() { lock(SocketOfThisThread()); }

bool CohortLock::try_lock() {
  const int socket = SocketOfThisThread();
  Local& local = *locals_[static_cast<std::size_t>(socket)];
  if (!local.lock.try_lock()) {
    return false;
  }
  // A try_lock winner behaves like a zero-waiters acquire.
  if (local.global_held) {
    return true;
  }
  if (global_.try_lock()) {
    local.global_held = true;
    local.handovers = 0;
    return true;
  }
  local.lock.unlock();
  return false;
}

void CohortLock::unlock() { unlock(SocketOfThisThread()); }

}  // namespace lockin
