// CLH queue lock (Craig; Landin & Hagersten, 1993).
//
// Like MCS, waiters queue and spin locally, but each waiter spins on its
// *predecessor's* node and inherits that node for its next acquisition
// (node recycling). The paper evaluates CLH alongside MCS in section 5
// ("CLH ... differ[s] in [its] busy-waiting implementation").
#ifndef SRC_LOCKS_CLH_HPP_
#define SRC_LOCKS_CLH_HPP_

#include <atomic>
#include <cstdint>

#include "src/platform/cacheline.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {

struct alignas(kCacheLineSize) ClhNode {
  std::atomic<std::uint32_t> locked{0};
};

class LL_CAPABILITY("mutex") ClhLock {
 public:
  ClhLock();
  explicit ClhLock(SpinConfig config);
  ~ClhLock();

  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;

  void lock() LL_ACQUIRE();
  bool try_lock() LL_TRY_ACQUIRE(true);
  void unlock() LL_RELEASE();

 private:
  struct ThreadSlot {
    ClhNode* my_node = nullptr;    // node to publish on next acquisition
    ClhNode* my_pred = nullptr;    // predecessor node while holding
  };

  ThreadSlot* SlotForThisThread();

  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<ClhNode*> tail_;
  ClhNode* initial_node_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_CLH_HPP_
