// MCS queue lock (Mellor-Crummey & Scott, 1991).
//
// Waiters form an explicit queue; each spins on a flag in its own cache
// line, so a release touches exactly one remote line. This is why MCS
// "delivers the best throughput and TPP" up to full subscription in the
// paper's Figure 11 -- and why, being FIFO-fair, it collapses beyond 40
// threads when the next-in-queue thread may be descheduled.
//
// Two APIs:
//   * explicit-node: lock(&node)/unlock(&node), the classical interface;
//   * Lockable-conforming lock()/unlock() that draws nodes from a small
//     thread-local stack (supports nested acquisition of distinct MCS locks
//     up to kMaxNesting deep).
#ifndef SRC_LOCKS_MCS_HPP_
#define SRC_LOCKS_MCS_HPP_

#include <atomic>
#include <cstdint>

#include "src/platform/cacheline.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {

struct alignas(kCacheLineSize) McsNode {
  std::atomic<McsNode*> next{nullptr};
  std::atomic<std::uint32_t> locked{0};
};

class LL_CAPABILITY("mutex") McsLock {
 public:
  McsLock() = default;
  explicit McsLock(SpinConfig config) : config_(config) {}

  // Classical explicit-node interface. The node must stay alive and
  // unreused until the matching unlock returns.
  void lock(McsNode* node) LL_ACQUIRE();
  bool try_lock(McsNode* node) LL_TRY_ACQUIRE(true);
  void unlock(McsNode* node) LL_RELEASE();

  // Lockable interface using thread-local nodes.
  void lock() LL_ACQUIRE();
  bool try_lock() LL_TRY_ACQUIRE(true);
  void unlock() LL_RELEASE();

 private:
  static constexpr int kMaxNesting = 16;

  McsNode* PushTlsNode();
  McsNode* PopTlsNode();

  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<McsNode*> tail_{nullptr};
};

}  // namespace lockin

#endif  // SRC_LOCKS_MCS_HPP_
