#include "src/locks/spinlocks.hpp"

namespace lockin {
namespace {

// One spin-wait step: pause per the configured technique, yielding after
// `iteration` exceeds the configured threshold.
inline void SpinStep(const SpinConfig& config, std::uint32_t iteration) {
  if (config.yield_after != 0 && iteration >= config.yield_after) {
    SpinPause(PauseKind::kYield);
  } else {
    SpinPause(config.pause);
  }
}

}  // namespace

void TasLock::lock() {
  // Global spinning: the exchange keeps the line in modified state and is
  // the highest-power waiting mode measured in Figure 3.
  std::uint32_t iteration = 0;
  while (locked_.exchange(1, std::memory_order_acquire) != 0) {
    SpinStep(config_, iteration++);
  }
}

bool TasLock::try_lock() { return locked_.exchange(1, std::memory_order_acquire) == 0; }

void TasLock::unlock() { locked_.store(0, std::memory_order_release); }

void TtasLock::lock() {
  std::uint32_t iteration = 0;
  for (;;) {
    if (locked_.load(std::memory_order_relaxed) == 0 &&
        locked_.exchange(1, std::memory_order_acquire) == 0) {
      return;
    }
    // Local spinning: wait on the cached copy until the line is invalidated
    // by the release store.
    while (locked_.load(std::memory_order_relaxed) != 0) {
      SpinStep(config_, iteration++);
    }
  }
}

bool TtasLock::try_lock() {
  return locked_.load(std::memory_order_relaxed) == 0 &&
         locked_.exchange(1, std::memory_order_acquire) == 0;
}

void TtasLock::unlock() { locked_.store(0, std::memory_order_release); }

void TicketLock::lock() {
  const std::uint32_t my_ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t iteration = 0;
  while (now_serving_.load(std::memory_order_acquire) != my_ticket) {
    SpinStep(config_, iteration++);
  }
}

bool TicketLock::try_lock() {
  std::uint32_t serving = now_serving_.load(std::memory_order_acquire);
  std::uint32_t expected = serving;
  // Acquire only when no one is queued: next_ticket == now_serving.
  return next_ticket_.compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                              std::memory_order_relaxed);
}

void TicketLock::unlock() {
  now_serving_.fetch_add(1, std::memory_order_release);
}

std::uint32_t TicketLock::QueueLength() const {
  const std::uint32_t next = next_ticket_.load(std::memory_order_relaxed);
  const std::uint32_t serving = now_serving_.load(std::memory_order_relaxed);
  return next - serving;
}

}  // namespace lockin
