#include "src/locks/futex_lock.hpp"

namespace lockin {

void FutexLock::LockSlow() {
  // Sleep phase (the spin phase ran inline and failed): advertise waiters
  // by moving to state 2, then futex-wait.
  std::uint32_t current = state_.load(std::memory_order_relaxed);
  for (;;) {
    if (current == 0) {
      // Grab directly into state 2: we cannot know whether other waiters
      // remain, so the next unlock must wake.
      if (state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      continue;
    }
    if (current == 1) {
      if (!state_.compare_exchange_weak(current, 2, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      current = 2;
    }
    FutexWaitCounted(&state_, 2, &stats_);
    current = state_.load(std::memory_order_relaxed);
  }
}

}  // namespace lockin
