#include "src/locks/futex_lock.hpp"

#include <chrono>

namespace lockin {
namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void FutexLock::LockSlow() {
  // Sleep phase (the spin phase ran inline and failed): advertise waiters
  // by moving to state 2, then futex-wait.
  std::uint32_t current = state_.load(std::memory_order_relaxed);
  for (;;) {
    if (current == 0) {
      // Grab directly into state 2: we cannot know whether other waiters
      // remain, so the next unlock must wake.
      if (state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      continue;
    }
    if (current == 1) {
      if (!state_.compare_exchange_weak(current, 2, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      current = 2;
    }
    FutexWaitCounted(&state_, 2, &stats_);
    current = state_.load(std::memory_order_relaxed);
  }
}

bool FutexLock::LockSlowTimed(std::uint64_t timeout_ns) {
  const std::uint64_t deadline = SteadyNowNs() + timeout_ns;
  std::uint32_t current = state_.load(std::memory_order_relaxed);
  for (;;) {
    if (current == 0) {
      if (state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
      continue;
    }
    if (current == 1) {
      if (!state_.compare_exchange_weak(current, 2, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      current = 2;
    }
    const std::uint64_t now = SteadyNowNs();
    // remaining == 0 would mean "wait forever" to FutexWaitTimeout; treat
    // an exhausted budget as expired before sleeping.
    if (now >= deadline) {
      break;
    }
    const FutexWaitResult result =
        FutexWaitTimeoutCounted(&state_, 2, deadline - now, &stats_);
    if (result == FutexWaitResult::kTimedOut) {
      break;
    }
    current = state_.load(std::memory_order_relaxed);
  }
  // Deadline expired. One last grab: the lock may have been released while
  // we were timing out, and leaving without it would turn a near-miss into
  // a shed op for no reason.
  std::uint32_t expected = 0;
  return state_.compare_exchange_strong(expected, 2, std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

}  // namespace lockin
