#include "src/locks/futex_lock.hpp"

namespace lockin {

void FutexLock::lock() {
  // Spin phase: up to config_.spin_tries CAS attempts from 0.
  for (std::uint32_t attempt = 0; attempt < config_.spin_tries; ++attempt) {
    std::uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    SpinPause(config_.pause);
  }

  // Sleep phase: advertise waiters by moving to state 2, then futex-wait.
  std::uint32_t current = state_.load(std::memory_order_relaxed);
  for (;;) {
    if (current == 0) {
      // Grab directly into state 2: we cannot know whether other waiters
      // remain, so the next unlock must wake.
      if (state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      continue;
    }
    if (current == 1) {
      if (!state_.compare_exchange_weak(current, 2, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      current = 2;
    }
    FutexWaitCounted(&state_, 2, &stats_);
    current = state_.load(std::memory_order_relaxed);
  }
}

bool FutexLock::try_lock() {
  std::uint32_t expected = 0;
  return state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

void FutexLock::unlock() {
  // Release in user space; wake one sleeper only when waiters were
  // advertised (state 2).
  if (state_.exchange(0, std::memory_order_release) == 2) {
    FutexWakeCounted(&state_, 1, &stats_);
  }
}

}  // namespace lockin
