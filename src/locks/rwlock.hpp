// Futex-based reader-writer lock.
//
// HamsterDB and Kyoto Cabinet in the paper's section 6 use pthread
// reader-writer locks; the reproduction systems need a lock-library-native
// equivalent. Writer-preferring: new readers queue behind a waiting writer
// so write-heavy workloads (the WT configurations) are not starved.
#ifndef SRC_LOCKS_RWLOCK_HPP_
#define SRC_LOCKS_RWLOCK_HPP_

#include <atomic>
#include <cstdint>

#include "src/futex/futex.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

class LL_CAPABILITY("shared_mutex") RwLock {
 public:
  RwLock() = default;

  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared() LL_ACQUIRE_SHARED();
  bool try_lock_shared() LL_TRY_ACQUIRE_SHARED(true);
  void unlock_shared() LL_RELEASE_SHARED();

  void lock() LL_ACQUIRE();      // writer
  bool try_lock() LL_TRY_ACQUIRE(true);  // writer
  void unlock() LL_RELEASE();    // writer

  // Diagnostics.
  std::uint32_t ActiveReaders() const;
  bool WriterHeld() const;

 private:
  static constexpr std::uint32_t kWriterBit = 1u << 31;

  // state_: kWriterBit when a writer holds; else the active-reader count.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> state_{0};
  // Writers waiting; readers defer to them (writer preference).
  alignas(kCacheLineSize) std::atomic<std::uint32_t> waiting_writers_{0};
  // Futex words readers/writers sleep on (state changes tick them).
  alignas(kCacheLineSize) std::atomic<std::uint32_t> reader_gate_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> writer_gate_{0};
};

// RAII shared guard.
class LL_SCOPED_CAPABILITY SharedGuard {
 public:
  explicit SharedGuard(RwLock& lock) LL_ACQUIRE_SHARED(lock) : lock_(lock) {
    lock_.lock_shared();
  }
  ~SharedGuard() LL_RELEASE() { lock_.unlock_shared(); }

  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  RwLock& lock_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_RWLOCK_HPP_
