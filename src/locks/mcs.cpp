#include "src/locks/mcs.hpp"

namespace lockin {
namespace {

// Per-thread node stack shared by all McsLock instances: entry i is in use
// by the i-th deepest MCS acquisition currently held by this thread.
struct TlsNodePool {
  McsNode nodes[16];
  int depth = 0;
};

thread_local TlsNodePool tls_pool;

}  // namespace

void McsLock::lock(McsNode* node) {
  node->next.store(nullptr, std::memory_order_relaxed);
  node->locked.store(1, std::memory_order_relaxed);
  McsNode* prev = tail_.exchange(node, std::memory_order_acq_rel);
  if (prev == nullptr) {
    return;  // lock was free
  }
  prev->next.store(node, std::memory_order_release);
  std::uint32_t iteration = 0;
  while (node->locked.load(std::memory_order_acquire) != 0) {
    SpinWaitStep(config_, iteration++);
  }
}

bool McsLock::try_lock(McsNode* node) {
  node->next.store(nullptr, std::memory_order_relaxed);
  node->locked.store(1, std::memory_order_relaxed);
  McsNode* expected = nullptr;
  return tail_.compare_exchange_strong(expected, node, std::memory_order_acq_rel,
                                       std::memory_order_relaxed);
}

void McsLock::unlock(McsNode* node) {
  McsNode* successor = node->next.load(std::memory_order_acquire);
  if (successor == nullptr) {
    McsNode* expected = node;
    if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return;  // no waiter
    }
    // A waiter swapped itself into tail_ but has not linked yet; wait for
    // the link (bounded: the enqueuer is between two instructions).
    std::uint32_t iteration = 0;
    while ((successor = node->next.load(std::memory_order_acquire)) == nullptr) {
      SpinWaitStep(config_, iteration++);
    }
  }
  successor->locked.store(0, std::memory_order_release);
}

McsNode* McsLock::PushTlsNode() {
  TlsNodePool& pool = tls_pool;
  // Depth overflow would mean >16 nested MCS locks; treat as programmer
  // error and reuse the last slot (still safe for distinct locks released
  // LIFO, which is what guards give us).
  const int index = pool.depth < kMaxNesting ? pool.depth : kMaxNesting - 1;
  ++pool.depth;
  return &pool.nodes[index];
}

McsNode* McsLock::PopTlsNode() {
  TlsNodePool& pool = tls_pool;
  --pool.depth;
  const int index = pool.depth < kMaxNesting ? pool.depth : kMaxNesting - 1;
  return &pool.nodes[index];
}

void McsLock::lock() { lock(PushTlsNode()); }

bool McsLock::try_lock() {
  McsNode* node = PushTlsNode();
  if (try_lock(node)) {
    return true;
  }
  PopTlsNode();
  return false;
}

void McsLock::unlock() { unlock(PopTlsNode()); }

}  // namespace lockin
