#include "src/locks/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "src/futex/futex.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/stats/summary.hpp"

namespace lockin {
namespace {

constexpr int kRounds = 20;

// Measures the latency from a FUTEX_WAKE call to the woken thread running,
// plus the wake call itself: the paper's Figure 6 "turnaround" metric.
void MeasureFutexLatencies(std::uint64_t* wake_call_cycles, std::uint64_t* turnaround_cycles) {
  std::atomic<std::uint32_t> word{0};
  std::atomic<std::uint64_t> woken_at{0};
  std::atomic<bool> sleeper_ready{false};
  std::atomic<bool> stop{false};

  std::vector<double> wake_samples;
  std::vector<double> turnaround_samples;

  std::thread sleeper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      sleeper_ready.store(true, std::memory_order_release);
      FutexWait(&word, 0);
      woken_at.store(ReadCycles(), std::memory_order_release);
      // Wait for the main thread to rearm.
      while (word.load(std::memory_order_acquire) != 0 && !stop.load(std::memory_order_acquire)) {
        SpinPause(PauseKind::kYield);
      }
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    while (!sleeper_ready.load(std::memory_order_acquire)) {
      SpinPause(PauseKind::kYield);
    }
    sleeper_ready.store(false, std::memory_order_release);
    // Give the sleeper time to actually block in the kernel (~the paper's
    // 2100-cycle sleep latency, with margin for this host).
    SpinForCycles(80000);
    woken_at.store(0, std::memory_order_release);
    word.store(1, std::memory_order_release);

    const std::uint64_t wake_start = ReadCycles();
    FutexWake(&word, 1);
    const std::uint64_t wake_end = ReadCycles();

    while (woken_at.load(std::memory_order_acquire) == 0) {
      SpinPause(PauseKind::kYield);
    }
    const std::uint64_t ran_at = woken_at.load(std::memory_order_acquire);
    wake_samples.push_back(static_cast<double>(wake_end - wake_start));
    if (ran_at > wake_start) {
      turnaround_samples.push_back(static_cast<double>(ran_at - wake_start));
    }
    word.store(0, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  word.store(1, std::memory_order_release);
  FutexWake(&word, 1);
  sleeper.join();

  *wake_call_cycles = static_cast<std::uint64_t>(Median(wake_samples));
  *turnaround_cycles = static_cast<std::uint64_t>(Median(turnaround_samples));
}

// Measures one contended cache-line hop by ping-ponging a word between two
// threads. On single-CPU hosts this degenerates to scheduler latency; the
// derived grace budget is clamped below.
std::uint64_t MeasureLineTransfer() {
  alignas(kCacheLineSize) std::atomic<std::uint64_t> token{0};
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kHops = 600;

  std::thread partner([&] {
    std::uint64_t expected = 1;
    while (!stop.load(std::memory_order_acquire)) {
      if (token.load(std::memory_order_acquire) == expected) {
        token.store(expected + 1, std::memory_order_release);
        expected += 2;
      } else {
        SpinPause(PauseKind::kYield);
      }
    }
  });

  const std::uint64_t start = ReadCycles();
  std::uint64_t expected = 2;
  token.store(1, std::memory_order_release);
  for (std::uint64_t hop = 0; hop < kHops; ++hop) {
    while (token.load(std::memory_order_acquire) != expected) {
      SpinPause(PauseKind::kYield);
    }
    token.store(expected + 1, std::memory_order_release);
    expected += 2;
  }
  const std::uint64_t elapsed = ReadCycles() - start;
  stop.store(true, std::memory_order_release);
  partner.join();
  return elapsed / (kHops * 2);
}

}  // namespace

std::string TunerReport::ToString() const {
  std::ostringstream out;
  out << "futex wake call: " << futex_wake_call_cycles << " cycles\n"
      << "futex turnaround: " << futex_turnaround_cycles << " cycles\n"
      << "cache-line transfer: " << line_transfer_cycles << " cycles\n"
      << "derived MUTEXEE config:\n"
      << "  spin_mode_lock_cycles  = " << config.spin_mode_lock_cycles << "\n"
      << "  spin_mode_grace_cycles = " << config.spin_mode_grace_cycles << "\n"
      << "  mutex_mode_lock_cycles = " << config.mutex_mode_lock_cycles << "\n"
      << "  mutex_mode_grace_cycles= " << config.mutex_mode_grace_cycles << "\n";
  return out.str();
}

TunerReport RunMutexeeTuner() {
  TunerReport report;
  MeasureFutexLatencies(&report.futex_wake_call_cycles, &report.futex_turnaround_cycles);
  report.line_transfer_cycles = MeasureLineTransfer();

  // Derivations (see header). Clamp to sane ranges so a noisy or
  // single-CPU host cannot produce a pathological configuration.
  const std::uint64_t spin_budget = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(1.15 * static_cast<double>(report.futex_turnaround_cycles)),
      4000, 65536);
  const std::uint64_t grace = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(1.4 * static_cast<double>(report.line_transfer_cycles)), 128,
      2048);

  report.config.spin_mode_lock_cycles = spin_budget;
  report.config.spin_mode_grace_cycles = grace;
  report.config.mutex_mode_lock_cycles = std::max<std::uint64_t>(spin_budget / 32, 128);
  report.config.mutex_mode_grace_cycles = std::max<std::uint64_t>(grace / 3, 64);
  return report;
}

}  // namespace lockin
