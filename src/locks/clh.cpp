#include "src/locks/clh.hpp"

#include <unordered_map>

namespace lockin {

ClhLock::ClhLock() : ClhLock(SpinConfig{}) {}

ClhLock::ClhLock(SpinConfig config) : config_(config) {
  initial_node_ = new ClhNode();
  initial_node_->locked.store(0, std::memory_order_relaxed);
  tail_.store(initial_node_, std::memory_order_relaxed);
}

ClhLock::~ClhLock() {
  // The node in tail_ when the lock dies is owned by the lock (either the
  // initial node or one donated by the last releaser; nodes migrate between
  // threads, so the last one standing is freed here; thread slots free the
  // rest on lock destruction via their map).
  delete tail_.load(std::memory_order_relaxed);
}

ClhLock::ThreadSlot* ClhLock::SlotForThisThread() {
  // Per-thread, per-lock slot. CLH nodes migrate between threads, so slots
  // cannot be a single thread_local; key by lock identity. Destruction of
  // slots leaks at most one node per (thread, lock) pair that is never
  // reused -- nodes owned by live slots are freed when the thread exits.
  struct SlotMap {
    std::unordered_map<const ClhLock*, ThreadSlot> slots;
    ~SlotMap() {
      for (auto& [lock, slot] : slots) {
        delete slot.my_node;
      }
    }
  };
  thread_local SlotMap tls_map;
  ThreadSlot& slot = tls_map.slots[this];
  if (slot.my_node == nullptr) {
    slot.my_node = new ClhNode();
  }
  return &slot;
}

void ClhLock::lock() {
  ThreadSlot* slot = SlotForThisThread();
  ClhNode* node = slot->my_node;
  node->locked.store(1, std::memory_order_relaxed);
  ClhNode* pred = tail_.exchange(node, std::memory_order_acq_rel);
  slot->my_pred = pred;
  std::uint32_t iteration = 0;
  while (pred->locked.load(std::memory_order_acquire) != 0) {
    SpinWaitStep(config_, iteration++);
  }
}

bool ClhLock::try_lock() {
  ThreadSlot* slot = SlotForThisThread();
  ClhNode* node = slot->my_node;
  node->locked.store(1, std::memory_order_relaxed);
  ClhNode* current_tail = tail_.load(std::memory_order_acquire);
  if (current_tail->locked.load(std::memory_order_acquire) != 0) {
    return false;  // held or queued behind
  }
  if (!tail_.compare_exchange_strong(current_tail, node, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    return false;
  }
  slot->my_pred = current_tail;
  // Predecessor was unlocked at the check; it stays unlocked because only a
  // thread that re-acquires could set it, and it is no longer in the queue.
  return true;
}

void ClhLock::unlock() {
  ThreadSlot* slot = SlotForThisThread();
  ClhNode* node = slot->my_node;
  // Recycle: take the predecessor's node for the next acquisition, then
  // release ours to the successor (who is spinning on it).
  slot->my_node = slot->my_pred;
  slot->my_pred = nullptr;
  node->locked.store(0, std::memory_order_release);
}

}  // namespace lockin
