// MUTEXEE platform tuner.
//
// Paper, section 5.1: "in order to allow developers to fine-tune MUTEXEE
// for a platform, we provide a script which runs the necessary
// microbenchmarks and reports the configuration parameters that can be used
// for that platform." This is that script, as a library: it measures the
// futex turnaround latency and the cache-line transfer latency on the host
// and derives the spin and grace budgets.
#ifndef SRC_LOCKS_TUNER_HPP_
#define SRC_LOCKS_TUNER_HPP_

#include <cstdint>
#include <string>

#include "src/locks/mutexee.hpp"

namespace lockin {

struct TunerReport {
  // Measured on this host.
  std::uint64_t futex_wake_call_cycles = 0;   // latency of the FUTEX_WAKE call
  std::uint64_t futex_turnaround_cycles = 0;  // wake invocation -> woken thread running
  std::uint64_t line_transfer_cycles = 0;     // one contended cache-line hop

  // Derived configuration.
  MutexeeConfig config;

  std::string ToString() const;
};

// Runs the tuning microbenchmarks (a few hundred milliseconds) and derives
// a MutexeeConfig for this platform:
//   * lock spin budget ~= 1.15x the futex turnaround latency (spinning any
//     shorter risks sleeping for waits cheaper than the sleep itself);
//   * unlock grace ~= 1.4x one cache-line transfer (the maximum coherence
//     latency the release store plus the grab need).
TunerReport RunMutexeeTuner();

}  // namespace lockin

#endif  // SRC_LOCKS_TUNER_HPP_
