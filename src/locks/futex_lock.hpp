// FutexLock: a faithful re-implementation of the glibc pthread mutex
// acquire/release protocol (Franke et al., "Fuss, Futexes and Furwocks").
//
// This is the paper's baseline MUTEX: spin briefly (default glibc tries the
// atomic once; PTHREAD_MUTEX_ADAPTIVE_NP retries up to 100 times), then
// sleep with FUTEX_WAIT. Release stores 0 in user space and wakes one
// sleeper. The paper shows (section 5.1) that this "can result in very poor
// performance for critical sections of up to 4000 cycles" because threads
// are put to sleep although the queueing time is below the futex-sleep
// latency -- the pathology MUTEXEE fixes.
//
// State protocol (same as glibc's lowlevellock):
//   0 = free, 1 = locked/no waiters, 2 = locked/maybe waiters.
#ifndef SRC_LOCKS_FUTEX_LOCK_HPP_
#define SRC_LOCKS_FUTEX_LOCK_HPP_

#include <atomic>
#include <cstdint>

#include "src/futex/futex.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

struct FutexLockConfig {
  // Acquire attempts before sleeping. 1 mimics default MUTEX; 100 mimics
  // PTHREAD_MUTEX_ADAPTIVE_NP. The paper uses the default in its figures.
  std::uint32_t spin_tries = 1;
  // Pausing between attempts; glibc uses `pause`, which the paper keeps for
  // MUTEX ("MUTEX spins with pause, while TICKET uses a memory barrier").
  PauseKind pause = PauseKind::kPause;
};

class LL_CAPABILITY("mutex") FutexLock {
 public:
  FutexLock() = default;
  explicit FutexLock(FutexLockConfig config) : config_(config) {}

  // Fast paths are inline (the uncontested CAS / release store is what the
  // devirtualized bench tier measures); the futex sleep phase stays
  // out-of-line in futex_lock.cpp.
  void lock() LL_ACQUIRE() {
    // Spin phase: up to config_.spin_tries CAS attempts from 0.
    for (std::uint32_t attempt = 0; attempt < config_.spin_tries; ++attempt) {
      std::uint32_t expected = 0;
      if (state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return;
      }
      SpinPause(config_.pause);
    }
    LockSlow();
  }

  bool try_lock() LL_TRY_ACQUIRE(true) {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Timed acquisition (FailSafe tier): same protocol as lock(), but the
  // sleep phase uses timed futex waits against a deadline. Returns false
  // when the deadline passes without the lock. A timed-out waiter may
  // leave state at 2, costing the next unlock one futile wake -- the same
  // benign over-wake the protocol already tolerates.
  bool try_lock_for_ns(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true) {
    for (std::uint32_t attempt = 0; attempt < config_.spin_tries; ++attempt) {
      std::uint32_t expected = 0;
      if (state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return true;
      }
      SpinPause(config_.pause);
    }
    return LockSlowTimed(timeout_ns);
  }

  void unlock() LL_RELEASE() {
    // Release in user space; wake one sleeper only when waiters were
    // advertised (state 2).
    if (state_.exchange(0, std::memory_order_release) == 2) {
      FutexWakeCounted(&state_, 1, &stats_);
    }
  }

  const FutexStats& futex_stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  // Sleep phase: advertise waiters by moving to state 2, then futex-wait.
  void LockSlow();
  bool LockSlowTimed(std::uint64_t timeout_ns);

  FutexLockConfig config_{};
  FutexStats stats_;
  alignas(kCacheLineSize) std::atomic<std::uint32_t> state_{0};
};

}  // namespace lockin

#endif  // SRC_LOCKS_FUTEX_LOCK_HPP_
