// Adapter over pthread_mutex_t.
//
// The paper's systems experiments replace pthread mutexes in six systems;
// this adapter is the "stock MUTEX" reference point so benchmarks can
// compare the re-implemented FutexLock against the real glibc lock.
#ifndef SRC_LOCKS_PTHREAD_ADAPTER_HPP_
#define SRC_LOCKS_PTHREAD_ADAPTER_HPP_

#include <pthread.h>

#include <cstdint>
#include <ctime>

#include "src/platform/thread_annotations.hpp"

namespace lockin {

class LL_CAPABILITY("mutex") PthreadMutex {
 public:
  PthreadMutex() { pthread_mutex_init(&mutex_, nullptr); }

  // Adaptive variant: PTHREAD_MUTEX_ADAPTIVE_NP spins up to ~100 attempts
  // before the futex call (footnote 9 of the paper).
  static PthreadMutex Adaptive() { return PthreadMutex(kAdaptiveTag); }

  ~PthreadMutex() { pthread_mutex_destroy(&mutex_); }

  PthreadMutex(const PthreadMutex&) = delete;
  PthreadMutex& operator=(const PthreadMutex&) = delete;

  void lock() LL_ACQUIRE() { pthread_mutex_lock(&mutex_); }
  bool try_lock() LL_TRY_ACQUIRE(true) { return pthread_mutex_trylock(&mutex_) == 0; }
  void unlock() LL_RELEASE() { pthread_mutex_unlock(&mutex_); }

  // Timed acquisition (FailSafe tier): pthread_mutex_timedlock takes an
  // absolute CLOCK_REALTIME deadline, so convert the relative budget here.
  bool try_lock_for_ns(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true) {
    timespec deadline;
    clock_gettime(CLOCK_REALTIME, &deadline);
    deadline.tv_sec += static_cast<time_t>(timeout_ns / 1000000000ULL);
    deadline.tv_nsec += static_cast<long>(timeout_ns % 1000000000ULL);
    if (deadline.tv_nsec >= 1000000000L) {
      deadline.tv_nsec -= 1000000000L;
      ++deadline.tv_sec;
    }
    return pthread_mutex_timedlock(&mutex_, &deadline) == 0;
  }

  pthread_mutex_t* native_handle() { return &mutex_; }

 private:
  struct AdaptiveTag {};
  static constexpr AdaptiveTag kAdaptiveTag{};

  explicit PthreadMutex(AdaptiveTag) {
    pthread_mutexattr_t attr;
    pthread_mutexattr_init(&attr);
#ifdef PTHREAD_MUTEX_ADAPTIVE_NP
    pthread_mutexattr_settype(&attr, PTHREAD_MUTEX_ADAPTIVE_NP);
#endif
    pthread_mutex_init(&mutex_, &attr);
    pthread_mutexattr_destroy(&attr);
  }

  pthread_mutex_t mutex_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_PTHREAD_ADAPTER_HPP_
