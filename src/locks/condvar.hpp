// Futex-based condition variable usable with any lock in the library.
//
// The systems the paper modifies rely on pthread condition variables as
// well as mutexes (RocksDB "mostly relies on a conditional variable",
// section 6); swapping the lock requires a condvar that accepts it. This is
// a sequence-counter futex condvar: Wait atomically snapshots the sequence,
// releases the lock, sleeps until the sequence moves, and reacquires.
#ifndef SRC_LOCKS_CONDVAR_HPP_
#define SRC_LOCKS_CONDVAR_HPP_

#include <atomic>
#include <cstdint>

#include "src/futex/futex.hpp"
#include "src/locks/lock_api.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Releases `lock`, waits for a signal, reacquires. Spurious wake-ups are
  // possible (as with pthreads); always wait in a predicate loop.
  template <Lockable L>
  void Wait(L& lock) LL_REQUIRES(lock) {
    const std::uint32_t seq = sequence_.load(std::memory_order_relaxed);
    lock.unlock();
    FutexWait(&sequence_, seq);
    lock.lock();
  }

  // Type-erased variant for LockHandle users.
  void Wait(LockHandle& lock) LL_REQUIRES(lock) {
    const std::uint32_t seq = sequence_.load(std::memory_order_relaxed);
    lock.unlock();
    FutexWait(&sequence_, seq);
    lock.lock();
  }

  // Timed wait; returns false on timeout.
  template <Lockable L>
  bool WaitFor(L& lock, std::uint64_t timeout_ns) LL_REQUIRES(lock) {
    const std::uint32_t seq = sequence_.load(std::memory_order_relaxed);
    lock.unlock();
    const FutexWaitResult result = FutexWaitTimeout(&sequence_, seq, timeout_ns);
    lock.lock();
    return result != FutexWaitResult::kTimedOut;
  }

  void Signal() {
    sequence_.fetch_add(1, std::memory_order_release);
    FutexWake(&sequence_, 1);
  }

  void Broadcast() {
    sequence_.fetch_add(1, std::memory_order_release);
    FutexWake(&sequence_, 1 << 30);
  }

 private:
  alignas(kCacheLineSize) std::atomic<std::uint32_t> sequence_{0};
};

}  // namespace lockin

#endif  // SRC_LOCKS_CONDVAR_HPP_
