#include "src/locks/rwlock.hpp"

namespace lockin {

void RwLock::lock_shared() {
  for (;;) {
    // Defer to waiting writers (writer preference).
    if (waiting_writers_.load(std::memory_order_relaxed) == 0) {
      std::uint32_t current = state_.load(std::memory_order_relaxed);
      if ((current & kWriterBit) == 0) {
        if (state_.compare_exchange_weak(current, current + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
    }
    const std::uint32_t gate = reader_gate_.load(std::memory_order_relaxed);
    // Re-check after reading the gate to avoid a lost wake-up.
    if (waiting_writers_.load(std::memory_order_relaxed) == 0 &&
        (state_.load(std::memory_order_relaxed) & kWriterBit) == 0) {
      continue;
    }
    FutexWait(&reader_gate_, gate);
  }
}

bool RwLock::try_lock_shared() {
  if (waiting_writers_.load(std::memory_order_relaxed) != 0) {
    return false;
  }
  std::uint32_t current = state_.load(std::memory_order_relaxed);
  while ((current & kWriterBit) == 0) {
    if (state_.compare_exchange_weak(current, current + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void RwLock::unlock_shared() {
  const std::uint32_t prior = state_.fetch_sub(1, std::memory_order_release);
  if (prior == 1 && waiting_writers_.load(std::memory_order_relaxed) != 0) {
    // Last reader out; hand the gate to a writer.
    writer_gate_.fetch_add(1, std::memory_order_release);
    FutexWake(&writer_gate_, 1);
  }
}

void RwLock::lock() {
  waiting_writers_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      waiting_writers_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    const std::uint32_t gate = writer_gate_.load(std::memory_order_relaxed);
    if (state_.load(std::memory_order_relaxed) == 0) {
      continue;  // became free between the CAS and the gate read
    }
    FutexWait(&writer_gate_, gate);
  }
}

bool RwLock::try_lock() {
  std::uint32_t expected = 0;
  return state_.compare_exchange_strong(expected, kWriterBit, std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

void RwLock::unlock() {
  state_.store(0, std::memory_order_release);
  if (waiting_writers_.load(std::memory_order_relaxed) != 0) {
    writer_gate_.fetch_add(1, std::memory_order_release);
    FutexWake(&writer_gate_, 1);
  } else {
    reader_gate_.fetch_add(1, std::memory_order_release);
    FutexWake(&reader_gate_, 1 << 30);
  }
}

std::uint32_t RwLock::ActiveReaders() const {
  const std::uint32_t current = state_.load(std::memory_order_relaxed);
  return (current & kWriterBit) != 0 ? 0 : current;
}

bool RwLock::WriterHeld() const {
  return (state_.load(std::memory_order_relaxed) & kWriterBit) != 0;
}

}  // namespace lockin
