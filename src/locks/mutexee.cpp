#include "src/locks/mutexee.hpp"

#include <algorithm>

#include "src/platform/cycles.hpp"

namespace lockin {

bool MutexeeLock::SpinAcquire(std::uint64_t budget) {
  const std::uint64_t start = ReadCycles();
  for (;;) {
    std::uint32_t current = state_.load(std::memory_order_relaxed);
    if (current == 0) {
      if (state_.compare_exchange_weak(current, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
      continue;
    }
    if (ReadCycles() - start >= budget) {
      return false;
    }
    SpinPause(config_.pause);
  }
}

void MutexeeLock::lock() {
  // Uncontested fast path: one CAS, no cycle reads.
  std::uint32_t free_state = 0;
  if (state_.compare_exchange_weak(free_state, 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    spin_handovers_.fetch_add(1, std::memory_order_relaxed);
    window_acquires_.fetch_add(1, std::memory_order_relaxed);
    MaybeAdapt();
    return;
  }

  const Mode mode = mode_.load(std::memory_order_relaxed);
  const std::uint64_t spin_budget = mode == Mode::kSpin
                                        ? spin_lock_budget_.load(std::memory_order_relaxed)
                                        : config_.mutex_mode_lock_cycles;

  if (SpinAcquire(spin_budget)) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    spin_handovers_.fetch_add(1, std::memory_order_relaxed);
    window_acquires_.fetch_add(1, std::memory_order_relaxed);
    MaybeAdapt();
    return;
  }

  // Sleep phase. Advertise sleepers via state 2 and a sleeper count; the
  // count lets unlock skip the grace wait and the wake when nobody sleeps.
  bool woke_by_timeout = false;
  sleepers_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::uint32_t current = state_.load(std::memory_order_relaxed);
    if (current == 0) {
      if (state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;  // acquired
      }
      continue;
    }
    if (current == 1) {
      if (!state_.compare_exchange_weak(current, 2, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      current = 2;
    }
    const FutexWaitResult result =
        FutexWaitTimeoutCounted(&state_, 2, config_.sleep_timeout_ns, &futex_stats_);
    if (result == FutexWaitResult::kTimedOut) {
      woke_by_timeout = true;
      break;
    }
  }
  if (woke_by_timeout) {
    // Timeout protocol: spin until acquired, never sleep again (bounds the
    // tail latency at ~the timeout; Figure 10).
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    for (;;) {
      std::uint32_t current = state_.load(std::memory_order_relaxed);
      if (current == 0 && state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                                       std::memory_order_relaxed)) {
        break;
      }
      SpinPause(config_.pause);
    }
    timeout_handovers_.fetch_add(1, std::memory_order_relaxed);
  } else {
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    futex_handovers_.fetch_add(1, std::memory_order_relaxed);
    window_futex_.fetch_add(1, std::memory_order_relaxed);
  }
  acquires_.fetch_add(1, std::memory_order_relaxed);
  window_acquires_.fetch_add(1, std::memory_order_relaxed);
  MaybeAdapt();
}

bool MutexeeLock::try_lock_for_ns(std::uint64_t timeout_ns) {
  // Uncontested fast path, identical to lock().
  std::uint32_t free_state = 0;
  if (state_.compare_exchange_weak(free_state, 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    spin_handovers_.fetch_add(1, std::memory_order_relaxed);
    window_acquires_.fetch_add(1, std::memory_order_relaxed);
    MaybeAdapt();
    return true;
  }

  const std::uint64_t deadline_cycles = ReadCycles() + NsToCycles(timeout_ns);
  const Mode mode = mode_.load(std::memory_order_relaxed);
  std::uint64_t spin_budget = mode == Mode::kSpin
                                  ? spin_lock_budget_.load(std::memory_order_relaxed)
                                  : config_.mutex_mode_lock_cycles;
  spin_budget = std::min(spin_budget, NsToCycles(timeout_ns));

  if (SpinAcquire(spin_budget)) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    spin_handovers_.fetch_add(1, std::memory_order_relaxed);
    window_acquires_.fetch_add(1, std::memory_order_relaxed);
    MaybeAdapt();
    return true;
  }

  // Timed sleep phase: like lock()'s, but every futex wait carries the
  // remaining deadline, and expiry abandons the acquisition instead of
  // entering the spin-forever timeout protocol.
  sleepers_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::uint32_t current = state_.load(std::memory_order_relaxed);
    if (current == 0) {
      if (state_.compare_exchange_weak(current, 2, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;  // acquired
      }
      continue;
    }
    if (current == 1) {
      if (!state_.compare_exchange_weak(current, 2, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      current = 2;
    }
    const std::uint64_t now = ReadCycles();
    if (now >= deadline_cycles) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      // Last-chance grab (the holder may have released during our final
      // spin-phase lap); acquire into state 2 as our sleeper mark is gone.
      std::uint32_t expected = 0;
      if (state_.compare_exchange_strong(expected, 2, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        acquires_.fetch_add(1, std::memory_order_relaxed);
        timeout_handovers_.fetch_add(1, std::memory_order_relaxed);
        window_acquires_.fetch_add(1, std::memory_order_relaxed);
        MaybeAdapt();
        return true;
      }
      return false;
    }
    // A zero-ns remainder would mean "no timeout" to FutexWaitTimeout.
    const std::uint64_t remaining_ns =
        std::max<std::uint64_t>(CyclesToNs(deadline_cycles - now), 1);
    const FutexWaitResult result =
        FutexWaitTimeoutCounted(&state_, 2, remaining_ns, &futex_stats_);
    (void)result;  // kTimedOut re-enters the loop and hits the deadline check
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
  futex_handovers_.fetch_add(1, std::memory_order_relaxed);
  window_futex_.fetch_add(1, std::memory_order_relaxed);
  acquires_.fetch_add(1, std::memory_order_relaxed);
  window_acquires_.fetch_add(1, std::memory_order_relaxed);
  MaybeAdapt();
  return true;
}

bool MutexeeLock::try_lock() {
  std::uint32_t expected = 0;
  if (state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    spin_handovers_.fetch_add(1, std::memory_order_relaxed);
    window_acquires_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void MutexeeLock::unlock() {
  const std::uint32_t prior = state_.exchange(0, std::memory_order_release);
  if (sleepers_.load(std::memory_order_relaxed) == 0) {
    return;  // nobody to wake; fully user-space handover
  }
  if (prior != 2 && sleepers_.load(std::memory_order_relaxed) == 0) {
    return;
  }

  if (config_.enable_unlock_grace) {
    // Grace window: if a spinning/arriving thread takes the lock in user
    // space within ~one coherence round-trip, the sleepers stay asleep and
    // we skip the (expensive, >= 7000-cycle turnaround) futex wake.
    const Mode mode = mode_.load(std::memory_order_relaxed);
    const std::uint64_t grace = mode == Mode::kSpin
                                    ? spin_grace_budget_.load(std::memory_order_relaxed)
                                    : config_.mutex_mode_grace_cycles;
    const std::uint64_t start = ReadCycles();
    while (ReadCycles() - start < grace) {
      if (state_.load(std::memory_order_relaxed) != 0) {
        wake_skips_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      SpinPause(config_.pause);
    }
    if (state_.load(std::memory_order_relaxed) != 0) {
      wake_skips_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  FutexWakeCounted(&state_, 1, &futex_stats_);
}

void MutexeeLock::MaybeAdapt() {
  const std::uint64_t window = window_acquires_.load(std::memory_order_relaxed);
  if (window < config_.adapt_period) {
    return;
  }
  // One thread wins the reset race; losers skip this round.
  std::uint64_t expected = window;
  if (!window_acquires_.compare_exchange_strong(expected, 0, std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
    return;
  }
  const std::uint64_t futex_count = window_futex_.exchange(0, std::memory_order_relaxed);
  const double ratio = static_cast<double>(futex_count) / static_cast<double>(window);
  const Mode desired = ratio > config_.futex_ratio_threshold ? Mode::kMutex : Mode::kSpin;
  const Mode current = mode_.load(std::memory_order_relaxed);
  if (desired != current) {
    mode_.store(desired, std::memory_order_relaxed);
    mode_switches_.fetch_add(1, std::memory_order_relaxed);
  }
}

MutexeeLock::Stats MutexeeLock::GetStats() const {
  Stats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.spin_handovers = spin_handovers_.load(std::memory_order_relaxed);
  s.futex_handovers = futex_handovers_.load(std::memory_order_relaxed);
  s.timeout_handovers = timeout_handovers_.load(std::memory_order_relaxed);
  s.wake_skips = wake_skips_.load(std::memory_order_relaxed);
  s.mode_switches = mode_switches_.load(std::memory_order_relaxed);
  return s;
}

void MutexeeLock::ResetStats() {
  acquires_.store(0, std::memory_order_relaxed);
  spin_handovers_.store(0, std::memory_order_relaxed);
  futex_handovers_.store(0, std::memory_order_relaxed);
  timeout_handovers_.store(0, std::memory_order_relaxed);
  wake_skips_.store(0, std::memory_order_relaxed);
  mode_switches_.store(0, std::memory_order_relaxed);
  window_acquires_.store(0, std::memory_order_relaxed);
  window_futex_.store(0, std::memory_order_relaxed);
  futex_stats_.Reset();
}

}  // namespace lockin
