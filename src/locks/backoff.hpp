// Extension locks beyond the paper's core six (its related-work section
// cites both): a test-and-set lock with exponential backoff (Anderson 1990;
// Agarwal & Cherian 1989) and a two-level cohort lock (Dice, Marathe &
// Shavit 2012) that keeps a lock inside one NUMA socket for a bounded
// number of handovers before releasing it globally.
#ifndef SRC_LOCKS_BACKOFF_HPP_
#define SRC_LOCKS_BACKOFF_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/rng.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {

struct BackoffConfig {
  std::uint64_t min_cycles = 128;     // initial backoff window
  std::uint64_t max_cycles = 16384;   // cap (avoids unbounded unfairness)
  PauseKind pause = PauseKind::kMfence;
  std::uint32_t yield_after = 0;      // oversubscription escape hatch
};

// Reusable exponential-backoff waiter for bounded retry loops (timed
// acquisition, shed-op retries). Deterministic -- no RNG -- because the
// FailSafe tier wants replayable timing; BackoffTasLock keeps its own
// randomized variant where storm-desynchronization matters more.
class SpinBackoff {
 public:
  explicit SpinBackoff(const BackoffConfig& config = {})
      : config_(config), window_(config.min_cycles) {}

  // Burns the current window, then doubles it up to the cap.
  void Pause() {
    SpinForCycles(window_);
    window_ = window_ < config_.max_cycles ? window_ * 2 : config_.max_cycles;
  }

 private:
  BackoffConfig config_;
  std::uint64_t window_;
};

// Retries `try_acquire` (any bool() callable) with exponential backoff
// until it succeeds or `timeout_ns` elapses. The generic timed-acquire
// path for spinlocks, which have no kernel wait queue to park on; sleeping
// locks override with a timed futex wait instead.
template <typename TryFn>
bool BoundedSpinUntil(TryFn&& try_acquire, std::uint64_t timeout_ns,
                      const BackoffConfig& config = {}) {
  if (try_acquire()) {
    return true;
  }
  const std::uint64_t deadline = ReadCycles() + NsToCycles(timeout_ns);
  SpinBackoff backoff(config);
  for (;;) {
    backoff.Pause();
    if (try_acquire()) {
      return true;
    }
    if (ReadCycles() >= deadline) {
      return false;
    }
  }
}

// TAS with randomized exponential backoff: each failed exchange doubles the
// backoff window and waits a random fraction of it, draining the atomic
// storm that makes plain TAS's release so expensive (Figure 11).
class LL_CAPABILITY("mutex") BackoffTasLock {
 public:
  BackoffTasLock() = default;
  explicit BackoffTasLock(BackoffConfig config) : config_(config) {}

  void lock() LL_ACQUIRE();
  bool try_lock() LL_TRY_ACQUIRE(true);
  void unlock() LL_RELEASE();

 private:
  BackoffConfig config_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> locked_{0};
};

// Two-level cohort lock: one TTAS per socket plus a global TICKET. A
// releasing thread hands over within its socket cohort for up to
// `max_cohort_handovers` before releasing the global lock, trading
// (bounded) fairness for far fewer cross-socket line transfers -- the same
// fairness/efficiency dial the paper turns with MUTEXEE, in spinlock form.
class LL_CAPABILITY("mutex") CohortLock {
 public:
  struct Config {
    int sockets = 2;
    std::uint32_t max_cohort_handovers = 64;
    SpinConfig spin;
  };

  CohortLock() : CohortLock(Config{}) {}
  explicit CohortLock(Config config);

  // The socket id comes from the caller (thread pinning determines it);
  // the Lockable-conforming lock() uses a hash of the thread id.
  // Bodies acquire the per-socket TTAS and the global TICKET members on
  // behalf of the CohortLock capability; the analysis cannot equate the
  // levels, so the bodies opt out and the declarations carry the contract.
  void lock(int socket) LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS;
  void unlock(int socket) LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS;

  void lock() LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS;
  bool try_lock() LL_TRY_ACQUIRE(true) LL_NO_THREAD_SAFETY_ANALYSIS;
  void unlock() LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct alignas(kCacheLineSize) Local {
    explicit Local(SpinConfig spin) : lock(spin) {}
    TtasLock lock;
    // Threads currently contending for the local lock; the cohort holder
    // releases the global lock when nobody local is waiting (otherwise a
    // handover budget with no taker would starve the other sockets).
    std::atomic<int> waiters{0};
    // Owned by the cohort holder: whether the global lock is already held
    // on behalf of this socket, and how many local handovers it has done.
    std::uint32_t handovers = 0;
    bool global_held = false;
  };

  int SocketOfThisThread() const;

  Config config_;
  std::vector<std::unique_ptr<Local>> locals_;
  TicketLock global_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_BACKOFF_HPP_
