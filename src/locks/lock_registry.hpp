// Runtime lock registry: paper lock names -> LockHandle factories.
//
// Benchmarks and the mini-systems select the lock algorithm by the name the
// paper's figures use (MUTEX, TAS, TTAS, TICKET, MCS, CLH, MUTEXEE, ...),
// mirroring how the paper swaps locks without touching the systems.
#ifndef SRC_LOCKS_LOCK_REGISTRY_HPP_
#define SRC_LOCKS_LOCK_REGISTRY_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/adaptive/adaptive_lock.hpp"
#include "src/locks/lock_api.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {

// Options applied at construction where the algorithm supports them.
struct LockBuildOptions {
  SpinConfig spin;           // spinlock pausing / yield policy
  MutexeeConfig mutexee;     // MUTEXEE budgets, timeout, ablation switches
  std::uint32_t mutex_spin_tries = 1;  // FutexLock pre-sleep attempts
  // ADAPTIVE runtime knobs (policy kind, epoch length, thresholds). The
  // registry overrides its `spin` and `mutexee` backend configs with the
  // two fields above so registry-wide options reach the backends too.
  AdaptiveLockConfig adaptive;
};

// Creates a lock by paper name. Recognized names: "MUTEX" (FutexLock),
// "PTHREAD" (glibc), "TAS", "TTAS", "TICKET", "MCS", "CLH", "MUTEXEE",
// "MUTEXEE-TO" (MUTEXEE with the options' timeout), "ADAPTIVE" (the
// energy-aware adaptive runtime, src/adaptive/).
//
// Unknown-name contract: MakeLock returns nullptr (callers that probe names
// need no exception handling); MakeLockOrThrow raises std::invalid_argument
// naming the offender. RunNativeBench (src/locks/harness.hpp) and the
// mini-systems build through the throwing variant.
std::unique_ptr<LockHandle> MakeLock(const std::string& name,
                                     const LockBuildOptions& options = {});

// Like MakeLock, but throws std::invalid_argument for unknown names.
std::unique_ptr<LockHandle> MakeLockOrThrow(const std::string& name,
                                            const LockBuildOptions& options = {});

// All registered lock names, in the paper's presentation order.
std::vector<std::string> RegisteredLockNames();

}  // namespace lockin

#endif  // SRC_LOCKS_LOCK_REGISTRY_HPP_
