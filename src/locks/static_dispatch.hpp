// Compile-time dispatch over the lock registry.
//
// The registry (src/locks/lock_registry.hpp) hands out type-erased
// LockHandles: two virtual calls per acquire/release pair. That is fine for
// the mini-systems (their critical sections dwarf a virtual call) but it is
// measurement overhead in the *measured loop* of the native harness and the
// uncontested microbenchmarks, where lock()/unlock() themselves are the
// payload. This header maps every registered concrete lock name to its
// concrete type so those loops can be instantiated as templates with fully
// inlined lock()/unlock() -- the devirtualized "static" dispatch tier.
// ADAPTIVE (which switches algorithms at run time and is inherently
// indirect) and unknown names are not mapped; callers fall back to the
// LockHandle tier.
//
// The *ConfigFrom helpers below are the single source of truth for how
// LockBuildOptions reaches each algorithm's config struct; lock_registry.cpp
// builds its LockAdapters through the same helpers so the two dispatch
// tiers can never configure a lock differently.
#ifndef SRC_LOCKS_STATIC_DISPATCH_HPP_
#define SRC_LOCKS_STATIC_DISPATCH_HPP_

#include <memory>
#include <string>
#include <utility>

#include "src/locks/backoff.hpp"
#include "src/locks/clh.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/lock_api.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/locks/mcs.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/pthread_adapter.hpp"
#include "src/locks/spinlocks.hpp"

namespace lockin {

// Tag carrying the concrete lock type through a generic visitor.
template <typename L>
struct LockTypeTag {
  using type = L;
};

inline FutexLockConfig MutexConfigFrom(const LockBuildOptions& options) {
  FutexLockConfig config;
  config.spin_tries = options.mutex_spin_tries;
  return config;
}

// "MUTEXEE": the options' budgets with the sleep timeout forced off (the
// paper's default MUTEXEE never times out; "MUTEXEE-TO" is the timeout row).
inline MutexeeConfig MutexeeConfigFrom(const LockBuildOptions& options) {
  MutexeeConfig config = options.mutexee;
  config.sleep_timeout_ns = 0;
  return config;
}

inline BackoffConfig BackoffConfigFrom(const LockBuildOptions& options) {
  BackoffConfig config;
  config.pause = options.spin.pause;
  config.yield_after = options.spin.yield_after;
  return config;
}

inline CohortLock::Config CohortConfigFrom(const LockBuildOptions& options) {
  CohortLock::Config config;
  config.spin = options.spin;
  return config;
}

// Calls `visitor(LockTypeTag<L>{}, ctor_args...)` with the constructor
// arguments the registry would use for the same name (locks hold atomics
// and are neither copyable nor movable, so the visitor receives the
// arguments rather than a built instance and constructs in place). Returns
// true if `name` has a concrete compile-time type; false (without calling
// the visitor) for ADAPTIVE and unknown names, which only exist behind the
// type-erased LockHandle interface.
template <typename Visitor>
bool WithConcreteLock(const std::string& name, const LockBuildOptions& options,
                      Visitor&& visitor) {
  if (name == "MUTEX") {
    visitor(LockTypeTag<FutexLock>{}, MutexConfigFrom(options));
    return true;
  }
  if (name == "PTHREAD") {
    visitor(LockTypeTag<PthreadMutex>{});
    return true;
  }
  if (name == "TAS") {
    visitor(LockTypeTag<TasLock>{}, options.spin);
    return true;
  }
  if (name == "TTAS") {
    visitor(LockTypeTag<TtasLock>{}, options.spin);
    return true;
  }
  if (name == "TICKET") {
    visitor(LockTypeTag<TicketLock>{}, options.spin);
    return true;
  }
  if (name == "MCS") {
    visitor(LockTypeTag<McsLock>{}, options.spin);
    return true;
  }
  if (name == "CLH") {
    visitor(LockTypeTag<ClhLock>{}, options.spin);
    return true;
  }
  if (name == "MUTEXEE") {
    visitor(LockTypeTag<MutexeeLock>{}, MutexeeConfigFrom(options));
    return true;
  }
  if (name == "MUTEXEE-TO") {
    visitor(LockTypeTag<MutexeeLock>{}, options.mutexee);
    return true;
  }
  if (name == "TAS-BO") {
    visitor(LockTypeTag<BackoffTasLock>{}, BackoffConfigFrom(options));
    return true;
  }
  if (name == "COHORT") {
    visitor(LockTypeTag<CohortLock>{}, CohortConfigFrom(options));
    return true;
  }
  return false;
}

// LockScope variant: visits with TracedLock<L, Trace> instead of the bare
// concrete type. With Trace = NullTracePolicy this is the exact untraced
// tier (TracedLock<L, Null> is byte-identical to L); with ThreadTracePolicy
// the same statically-dispatched loops emit acquire/contended/release
// events. Constructor arguments pass through unchanged because TracedLock
// forwards them to L.
template <typename Trace, typename Visitor>
bool WithConcreteTracedLock(const std::string& name, const LockBuildOptions& options,
                            Visitor&& visitor) {
  return WithConcreteLock(name, options, [&](auto tag, auto&&... args) {
    using L = typename decltype(tag)::type;
    visitor(LockTypeTag<TracedLock<L, Trace>>{}, std::forward<decltype(args)>(args)...);
  });
}

// True when `name` can run on the devirtualized tier.
inline bool IsStaticallyDispatchable(const std::string& name) {
  return WithConcreteLock(name, LockBuildOptions{}, [](auto, auto&&...) {});
}

}  // namespace lockin

#endif  // SRC_LOCKS_STATIC_DISPATCH_HPP_
