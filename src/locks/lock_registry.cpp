#include "src/locks/lock_registry.hpp"

#include <stdexcept>

#include "src/locks/backoff.hpp"
#include "src/locks/clh.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/mcs.hpp"
#include "src/locks/pthread_adapter.hpp"

namespace lockin {

std::unique_ptr<LockHandle> MakeLock(const std::string& name, const LockBuildOptions& options) {
  if (name == "MUTEX") {
    FutexLockConfig config;
    config.spin_tries = options.mutex_spin_tries;
    return std::make_unique<LockAdapter<FutexLock>>("MUTEX", config);
  }
  if (name == "PTHREAD") {
    return std::make_unique<LockAdapter<PthreadMutex>>("PTHREAD");
  }
  if (name == "TAS") {
    return std::make_unique<LockAdapter<TasLock>>("TAS", options.spin);
  }
  if (name == "TTAS") {
    return std::make_unique<LockAdapter<TtasLock>>("TTAS", options.spin);
  }
  if (name == "TICKET") {
    return std::make_unique<LockAdapter<TicketLock>>("TICKET", options.spin);
  }
  if (name == "MCS") {
    return std::make_unique<LockAdapter<McsLock>>("MCS", options.spin);
  }
  if (name == "CLH") {
    return std::make_unique<LockAdapter<ClhLock>>("CLH", options.spin);
  }
  if (name == "MUTEXEE") {
    MutexeeConfig config = options.mutexee;
    config.sleep_timeout_ns = 0;
    return std::make_unique<LockAdapter<MutexeeLock>>("MUTEXEE", config);
  }
  if (name == "TAS-BO") {
    BackoffConfig config;
    config.pause = options.spin.pause;
    config.yield_after = options.spin.yield_after;
    return std::make_unique<LockAdapter<BackoffTasLock>>("TAS-BO", config);
  }
  if (name == "COHORT") {
    CohortLock::Config config;
    config.spin = options.spin;
    return std::make_unique<LockAdapter<CohortLock>>("COHORT", config);
  }
  if (name == "MUTEXEE-TO") {
    return std::make_unique<LockAdapter<MutexeeLock>>("MUTEXEE-TO", options.mutexee);
  }
  if (name == "ADAPTIVE") {
    AdaptiveLockConfig config = options.adaptive;
    // Registry-wide knobs reach the backends: the spin config keeps TTAS
    // yielding on oversubscribed hosts, the MUTEXEE config carries budget /
    // ablation choices made for the static MUTEXEE, and the futex backend
    // honors the same pre-sleep attempt count as "MUTEX".
    config.spin = options.spin;
    config.mutexee = options.mutexee;
    config.mutexee.sleep_timeout_ns = 0;
    config.sleep.spin_tries = options.mutex_spin_tries;
    return std::make_unique<LockAdapter<AdaptiveLock>>("ADAPTIVE", config);
  }
  return nullptr;
}

std::unique_ptr<LockHandle> MakeLockOrThrow(const std::string& name,
                                            const LockBuildOptions& options) {
  auto lock = MakeLock(name, options);
  if (lock == nullptr) {
    throw std::invalid_argument("unknown lock: " + name);
  }
  return lock;
}

std::vector<std::string> RegisteredLockNames() {
  return {"MUTEX",   "PTHREAD", "TAS",     "TTAS",       "TICKET",   "MCS",
          "CLH",     "TAS-BO",  "COHORT",  "MUTEXEE",    "MUTEXEE-TO", "ADAPTIVE"};
}

}  // namespace lockin
