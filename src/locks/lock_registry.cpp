#include "src/locks/lock_registry.hpp"

#include <stdexcept>

#include "src/locks/static_dispatch.hpp"

namespace lockin {

std::unique_ptr<LockHandle> MakeLock(const std::string& name, const LockBuildOptions& options) {
  // Every concrete (non-ADAPTIVE) name routes through the compile-time
  // dispatch table, wrapped in a LockAdapter. The *ConfigFrom helpers in
  // static_dispatch.hpp keep this type-erased tier and the devirtualized
  // tier configured identically.
  std::unique_ptr<LockHandle> handle;
  const bool concrete =
      WithConcreteLock(name, options, [&](auto tag, auto&&... args) {
        using L = typename decltype(tag)::type;
        handle = std::make_unique<LockAdapter<L>>(
            name, std::forward<decltype(args)>(args)...);
      });
  if (concrete) {
    return handle;
  }
  if (name == "ADAPTIVE") {
    AdaptiveLockConfig config = options.adaptive;
    // Registry-wide knobs reach the backends: the spin config keeps TTAS
    // yielding on oversubscribed hosts, the MUTEXEE config carries budget /
    // ablation choices made for the static MUTEXEE, and the futex backend
    // honors the same pre-sleep attempt count as "MUTEX".
    config.spin = options.spin;
    config.mutexee = options.mutexee;
    config.mutexee.sleep_timeout_ns = 0;
    config.sleep.spin_tries = options.mutex_spin_tries;
    return std::make_unique<LockAdapter<AdaptiveLock>>("ADAPTIVE", config);
  }
  return nullptr;
}

std::unique_ptr<LockHandle> MakeLockOrThrow(const std::string& name,
                                            const LockBuildOptions& options) {
  auto lock = MakeLock(name, options);
  if (lock == nullptr) {
    std::string message = "unknown lock: '" + name + "'; available locks:";
    for (const std::string& lock_name : RegisteredLockNames()) {
      message += ' ';
      message += lock_name;
    }
    throw std::invalid_argument(message);
  }
  return lock;
}

std::vector<std::string> RegisteredLockNames() {
  return {"MUTEX",   "PTHREAD", "TAS",     "TTAS",       "TICKET",   "MCS",
          "CLH",     "TAS-BO",  "COHORT",  "MUTEXEE",    "MUTEXEE-TO", "ADAPTIVE"};
}

}  // namespace lockin
