// Simple spinlocks: TAS, TTAS and TICKET.
//
// Section 2 of the paper: "TAS spins with an atomic operation, continuously
// trying to acquire the lock (global spinning). In contrast, all other
// spinlocks spin with a load until the lock becomes free and only then try
// to acquire the lock with an atomic operation (local spinning)."
//
// Every spinlock takes a SpinConfig so the pausing technique (Figure 4) and
// an oversubscription escape hatch (yield after N spins) can be selected
// per experiment; the defaults follow the paper (mfence pausing, no yield).
#ifndef SRC_LOCKS_SPINLOCKS_HPP_
#define SRC_LOCKS_SPINLOCKS_HPP_

#include <atomic>
#include <cstdint>

#include "src/platform/cacheline.hpp"
#include "src/platform/spin_hint.hpp"

namespace lockin {

struct SpinConfig {
  PauseKind pause = PauseKind::kMfence;
  // After this many spin iterations the waiter yields the CPU (0 = never).
  // Pure spinning livelocks on oversubscribed hosts (section 6's MySQL and
  // SQLite results); tests on small machines set a small threshold.
  std::uint32_t yield_after = 0;
};

// Test-and-set lock: global spinning with an atomic exchange.
class TasLock {
 public:
  TasLock() = default;
  explicit TasLock(SpinConfig config) : config_(config) {}

  void lock();
  bool try_lock();
  void unlock();

 private:
  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> locked_{0};
};

// Test-and-test-and-set: local spinning on a cached read, atomic only when
// the lock looks free.
class TtasLock {
 public:
  TtasLock() = default;
  explicit TtasLock(SpinConfig config) : config_(config) {}

  void lock();
  bool try_lock();
  void unlock();

 private:
  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> locked_{0};
};

// Ticket lock (Mellor-Crummey & Scott): FIFO-fair, local spinning on the
// now-serving counter. Fairness is exactly what collapses under
// oversubscription in the paper's Figure 11 and the MySQL/SQLite rows of
// Figures 13-14.
class TicketLock {
 public:
  TicketLock() = default;
  explicit TicketLock(SpinConfig config) : config_(config) {}

  void lock();
  bool try_lock();
  void unlock();

  // Number of threads waiting right now (approximate; diagnostics only).
  std::uint32_t QueueLength() const;

 private:
  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> next_ticket_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> now_serving_{0};
};

}  // namespace lockin

#endif  // SRC_LOCKS_SPINLOCKS_HPP_
