// Simple spinlocks: TAS, TTAS and TICKET.
//
// Section 2 of the paper: "TAS spins with an atomic operation, continuously
// trying to acquire the lock (global spinning). In contrast, all other
// spinlocks spin with a load until the lock becomes free and only then try
// to acquire the lock with an atomic operation (local spinning)."
//
// Every spinlock takes a SpinConfig so the pausing technique (Figure 4) and
// an oversubscription escape hatch (yield after N spins) can be selected
// per experiment; the defaults follow the paper (mfence pausing, no yield).
#ifndef SRC_LOCKS_SPINLOCKS_HPP_
#define SRC_LOCKS_SPINLOCKS_HPP_

#include <atomic>
#include <cstdint>

#include "src/platform/cacheline.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

struct SpinConfig {
  PauseKind pause = PauseKind::kMfence;
  // After this many spin iterations the waiter yields the CPU (0 = never).
  // Pure spinning livelocks on oversubscribed hosts (section 6's MySQL and
  // SQLite results); tests on small machines set a small threshold.
  std::uint32_t yield_after = 0;
};

// One spin-wait step: pause per the configured technique, yielding after
// `iteration` exceeds the configured threshold.
inline void SpinWaitStep(const SpinConfig& config, std::uint32_t iteration) {
  if (config.yield_after != 0 && iteration >= config.yield_after) {
    SpinPause(PauseKind::kYield);
  } else {
    SpinPause(config.pause);
  }
}

// The spinlock family is defined inline: these bodies ARE the measured
// payload of the uncontested benchmarks, and the devirtualized dispatch
// tier (src/locks/static_dispatch.hpp) relies on lock()/unlock() folding
// into the templated measurement loop with no call at all. Keeping them in
// a .cpp would re-impose one out-of-line call per operation -- the same
// overhead class devirtualization removes.

// Test-and-set lock: global spinning with an atomic exchange.
class LL_CAPABILITY("mutex") TasLock {
 public:
  TasLock() = default;
  explicit TasLock(SpinConfig config) : config_(config) {}

  void lock() LL_ACQUIRE() {
    // Global spinning: the exchange keeps the line in modified state and is
    // the highest-power waiting mode measured in Figure 3.
    std::uint32_t iteration = 0;
    while (locked_.exchange(1, std::memory_order_acquire) != 0) {
      SpinWaitStep(config_, iteration++);
    }
  }

  bool try_lock() LL_TRY_ACQUIRE(true) {
    return locked_.exchange(1, std::memory_order_acquire) == 0;
  }

  void unlock() LL_RELEASE() { locked_.store(0, std::memory_order_release); }

 private:
  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> locked_{0};
};

// Test-and-test-and-set: local spinning on a cached read, atomic only when
// the lock looks free.
class LL_CAPABILITY("mutex") TtasLock {
 public:
  TtasLock() = default;
  explicit TtasLock(SpinConfig config) : config_(config) {}

  void lock() LL_ACQUIRE() {
    std::uint32_t iteration = 0;
    for (;;) {
      if (locked_.load(std::memory_order_relaxed) == 0 &&
          locked_.exchange(1, std::memory_order_acquire) == 0) {
        return;
      }
      // Local spinning: wait on the cached copy until the line is
      // invalidated by the release store.
      while (locked_.load(std::memory_order_relaxed) != 0) {
        SpinWaitStep(config_, iteration++);
      }
    }
  }

  bool try_lock() LL_TRY_ACQUIRE(true) {
    return locked_.load(std::memory_order_relaxed) == 0 &&
           locked_.exchange(1, std::memory_order_acquire) == 0;
  }

  void unlock() LL_RELEASE() { locked_.store(0, std::memory_order_release); }

 private:
  SpinConfig config_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> locked_{0};
};

// Ticket lock (Mellor-Crummey & Scott): FIFO-fair, local spinning on the
// now-serving counter. Fairness is exactly what collapses under
// oversubscription in the paper's Figure 11 and the MySQL/SQLite rows of
// Figures 13-14.
class LL_CAPABILITY("mutex") TicketLock {
 public:
  TicketLock() = default;
  explicit TicketLock(SpinConfig config) : config_(config) {}

  void lock() LL_ACQUIRE() {
    const std::uint32_t my_ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t iteration = 0;
    while (now_serving_.load(std::memory_order_acquire) != my_ticket) {
      SpinWaitStep(config_, iteration++);
    }
    depart_ = my_ticket + 1;
  }

  bool try_lock() LL_TRY_ACQUIRE(true) {
    std::uint32_t serving = now_serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    // Acquire only when no one is queued: next_ticket == now_serving.
    if (next_ticket_.compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
      depart_ = serving + 1;
      return true;
    }
    return false;
  }

  void unlock() LL_RELEASE() {
    // Single-writer handover: only the holder advances now_serving_, so the
    // release is one plain store of the value staged at acquire time --
    // no second locked RMW (the classic ticket-release optimization) and no
    // load of the contended now_serving_ line on the release path.
    now_serving_.store(depart_, std::memory_order_release);
  }

  // Number of threads waiting right now (approximate; diagnostics only).
  std::uint32_t QueueLength() const {
    const std::uint32_t next = next_ticket_.load(std::memory_order_relaxed);
    const std::uint32_t serving = now_serving_.load(std::memory_order_relaxed);
    return next - serving;
  }

 private:
  SpinConfig config_{};
  // Holder-owned: written under the lock (end of lock()/try_lock()), read
  // by the same holder in unlock(); the handover's release/acquire pair
  // orders successive holders' accesses. Shares the uncontended config line
  // on purpose -- waiters never touch it.
  std::uint32_t depart_ = 1;
  alignas(kCacheLineSize) std::atomic<std::uint32_t> next_ticket_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> now_serving_{0};
};

}  // namespace lockin

#endif  // SRC_LOCKS_SPINLOCKS_HPP_
