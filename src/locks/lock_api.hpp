// Public lock API.
//
// Two layers:
//   * a compile-time `Lockable` concept following the standard library's
//     BasicLockable/Lockable protocol (lock/unlock/try_lock, lowercase by
//     design so std::lock_guard, std::unique_lock and our CondVar work with
//     every lock in the library);
//   * a type-erased `LockHandle` used by the benchmark harness and the six
//     mini-systems to switch lock algorithms at run time, which is exactly
//     the paper's experiment ("we do not modify anything else other than the
//     pthread locks", section 6).
#ifndef SRC_LOCKS_LOCK_API_HPP_
#define SRC_LOCKS_LOCK_API_HPP_

#include <concepts>
#include <memory>
#include <string>
#include <utility>

namespace lockin {

template <typename L>
concept Lockable = requires(L lock) {
  lock.lock();
  lock.unlock();
  { lock.try_lock() } -> std::convertible_to<bool>;
};

// Runtime-polymorphic lock. Implementations are adapters over the concrete
// algorithms; the virtual-call overhead is ~1-2 ns and identical across
// algorithms, so relative comparisons are unaffected.
class LockHandle {
 public:
  virtual ~LockHandle() = default;

  virtual void lock() = 0;
  virtual void unlock() = 0;
  virtual bool try_lock() = 0;

  // Algorithm name as used in the paper's figures ("MUTEX", "TICKET", ...).
  virtual std::string name() const = 0;
};

// Adapts any Lockable into a LockHandle.
template <Lockable L>
class LockAdapter final : public LockHandle {
 public:
  template <typename... Args>
  explicit LockAdapter(std::string name, Args&&... args)
      : name_(std::move(name)), impl_(std::forward<Args>(args)...) {}

  void lock() override { impl_.lock(); }
  void unlock() override { impl_.unlock(); }
  bool try_lock() override { return impl_.try_lock(); }
  std::string name() const override { return name_; }

  L& impl() { return impl_; }
  const L& impl() const { return impl_; }

 private:
  std::string name_;
  L impl_;
};

// RAII guard over the type-erased handle.
class HandleGuard {
 public:
  explicit HandleGuard(LockHandle& handle) : handle_(handle) { handle_.lock(); }
  ~HandleGuard() { handle_.unlock(); }

  HandleGuard(const HandleGuard&) = delete;
  HandleGuard& operator=(const HandleGuard&) = delete;

 private:
  LockHandle& handle_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_LOCK_API_HPP_
