// Public lock API.
//
// Two layers:
//   * a compile-time `Lockable` concept following the standard library's
//     BasicLockable/Lockable protocol (lock/unlock/try_lock, lowercase by
//     design so std::lock_guard, std::unique_lock and our CondVar work with
//     every lock in the library);
//   * a type-erased `LockHandle` used by the benchmark harness and the six
//     mini-systems to switch lock algorithms at run time, which is exactly
//     the paper's experiment ("we do not modify anything else other than the
//     pthread locks", section 6).
#ifndef SRC_LOCKS_LOCK_API_HPP_
#define SRC_LOCKS_LOCK_API_HPP_

#include <concepts>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "src/analysis/lockdep.hpp"
#include "src/locks/backoff.hpp"
#include "src/obs/trace.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

template <typename L>
concept Lockable = requires(L lock) {
  lock.lock();
  lock.unlock();
  { lock.try_lock() } -> std::convertible_to<bool>;
};

// Locks with a native bounded-wait acquisition (FutexLock, MutexeeLock,
// PthreadMutex expose timed futex/kernel waits). Everything else gets the
// bounded-spin-with-backoff fallback below.
template <typename L>
concept NativeTimedLockable = Lockable<L> && requires(L lock, std::uint64_t ns) {
  { lock.try_lock_for_ns(ns) } -> std::convertible_to<bool>;
};

// Runtime-polymorphic lock. Implementations are adapters over the concrete
// algorithms; the virtual-call overhead is ~1-2 ns and identical across
// algorithms, so relative comparisons are unaffected.
//
// The handle itself is the capability callers reason about: systems write
// `Entry entry_ LL_GUARDED_BY(*lock_)` against the LockHandle they own, and
// -Wthread-safety enforces it across every concrete algorithm at once.
class LL_CAPABILITY("mutex") LockHandle {
 public:
  virtual ~LockHandle() = default;

  virtual void lock() LL_ACQUIRE() = 0;
  virtual void unlock() LL_RELEASE() = 0;
  virtual bool try_lock() LL_TRY_ACQUIRE(true) = 0;

  // Timed acquisition (FailSafe): true iff the lock was acquired within
  // `timeout_ns`. The default bounds any implementation with try_lock
  // retries under exponential backoff; adapters whose lock has a native
  // timed wait (timed FUTEX_WAIT) override with that instead.
  virtual bool AcquireFor(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true)
      LL_NO_THREAD_SAFETY_ANALYSIS {
    return BoundedSpinUntil([this] { return try_lock(); }, timeout_ns);
  }

  // Algorithm name as used in the paper's figures ("MUTEX", "TICKET", ...).
  virtual std::string name() const = 0;
};

// Adapts any Lockable into a LockHandle.
//
// The overrides advertise acquiring *this* (the capability callers see)
// while their bodies acquire the wrapped impl_; the analysis cannot equate
// the two, so the bodies opt out and the declaration annotations carry the
// contract to call sites.
template <Lockable L>
class LockAdapter final : public LockHandle {
 public:
  template <typename... Args>
  explicit LockAdapter(std::string name, Args&&... args)
      : name_(std::move(name)), impl_(std::forward<Args>(args)...) {}

  void lock() LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS override { impl_.lock(); }
  void unlock() LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS override { impl_.unlock(); }
  bool try_lock() LL_TRY_ACQUIRE(true) LL_NO_THREAD_SAFETY_ANALYSIS override {
    return impl_.try_lock();
  }
  bool AcquireFor(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true)
      LL_NO_THREAD_SAFETY_ANALYSIS override {
    if constexpr (NativeTimedLockable<L>) {
      return impl_.try_lock_for_ns(timeout_ns);
    } else {
      return BoundedSpinUntil([this] { return impl_.try_lock(); }, timeout_ns);
    }
  }
  std::string name() const override { return name_; }

  L& impl() { return impl_; }
  const L& impl() const { return impl_; }

 private:
  std::string name_;
  L impl_;
};

// --- FailSafe timed adapter (static tier) ------------------------------------

// Gives any concrete lock a uniform timed-acquisition surface without
// erasing its type: native timed waits where the algorithm has them,
// bounded spin with exponential backoff for pure spinlocks. Layout-wise
// TimedLock<L> is L plus a BackoffConfig; lock()/unlock() forward
// untouched, so wrapping costs the fast path nothing.
template <Lockable L>
class LL_CAPABILITY("mutex") TimedLock {
 public:
  template <typename... Args>
  explicit TimedLock(Args&&... args) : impl_(std::forward<Args>(args)...) {}

  TimedLock(BackoffConfig backoff, L&& impl)
      : impl_(std::move(impl)), backoff_(backoff) {}

  // Forwarding bodies acquire the wrapped impl_, not *this; see LockAdapter.
  void lock() LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS { impl_.lock(); }
  void unlock() LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS { impl_.unlock(); }
  bool try_lock() LL_TRY_ACQUIRE(true) LL_NO_THREAD_SAFETY_ANALYSIS {
    return impl_.try_lock();
  }

  bool try_lock_for_ns(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true)
      LL_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (NativeTimedLockable<L>) {
      return impl_.try_lock_for_ns(timeout_ns);
    } else {
      return BoundedSpinUntil([this] { return impl_.try_lock(); }, timeout_ns,
                              backoff_);
    }
  }

  L& impl() { return impl_; }
  const L& impl() const { return impl_; }

 private:
  L impl_;
  [[no_unique_address]] BackoffConfig backoff_{};
};

// --- LockScope tracing hooks -------------------------------------------------

// Wraps any Lockable with compile-time optional event tracing. With the
// default NullTracePolicy every emit is an empty inline function and the
// site-id member collapses to nothing ([[no_unique_address]]), so
// TracedLock<L> is byte-identical to L -- the harness's static tier keeps
// its hardware-floor fast path (static_assert fences in harness.cpp).
// With ThreadTracePolicy, lock()/unlock() emit acquire-begin / contended /
// acquired / released events into the calling thread's trace sink.
template <Lockable L, typename Trace = NullTracePolicy>
class LL_CAPABILITY("mutex") TracedLock {
 public:
  template <typename... Args>
  explicit TracedLock(Args&&... args) : impl_(std::forward<Args>(args)...) {
    if constexpr (Trace::kEnabled) {
      site_.id = NextTraceSiteId();
    }
  }

  // Forwarding bodies acquire the wrapped impl_, not *this; see LockAdapter.
  void lock() LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (Trace::kEnabled) {
      Trace::Emit(TraceEventKind::kAcquireBegin, site_.id);
      if (!impl_.try_lock()) {
        Trace::Emit(TraceEventKind::kContended, site_.id);
        impl_.lock();
      }
      Trace::Emit(TraceEventKind::kAcquired, site_.id);
    } else {
      impl_.lock();
    }
  }

  bool try_lock() LL_TRY_ACQUIRE(true) LL_NO_THREAD_SAFETY_ANALYSIS {
    if constexpr (Trace::kEnabled) {
      Trace::Emit(TraceEventKind::kAcquireBegin, site_.id);
      if (impl_.try_lock()) {
        Trace::Emit(TraceEventKind::kAcquired, site_.id);
        return true;
      }
      return false;
    } else {
      return impl_.try_lock();
    }
  }

  void unlock() LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS {
    impl_.unlock();
    if constexpr (Trace::kEnabled) {
      Trace::Emit(TraceEventKind::kReleased, site_.id);
    }
  }

  L& impl() { return impl_; }
  const L& impl() const { return impl_; }

 private:
  struct TraceSite {
    std::uint32_t id = 0;
  };
  struct NoTraceSite {};

  L impl_;
  [[no_unique_address]] std::conditional_t<Trace::kEnabled, TraceSite, NoTraceSite> site_;
};

// Runtime counterpart for the type-erased tier: wraps a LockHandle and
// emits the same events. Used by the scenario driver when tracing is
// requested -- untraced runs never construct one, so the default handle
// path is unchanged.
class TracedHandle final : public LockHandle {
 public:
  explicit TracedHandle(std::unique_ptr<LockHandle> inner)
      : inner_(std::move(inner)), site_(NextTraceSiteId()) {
    // Label the site for lockdep reports ("site 3 (TICKET)").
    LockdepRegisterSiteName(site_, inner_->name());
  }

  void lock() LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS override {
    TraceEmit(TraceEventKind::kAcquireBegin, site_);
    if (!inner_->try_lock()) {
      TraceEmit(TraceEventKind::kContended, site_);
      inner_->lock();
    }
    TraceEmit(TraceEventKind::kAcquired, site_);
  }

  void unlock() LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS override {
    inner_->unlock();
    TraceEmit(TraceEventKind::kReleased, site_);
  }

  bool try_lock() LL_TRY_ACQUIRE(true) LL_NO_THREAD_SAFETY_ANALYSIS override {
    TraceEmit(TraceEventKind::kAcquireBegin, site_);
    if (inner_->try_lock()) {
      TraceEmit(TraceEventKind::kAcquired, site_);
      return true;
    }
    return false;
  }

  bool AcquireFor(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true)
      LL_NO_THREAD_SAFETY_ANALYSIS override {
    TraceEmit(TraceEventKind::kAcquireBegin, site_);
    if (inner_->AcquireFor(timeout_ns)) {
      TraceEmit(TraceEventKind::kAcquired, site_);
      return true;
    }
    TraceEmit(TraceEventKind::kAcquireTimeout, site_);
    return false;
  }

  std::string name() const override { return inner_->name(); }

  std::uint32_t site() const { return site_; }

 private:
  std::unique_ptr<LockHandle> inner_;
  std::uint32_t site_;
};

inline std::unique_ptr<LockHandle> WrapTraced(std::unique_ptr<LockHandle> inner) {
  return std::make_unique<TracedHandle>(std::move(inner));
}

// RAII guard over the type-erased handle.
class LL_SCOPED_CAPABILITY HandleGuard {
 public:
  explicit HandleGuard(LockHandle& handle) LL_ACQUIRE(handle) : handle_(handle) {
    handle_.lock();
  }
  ~HandleGuard() LL_RELEASE() { handle_.unlock(); }

  HandleGuard(const HandleGuard&) = delete;
  HandleGuard& operator=(const HandleGuard&) = delete;

 private:
  LockHandle& handle_;
};

// RAII guard over any concrete Lockable (the static-dispatch counterpart of
// HandleGuard). Unlike std::lock_guard this is a scoped capability, so
// LL_GUARDED_BY data behind a concrete lock stays machine-checked.
template <Lockable L>
class LL_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(L& lock) LL_ACQUIRE(lock) : lock_(lock) { lock_.lock(); }
  ~LockGuard() LL_RELEASE() { lock_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& lock_;
};

}  // namespace lockin

#endif  // SRC_LOCKS_LOCK_API_HPP_
