// LockLint runtime lock-order / deadlock detector (lockdep).
//
// A lockdep-style acquisition-graph checker over the LockScope event
// stream. Every traced lock acquire/release in the process already funnels
// through one inline hook (TraceEmit in src/obs/trace.hpp: TracedLock with
// ThreadTracePolicy, TracedHandle, and the raw-futex entry points in
// src/futex/futex.cpp); when lockdep is enabled those same events also
// drive:
//
//   * a per-thread held-lock stack (fixed depth, thread-local, no
//     allocation);
//   * a global site-keyed acquisition graph: acquiring B while holding A
//     records the edge A -> B in a fixed-capacity lock-free edge table
//     (each traced lock site -- see NextTraceSiteId -- is its own lock
//     class);
//   * cycle detection on *first insertion* of each edge: an edge that
//     closes a cycle (ABBA or longer) is reported exactly once, with the
//     full site chain, both to stderr and -- when a trace sink is installed
//     -- as kLockdepViolation instants in the exported timeline;
//   * self-deadlock (acquiring a site already held by this thread) and
//     unlock-of-unheld checks, reported once per site;
//   * a diagnostics counter of futex sleeps entered while holding another
//     traced lock (kernel round-trips inside critical sections).
//
// Cost when off: the static untraced dispatch tier has no emit sites at
// all (TracedLock<L, NullTracePolicy> is byte-identical to L -- the
// static_assert fences in src/locks/harness.cpp), and the traced/handle
// tiers pay one relaxed atomic load + predicted branch per event. When on,
// the hot path per event is a thread-local stack push/pop plus, on acquire
// with locks held, one probe of the edge table; full graph analysis runs
// only when a *new* edge appears (bounded: the table holds kEdgeCapacity
// edges, so steady-state acquires never analyze).
//
// Conservatism: the event stream cannot distinguish lock() from try_lock()
// at acquire-begin, so try_lock attempts count as ordering points too.
// That can flag a technically-safe reversed try_lock as an inversion; it
// cannot miss a real one.
#ifndef SRC_ANALYSIS_LOCKDEP_HPP_
#define SRC_ANALYSIS_LOCKDEP_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.hpp"

namespace lockin {

enum class LockdepViolationKind {
  kCycle,         // lock-order inversion: the site chain forms a cycle
  kSelfDeadlock,  // acquiring a site this thread already holds
  kUnlockUnheld,  // releasing a site this thread does not hold
};

struct LockdepReport {
  static constexpr std::size_t kMaxChain = 8;

  LockdepViolationKind kind = LockdepViolationKind::kCycle;
  // The involved acquisition sites. For kCycle: the cycle's sites in
  // acquisition order, closed (first == last); for the other kinds a
  // single site.
  std::uint32_t chain[kMaxChain] = {};
  std::uint32_t chain_len = 0;

  // "lock-order inversion: site 3 (TICKET) -> site 5 (TICKET) -> site 3".
  std::string Describe() const;
};

struct LockdepStats {
  std::uint64_t events = 0;               // hook invocations while enabled
  std::uint64_t edges = 0;                // distinct edges recorded
  std::uint64_t edge_table_drops = 0;     // edges lost to a full table
  std::uint64_t cycles = 0;               // kCycle reports
  std::uint64_t self_deadlocks = 0;       // kSelfDeadlock reports
  std::uint64_t unlock_unheld = 0;        // kUnlockUnheld reports
  std::uint64_t held_stack_overflows = 0; // acquires beyond kMaxHeld depth
  std::uint64_t sleeps_while_holding = 0; // futex sleeps with >=1 lock held
};

// Runtime switch. Enabling is cheap (one atomic store); the hook itself is
// always compiled in next to the trace emit (see TraceEmit) and costs one
// relaxed load + branch while disabled. A build configured with
// -DLOCKIN_LOCKDEP=ON starts with lockdep enabled; otherwise callers opt
// in (scenario_runner --lockdep, ScenarioConfig::lockdep, tests).
void LockdepEnable(bool on);
bool LockdepIsEnabled();

// RAII enable/restore for drivers and tests.
class ScopedLockdep {
 public:
  explicit ScopedLockdep(bool on = true) : previous_(LockdepIsEnabled()) { LockdepEnable(on); }
  ~ScopedLockdep() { LockdepEnable(previous_); }

  ScopedLockdep(const ScopedLockdep&) = delete;
  ScopedLockdep& operator=(const ScopedLockdep&) = delete;

 private:
  bool previous_;
};

// Clears the acquisition graph, the reports and the counters, and
// invalidates every thread's held stack (via a generation bump, so stale
// thread-local state from a previous capture cannot leak in). Call between
// unrelated captures while no traced lock is held.
void LockdepReset();

// Snapshot of the violations recorded so far (bounded; see Describe()).
std::vector<LockdepReport> LockdepReports();
LockdepStats LockdepGetStats();

// One live thread's currently-held traced sites, as seen from outside.
struct LockdepHeldThread {
  std::uint32_t slot = 0;  // pool slot index (stable for the thread's life)
  std::vector<std::uint32_t> sites;
};

// Best-effort cross-thread snapshot of what every traced thread currently
// holds. Used by the FailSafe stall watchdog to dump the held-lock state
// of wedged workers. Reads the owner threads' stacks via acquire loads --
// safe to call from any thread at any time; only meaningful while lockdep
// is enabled (with it off no acquire ever reaches the stacks).
std::vector<LockdepHeldThread> LockdepHeldSnapshot();

// The snapshot as indented human-readable lines for stall reports.
std::string LockdepHeldDescribe();

// Labels an acquisition site for reports ("site 3 (TICKET)"). TracedHandle
// registers its lock's registry name automatically; TracedLock sites and
// sites beyond the fixed name-table capacity stay unlabeled.
void LockdepRegisterSiteName(std::uint32_t site, const std::string& name);

// The event hook, called from TraceEmit when lockdep is enabled. Exposed
// for tests that drive the detector directly; normal code never calls it.
void LockdepOnTraceEvent(TraceEventKind kind, std::uint32_t arg);

}  // namespace lockin

#endif  // SRC_ANALYSIS_LOCKDEP_HPP_
