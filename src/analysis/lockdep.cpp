#include "src/analysis/lockdep.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>

namespace lockin {

// Defined here (declared in trace.hpp) so TraceEmit's guard needs no
// include of this header. Builds configured with -DLOCKIN_LOCKDEP=ON
// define LOCKIN_LOCKDEP_ON_BY_DEFAULT and start enabled.
#if defined(LOCKIN_LOCKDEP_ON_BY_DEFAULT)
std::atomic<bool> g_lockdep_enabled{true};
#else
std::atomic<bool> g_lockdep_enabled{false};
#endif

namespace {

constexpr std::uint32_t kMaxHeld = 32;        // per-thread held-stack depth
constexpr std::uint32_t kEdgeCapacity = 4096; // power of two
constexpr std::uint32_t kMaxProbe = 128;      // open-addressing probe cap
constexpr std::uint32_t kMaxReports = 64;
constexpr std::uint32_t kMaxNamedSites = 512;
constexpr std::uint32_t kHeldSlotPool = 256;  // concurrent traced threads

// The per-thread stack of currently-held acquisition sites. Slots live in
// a global pool so a *foreign* thread (the FailSafe stall watchdog) can
// snapshot what a wedged worker holds: the owner is the only writer, the
// fields are relaxed/acquire-release atomics, and a thread claims a slot
// on first use and returns it at thread exit -- no dangling TLS pointers.
// The generation tag lets LockdepReset() invalidate every stack lazily.
struct HeldSlot {
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uint32_t> sites[kMaxHeld]{};
  std::atomic<bool> in_use{false};
};

HeldSlot g_held_slots[kHeldSlotPool];

std::atomic<std::uint64_t> g_generation{1};

// Claims a pool slot for the thread's lifetime; threads beyond the pool
// fall back to a private slot the watchdog cannot see (the checks still
// run, only the cross-thread dump loses them).
struct SlotHolder {
  HeldSlot* slot = nullptr;
  HeldSlot fallback;

  SlotHolder() {
    for (HeldSlot& candidate : g_held_slots) {
      bool expected = false;
      if (candidate.in_use.compare_exchange_strong(expected, true,
                                                   std::memory_order_acq_rel)) {
        candidate.depth.store(0, std::memory_order_relaxed);
        candidate.generation.store(g_generation.load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
        slot = &candidate;
        return;
      }
    }
  }

  ~SlotHolder() {
    if (slot != nullptr) {
      slot->depth.store(0, std::memory_order_relaxed);
      slot->in_use.store(false, std::memory_order_release);
    }
  }
};

thread_local SlotHolder tls_slot_holder;

// The acquisition graph: a fixed open-addressed set of packed
// (from << 32 | to) keys. Site ids start at 1 (NextTraceSiteId), so 0 is
// a free slot. Insertion is lock-free (one CAS on the hot miss path);
// slots are never erased except by LockdepReset.
std::atomic<std::uint64_t> g_edges[kEdgeCapacity];

struct Counters {
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> edge_table_drops{0};
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> self_deadlocks{0};
  std::atomic<std::uint64_t> unlock_unheld{0};
  std::atomic<std::uint64_t> held_stack_overflows{0};
  std::atomic<std::uint64_t> sleeps_while_holding{0};
};

Counters g_counters;

// Reports, site names, and the (cold) cycle analysis share one mutex:
// every path that takes it runs at most once per distinct edge/violation.
std::mutex g_report_mu;
LockdepReport g_reports[kMaxReports];
std::uint32_t g_report_count = 0;

char g_site_names[kMaxNamedSites][32];

std::uint64_t MixKey(std::uint64_t key) {
  // splitmix64 finalizer: full avalanche so sequential site ids spread.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return key;
}

enum class EdgeInsert { kNew, kExisting, kTableFull };

EdgeInsert InsertEdge(std::uint32_t from, std::uint32_t to) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  const std::uint64_t hash = MixKey(key);
  for (std::uint32_t probe = 0; probe < kMaxProbe; ++probe) {
    std::atomic<std::uint64_t>& slot = g_edges[(hash + probe) & (kEdgeCapacity - 1)];
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    if (current == key) {
      return EdgeInsert::kExisting;
    }
    if (current == 0) {
      if (slot.compare_exchange_strong(current, key, std::memory_order_relaxed)) {
        g_counters.edges.fetch_add(1, std::memory_order_relaxed);
        return EdgeInsert::kNew;
      }
      if (current == key) {  // lost the race to the same edge
        return EdgeInsert::kExisting;
      }
      // Lost to a different key; keep probing.
    }
  }
  g_counters.edge_table_drops.fetch_add(1, std::memory_order_relaxed);
  return EdgeInsert::kTableFull;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> SnapshotEdges() {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(64);
  for (std::uint32_t i = 0; i < kEdgeCapacity; ++i) {
    const std::uint64_t key = g_edges[i].load(std::memory_order_relaxed);
    if (key != 0) {
      edges.emplace_back(static_cast<std::uint32_t>(key >> 32),
                         static_cast<std::uint32_t>(key));
    }
  }
  return edges;
}

// DFS for a path `start -> ... -> target` in the snapshot, bounded by the
// report chain capacity. Fills *path with the nodes from start to target
// inclusive and returns true when found.
bool FindPath(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
              std::uint32_t start, std::uint32_t target,
              std::vector<std::uint32_t>* path, std::vector<std::uint32_t>* visited) {
  if (path->size() >= LockdepReport::kMaxChain - 1) {
    return false;
  }
  path->push_back(start);
  visited->push_back(start);
  if (start == target) {
    return true;
  }
  for (const auto& [from, to] : edges) {
    if (from != start) {
      continue;
    }
    bool seen = false;
    for (const std::uint32_t v : *visited) {
      if (v == to) {
        seen = true;
        break;
      }
    }
    if (seen && to != target) {
      continue;
    }
    if (FindPath(edges, to, target, path, visited)) {
      return true;
    }
  }
  path->pop_back();
  return false;
}

const char* ViolationLabel(LockdepViolationKind kind) {
  switch (kind) {
    case LockdepViolationKind::kCycle:
      return "lock-order inversion";
    case LockdepViolationKind::kSelfDeadlock:
      return "self-deadlock";
    case LockdepViolationKind::kUnlockUnheld:
      return "unlock of unheld lock";
  }
  return "violation";
}

// Records one report (deduplicating per kind+leading site), mirrors the
// involved sites into the calling thread's trace sink as
// kLockdepViolation instants, and prints the human-readable line. Caller
// holds g_report_mu.
void RecordReportLocked(LockdepViolationKind kind, const std::uint32_t* chain,
                        std::uint32_t chain_len) {
  for (std::uint32_t i = 0; i < g_report_count; ++i) {
    const LockdepReport& existing = g_reports[i];
    if (existing.kind != kind || existing.chain_len != chain_len) {
      continue;
    }
    bool same = true;
    for (std::uint32_t j = 0; j < chain_len && same; ++j) {
      same = existing.chain[j] == chain[j];
    }
    if (same) {
      return;
    }
  }
  switch (kind) {
    case LockdepViolationKind::kCycle:
      g_counters.cycles.fetch_add(1, std::memory_order_relaxed);
      break;
    case LockdepViolationKind::kSelfDeadlock:
      g_counters.self_deadlocks.fetch_add(1, std::memory_order_relaxed);
      break;
    case LockdepViolationKind::kUnlockUnheld:
      g_counters.unlock_unheld.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (g_report_count >= kMaxReports) {
    return;
  }
  LockdepReport& report = g_reports[g_report_count++];
  report.kind = kind;
  report.chain_len = chain_len < LockdepReport::kMaxChain
                         ? chain_len
                         : static_cast<std::uint32_t>(LockdepReport::kMaxChain);
  for (std::uint32_t i = 0; i < report.chain_len; ++i) {
    report.chain[i] = chain[i];
  }
  // Push directly into the sink (not TraceEmit: we are already inside the
  // emit path and must not recurse through the lockdep guard).
  if (TraceBuffer* sink = tls_trace_sink) {
    for (std::uint32_t i = 0; i < report.chain_len; ++i) {
      sink->Emit(TraceEventKind::kLockdepViolation, report.chain[i]);
    }
  }
  std::fprintf(stderr, "lockin lockdep: %s\n", report.Describe().c_str());
}

void ReportCycle(std::uint32_t from, std::uint32_t to) {
  std::lock_guard<std::mutex> guard(g_report_mu);
  // The cycle exists iff the rest of the graph already leads back:
  // to -> ... -> from, closed by the new edge from -> to.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = SnapshotEdges();
  std::vector<std::uint32_t> path;
  std::vector<std::uint32_t> visited;
  if (!FindPath(edges, to, from, &path, &visited)) {
    return;
  }
  // path runs to -> ... -> from inclusive, so prepending `from` closes the
  // cycle: from -> to -> ... -> from.
  std::uint32_t chain[LockdepReport::kMaxChain];
  std::uint32_t chain_len = 0;
  chain[chain_len++] = from;
  for (const std::uint32_t site : path) {
    if (chain_len >= LockdepReport::kMaxChain) {
      break;
    }
    chain[chain_len++] = site;
  }
  RecordReportLocked(LockdepViolationKind::kCycle, chain, chain_len);
}

void ReportSingleSite(LockdepViolationKind kind, std::uint32_t site) {
  std::lock_guard<std::mutex> guard(g_report_mu);
  const std::uint32_t chain[1] = {site};
  RecordReportLocked(kind, chain, 1);
}

// The calling thread's slot: its pooled one, or the invisible fallback
// when the pool is exhausted. Only the owner writes; all owner accesses
// are relaxed except the depth increment, which releases the pushed site
// to snapshot readers.
HeldSlot& CurrentStack() {
  SlotHolder& holder = tls_slot_holder;
  HeldSlot& slot = holder.slot != nullptr ? *holder.slot : holder.fallback;
  const std::uint64_t generation = g_generation.load(std::memory_order_relaxed);
  if (slot.generation.load(std::memory_order_relaxed) != generation) {
    slot.depth.store(0, std::memory_order_relaxed);
    slot.generation.store(generation, std::memory_order_relaxed);
  }
  return slot;
}

void OnAcquireBegin(std::uint32_t site) {
  HeldSlot& stack = CurrentStack();
  const std::uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < depth; ++i) {
    if (stack.sites[i].load(std::memory_order_relaxed) == site) {
      ReportSingleSite(LockdepViolationKind::kSelfDeadlock, site);
      return;
    }
  }
  // Acquiring `site` while holding the stack: record every held -> site
  // ordering. Cycle analysis only runs when an edge is genuinely new, so
  // steady-state acquires cost one table probe per held lock.
  for (std::uint32_t i = 0; i < depth; ++i) {
    const std::uint32_t held = stack.sites[i].load(std::memory_order_relaxed);
    if (held == site) {
      continue;
    }
    if (InsertEdge(held, site) == EdgeInsert::kNew) {
      ReportCycle(held, site);
    }
  }
}

void OnAcquired(std::uint32_t site) {
  HeldSlot& stack = CurrentStack();
  const std::uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth >= kMaxHeld) {
    g_counters.held_stack_overflows.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stack.sites[depth].store(site, std::memory_order_relaxed);
  stack.depth.store(depth + 1, std::memory_order_release);
}

void OnReleased(std::uint32_t site) {
  HeldSlot& stack = CurrentStack();
  const std::uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  // Releases may be out of LIFO order (hand-over-hand), so remove the most
  // recent matching entry wherever it sits.
  for (std::uint32_t i = depth; i > 0; --i) {
    if (stack.sites[i - 1].load(std::memory_order_relaxed) == site) {
      for (std::uint32_t j = i - 1; j + 1 < depth; ++j) {
        stack.sites[j].store(stack.sites[j + 1].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
      }
      stack.depth.store(depth - 1, std::memory_order_release);
      return;
    }
  }
  ReportSingleSite(LockdepViolationKind::kUnlockUnheld, site);
}

}  // namespace

void LockdepEnable(bool on) { g_lockdep_enabled.store(on, std::memory_order_relaxed); }

bool LockdepIsEnabled() { return g_lockdep_enabled.load(std::memory_order_relaxed); }

void LockdepReset() {
  std::lock_guard<std::mutex> guard(g_report_mu);
  for (std::uint32_t i = 0; i < kEdgeCapacity; ++i) {
    g_edges[i].store(0, std::memory_order_relaxed);
  }
  g_report_count = 0;
  g_counters.events.store(0, std::memory_order_relaxed);
  g_counters.edges.store(0, std::memory_order_relaxed);
  g_counters.edge_table_drops.store(0, std::memory_order_relaxed);
  g_counters.cycles.store(0, std::memory_order_relaxed);
  g_counters.self_deadlocks.store(0, std::memory_order_relaxed);
  g_counters.unlock_unheld.store(0, std::memory_order_relaxed);
  g_counters.held_stack_overflows.store(0, std::memory_order_relaxed);
  g_counters.sleeps_while_holding.store(0, std::memory_order_relaxed);
  // Invalidate every thread's held stack lazily (checked in CurrentStack).
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LockdepReport> LockdepReports() {
  std::lock_guard<std::mutex> guard(g_report_mu);
  return std::vector<LockdepReport>(g_reports, g_reports + g_report_count);
}

LockdepStats LockdepGetStats() {
  LockdepStats stats;
  stats.events = g_counters.events.load(std::memory_order_relaxed);
  stats.edges = g_counters.edges.load(std::memory_order_relaxed);
  stats.edge_table_drops = g_counters.edge_table_drops.load(std::memory_order_relaxed);
  stats.cycles = g_counters.cycles.load(std::memory_order_relaxed);
  stats.self_deadlocks = g_counters.self_deadlocks.load(std::memory_order_relaxed);
  stats.unlock_unheld = g_counters.unlock_unheld.load(std::memory_order_relaxed);
  stats.held_stack_overflows =
      g_counters.held_stack_overflows.load(std::memory_order_relaxed);
  stats.sleeps_while_holding =
      g_counters.sleeps_while_holding.load(std::memory_order_relaxed);
  return stats;
}

std::vector<LockdepHeldThread> LockdepHeldSnapshot() {
  std::vector<LockdepHeldThread> out;
  const std::uint64_t generation = g_generation.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < kHeldSlotPool; ++i) {
    HeldSlot& slot = g_held_slots[i];
    if (!slot.in_use.load(std::memory_order_acquire)) {
      continue;
    }
    if (slot.generation.load(std::memory_order_relaxed) != generation) {
      continue;  // stale stack from before the last LockdepReset
    }
    // The acquire pairs with the owner's release on depth: every site at
    // index < depth is visible. The owner may race ahead of us -- this is
    // a diagnostic snapshot, not a barrier.
    std::uint32_t depth = slot.depth.load(std::memory_order_acquire);
    if (depth == 0) {
      continue;
    }
    depth = depth < kMaxHeld ? depth : kMaxHeld;
    LockdepHeldThread held;
    held.slot = i;
    held.sites.reserve(depth);
    for (std::uint32_t j = 0; j < depth; ++j) {
      held.sites.push_back(slot.sites[j].load(std::memory_order_relaxed));
    }
    out.push_back(std::move(held));
  }
  return out;
}

std::string LockdepHeldDescribe() {
  std::string out;
  for (const LockdepHeldThread& held : LockdepHeldSnapshot()) {
    out += "  thread-slot ";
    out += std::to_string(held.slot);
    out += " holds:";
    for (const std::uint32_t site : held.sites) {
      out += " site ";
      out += std::to_string(site);
      if (site < kMaxNamedSites && g_site_names[site][0] != '\0') {
        out += " (";
        out += g_site_names[site];
        out += ")";
      }
    }
    out += "\n";
  }
  if (out.empty()) {
    out = "  (no traced locks held, or lockdep is disabled)\n";
  }
  return out;
}

void LockdepRegisterSiteName(std::uint32_t site, const std::string& name) {
  if (site >= kMaxNamedSites) {
    return;
  }
  std::lock_guard<std::mutex> guard(g_report_mu);
  std::snprintf(g_site_names[site], sizeof g_site_names[site], "%s", name.c_str());
}

std::string LockdepReport::Describe() const {
  // Callers may hold g_report_mu (RecordReportLocked); read the name table
  // directly rather than re-locking. External callers race only with site
  // registration, which happens at lock construction, before any event
  // involving that site can exist.
  std::string out = ViolationLabel(kind);
  out += ": ";
  for (std::uint32_t i = 0; i < chain_len; ++i) {
    if (i != 0) {
      out += " -> ";
    }
    const std::uint32_t site = chain[i];
    out += "site ";
    out += std::to_string(site);
    if (site < kMaxNamedSites && g_site_names[site][0] != '\0') {
      out += " (";
      out += g_site_names[site];
      out += ")";
    }
  }
  return out;
}

void LockdepOnTraceEvent(TraceEventKind kind, std::uint32_t arg) {
  g_counters.events.fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case TraceEventKind::kAcquireBegin:
      if (arg != 0) {
        OnAcquireBegin(arg);
      }
      break;
    case TraceEventKind::kAcquired:
      if (arg != 0) {
        OnAcquired(arg);
      }
      break;
    case TraceEventKind::kReleased:
      if (arg != 0) {
        OnReleased(arg);
      }
      break;
    case TraceEventKind::kFutexSleepBegin:
      if (CurrentStack().depth.load(std::memory_order_relaxed) > 0) {
        g_counters.sleeps_while_holding.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    default:
      break;
  }
}

}  // namespace lockin
