// Linux futex(2) wrappers.
//
// Section 4.3 of the paper: "The futex system call implements sleeping in
// Linux and is used by pthread mutex locks." These wrappers expose exactly
// the two operations locks need — wait-if-value-matches and wake-N — plus a
// timed wait used by MUTEXEE's optional fairness timeout (Figure 10).
//
// The instrumented variant counts sleeps, wakes, spurious returns and
// timeouts, which is how the MUTEXEE reproduction validates the paper's
// claim that it "keeps most lock handovers futex free".
#ifndef SRC_FUTEX_FUTEX_HPP_
#define SRC_FUTEX_FUTEX_HPP_

#include <atomic>
#include <cstdint>

namespace lockin {

// Result of a futex wait call.
enum class FutexWaitResult {
  kWoken,       // returned 0: woken by FUTEX_WAKE (or spuriously)
  kValueStale,  // EAGAIN: *addr != expected at call time (a "sleep miss")
  kTimedOut,    // ETIMEDOUT: the timed wait expired
  kInterrupted, // EINTR: signal
};

// Blocks until *addr != expected or a wake arrives. A direct FUTEX_WAIT.
FutexWaitResult FutexWait(std::atomic<std::uint32_t>* addr, std::uint32_t expected);

// Timed FUTEX_WAIT; timeout_ns is relative. timeout_ns == 0 means no timeout.
FutexWaitResult FutexWaitTimeout(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                 std::uint64_t timeout_ns);

// Wakes up to `count` waiters sleeping on addr. Returns the number woken.
int FutexWake(std::atomic<std::uint32_t>* addr, int count);

// Per-lock futex statistics. Counters are relaxed: they are diagnostics, not
// synchronization, and must not perturb the hot path.
struct FutexStats {
  std::atomic<std::uint64_t> sleeps{0};         // FUTEX_WAIT calls that blocked or missed
  std::atomic<std::uint64_t> sleep_misses{0};   // EAGAIN: value changed before sleeping
  std::atomic<std::uint64_t> wake_calls{0};     // FUTEX_WAKE invocations
  std::atomic<std::uint64_t> threads_woken{0};  // total threads actually woken
  std::atomic<std::uint64_t> timeouts{0};       // timed waits that expired

  void Reset() {
    sleeps.store(0, std::memory_order_relaxed);
    sleep_misses.store(0, std::memory_order_relaxed);
    wake_calls.store(0, std::memory_order_relaxed);
    threads_woken.store(0, std::memory_order_relaxed);
    timeouts.store(0, std::memory_order_relaxed);
  }
};

// Futex wrappers that account into a FutexStats block.
FutexWaitResult FutexWaitCounted(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                 FutexStats* stats);
FutexWaitResult FutexWaitTimeoutCounted(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                        std::uint64_t timeout_ns, FutexStats* stats);
int FutexWakeCounted(std::atomic<std::uint32_t>* addr, int count, FutexStats* stats);

}  // namespace lockin

#endif  // SRC_FUTEX_FUTEX_HPP_
