#include "src/futex/futex.hpp"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>

namespace lockin {
namespace {

long RawFutex(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val,
              const timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val, timeout, nullptr, 0);
}

FutexWaitResult WaitResultFromErrno(long rc) {
  if (rc == 0) {
    return FutexWaitResult::kWoken;
  }
  switch (errno) {
    case EAGAIN:
      return FutexWaitResult::kValueStale;
    case ETIMEDOUT:
      return FutexWaitResult::kTimedOut;
    case EINTR:
      return FutexWaitResult::kInterrupted;
    default:
      return FutexWaitResult::kWoken;
  }
}

}  // namespace

FutexWaitResult FutexWait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  const long rc = RawFutex(addr, FUTEX_WAIT_PRIVATE, expected, nullptr);
  return WaitResultFromErrno(rc);
}

FutexWaitResult FutexWaitTimeout(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                 std::uint64_t timeout_ns) {
  if (timeout_ns == 0) {
    return FutexWait(addr, expected);
  }
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ULL);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ULL);
  const long rc = RawFutex(addr, FUTEX_WAIT_PRIVATE, expected, &ts);
  return WaitResultFromErrno(rc);
}

int FutexWake(std::atomic<std::uint32_t>* addr, int count) {
  const long rc = RawFutex(addr, FUTEX_WAKE_PRIVATE, static_cast<std::uint32_t>(count), nullptr);
  return rc < 0 ? 0 : static_cast<int>(rc);
}

FutexWaitResult FutexWaitCounted(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                 FutexStats* stats) {
  stats->sleeps.fetch_add(1, std::memory_order_relaxed);
  const FutexWaitResult result = FutexWait(addr, expected);
  if (result == FutexWaitResult::kValueStale) {
    stats->sleep_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

FutexWaitResult FutexWaitTimeoutCounted(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                        std::uint64_t timeout_ns, FutexStats* stats) {
  stats->sleeps.fetch_add(1, std::memory_order_relaxed);
  const FutexWaitResult result = FutexWaitTimeout(addr, expected, timeout_ns);
  if (result == FutexWaitResult::kValueStale) {
    stats->sleep_misses.fetch_add(1, std::memory_order_relaxed);
  } else if (result == FutexWaitResult::kTimedOut) {
    stats->timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

int FutexWakeCounted(std::atomic<std::uint32_t>* addr, int count, FutexStats* stats) {
  stats->wake_calls.fetch_add(1, std::memory_order_relaxed);
  const int woken = FutexWake(addr, count);
  stats->threads_woken.fetch_add(static_cast<std::uint64_t>(woken), std::memory_order_relaxed);
  return woken;
}

}  // namespace lockin
