#include "src/futex/futex.hpp"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>

#include "src/obs/trace.hpp"
#include "src/platform/failpoint.hpp"

namespace lockin {
namespace {

long RawFutex(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val,
              const timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val, timeout, nullptr, 0);
}

FutexWaitResult WaitResultFromErrno(long rc) {
  if (rc == 0) {
    return FutexWaitResult::kWoken;
  }
  switch (errno) {
    case EAGAIN:
      return FutexWaitResult::kValueStale;
    case ETIMEDOUT:
      return FutexWaitResult::kTimedOut;
    case EINTR:
      return FutexWaitResult::kInterrupted;
    default:
      return FutexWaitResult::kWoken;
  }
}

}  // namespace

// LockScope hooks live on the raw functions: every sleeping primitive in
// the library (FutexLock, Mutexee, RwLock, CondVar, the Counted wrappers)
// funnels through these three, so instrumenting them covers the kernel
// round-trips everywhere. The emit is one thread-local load + branch next
// to a syscall, i.e. noise; with no sink installed it is the branch alone.
FutexWaitResult FutexWait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  // FailSafe: a fired futex/wait returns without sleeping -- a spurious
  // wake, which every caller's wait loop must already tolerate (the kernel
  // is allowed to do the same). Delay rules stall before the sleep.
  if (FailpointFired(FailpointId::kFutexWait)) {
    return FutexWaitResult::kInterrupted;
  }
  TraceEmit(TraceEventKind::kFutexSleepBegin, 0);
  const long rc = RawFutex(addr, FUTEX_WAIT_PRIVATE, expected, nullptr);
  const FutexWaitResult result = WaitResultFromErrno(rc);
  TraceEmit(TraceEventKind::kFutexSleepEnd, static_cast<std::uint32_t>(result));
  return result;
}

FutexWaitResult FutexWaitTimeout(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                 std::uint64_t timeout_ns) {
  if (timeout_ns == 0) {
    return FutexWait(addr, expected);
  }
  if (FailpointFired(FailpointId::kFutexWait)) {
    return FutexWaitResult::kInterrupted;
  }
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ULL);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ULL);
  TraceEmit(TraceEventKind::kFutexSleepBegin, 0);
  const long rc = RawFutex(addr, FUTEX_WAIT_PRIVATE, expected, &ts);
  const FutexWaitResult result = WaitResultFromErrno(rc);
  TraceEmit(TraceEventKind::kFutexSleepEnd, static_cast<std::uint32_t>(result));
  return result;
}

int FutexWake(std::atomic<std::uint32_t>* addr, int count) {
  // FailSafe: a fired futex/wake wakes EVERY waiter (thundering herd)
  // instead of `count`. Skipping the wake would deadlock correct code, so
  // the chaos direction is over-waking; losing a wake is not a bug any
  // lock protocol is expected to survive.
  if (FailpointFired(FailpointId::kFutexWake)) {
    count = INT_MAX;
  }
  const long rc = RawFutex(addr, FUTEX_WAKE_PRIVATE, static_cast<std::uint32_t>(count), nullptr);
  const int woken = rc < 0 ? 0 : static_cast<int>(rc);
  TraceEmit(TraceEventKind::kFutexWake, static_cast<std::uint32_t>(woken));
  return woken;
}

FutexWaitResult FutexWaitCounted(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                 FutexStats* stats) {
  stats->sleeps.fetch_add(1, std::memory_order_relaxed);
  const FutexWaitResult result = FutexWait(addr, expected);
  if (result == FutexWaitResult::kValueStale) {
    stats->sleep_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

FutexWaitResult FutexWaitTimeoutCounted(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                                        std::uint64_t timeout_ns, FutexStats* stats) {
  stats->sleeps.fetch_add(1, std::memory_order_relaxed);
  const FutexWaitResult result = FutexWaitTimeout(addr, expected, timeout_ns);
  if (result == FutexWaitResult::kValueStale) {
    stats->sleep_misses.fetch_add(1, std::memory_order_relaxed);
  } else if (result == FutexWaitResult::kTimedOut) {
    stats->timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

int FutexWakeCounted(std::atomic<std::uint32_t>* addr, int count, FutexStats* stats) {
  stats->wake_calls.fetch_add(1, std::memory_order_relaxed);
  const int woken = FutexWake(addr, count);
  stats->threads_woken.fetch_add(static_cast<std::uint64_t>(woken), std::memory_order_relaxed);
  return woken;
}

}  // namespace lockin
