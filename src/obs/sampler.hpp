// Periodic energy sampler: a background thread that snapshots an
// EnergyMeter (RAPL where permitted, the calibrated model elsewhere) into a
// time series while a workload runs, and optionally emits watts counter
// events into a trace buffer so Perfetto shows a power track alongside the
// lock/futex slices.
//
// The sampler relies on this repo's meter contract: Stop() is a
// non-destructive read of "energy since Start()" (both RaplMeter and
// ModelMeter compute deltas against state captured at Start()), so calling
// it repeatedly yields a cumulative series. One Start() by the owner, many
// Stop() reads by the sampler.
#ifndef SRC_OBS_SAMPLER_HPP_
#define SRC_OBS_SAMPLER_HPP_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/energy/energy_meter.hpp"
#include "src/obs/trace.hpp"

namespace lockin {

// One point of the sampled series (cumulative since meter Start()).
struct EnergyPoint {
  double seconds = 0;
  double joules = 0;
  double watts = 0;  // average watts over the window since the last point
};

class EnergySampler {
 public:
  // Samples `meter` every `interval_ms`. `sink` may be null; when set, each
  // sample also lands there as a kWattsSample event (arg = milliwatts).
  // The meter must already be Start()ed and must outlive the sampler.
  EnergySampler(EnergyMeter* meter, std::uint64_t interval_ms, TraceBuffer* sink = nullptr);
  ~EnergySampler();

  EnergySampler(const EnergySampler&) = delete;
  EnergySampler& operator=(const EnergySampler&) = delete;

  // Stops the thread and returns the collected series (one final sample is
  // taken on the way out, so even sub-interval runs get a point).
  std::vector<EnergyPoint> Finish();

 private:
  void Sample();

  EnergyMeter* meter_;
  TraceBuffer* sink_;
  std::uint64_t interval_ms_;
  std::atomic<bool> stop_{false};
  bool finished_ = false;
  double last_seconds_ = 0;
  double last_joules_ = 0;
  std::vector<EnergyPoint> series_;
  std::thread thread_;
};

}  // namespace lockin

#endif  // SRC_OBS_SAMPLER_HPP_
