#include "src/obs/sampler.hpp"

#include <chrono>

namespace lockin {

EnergySampler::EnergySampler(EnergyMeter* meter, std::uint64_t interval_ms, TraceBuffer* sink)
    : meter_(meter), sink_(sink), interval_ms_(interval_ms == 0 ? 1 : interval_ms) {
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
      Sample();
    }
  });
}

void EnergySampler::Sample() {
  const EnergySample cumulative = meter_->Stop();
  EnergyPoint point;
  point.seconds = cumulative.seconds;
  point.joules = cumulative.total_joules();
  const double dt = point.seconds - last_seconds_;
  point.watts = dt > 0 ? (point.joules - last_joules_) / dt : 0;
  last_seconds_ = point.seconds;
  last_joules_ = point.joules;
  if (sink_ != nullptr) {
    sink_->Push(ReadCycles(), TraceEventKind::kWattsSample,
                static_cast<std::uint32_t>(point.watts * 1000.0));
  }
  series_.push_back(point);
}

std::vector<EnergyPoint> EnergySampler::Finish() {
  if (!finished_) {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    Sample();  // final point covers the tail of the run
    finished_ = true;
  }
  return series_;
}

EnergySampler::~EnergySampler() {
  if (!finished_) {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
}

}  // namespace lockin
