// LockScope metrics: named counters, gauges and histograms with cheap
// thread-local shards and a consistent snapshot API.
//
// Increment cost is one relaxed fetch_add on a cache-line-private shard
// selected once per thread, so systems can count per-operation events
// (reader/writer acquires, evictions, futex sleeps) without introducing a
// shared hot line. Snapshots sum the shards: any snapshot taken while
// writers are running is a valid cut -- never above the true total at read
// time, monotonically non-decreasing across snapshots, and exact once the
// writers have quiesced (tests/test_obs.cpp pins all three properties).
#ifndef SRC_OBS_METRICS_HPP_
#define SRC_OBS_METRICS_HPP_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/platform/cacheline.hpp"
#include "src/stats/histogram.hpp"

namespace lockin {

namespace obs_internal {
// Stable per-thread shard index. Threads are striped round-robin over
// kMetricShards; a thread keeps its stripe for its lifetime.
inline constexpr std::size_t kMetricShards = 8;
std::size_t ThreadShardIndex();
}  // namespace obs_internal

// Monotonic counter, sharded per thread stripe.
class MetricCounter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[obs_internal::ThreadShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[obs_internal::kMetricShards];
};

// Last-write-wins instantaneous value (watts, queue depth, ...).
class MetricGauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Sharded latency histogram: each stripe records under its own tiny
// spinlock (recording threads in different stripes never contend); a
// snapshot merges the stripes.
class MetricHistogram {
 public:
  void Record(std::uint64_t value);
  // Merged view of all shards (consistent the same way counters are).
  LatencyHistogram Snapshot() const;

 private:
  struct alignas(kCacheLineSize) Shard {
    mutable std::atomic_flag busy = ATOMIC_FLAG_INIT;
    LatencyHistogram histogram;
  };
  Shard shards_[obs_internal::kMetricShards];
};

// Name -> metric registry. Lookup creates on first use and returns a stable
// reference (metrics live in deques, so registration never moves them).
// Lookup takes a mutex -- callers cache the reference and pay only the
// sharded increment per event.
class MetricsRegistry {
 public:
  // The process-wide registry the scenario layer and CLIs share.
  static MetricsRegistry& Instance();

  // Standalone registries are allowed too (isolated tests, embedding);
  // Instance() is a convenience, not an enforced singleton.
  MetricsRegistry() = default;

  MetricCounter& Counter(const std::string& name);
  MetricGauge& Gauge(const std::string& name);
  MetricHistogram& Histogram(const std::string& name);

  struct Sample {
    std::string name;
    std::string type;  // "counter" | "gauge" | "histogram_*"
    double value = 0;
  };
  // Point-in-time view of every registered metric, in registration order.
  // Histograms expand to count/p50/p99/max samples.
  std::vector<Sample> Snapshot() const;

  // Flat metrics JSON: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, p50, p99, max}}}.
  void WriteJson(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::deque<std::pair<std::string, MetricCounter>> counters_;
  std::deque<std::pair<std::string, MetricGauge>> gauges_;
  std::deque<std::pair<std::string, MetricHistogram>> histograms_;
};

}  // namespace lockin

#endif  // SRC_OBS_METRICS_HPP_
