#include "src/obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "src/adaptive/policy.hpp"
#include "src/platform/failpoint.hpp"
#include "src/platform/json.hpp"

namespace lockin {
namespace {

// One emitted trace-event JSON object. Buffered so the writer can emit a
// strictly valid array (comma placement) in one pass at the end.
struct ChromeEvent {
  std::string name;
  std::string cat;
  char ph = 'i';       // X = slice, i = instant, C = counter, M = metadata
  double ts_us = 0;
  double dur_us = 0;   // X only
  std::uint16_t tid = 0;
  std::string args;    // preformatted JSON object body, may be empty
};

std::string SiteArgs(std::uint32_t site) {
  return "\"site\": " + std::to_string(site);
}

const char* PhaseName(std::uint32_t id) {
  switch (id) {
    case 0:
      return "setup";
    case 1:
      return "run";
    default:
      return "phase";
  }
}

}  // namespace

void WriteChromeTrace(std::ostream& out, std::vector<TraceEvent> events,
                      const ChromeTraceOptions& options) {
  std::stable_sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.timestamp < b.timestamp;
  });
  std::uint64_t t0 = ~0ULL;
  for (const TraceEvent& event : events) {
    t0 = std::min(t0, event.timestamp);
  }
  const double cycles_per_us = options.cycles_per_us > 0 ? options.cycles_per_us : 1000.0;
  auto to_us = [&](std::uint64_t timestamp) {
    return static_cast<double>(timestamp - t0) / cycles_per_us;
  };

  std::vector<ChromeEvent> emitted;
  emitted.reserve(events.size());
  std::set<std::uint16_t> tids;

  // Per-thread pairing state. Begin/end kinds become "X" complete slices;
  // an unmatched begin (the run stopped mid-operation, or its end event was
  // dropped under ring back-pressure) is discarded rather than emitted with
  // an invented duration.
  std::uint16_t current_tid = 0;
  bool tid_open = false;
  std::map<std::uint32_t, std::uint64_t> wait_begin;  // site -> acquire_begin ts
  std::map<std::uint32_t, std::uint64_t> hold_begin;  // site -> acquired ts
  std::map<std::uint32_t, std::uint64_t> phase_begin;
  std::uint64_t sleep_begin = 0;
  bool sleeping = false;

  auto reset_thread_state = [&](std::uint16_t tid) {
    current_tid = tid;
    tid_open = true;
    wait_begin.clear();
    hold_begin.clear();
    phase_begin.clear();
    sleeping = false;
  };

  for (const TraceEvent& event : events) {
    if (!tid_open || event.tid != current_tid) {
      reset_thread_state(event.tid);
    }
    tids.insert(event.tid);
    const auto kind = static_cast<TraceEventKind>(event.kind);
    switch (kind) {
      case TraceEventKind::kAcquireBegin:
        wait_begin[event.arg] = event.timestamp;
        break;
      case TraceEventKind::kAcquired: {
        auto it = wait_begin.find(event.arg);
        if (it != wait_begin.end()) {
          emitted.push_back({"lock_wait", "lock", 'X', to_us(it->second),
                             to_us(event.timestamp) - to_us(it->second), event.tid,
                             SiteArgs(event.arg)});
          wait_begin.erase(it);
        }
        hold_begin[event.arg] = event.timestamp;
        break;
      }
      case TraceEventKind::kReleased: {
        auto it = hold_begin.find(event.arg);
        if (it != hold_begin.end()) {
          emitted.push_back({"lock_hold", "lock", 'X', to_us(it->second),
                             to_us(event.timestamp) - to_us(it->second), event.tid,
                             SiteArgs(event.arg)});
          hold_begin.erase(it);
        }
        break;
      }
      case TraceEventKind::kContended:
        emitted.push_back({"contended", "lock", 'i', to_us(event.timestamp), 0, event.tid,
                           SiteArgs(event.arg)});
        break;
      case TraceEventKind::kFutexSleepBegin:
        sleep_begin = event.timestamp;
        sleeping = true;
        break;
      case TraceEventKind::kFutexSleepEnd:
        if (sleeping) {
          emitted.push_back({"futex_sleep", "futex", 'X', to_us(sleep_begin),
                             to_us(event.timestamp) - to_us(sleep_begin), event.tid,
                             "\"result\": " + std::to_string(event.arg)});
          sleeping = false;
        }
        break;
      case TraceEventKind::kFutexWake:
        emitted.push_back({"futex_wake", "futex", 'i', to_us(event.timestamp), 0, event.tid,
                           "\"woken\": " + std::to_string(event.arg)});
        break;
      case TraceEventKind::kEpochSwitch: {
        std::string args = "\"backend\": \"";
        JsonEscape(&args, AdaptiveBackendName(static_cast<AdaptiveBackend>(event.arg)));
        args += "\"";
        emitted.push_back(
            {"epoch_switch", "adaptive", 'i', to_us(event.timestamp), 0, event.tid, args});
        break;
      }
      case TraceEventKind::kPhaseBegin:
        phase_begin[event.arg] = event.timestamp;
        break;
      case TraceEventKind::kPhaseEnd: {
        auto it = phase_begin.find(event.arg);
        if (it != phase_begin.end()) {
          emitted.push_back({std::string("phase:") + PhaseName(event.arg), "scenario", 'X',
                             to_us(it->second), to_us(event.timestamp) - to_us(it->second),
                             event.tid, ""});
          phase_begin.erase(it);
        }
        break;
      }
      case TraceEventKind::kWattsSample:
        emitted.push_back({"watts", "energy", 'C', to_us(event.timestamp), 0, event.tid,
                           "\"watts\": " + std::to_string(event.arg / 1000.0)});
        break;
      case TraceEventKind::kLockdepViolation:
        emitted.push_back({"lockdep_violation", "lockdep", 'i', to_us(event.timestamp), 0,
                           event.tid, SiteArgs(event.arg)});
        break;
      case TraceEventKind::kAcquireTimeout: {
        // A timed acquire that gave up closes its open wait window.
        wait_begin.erase(event.arg);
        emitted.push_back({"acquire_timeout", "lock", 'i', to_us(event.timestamp), 0,
                           event.tid, SiteArgs(event.arg)});
        break;
      }
      case TraceEventKind::kOpShed:
        emitted.push_back({"op_shed", "failsafe", 'i', to_us(event.timestamp), 0, event.tid,
                           "\"attempt\": " + std::to_string(event.arg)});
        break;
      case TraceEventKind::kWatchdogStall:
        emitted.push_back({"watchdog_stall", "failsafe", 'i', to_us(event.timestamp), 0,
                           event.tid, "\"worker\": " + std::to_string(event.arg)});
        break;
      case TraceEventKind::kFailpointFire: {
        std::string args = "\"site\": \"";
        JsonEscape(&args, FailpointName(static_cast<FailpointId>(event.arg)));
        args += "\"";
        emitted.push_back(
            {"failpoint_fire", "failsafe", 'i', to_us(event.timestamp), 0, event.tid, args});
        break;
      }
      case TraceEventKind::kNone:
        break;
    }
  }

  out << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  auto emit_comma = [&] {
    out << (first ? "\n    " : ",\n    ");
    first = false;
  };
  // Metadata: name the process and each thread track.
  {
    std::string name;
    JsonEscape(&name, options.process_name);
    emit_comma();
    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
        << "\"args\": {\"name\": \"" << name << "\"}}";
  }
  for (const std::uint16_t tid : tids) {
    emit_comma();
    out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
        << ", \"args\": {\"name\": \"thread-" << tid << "\"}}";
  }
  char buf[64];
  for (const ChromeEvent& event : emitted) {
    emit_comma();
    out << "{\"name\": \"" << event.name << "\", \"cat\": \"" << event.cat << "\", \"ph\": \""
        << event.ph << "\", \"pid\": 1, \"tid\": " << event.tid;
    std::snprintf(buf, sizeof buf, "%.3f", event.ts_us);
    out << ", \"ts\": " << buf;
    if (event.ph == 'X') {
      std::snprintf(buf, sizeof buf, "%.3f", event.dur_us);
      out << ", \"dur\": " << buf;
    }
    if (event.ph == 'i') {
      out << ", \"s\": \"t\"";
    }
    if (!event.args.empty()) {
      out << ", \"args\": {" << event.args << "}";
    }
    out << "}";
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace lockin
