#include "src/obs/metrics.hpp"

#include <cstdio>

#include "src/platform/json.hpp"
#include "src/platform/spin_hint.hpp"

namespace lockin {

namespace obs_internal {

std::size_t ThreadShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return mine;
}

}  // namespace obs_internal

void MetricHistogram::Record(std::uint64_t value) {
  Shard& shard = shards_[obs_internal::ThreadShardIndex()];
  while (shard.busy.test_and_set(std::memory_order_acquire)) {
    SpinPause(PauseKind::kPause);
  }
  shard.histogram.Record(value);
  shard.busy.clear(std::memory_order_release);
}

LatencyHistogram MetricHistogram::Snapshot() const {
  LatencyHistogram merged;
  for (const Shard& shard : shards_) {
    while (shard.busy.test_and_set(std::memory_order_acquire)) {
      SpinPause(PauseKind::kPause);
    }
    merged.Merge(shard.histogram);
    shard.busy.clear(std::memory_order_release);
  }
  return merged;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter& MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& entry : counters_) {
    if (entry.first == name) {
      return entry.second;
    }
  }
  counters_.emplace_back();
  counters_.back().first = name;
  return counters_.back().second;
}

MetricGauge& MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& entry : gauges_) {
    if (entry.first == name) {
      return entry.second;
    }
  }
  gauges_.emplace_back();
  gauges_.back().first = name;
  return gauges_.back().second;
}

MetricHistogram& MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& entry : histograms_) {
    if (entry.first == name) {
      return entry.second;
    }
  }
  histograms_.emplace_back();
  histograms_.back().first = name;
  return histograms_.back().second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<Sample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& entry : counters_) {
    samples.push_back({entry.first, "counter", static_cast<double>(entry.second.Value())});
  }
  for (const auto& entry : gauges_) {
    samples.push_back({entry.first, "gauge", entry.second.Value()});
  }
  for (const auto& entry : histograms_) {
    const LatencyHistogram merged = entry.second.Snapshot();
    samples.push_back({entry.first, "histogram_count", static_cast<double>(merged.count())});
    samples.push_back({entry.first, "histogram_p50", static_cast<double>(merged.P50())});
    samples.push_back({entry.first, "histogram_p99", static_cast<double>(merged.P99())});
    samples.push_back({entry.first, "histogram_max", static_cast<double>(merged.max())});
  }
  return samples;
}

namespace {

// Metric names are code-chosen, but a strict parser downstream must never
// see a bare control character; escaping is the shared src/platform/json.hpp
// WriteJsonString.

void WriteNumber(std::ostream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out << buf;
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> guard(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& entry : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(out, entry.first);
    out << ": " << entry.second.Value();
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& entry : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(out, entry.first);
    out << ": ";
    WriteNumber(out, entry.second.Value());
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& entry : histograms_) {
    const LatencyHistogram merged = entry.second.Snapshot();
    out << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(out, entry.first);
    out << ": {\"count\": " << merged.count() << ", \"p50\": " << merged.P50()
        << ", \"p99\": " << merged.P99() << ", \"max\": " << merged.max() << "}";
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace lockin
