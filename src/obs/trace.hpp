// LockScope event tracing: per-thread lock-free rings of 16-byte events.
//
// The paper's argument rests on *seeing* what a lock does -- how long
// waiters spin vs. sleep, how often they hit the kernel, when the adaptive
// runtime switches backends. This layer records exactly those moments as
// fixed-size rdtsc-stamped events in per-thread SPSC ring buffers:
//
//   * the owning thread is the only producer (Push/Emit), an exporter is
//     the only consumer (Pop/Drain), so the ring needs no locks -- one
//     relaxed head load, one acquire tail load and one release head store
//     per event;
//   * capacity is bounded and fixed at construction; when the ring is full
//     new events are *dropped and counted* (never overwriting older events,
//     so a partial trace is always a valid prefix);
//   * the same TraceEvent format carries native rdtsc timestamps and
//     simulator cycle timestamps (src/sim/engine.hpp stamps with sim
//     now()), so native and simulated runs export through one Chrome-trace
//     writer (src/obs/export.hpp) and produce diffable timelines.
//
// Cost when off: the hot tiers compile tracing out entirely (the
// NullTracePolicy below -- the harness's static tier stays byte-identical
// to the untraced loop); slow paths (futex syscalls, adaptive epoch
// maintenance) pay one thread-local pointer load and a predictable branch.
#ifndef SRC_OBS_TRACE_HPP_
#define SRC_OBS_TRACE_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"

namespace lockin {

// Event vocabulary. Values are stable (they appear in exported traces).
enum class TraceEventKind : std::uint16_t {
  kNone = 0,
  kAcquireBegin = 1,     // arg = lock site id; start of a lock() call
  kAcquired = 2,         // arg = site id; lock() returned
  kReleased = 3,         // arg = site id; unlock() finished
  kContended = 4,        // arg = site id; fast path failed, entering slow path
  kFutexSleepBegin = 5,  // entering FUTEX_WAIT (the kernel round-trip)
  kFutexSleepEnd = 6,    // arg = FutexWaitResult; back from FUTEX_WAIT
  kFutexWake = 7,        // arg = threads woken by this FUTEX_WAKE
  kEpochSwitch = 8,      // arg = new AdaptiveBackend; adaptive lock switched
  kPhaseBegin = 9,       // arg = phase id (driver phases: 0 setup, 1 run)
  kPhaseEnd = 10,        // arg = phase id
  kWattsSample = 11,     // arg = milliwatts (periodic sampler counter track)
  kLockdepViolation = 12,  // arg = site id in a reported violation chain
  kAcquireTimeout = 13,    // arg = site id; AcquireFor missed its deadline
  kOpShed = 14,            // arg = retry attempt; driver abandoned an op
  kWatchdogStall = 15,     // arg = worker index reported stalled
  kFailpointFire = 16,     // arg = FailpointId that triggered
};

// Exporter-facing name ("acquire_begin", "futex_sleep", ...).
const char* TraceEventKindName(TraceEventKind kind);

// One trace record. 16 bytes, POD, cache-friendly: four events per line.
struct TraceEvent {
  std::uint64_t timestamp = 0;  // rdtsc cycles (native) or sim cycles
  std::uint16_t kind = 0;       // TraceEventKind
  std::uint16_t tid = 0;        // logical thread index within the run
  std::uint32_t arg = 0;        // kind-specific payload (site id, count, ...)
};
static_assert(sizeof(TraceEvent) == 16, "trace events are fixed 16-byte records");

// Bounded single-producer single-consumer event ring. The producer is the
// thread the buffer is installed on (ScopedTraceSink below); the consumer
// is whoever drains it for export -- either after the workers joined or
// concurrently (the SPSC protocol makes a live drain safe).
class TraceBuffer {
 public:
  static constexpr std::uint32_t kDefaultCapacity = 1u << 14;  // 256 KiB/thread

  // `capacity` is rounded up to a power of two; `tid` labels every event
  // emitted through this buffer.
  explicit TraceBuffer(std::uint32_t capacity = kDefaultCapacity, std::uint16_t tid = 0);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // Producer side. Emit stamps with rdtsc; Push takes an explicit timestamp
  // (the simulator passes sim time). A full ring drops the event and counts
  // it -- earlier events are never overwritten.
  void Emit(TraceEventKind kind, std::uint32_t arg) { Push(ReadCycles(), kind, arg); }
  void Push(std::uint64_t timestamp, TraceEventKind kind, std::uint32_t arg) {
    PushAs(timestamp, kind, tid_, arg);
  }
  // The simulator runs many logical threads on one engine thread and stamps
  // events into a single ring; PushAs lets it label each event with the
  // simulated thread instead of the buffer's own tid.
  void PushAs(std::uint64_t timestamp, TraceEventKind kind, std::uint16_t tid,
              std::uint32_t arg) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == capacity_) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceEvent& slot = ring_[head & mask_];
    slot.timestamp = timestamp;
    slot.kind = static_cast<std::uint16_t>(kind);
    slot.tid = tid;
    slot.arg = arg;
    head_.store(head + 1, std::memory_order_release);
  }

  // Consumer side.
  bool Pop(TraceEvent* out);
  // Appends everything currently in the ring to *out; returns the count.
  std::size_t Drain(std::vector<TraceEvent>* out);

  std::size_t size() const;
  std::uint32_t capacity() const { return capacity_; }
  std::uint16_t tid() const { return tid_; }
  std::uint64_t dropped() const { return drops_.load(std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> ring_;
  std::uint32_t capacity_;
  std::uint64_t mask_;
  std::uint16_t tid_;
  // Head and tail on separate lines: the producer writes head_, the
  // consumer writes tail_, and neither should invalidate the other's line
  // on every event.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> drops_{0};
};

// --- Thread-local sink -------------------------------------------------------

// The calling thread's current trace sink; null (the default) means events
// are discarded at the emit site for the cost of one TLS load + branch.
// constinit: no TLS guard variable, so the load compiles to a plain
// fs-relative mov.
extern thread_local constinit TraceBuffer* tls_trace_sink;

// LockLint lockdep taps the same event stream (src/analysis/lockdep.hpp).
// Declared here, defined in lockdep.cpp, so the guard costs one relaxed
// load + predicted branch and this header needs no analysis include.
extern std::atomic<bool> g_lockdep_enabled;
void LockdepOnTraceEvent(TraceEventKind kind, std::uint32_t arg);

// Emits into the calling thread's sink, if any. This is the hook the
// runtime-instrumented paths use (futex syscalls, adaptive epochs, the
// type-erased traced lock adapter) -- and, when enabled, the lockdep
// lock-order detector's event source.
inline void TraceEmit(TraceEventKind kind, std::uint32_t arg) {
  if (g_lockdep_enabled.load(std::memory_order_relaxed)) {
    LockdepOnTraceEvent(kind, arg);
  }
  TraceBuffer* sink = tls_trace_sink;
  if (sink != nullptr) {
    sink->Emit(kind, arg);
  }
}

// Installs `buffer` as the calling thread's sink for the current scope.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceBuffer* buffer) : previous_(tls_trace_sink) {
    tls_trace_sink = buffer;
  }
  ~ScopedTraceSink() { tls_trace_sink = previous_; }

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceBuffer* previous_;
};

// --- Compile-time trace policies ---------------------------------------------

// The trace-policy template parameter the hot tiers are instantiated with.
// NullTracePolicy is the default everywhere: every emit is an empty inline
// function, so the instantiation is byte-identical to an untraced build
// (TracedLock<L, NullTracePolicy> adds no state either; the harness's
// static_assert fences check both properties).
struct NullTracePolicy {
  static constexpr bool kEnabled = false;
  static void Emit(TraceEventKind, std::uint32_t) {}
};

// Routes events to the calling thread's installed sink.
struct ThreadTracePolicy {
  static constexpr bool kEnabled = true;
  static void Emit(TraceEventKind kind, std::uint32_t arg) { TraceEmit(kind, arg); }
};

// --- Session: buffer registry for one capture --------------------------------

// Owns the ring buffers of one capture so they outlive their producer
// threads (workers join before export). Creation is mutex-protected (once
// per thread per run); the hot path never touches the session.
class TraceSession {
 public:
  // The process-wide session used by the drivers and CLIs.
  static TraceSession& Instance();

  // Creates and registers a buffer; the session keeps ownership. Thread-safe.
  TraceBuffer* NewBuffer(std::uint16_t tid, std::uint32_t capacity = TraceBuffer::kDefaultCapacity);

  // Drains every registered buffer into one timestamp-sorted vector.
  std::vector<TraceEvent> Collect();

  // Total events dropped across all buffers (ring-full back-pressure).
  std::uint64_t dropped() const;

  std::size_t buffer_count() const;

  // Discards all buffers (between unrelated captures).
  void Reset();

 private:
  TraceSession() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

// Process-wide id generator for traced lock sites (each traced lock
// instance gets a distinct arg value, so exports can tell locks apart).
std::uint32_t NextTraceSiteId();

}  // namespace lockin

#endif  // SRC_OBS_TRACE_HPP_
