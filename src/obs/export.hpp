// Trace exporters.
//
// WriteChromeTrace emits the Chrome trace-event JSON format, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing: lock waits/holds and
// futex sleeps become duration slices per thread track, adaptive epoch
// switches and wake calls become instants, and the periodic sampler's
// watts samples become a counter track. The same writer serves native runs
// (rdtsc timestamps) and simulator runs (sim-cycle timestamps); only the
// cycles_per_us conversion differs, so one scenario traced in both worlds
// yields diffable timelines.
#ifndef SRC_OBS_EXPORT_HPP_
#define SRC_OBS_EXPORT_HPP_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/trace.hpp"

namespace lockin {

struct ChromeTraceOptions {
  // Timestamp conversion: trace-event "ts" is microseconds. Native callers
  // pass CyclesPerNs() * 1000; simulator callers pass the simulated clock
  // rate (e.g. 2800 for the paper's 2.8 GHz Xeon).
  double cycles_per_us = 1000.0;
  std::string process_name = "lockin";
};

// Writes `events` (any order; sorted internally) as strict RFC 8259 JSON.
void WriteChromeTrace(std::ostream& out, std::vector<TraceEvent> events,
                      const ChromeTraceOptions& options);

}  // namespace lockin

#endif  // SRC_OBS_EXPORT_HPP_
