#include "src/obs/trace.hpp"

#include <algorithm>

namespace lockin {

thread_local constinit TraceBuffer* tls_trace_sink = nullptr;

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNone:
      return "none";
    case TraceEventKind::kAcquireBegin:
      return "acquire_begin";
    case TraceEventKind::kAcquired:
      return "acquired";
    case TraceEventKind::kReleased:
      return "released";
    case TraceEventKind::kContended:
      return "contended";
    case TraceEventKind::kFutexSleepBegin:
      return "futex_sleep_begin";
    case TraceEventKind::kFutexSleepEnd:
      return "futex_sleep_end";
    case TraceEventKind::kFutexWake:
      return "futex_wake";
    case TraceEventKind::kEpochSwitch:
      return "epoch_switch";
    case TraceEventKind::kPhaseBegin:
      return "phase_begin";
    case TraceEventKind::kPhaseEnd:
      return "phase_end";
    case TraceEventKind::kWattsSample:
      return "watts";
    case TraceEventKind::kLockdepViolation:
      return "lockdep_violation";
    case TraceEventKind::kAcquireTimeout:
      return "acquire_timeout";
    case TraceEventKind::kOpShed:
      return "op_shed";
    case TraceEventKind::kWatchdogStall:
      return "watchdog_stall";
    case TraceEventKind::kFailpointFire:
      return "failpoint_fire";
  }
  return "unknown";
}

namespace {

std::uint32_t RoundUpPowerOfTwo(std::uint32_t value) {
  std::uint32_t pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

}  // namespace

TraceBuffer::TraceBuffer(std::uint32_t capacity, std::uint16_t tid)
    : capacity_(RoundUpPowerOfTwo(capacity == 0 ? 1 : capacity)),
      mask_(capacity_ - 1),
      tid_(tid) {
  ring_.resize(capacity_);
}

bool TraceBuffer::Pop(TraceEvent* out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail == head_.load(std::memory_order_acquire)) {
    return false;
  }
  *out = ring_[tail & mask_];
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

std::size_t TraceBuffer::Drain(std::vector<TraceEvent>* out) {
  std::size_t drained = 0;
  TraceEvent event;
  while (Pop(&event)) {
    out->push_back(event);
    ++drained;
  }
  return drained;
}

std::size_t TraceBuffer::size() const {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<std::size_t>(head - tail);
}

TraceSession& TraceSession::Instance() {
  static TraceSession* session = new TraceSession();
  return *session;
}

TraceBuffer* TraceSession::NewBuffer(std::uint16_t tid, std::uint32_t capacity) {
  std::lock_guard<std::mutex> guard(mu_);
  buffers_.push_back(std::make_unique<TraceBuffer>(capacity, tid));
  return buffers_.back().get();
}

std::vector<TraceEvent> TraceSession::Collect() {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const std::unique_ptr<TraceBuffer>& buffer : buffers_) {
      buffer->Drain(&events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  return events;
}

std::uint64_t TraceSession::dropped() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<TraceBuffer>& buffer : buffers_) {
    total += buffer->dropped();
  }
  return total;
}

std::size_t TraceSession::buffer_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return buffers_.size();
}

void TraceSession::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  buffers_.clear();
}

std::uint32_t NextTraceSiteId() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lockin
