#include "src/adaptive/policy.hpp"

#include <algorithm>

namespace lockin {

const char* AdaptiveBackendName(AdaptiveBackend backend) {
  switch (backend) {
    case AdaptiveBackend::kSpin:
      return "TTAS";
    case AdaptiveBackend::kSleep:
      return "MUTEX";
    case AdaptiveBackend::kMutexee:
      return "MUTEXEE";
  }
  return "?";
}

MutexeeBudgetBounds MutexeeBudgetBounds::FromTunerReport(const TunerReport& report) {
  MutexeeBudgetBounds bounds;
  // The tuner already clamps its measurements to sane values; bracket them.
  const std::uint64_t turnaround = std::max<std::uint64_t>(report.futex_turnaround_cycles, 1000);
  const std::uint64_t transfer = std::max<std::uint64_t>(report.line_transfer_cycles, 64);
  bounds.spin_min_cycles = turnaround;
  bounds.spin_max_cycles = 4 * turnaround;
  bounds.grace_min_cycles = transfer;
  bounds.grace_max_cycles = 4 * transfer;
  return bounds;
}

AdaptiveBackend EwmaThresholdPolicy::Decide(const LockSiteSnapshot& snapshot,
                                            AdaptiveBackend current) {
  double wait = snapshot.avg_wait_cycles;
  // Unfair backends censor the wait signal: under barging (MUTEX) or
  // user-space handover (MUTEXEE) the acquisitions that complete are the
  // cheap ones -- the releaser re-acquiring in ~0 cycles -- while starving
  // sleepers never finish an acquire to be measured. Hold times are never
  // censored (every completed acquire records one), and under contention a
  // waiter expects to wait at least about one hold, so when the epoch shows
  // kernel churn or real contention, floor the wait estimate with the hold
  // EWMA.
  if (snapshot.sleep_ratio > 0.1 || snapshot.contended_ratio > 0.1) {
    wait = std::max(wait, snapshot.avg_hold_cycles);
  }
  const double h = std::max(1.0, config_.hysteresis);
  // Hysteresis: moving away from the current backend requires crossing the
  // boundary by the factor; moving toward it only requires crossing it.
  double spin_max = config_.spin_wait_max_cycles;
  double sleep_min = config_.sleep_wait_min_cycles;
  switch (current) {
    case AdaptiveBackend::kSpin:
      spin_max *= h;  // stickier: stay spinning a bit past the boundary
      break;
    case AdaptiveBackend::kSleep:
      sleep_min /= h;  // stickier: keep sleeping a bit below the boundary
      break;
    case AdaptiveBackend::kMutexee:
      spin_max /= h;  // harder to leave the middle ground in either direction
      sleep_min *= h;
      break;
  }
  if (wait <= spin_max) {
    return AdaptiveBackend::kSpin;
  }
  // Heavy kernel involvement *despite* spinning first (i.e. on a backend
  // that spins before sleeping) means the spin phase only burns power --
  // go straight to sleeping. On kSleep itself the ratio is inherently ~1
  // (FutexLock sleeps on nearly every contended acquire), so the clause
  // must not apply there or the kSleep -> kMutexee transition in the
  // middle regime would be unreachable.
  if (wait >= sleep_min ||
      (current != AdaptiveBackend::kSleep && snapshot.sleep_ratio > 0.5)) {
    return AdaptiveBackend::kSleep;
  }
  return AdaptiveBackend::kMutexee;
}

EpsilonGreedyPolicy::EpsilonGreedyPolicy(const PolicyConfig& config)
    : config_(config), rng_(config.seed * 2654435761ULL + 1), epsilon_(config.epsilon) {}

double EpsilonGreedyPolicy::value(AdaptiveBackend backend) const {
  return values_[static_cast<int>(backend)];
}

AdaptiveBackend EpsilonGreedyPolicy::Decide(const LockSiteSnapshot& snapshot,
                                            AdaptiveBackend current) {
  // Credit the closed epoch's reward to the backend that produced it.
  const int cur = static_cast<int>(current);
  const double reward = snapshot.EstimatedTpp();
  if (!tried_[cur]) {
    values_[cur] = reward;
    tried_[cur] = true;
  } else {
    values_[cur] += config_.reward_alpha * (reward - values_[cur]);
  }

  // Try every arm once before exploiting.
  for (int b = 0; b < kAdaptiveBackendCount; ++b) {
    if (!tried_[b]) {
      return static_cast<AdaptiveBackend>(b);
    }
  }

  const double roll = rng_.NextDouble();
  AdaptiveBackend choice = current;
  if (roll < epsilon_) {
    choice = static_cast<AdaptiveBackend>(rng_.NextBelow(kAdaptiveBackendCount));
  } else {
    int best = 0;
    for (int b = 1; b < kAdaptiveBackendCount; ++b) {
      if (values_[b] > values_[best]) {
        best = b;
      }
    }
    choice = static_cast<AdaptiveBackend>(best);
  }
  epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
  return choice;
}

std::unique_ptr<AdaptivePolicy> MakePolicy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyConfig::Kind::kEwmaThreshold:
      return std::make_unique<EwmaThresholdPolicy>(config);
    case PolicyConfig::Kind::kEpsilonGreedy:
      return std::make_unique<EpsilonGreedyPolicy>(config);
  }
  return std::make_unique<EwmaThresholdPolicy>(config);
}

MutexeeBudgets RetuneMutexeeBudgets(const LockSiteSnapshot& snapshot,
                                    const MutexeeBudgetBounds& bounds) {
  MutexeeBudgets budgets;
  // Spin long enough to cover the typical wait (2x the EWMA), so handovers
  // resolve in user space, but never past the bound where spinning costs
  // more than the futex round trip it avoids.
  const double target_spin = 2.0 * std::max(0.0, snapshot.avg_wait_cycles);
  budgets.spin_cycles = std::clamp(static_cast<std::uint64_t>(target_spin),
                                   bounds.spin_min_cycles, bounds.spin_max_cycles);
  // Grace stretches with kernel involvement: the more acquisitions end in a
  // futex sleep, the more a skipped wake (>= 7000-cycle turnaround) is worth.
  const double stretch = 1.0 + 2.0 * std::clamp(snapshot.sleep_ratio, 0.0, 1.0);
  const double target_grace = static_cast<double>(bounds.grace_min_cycles) * stretch;
  budgets.grace_cycles = std::clamp(static_cast<std::uint64_t>(target_grace),
                                    bounds.grace_min_cycles, bounds.grace_max_cycles);
  return budgets;
}

}  // namespace lockin
