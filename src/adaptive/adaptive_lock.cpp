#include "src/adaptive/adaptive_lock.hpp"

#include "src/obs/trace.hpp"
#include "src/platform/cycles.hpp"

namespace lockin {

AdaptiveLock::AdaptiveLock(AdaptiveLockConfig config)
    : AdaptiveLock(std::move(config), nullptr) {}

AdaptiveLock::AdaptiveLock(AdaptiveLockConfig config, std::unique_ptr<AdaptivePolicy> policy)
    : config_(std::move(config)),
      policy_(policy ? std::move(policy) : MakePolicy(config_.policy)),
      ttas_(config_.spin),
      futex_(config_.sleep),
      mutexee_(config_.mutexee),
      current_(config_.initial),
      held_(config_.initial),
      stats_(config_.energy, config_.stats_ewma_alpha) {
  if (config_.epoch_acquires == 0) {
    config_.epoch_acquires = 1;
  }
}

void AdaptiveLock::LockBackend(AdaptiveBackend b) {
  switch (b) {
    case AdaptiveBackend::kSpin:
      ttas_.lock();
      return;
    case AdaptiveBackend::kSleep:
      futex_.lock();
      return;
    case AdaptiveBackend::kMutexee:
      mutexee_.lock();
      return;
  }
}

bool AdaptiveLock::TryLockBackend(AdaptiveBackend b) {
  switch (b) {
    case AdaptiveBackend::kSpin:
      return ttas_.try_lock();
    case AdaptiveBackend::kSleep:
      return futex_.try_lock();
    case AdaptiveBackend::kMutexee:
      return mutexee_.try_lock();
  }
  return false;
}

void AdaptiveLock::UnlockBackend(AdaptiveBackend b) {
  switch (b) {
    case AdaptiveBackend::kSpin:
      ttas_.unlock();
      return;
    case AdaptiveBackend::kSleep:
      futex_.unlock();
      return;
    case AdaptiveBackend::kMutexee:
      mutexee_.unlock();
      return;
  }
}

std::uint64_t AdaptiveLock::BackendSleepCalls() const {
  return futex_.futex_stats().sleeps.load(std::memory_order_relaxed) +
         mutexee_.futex_stats().sleeps.load(std::memory_order_relaxed);
}

void AdaptiveLock::lock() {
  // Per-thread sampling tick shared across adaptive locks: timings (two
  // rdtsc reads plus EWMA math) only for 1-in-2^sample_shift acquisitions.
  thread_local std::uint64_t acquire_tick = 0;
  const bool sample =
      config_.sample_shift == 0 ||
      ((++acquire_tick) & ((std::uint64_t{1} << config_.sample_shift) - 1)) == 0;
  const std::uint64_t requested_at = sample ? ReadCycles() : 0;
  for (;;) {
    const AdaptiveBackend b = current_.load(std::memory_order_acquire);
    LockBackend(b);
    // Validation must be an acquire load: under ABA (switch away and back
    // between our backend acquire and here) the backend release we
    // synchronized with may predate the latest publish, and only reading
    // the publishing store with acquire semantics orders us after the
    // previous owner's plain writes (stats_, held_). Coherence guarantees
    // we never read a publish older than the one our backend release is
    // ordered after, so a passing validation always synchronizes with the
    // latest owner.
    if (current_.load(std::memory_order_acquire) == b) {
      held_ = b;
      sampled_ = sample;
      if (sample) {
        const std::uint64_t now = ReadCycles();
        wait_cycles_pending_ = now - requested_at;
        hold_start_cycles_ = now;
      }
      return;
    }
    UnlockBackend(b);
  }
}

bool AdaptiveLock::try_lock() {
  const AdaptiveBackend b = current_.load(std::memory_order_acquire);
  if (!TryLockBackend(b)) {
    return false;
  }
  if (current_.load(std::memory_order_acquire) != b) {
    // A switch raced us; fail spuriously rather than spin here.
    UnlockBackend(b);
    return false;
  }
  held_ = b;
  sampled_ = true;
  wait_cycles_pending_ = 0;
  hold_start_cycles_ = ReadCycles();
  return true;
}

void AdaptiveLock::OwnerEpochMaintenance() {
  const std::uint64_t now = ReadCycles();
  const std::uint64_t sleep_calls = BackendSleepCalls();
  const LockSiteSnapshot snapshot =
      stats_.EndEpoch(now, sleep_calls - last_sleep_calls_);
  last_sleep_calls_ = sleep_calls;
  epochs_.fetch_add(1, std::memory_order_relaxed);

  const AdaptiveBackend next = policy_->Decide(snapshot, held_);
  if (config_.policy.retune_mutexee &&
      (next == AdaptiveBackend::kMutexee || held_ == AdaptiveBackend::kMutexee)) {
    const MutexeeBudgets budgets =
        RetuneMutexeeBudgets(snapshot, config_.policy.mutexee_bounds);
    mutexee_.Retune(budgets.spin_cycles, budgets.grace_cycles);
  }
  if (next != held_) {
    // Published while we still hold the old backend: every thread that
    // validates after this store validates against `next`.
    current_.store(next, std::memory_order_release);
    switches_.fetch_add(1, std::memory_order_relaxed);
    // LockScope: epoch switches are rare (once per epoch at most) and
    // already on the owner's maintenance path, so the emit costs nothing
    // measurable. arg = the backend we switched *to*.
    TraceEmit(TraceEventKind::kEpochSwitch, static_cast<std::uint32_t>(next));
  }
}

void AdaptiveLock::unlock() {
  const AdaptiveBackend b = held_;
  if (sampled_) {
    stats_.RecordAcquire(wait_cycles_pending_, ReadCycles() - hold_start_cycles_);
  } else {
    stats_.RecordUnsampled();
  }
  if (stats_.epoch_acquires() >= config_.epoch_acquires) {
    OwnerEpochMaintenance();
  }
  UnlockBackend(b);
}

}  // namespace lockin
