// Policy engine for the adaptive lock runtime.
//
// Picks, per lock site and per epoch, which waiting policy the next epoch
// should use -- the decision the paper shows cannot be made statically
// (sections 3-5: spinning wastes power under long waits, sleeping destroys
// throughput and tail latency under short ones, MUTEXEE's fixed budgets are
// tuned per platform). Two policies are provided:
//
//   * EwmaThresholdPolicy: classifies the observed wait-time EWMA into the
//     three regimes with hysteresis. Short waits -> pure spinning (TTAS);
//     long waits or heavy kernel involvement -> sleeping (MUTEX/futex);
//     the middle ground -> MUTEXEE's spin-then-sleep. This mirrors the
//     active/passive wait-policy tradeoff studied for OpenMP runtimes
//     (Valter et al., 2022) with the paper's cycle budgets as thresholds.
//
//   * EpsilonGreedyPolicy: a bandit over the three backends that maximizes
//     the profiler's estimated TPP (acquires/Joule) directly, for workloads
//     whose regime the threshold rule misclassifies.
//
// The engine also retunes MUTEXEE's spin/grace budgets inside bounds
// derived from the platform tuner (RunMutexeeTuner) instead of trusting
// one fixed per-platform configuration.
#ifndef SRC_ADAPTIVE_POLICY_HPP_
#define SRC_ADAPTIVE_POLICY_HPP_

#include <cstdint>
#include <memory>
#include <string>

#include "src/adaptive/lock_stats.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/tuner.hpp"
#include "src/platform/rng.hpp"

namespace lockin {

// The backends the adaptive lock switches among (src/adaptive/adaptive_lock.hpp).
enum class AdaptiveBackend : int {
  kSpin = 0,     // TTAS: local spinning, best when waits are short
  kSleep = 1,    // FutexLock (the paper's MUTEX): best when waits are long
  kMutexee = 2,  // spin-then-sleep with unlock grace: the middle ground
};
inline constexpr int kAdaptiveBackendCount = 3;

const char* AdaptiveBackendName(AdaptiveBackend backend);

// Allowed range for MUTEXEE's spin-mode budgets when the policy retunes
// them. Defaults bracket the paper's Xeon values (8000-cycle spin, 384-cycle
// grace); FromTunerReport derives host-specific bounds from the measured
// futex turnaround and cache-line transfer latencies.
struct MutexeeBudgetBounds {
  std::uint64_t spin_min_cycles = 4000;
  std::uint64_t spin_max_cycles = 32000;
  std::uint64_t grace_min_cycles = 128;
  std::uint64_t grace_max_cycles = 1536;

  // Spin in [1x, 4x] the futex turnaround ("spinning for more than 4000
  // cycles is crucial"; spinning much beyond the turnaround only burns
  // power), grace in [1x, 4x] one line transfer.
  static MutexeeBudgetBounds FromTunerReport(const TunerReport& report);
};

struct PolicyConfig {
  enum class Kind { kEwmaThreshold, kEpsilonGreedy };
  Kind kind = Kind::kEwmaThreshold;

  // EWMA-threshold policy: regime boundaries on the wait-time EWMA, and the
  // multiplicative hysteresis a boundary must be crossed by to leave the
  // current backend (prevents flapping at a threshold).
  double spin_wait_max_cycles = 4000.0;    // below: pure spinning wins
  double sleep_wait_min_cycles = 40000.0;  // above: sleeping wins
  double hysteresis = 1.5;

  // Epsilon-greedy bandit.
  double epsilon = 0.2;
  double epsilon_decay = 0.98;
  double epsilon_min = 0.02;
  double reward_alpha = 0.3;  // EWMA weight for per-backend reward updates
  std::uint64_t seed = 1;

  // MUTEXEE budget retuning (applies to both policies).
  bool retune_mutexee = true;
  MutexeeBudgetBounds mutexee_bounds;
};

class AdaptivePolicy {
 public:
  virtual ~AdaptivePolicy() = default;

  // Picks the backend for the next epoch given the closed epoch's digest.
  virtual AdaptiveBackend Decide(const LockSiteSnapshot& snapshot,
                                 AdaptiveBackend current) = 0;

  virtual std::string name() const = 0;
};

class EwmaThresholdPolicy final : public AdaptivePolicy {
 public:
  explicit EwmaThresholdPolicy(const PolicyConfig& config) : config_(config) {}

  AdaptiveBackend Decide(const LockSiteSnapshot& snapshot, AdaptiveBackend current) override;
  std::string name() const override { return "ewma-threshold"; }

 private:
  PolicyConfig config_;
};

class EpsilonGreedyPolicy final : public AdaptivePolicy {
 public:
  explicit EpsilonGreedyPolicy(const PolicyConfig& config);

  AdaptiveBackend Decide(const LockSiteSnapshot& snapshot, AdaptiveBackend current) override;
  std::string name() const override { return "epsilon-greedy"; }

  // Learned value estimate for a backend (tests/diagnostics).
  double value(AdaptiveBackend backend) const;

 private:
  PolicyConfig config_;
  Xoshiro256 rng_;
  double epsilon_;
  double values_[kAdaptiveBackendCount] = {0.0, 0.0, 0.0};
  bool tried_[kAdaptiveBackendCount] = {false, false, false};
};

std::unique_ptr<AdaptivePolicy> MakePolicy(const PolicyConfig& config);

// Retuned MUTEXEE spin-mode budgets for the observed regime, clamped to
// `bounds`: spin a bit past the typical wait (so handovers stay in user
// space), stretch the unlock grace when many waiters reach the futex (each
// skipped wake saves a >= 7000-cycle turnaround).
struct MutexeeBudgets {
  std::uint64_t spin_cycles;
  std::uint64_t grace_cycles;
};
MutexeeBudgets RetuneMutexeeBudgets(const LockSiteSnapshot& snapshot,
                                    const MutexeeBudgetBounds& bounds);

}  // namespace lockin

#endif  // SRC_ADAPTIVE_POLICY_HPP_
