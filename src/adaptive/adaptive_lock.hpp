// Energy-aware adaptive lock: wraps a TTAS spinlock, a futex mutex and a
// MUTEXEE behind one Lockable and switches among them at runtime based on
// the profiler (src/adaptive/lock_stats.hpp) and the policy engine
// (src/adaptive/policy.hpp).
//
// Switching protocol (epoch-based, never while held):
//
//   * lock(): read the current backend b, acquire b, then re-validate that
//     b is still current. A stale acquisition is released and the acquire
//     retried on the new backend; a validated acquisition owns the adaptive
//     lock. Validation can only succeed for the backend published by the
//     previous owner, so two threads can never both validate -- mutual
//     exclusion reduces to the backends' own.
//
//   * unlock(): the owner records the acquisition into the profiler; every
//     `epoch_acquires` acquisitions it closes the epoch, asks the policy
//     for the next backend, optionally retunes MUTEXEE's budgets, publishes
//     the (possibly new) backend, and only then releases. Publishing while
//     still holding the backend guarantees no other thread is between
//     validation and release -- the quiesce point the switch needs.
//
//   * waiters stranded inside a de-published backend drain naturally: each
//     eventually acquires it, fails validation, releases (waking the next
//     stranded waiter, if any) and retries on the current backend. Backends
//     are therefore never destroyed or re-created, only deselected.
#ifndef SRC_ADAPTIVE_ADAPTIVE_LOCK_HPP_
#define SRC_ADAPTIVE_ADAPTIVE_LOCK_HPP_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/adaptive/lock_stats.hpp"
#include "src/adaptive/policy.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/spinlocks.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/thread_annotations.hpp"

namespace lockin {

struct AdaptiveLockConfig {
  PolicyConfig policy;
  // Epoch length in acquisitions. Shorter epochs react faster to phase
  // changes but run the policy more often; the policy itself is a handful
  // of comparisons, so even 64 is cheap.
  std::uint64_t epoch_acquires = 256;
  // Wait/hold timings are sampled on 1-in-2^sample_shift acquisitions per
  // thread, keeping the rdtsc reads off the uncontended fast path (the
  // profiler still counts every acquisition for epoch progress and rates).
  // 0 samples every acquisition.
  std::uint32_t sample_shift = 3;
  AdaptiveBackend initial = AdaptiveBackend::kMutexee;

  // Backend construction parameters.
  SpinConfig spin;          // TTAS backend (yield_after matters on small hosts)
  FutexLockConfig sleep;    // futex-mutex backend
  MutexeeConfig mutexee;    // MUTEXEE backend; budgets are retuned online

  AdaptiveEnergyParams energy = AdaptiveEnergyParams{};
  double stats_ewma_alpha = 0.2;
};

class LL_CAPABILITY("mutex") AdaptiveLock {
 public:
  AdaptiveLock() : AdaptiveLock(AdaptiveLockConfig{}) {}
  explicit AdaptiveLock(AdaptiveLockConfig config);
  // Injects a custom policy (tests use a deterministic switcher).
  AdaptiveLock(AdaptiveLockConfig config, std::unique_ptr<AdaptivePolicy> policy);

  AdaptiveLock(const AdaptiveLock&) = delete;
  AdaptiveLock& operator=(const AdaptiveLock&) = delete;

  void lock() LL_ACQUIRE();
  bool try_lock() LL_TRY_ACQUIRE(true);  // may fail spuriously during a backend switch
  void unlock() LL_RELEASE();

  // Diagnostics. backend() is always safe; the snapshot accessors report
  // owner-written state and should be read while the lock is idle (tests
  // read them after joining their threads).
  AdaptiveBackend backend() const { return current_.load(std::memory_order_relaxed); }
  const char* backend_name() const { return AdaptiveBackendName(backend()); }
  std::uint64_t backend_switches() const {
    return switches_.load(std::memory_order_relaxed);
  }
  std::uint64_t epochs() const { return epochs_.load(std::memory_order_relaxed); }
  const LockSiteSnapshot& last_snapshot() const { return stats_.last_snapshot(); }
  const AdaptivePolicy& policy() const { return *policy_; }
  const MutexeeLock& mutexee_backend() const { return mutexee_; }
  const AdaptiveLockConfig& config() const { return config_; }

 private:
  // The backend helpers acquire/release the *wrapped* capabilities on
  // behalf of the AdaptiveLock capability callers see; the analysis cannot
  // equate the two (see LockAdapter in src/locks/lock_api.hpp).
  void LockBackend(AdaptiveBackend b) LL_NO_THREAD_SAFETY_ANALYSIS;
  bool TryLockBackend(AdaptiveBackend b) LL_NO_THREAD_SAFETY_ANALYSIS;
  void UnlockBackend(AdaptiveBackend b) LL_NO_THREAD_SAFETY_ANALYSIS;
  std::uint64_t BackendSleepCalls() const;
  void OwnerEpochMaintenance();

  AdaptiveLockConfig config_;
  std::unique_ptr<AdaptivePolicy> policy_;

  TtasLock ttas_;
  FutexLock futex_;
  MutexeeLock mutexee_;

  alignas(kCacheLineSize) std::atomic<AdaptiveBackend> current_;
  std::atomic<std::uint64_t> switches_{0};
  std::atomic<std::uint64_t> epochs_{0};

  // Owner-only state: written between a validated acquire and the matching
  // release, i.e. under the adaptive lock itself.
  AdaptiveBackend held_ = AdaptiveBackend::kMutexee;
  bool sampled_ = false;
  std::uint64_t wait_cycles_pending_ = 0;
  std::uint64_t hold_start_cycles_ = 0;
  std::uint64_t last_sleep_calls_ = 0;
  LockSiteStats stats_;
};

}  // namespace lockin

#endif  // SRC_ADAPTIVE_ADAPTIVE_LOCK_HPP_
