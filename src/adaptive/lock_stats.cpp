#include "src/adaptive/lock_stats.hpp"

#include <algorithm>

namespace lockin {

AdaptiveEnergyParams AdaptiveEnergyParams::FromPowerParams(const PowerParams& params,
                                                           double cycles_per_second) {
  AdaptiveEnergyParams e;
  e.cycles_per_second = cycles_per_second;
  // Per-context dynamic watts: activity factor x the power of one fully
  // working core (the same decomposition PowerModel::TotalWatts uses).
  e.spin_watts = params.factor_spin_mbar * params.core_active_w_max;
  e.hold_watts = params.factor_critical * params.core_active_w_max;
  e.sleep_watts = params.sleeping_thread_w;
  // One futex round trip: sleep call (~2100 cycles) + wake call (~2700) +
  // turnaround (~7000), all executed at kernel activity (Figure 6).
  const double kernel_watts = params.factor_kernel * params.core_active_w_max;
  e.kernel_joules_per_sleep = 11800.0 / cycles_per_second * kernel_watts;
  return e;
}

double EstimateEnergyPerAcquire(double avg_wait_cycles, double avg_hold_cycles,
                                double sleep_ratio, const AdaptiveEnergyParams& params) {
  const double cps = params.cycles_per_second;
  if (cps <= 0) {
    return 0.0;
  }
  const double wait_s = std::max(0.0, avg_wait_cycles) / cps;
  const double hold_s = std::max(0.0, avg_hold_cycles) / cps;
  const double sleep = std::clamp(sleep_ratio, 0.0, 1.0);
  // A spinning waiter burns spin power for the whole wait; a sleeping one
  // pays the kernel transition once and near-zero power while blocked.
  const double wait_j = (1.0 - sleep) * wait_s * params.spin_watts +
                        sleep * (params.kernel_joules_per_sleep + wait_s * params.sleep_watts);
  return wait_j + hold_s * params.hold_watts;
}

LockSiteStats::LockSiteStats(AdaptiveEnergyParams energy, double ewma_alpha,
                             std::uint64_t contended_threshold_cycles)
    : energy_(energy),
      alpha_(std::clamp(ewma_alpha, 0.0, 1.0)),
      contended_threshold_(contended_threshold_cycles) {}

void LockSiteStats::RecordAcquire(std::uint64_t wait_cycles, std::uint64_t hold_cycles) {
  const double wait = static_cast<double>(wait_cycles);
  const double hold = static_cast<double>(hold_cycles);
  if (!ewma_seeded_) {
    wait_ewma_ = wait;
    hold_ewma_ = hold;
    ewma_seeded_ = true;
  } else {
    wait_ewma_ += alpha_ * (wait - wait_ewma_);
    hold_ewma_ += alpha_ * (hold - hold_ewma_);
  }
  ++epoch_acquires_;
  ++total_acquires_;
  ++epoch_sampled_;
  if (wait_cycles > contended_threshold_) {
    ++epoch_contended_;
  }
}

void LockSiteStats::RecordUnsampled() {
  ++epoch_acquires_;
  ++total_acquires_;
}

LockSiteSnapshot LockSiteStats::EndEpoch(std::uint64_t now_cycles,
                                         std::uint64_t epoch_sleep_calls) {
  LockSiteSnapshot snap;
  snap.epoch = ++epochs_;
  snap.acquires = epoch_acquires_;
  snap.avg_wait_cycles = wait_ewma_;
  snap.avg_hold_cycles = hold_ewma_;
  if (epoch_sampled_ > 0) {
    // Contention is judged over the *sampled* acquisitions (the only ones
    // with timings); sleeps are counted exactly by the backends.
    snap.contended_ratio =
        static_cast<double>(epoch_contended_) / static_cast<double>(epoch_sampled_);
  }
  if (epoch_acquires_ > 0) {
    snap.sleep_ratio = std::min(
        1.0, static_cast<double>(epoch_sleep_calls) / static_cast<double>(epoch_acquires_));
  }
  if (epoch_started_ && now_cycles > epoch_start_cycles_ && energy_.cycles_per_second > 0) {
    const double seconds =
        static_cast<double>(now_cycles - epoch_start_cycles_) / energy_.cycles_per_second;
    if (seconds > 0) {
      snap.acquires_per_second = static_cast<double>(epoch_acquires_) / seconds;
    }
  }
  snap.energy_per_acquire_joules =
      EstimateEnergyPerAcquire(snap.avg_wait_cycles, snap.avg_hold_cycles,
                               snap.sleep_ratio, energy_);

  epoch_acquires_ = 0;
  epoch_sampled_ = 0;
  epoch_contended_ = 0;
  epoch_start_cycles_ = now_cycles;
  epoch_started_ = true;
  last_ = snap;
  return snap;
}

}  // namespace lockin
