// Per-lock-site online profiler for the adaptive lock runtime.
//
// The paper's conclusion (section 7) is that no waiting policy wins
// everywhere: the right choice depends on how long waiters actually wait,
// how often they end up in the kernel, and what each of those outcomes
// costs in Joules. This profiler collects exactly those signals, cheaply
// and online, so the policy engine (src/adaptive/policy.hpp) can re-decide
// per epoch instead of per platform:
//
//   * acquisition rate (acquires/s) and epoch length in cycles;
//   * EWMA of the acquire wait time and of the critical-section hold time;
//   * how many acquisitions were contended, and how many went through a
//     futex sleep (reported by the backends' FutexStats at epoch end);
//   * an estimated energy-per-acquire, derived from the same calibrated
//     constants as the PowerModel (src/energy/power_model.hpp), so the
//     bandit policy can optimize the paper's TPP metric directly.
//
// Threading contract: every Record* / EndEpoch call MUST be made by the
// thread currently holding the adaptive lock (single-writer). Snapshots
// returned by EndEpoch are plain values and may be shipped anywhere.
#ifndef SRC_ADAPTIVE_LOCK_STATS_HPP_
#define SRC_ADAPTIVE_LOCK_STATS_HPP_

#include <cstdint>

#include "src/energy/power_model.hpp"

namespace lockin {

// Energy constants for the per-acquire estimate, derived from PowerParams.
// All watts are *dynamic* per-context costs (idle power is the same under
// every policy and cancels out of the comparison).
struct AdaptiveEnergyParams {
  double spin_watts = 2.66;      // one context busy-waiting (mfence pausing)
  double hold_watts = 3.47;      // the critical-section owner
  double sleep_watts = 0.11;     // kernel housekeeping for a sleeping thread
  double kernel_joules_per_sleep = 1.4e-5;  // futex sleep + wake + turnaround
  double cycles_per_second = 2.8e9;

  // Derives the constants from a PowerModel calibration: spin/hold watts
  // from the activity factors, the per-sleep energy from the paper's futex
  // latencies (sleep ~2100, wake ~2700, turnaround ~7000 cycles) run at
  // kernel activity.
  static AdaptiveEnergyParams FromPowerParams(const PowerParams& params,
                                              double cycles_per_second = 2.8e9);
  static AdaptiveEnergyParams PaperXeon() {
    return FromPowerParams(PowerParams::PaperXeon());
  }
};

// One epoch's digest, consumed by the policy engine.
struct LockSiteSnapshot {
  std::uint64_t epoch = 0;             // epochs completed so far
  std::uint64_t acquires = 0;          // acquisitions in this epoch
  double avg_wait_cycles = 0.0;        // EWMA across acquisitions
  double avg_hold_cycles = 0.0;        // EWMA across acquisitions
  double contended_ratio = 0.0;        // waited longer than a coherence hop
  double sleep_ratio = 0.0;            // futex sleeps / acquisitions (epoch)
  double acquires_per_second = 0.0;    // epoch rate
  double energy_per_acquire_joules = 0.0;  // model estimate (dynamic only)

  // The paper's throughput-per-power metric under the estimate above;
  // what the bandit policy maximizes.
  double EstimatedTpp() const {
    return energy_per_acquire_joules > 0 ? 1.0 / energy_per_acquire_joules : 0.0;
  }
};

class LockSiteStats {
 public:
  LockSiteStats() : LockSiteStats(AdaptiveEnergyParams{}) {}
  explicit LockSiteStats(AdaptiveEnergyParams energy, double ewma_alpha = 0.2,
                         std::uint64_t contended_threshold_cycles = 800);

  // Records one acquisition; called with the lock held. `wait_cycles` is the
  // time from requesting the lock to owning it, `hold_cycles` the critical
  // section length.
  void RecordAcquire(std::uint64_t wait_cycles, std::uint64_t hold_cycles);

  // Records an acquisition whose timings were not sampled (the adaptive
  // lock samples 1-in-2^k acquires to keep rdtsc off the fast path). Counts
  // toward epoch progress and rates; leaves the EWMAs untouched.
  void RecordUnsampled();

  // Acquisitions recorded since the last EndEpoch.
  std::uint64_t epoch_acquires() const { return epoch_acquires_; }

  // Closes the epoch and returns its digest. `now_cycles` is a monotonic
  // cycle timestamp; `epoch_sleep_calls` is how many futex sleeps the
  // backends performed during the epoch (delta of their FutexStats).
  LockSiteSnapshot EndEpoch(std::uint64_t now_cycles, std::uint64_t epoch_sleep_calls);

  // Most recent digest (zero-valued before the first EndEpoch).
  const LockSiteSnapshot& last_snapshot() const { return last_; }

  // Lifetime counters (diagnostics).
  std::uint64_t total_acquires() const { return total_acquires_; }

  const AdaptiveEnergyParams& energy_params() const { return energy_; }

 private:
  AdaptiveEnergyParams energy_;
  double alpha_;
  std::uint64_t contended_threshold_;

  // EWMAs persist across epochs; epoch counters reset each EndEpoch.
  double wait_ewma_ = 0.0;
  double hold_ewma_ = 0.0;
  bool ewma_seeded_ = false;

  std::uint64_t epoch_acquires_ = 0;
  std::uint64_t epoch_sampled_ = 0;
  std::uint64_t epoch_contended_ = 0;
  std::uint64_t epoch_start_cycles_ = 0;
  bool epoch_started_ = false;

  std::uint64_t total_acquires_ = 0;
  std::uint64_t epochs_ = 0;
  LockSiteSnapshot last_;
};

// Estimated dynamic energy of one acquisition under the observed profile:
// waiters burn spin power (or sleep power plus the kernel transition cost
// when they slept), the owner burns critical-section power. Exposed for the
// policy engine and tests.
double EstimateEnergyPerAcquire(double avg_wait_cycles, double avg_hold_cycles,
                                double sleep_ratio, const AdaptiveEnergyParams& params);

}  // namespace lockin

#endif  // SRC_ADAPTIVE_LOCK_STATS_HPP_
