// Unified native scenario API: one shared multi-threaded workload driver
// for every mini-system in src/systems, every registered lock, every mix.
//
// The paper's core experiment swaps lock algorithms under six unmodified
// systems ("we do not modify anything else other than the pthread locks",
// section 6). This layer is that experiment as an API: each mini-system
// adapts to the ScenarioWorkload interface (Setup once, Op per thread,
// counters), the ScenarioRegistry names the interesting system x mix points
// ("kvstore/WT", "cache/set-heavy", "minisql/neworder", ...), and one
// shared driver -- the native harness's machinery (cache-line-aligned
// worker slots, batched latency recording, stop-flag cadence, zero per-op
// allocation in the driver itself) -- runs any scenario under any lock
// name, including ADAPTIVE. Consumers: examples/scenario_runner (CLI),
// examples/kvstore_app and examples/cache_server (thin wrappers), fig13's
// native section, and bench/bench_native_perf's per-scenario section in
// BENCH_native.json. New systems plug in by registering a scenario; they
// inherit the driver, the CLI, the bench trajectory and the tests.
//
// (The adapter interface is the "SystemWorkload" of the scenario layer but
// is named ScenarioWorkload: lockin::SystemWorkload already names the
// simulator's Table 3 profiles in src/sim/sysmodel.hpp, and several benches
// include both layers.)
#ifndef SRC_SYSTEMS_WORKLOAD_API_HPP_
#define SRC_SYSTEMS_WORKLOAD_API_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/energy/energy_meter.hpp"
#include "src/locks/lock_api.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/platform/rng.hpp"
#include "src/stats/histogram.hpp"
#include "src/systems/common.hpp"

namespace lockin {

// Which energy meter the scenario driver attaches to a run.
enum class MeterChoice {
  kAuto,   // RAPL when readable, the calibrated model otherwise (default)
  kModel,  // force the model meter (deterministic availability, e.g. tests)
  kOff,    // no meter; result.energy stays zero
};

// --- FailSafe: per-op deadlines on the handle tier ---------------------------

// Thrown by a DeadlineHandle whose armed acquisition missed its deadline;
// the scenario driver catches it and sheds (or retries) the op. Scenario
// Op() bodies never see it unless they install deadlines themselves.
class OpShedError : public std::runtime_error {
 public:
  explicit OpShedError(const std::string& what) : std::runtime_error(what) {}
};

// Arms a one-shot deadline for the calling thread: the next lock() through
// a DeadlineHandle converts to AcquireFor(remaining) and throws OpShedError
// on expiry. Consumed by that first acquisition (or by Disarm). The driver
// arms this around each op when ScenarioConfig::op_deadline_ns > 0.
void ArmOpDeadline(std::uint64_t timeout_ns);
void DisarmOpDeadline();

// Wraps a handle so lock() honors the calling thread's armed op deadline.
// unlock/try_lock/AcquireFor forward untouched.
std::unique_ptr<LockHandle> WrapDeadline(std::unique_ptr<LockHandle> inner);

// One scenario run: which lock, how many threads, how long, which mix.
// Scenario-agnostic; each scenario maps the generic knobs onto its own
// operation mix and key space (see the registry descriptions).
struct ScenarioConfig {
  std::string lock_name = "MUTEX";
  int threads = 4;

  // Fixed-op mode (the default): every thread performs exactly
  // ops_per_thread operations, so a seeded single-threaded run is
  // deterministic (the registry tests rely on this). When duration_ms > 0
  // the run is time-bounded instead: workers loop until the stop flag,
  // polled every stop_check_every ops (one shared cache line kept out of
  // the per-op path, like the lock harness), and ops_per_thread is ignored.
  int ops_per_thread = 40000;
  std::uint64_t duration_ms = 0;
  std::uint32_t stop_check_every = 32;

  // Mix knobs. read_percent < 0 keeps the scenario's registered default
  // mix; key_space = 0 keeps its default key space / data-set size.
  int read_percent = -1;
  std::uint64_t key_space = 0;

  // --- ShardCombine ---------------------------------------------------------
  // shards = 0 keeps the scenario's registered default shard count (1 for
  // the single-lock paper shapes, 16 for cache, 32 for graph, 8 for
  // nosql/hash). combine routes exclusive shard ops through the
  // flat-combining CombinerChannel; rw takes per-shard reader-writer locks
  // (shared on read paths). combine and rw are mutually exclusive --
  // ShardedMap throws std::invalid_argument at Setup. Scenarios whose
  // system under test is not shardable (rwkv, cowlist) ignore all three.
  std::uint32_t shards = 0;
  bool combine = false;
  bool rw = false;

  std::uint64_t seed = 1;
  std::uint32_t yield_after = 256;  // spinlock oversubscription escape hatch
  bool record_latency = true;       // batched per-op rdtsc histogram

  // --- LockScope observability ----------------------------------------------
  // trace: give every worker a per-thread event ring in the process
  // TraceSession and wrap the scenario's locks in TracedHandle, so lock
  // waits/holds, futex sleeps and adaptive epoch switches land in the
  // exported timeline. Off by default: untraced runs construct no wrapper
  // and emit nothing.
  bool trace = false;
  std::uint32_t trace_buffer_events = TraceBuffer::kDefaultCapacity;
  // lockdep: enable the LockLint lock-order detector for the run and wrap
  // the scenario's locks in TracedHandle (the acquire/release event source;
  // see src/analysis/lockdep.hpp). Independent of `trace`: lockdep needs
  // the wrappers' events but not the per-thread rings.
  bool lockdep = false;
  // Energy accounting for the run phase. kAuto follows the meter fallback
  // chain (RAPL -> model); the model integrates the run's worker contexts
  // as active. result.energy/Tpp() report the outcome.
  MeterChoice meter = MeterChoice::kAuto;
  // When > 0, a background sampler thread snapshots the meter every
  // energy_sample_ms into result.energy_series (and, when tracing, a
  // Perfetto counter track of watts).
  std::uint32_t energy_sample_ms = 0;

  // --- FailSafe robustness --------------------------------------------------
  // failpoints: a failpoint SPEC (src/platform/failpoint.hpp) armed for the
  // whole run -- setup included -- and disarmed after, seeded with `seed`.
  // Empty leaves whatever global/env arming is in effect untouched.
  std::string failpoints;
  // op_deadline_ns > 0 bounds each op's *first* lock acquisition: the
  // scenario's locks are wrapped in a DeadlineHandle whose lock() consumes
  // a per-op deadline armed by the driver, waits with AcquireFor (timed
  // futex / bounded spin), and throws OpShedError on expiry. Nested
  // acquisitions within the op block normally -- once past the entry lock
  // an op must finish, or it would tear system state. The driver retries a
  // shed op up to op_retries times with exponential backoff, then abandons
  // it (ScenarioResult::ops_shed).
  std::uint64_t op_deadline_ns = 0;
  std::uint32_t op_retries = 3;
  // watchdog_ms > 0 starts a stall watchdog over the run phase: a worker
  // whose progress counter does not move for watchdog_ms gets reported to
  // stderr (with the lockdep held-lock snapshot and failpoint status).
  // With watchdog_abort the process then exits with code 3 -- failing the
  // run cleanly instead of hanging ctest/CI forever; without it the stall
  // is counted (ScenarioResult::watchdog_stalls) and watching continues.
  std::uint32_t watchdog_ms = 0;
  bool watchdog_abort = true;
  // Runner hook invoked on every detected stall before any abort: flush
  // partial traces/metrics so the evidence survives the _Exit.
  std::function<void()> on_stall;
  // External cancellation (scenario_runner's SIGINT handler): polled by
  // fixed-op workers at the stop_check_every cadence and by the duration
  // pacer, ending the run early but cleanly. Null = never.
  const std::atomic<bool>* external_stop = nullptr;

  // The lock factory every scenario builds its system with (the paper's
  // "swap the pthread locks" point). Throws std::invalid_argument for
  // unknown names, at Setup time. Traced runs wrap every lock the scenario
  // builds in a TracedHandle; deadline runs add a DeadlineHandle on the
  // outside (so its timed waits are traced like any other acquisition).
  LockFactory MakeLockFactory() const {
    LockFactory factory = NamedLockFactory(lock_name, yield_after);
    const bool traced = trace || lockdep;
    const bool deadline = op_deadline_ns > 0;
    if (!traced && !deadline) {
      return factory;
    }
    return [factory = std::move(factory), traced, deadline] {
      std::unique_ptr<LockHandle> handle = factory();
      if (traced) {
        handle = WrapTraced(std::move(handle));
      }
      if (deadline) {
        handle = WrapDeadline(std::move(handle));
      }
      return handle;
    };
  }
};

struct ScenarioMetric {
  std::string name;
  double value = 0;
};

struct ScenarioResult {
  std::string scenario;
  std::string lock_name;
  int threads = 0;
  double seconds = 0;
  std::uint64_t total_ops = 0;
  double ops_per_s = 0;
  LatencyHistogram op_latency_cycles;  // empty unless config.record_latency
  // Summed per-thread counters (in CounterNames() order) followed by the
  // scenario's system-level metrics (sizes, evictions, WAL records, ...).
  std::vector<ScenarioMetric> metrics;

  // FailSafe accounting (zero unless the matching config knob was set).
  std::uint64_t ops_shed = 0;      // ops abandoned after deadline + retries
  std::uint64_t shed_retries = 0;  // deadline expiries that were retried
  std::uint64_t watchdog_stalls = 0;  // stalls a non-aborting watchdog saw

  // Energy over the run phase (setup excluded). Zero when meter == kOff.
  // Kept out of `metrics` on purpose: the metrics vector is the
  // deterministic, seed-stable part of the result, and energy is wall-clock
  // dependent by nature.
  EnergySample energy;
  std::string meter_name;                  // "rapl", "model", "" when off
  std::vector<EnergyPoint> energy_series;  // non-empty when energy_sample_ms > 0

  double MopsPerS() const { return ops_per_s / 1e6; }
  // Throughput-per-power (ops/Joule), the paper's efficiency metric; 0
  // without energy data.
  double Tpp() const { return energy.Tpp(static_cast<double>(total_ops)); }
  double AvgWatts() const { return energy.average_watts(); }
  // Named metric lookup; `fallback` when the scenario does not report it.
  double MetricOr(const std::string& name, double fallback = 0) const;
};

// Per-thread state the driver hands to ScenarioWorkload::Op. Lives inside a
// cache-line-aligned worker slot: nothing here is written by another thread.
struct ThreadContext {
  explicit ThreadContext(std::uint64_t rng_seed) : rng(rng_seed) {}

  int thread_index = 0;
  std::uint64_t op_index = 0;  // ops this thread has completed so far
  Xoshiro256 rng;
  // One slot per CounterNames() entry; summed across threads after the run.
  std::uint64_t* counters = nullptr;
  // Scratch buffers Op implementations reuse so key/value formatting stops
  // allocating once the strings' capacity is warm.
  std::string key;
  std::string value;
};

// What a mini-system implements to become runnable by the shared driver.
class ScenarioWorkload {
 public:
  // Upper bound on CounterNames().size(): the driver keeps the counters
  // inline in the per-thread slot so incrementing one never allocates or
  // shares a cache line.
  static constexpr std::size_t kMaxCounters = 8;

  virtual ~ScenarioWorkload() = default;

  // Builds the system (locks via config.MakeLockFactory()) and preloads it.
  // Called once, single-threaded, before the workers start; must leave the
  // workload ready for config.threads concurrent Op callers.
  virtual void Setup(const ScenarioConfig& config) = 0;

  // Names of the per-thread counters, at most kMaxCounters. The order fixes
  // the ThreadContext::counters indices.
  virtual std::vector<std::string> CounterNames() const { return {}; }

  // One operation, called concurrently from every worker thread. The driver
  // wraps it with op counting and (optionally) latency recording.
  virtual void Op(ThreadContext& ctx) = 0;

  // Post-run, single-threaded: appends system-level metrics after the
  // summed thread counters.
  virtual void AddSystemMetrics(std::vector<ScenarioMetric>* out) const { (void)out; }
};

// Runs `workload` under `config` on the shared driver. `scenario_name` is
// carried into the result for labeling only.
ScenarioResult RunScenario(ScenarioWorkload& workload, const ScenarioConfig& config,
                           const std::string& scenario_name = "");

// --- Scenario registry -------------------------------------------------------

struct ScenarioInfo {
  std::string name;         // "kvstore/WT"
  std::string system;       // mini-system / paper Table 3 target
  std::string description;  // one line, shown by scenario_runner --list
};

class ScenarioRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ScenarioWorkload>()>;

  // The process-wide registry, populated with every built-in scenario on
  // first use. Registration is not thread-safe; register at startup.
  static ScenarioRegistry& Instance();

  void Register(ScenarioInfo info, Factory factory);

  std::vector<ScenarioInfo> List() const;  // registration order
  const ScenarioInfo* Find(const std::string& name) const;  // nullptr unknown
  std::unique_ptr<ScenarioWorkload> Make(const std::string& name) const;  // nullptr unknown

 private:
  struct Entry {
    ScenarioInfo info;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

// Conveniences over Instance(), mirroring the lock registry's unknown-name
// contract (src/locks/lock_registry.hpp): MakeScenario returns nullptr for
// unknown names, MakeScenarioOrThrow raises std::invalid_argument naming
// the offender.
std::vector<ScenarioInfo> RegisteredScenarios();
std::unique_ptr<ScenarioWorkload> MakeScenario(const std::string& name);
std::unique_ptr<ScenarioWorkload> MakeScenarioOrThrow(const std::string& name);

// MakeScenarioOrThrow + RunScenario in one call.
ScenarioResult RunScenarioByName(const std::string& name, const ScenarioConfig& config);

// Approximate Zipf key pick shared by the scenario mixes: 80% of accesses
// hit 20% of the key space, recursively. (Migrated from cache_workload,
// where it was SkewedCacheKey.)
std::uint64_t SkewedKey(Xoshiro256* rng, std::uint64_t space);

}  // namespace lockin

#endif  // SRC_SYSTEMS_WORKLOAD_API_HPP_
