// ShardCombine: reusable sharding + flat-combining layer for the
// mini-systems.
//
// Generalizes PR4's bespoke MemCache shard machinery into two composable
// pieces every system shares:
//
//   * ShardedMap<Table>: hash-once routing over cache-line-aligned shard
//     headers, each holding one lock (a registry LockHandle by default, a
//     futex RwLock in `rw` mode) and one Table partition. Callers hash a
//     key exactly once, route with IndexFor (hash % shards -- the mapping
//     MemCache's tests pin), and run a closure under the shard's lock.
//
//   * CombinerChannel: a flat-combining adapter for hot shards where lock
//     handoff cost dominates the critical section (Synch-Framework's
//     SimQueue idiom, SNIPPETS.md Snippet 3). Threads publish their
//     operation into a claimed slot; whoever wins try_lock becomes the
//     combiner and executes every pending operation in one lock hold, so a
//     contended lock changes hands once per *batch* instead of once per op.
//
// Three modes per ShardedMap, chosen at construction (and threaded through
// ScenarioConfig{shards, combine, rw} by the scenario layer):
//   exclusive (default) - HandleGuard over the named LockHandle
//   combine             - exclusive ops route through the CombinerChannel
//   rw                  - RwLock per shard; WithShardShared takes it shared
// combine and rw are mutually exclusive (a combiner pass needs exclusive
// ownership; std::invalid_argument at construction).
//
// The Table member is deliberately *not* LL_GUARDED_BY-annotated: which
// capability guards it varies at run time across the three modes, and
// combined closures execute on whichever thread won the lock -- both beyond
// the static analysis. The API shape is the discipline instead: the only
// access paths are WithShard*/ForEachShard (locked) and UnsafeShardAt
// (documented quiescent-only).
#ifndef SRC_SYSTEMS_SHARDED_HPP_
#define SRC_SYSTEMS_SHARDED_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "src/locks/lock_api.hpp"
#include "src/locks/rwlock.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/systems/common.hpp"

namespace lockin {

// Options shared by every ShardedMap consumer; systems embed it in their
// own Config/Options structs and forward it here.
struct ShardOptions {
  std::size_t shards = 1;
  bool combine = false;
  bool rw = false;
};

// --- Flat combining ----------------------------------------------------------

// Publication slots + combiner pass over one lock. Requests live on the
// publisher's stack; a slot holds a pointer only between publication and
// the combiner pass that consumes it. Protocol (all TSan-clean release/
// acquire pairs):
//
//   publisher: CAS-claim a free slot (release: publishes run/ctx), then
//              spin on done (acquire) while retrying try_lock; whoever
//              acquires the lock drains every published request.
//   combiner:  for each occupied slot: clear the slot *first* (the request
//              dies with the publisher's frame the moment done is set),
//              run the closure, release-store done.
//
// Publishers never sleep, so a request can never be stranded: if no
// combiner picks it up, the publisher's own try_lock eventually wins and it
// drains itself. When every slot is taken the op falls back to a plain
// lock() hold (which also drains, keeping the channel from starving).
//
// Combined closures execute on whichever thread holds the lock: they must
// not acquire other locks (lockdep would see phantom orderings and a shed
// exception would surface on the wrong thread) and must not throw.
class CombinerChannel {
 public:
  static constexpr std::size_t kSlots = 8;

  CombinerChannel() = default;
  CombinerChannel(const CombinerChannel&) = delete;
  CombinerChannel& operator=(const CombinerChannel&) = delete;

  template <typename Fn>
  void Execute(LockHandle& lock, Fn&& fn) {
    Request request;
    request.run = [](void* ctx) { (*static_cast<std::remove_reference_t<Fn>*>(ctx))(); };
    request.ctx = &fn;

    Slot* claimed = nullptr;
    // Spread claim attempts so concurrent publishers do not all hammer
    // slot 0's line; the probe start only needs to differ per thread.
    static thread_local const std::size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    for (std::size_t probe = 0; probe < kSlots; ++probe) {
      Slot& slot = slots_[(start + probe) % kSlots];
      Request* expected = nullptr;
      if (slot.request.compare_exchange_strong(expected, &request,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
        claimed = &slot;
        break;
      }
    }
    if (claimed == nullptr) {
      // Channel saturated: plain lock hold, draining on the way so the
      // publishers parked behind the full slots make progress too.
      fallback_ops_.fetch_add(1, std::memory_order_relaxed);
      HandleGuard guard(lock);
      fn();
      Drain(&request);
      return;
    }

    std::uint32_t spins = 0;
    for (;;) {
      if (request.done.load(std::memory_order_acquire) != 0) {
        return;  // a combiner ran it for us
      }
      if (lock.try_lock()) {
        Drain(&request);
        lock.unlock();
        // Our request was published before try_lock succeeded, so the
        // drain above executed it.
        return;
      }
      // Bounded spin with a yield escape: on oversubscribed hosts the
      // current combiner may need our timeslice to finish the pass.
      if (++spins % 64 == 0) {
        SpinPause(PauseKind::kYield);
      } else {
        SpinPause(PauseKind::kPause);
      }
    }
  }

  // Diagnostics (tests / metrics). combined_ops counts requests executed by
  // a thread other than their publisher -- the combining the channel exists
  // for; fallback_ops counts saturated-channel plain holds.
  std::uint64_t combined_ops() const { return combined_ops_.load(std::memory_order_relaxed); }
  std::uint64_t fallback_ops() const { return fallback_ops_.load(std::memory_order_relaxed); }

 private:
  struct Request {
    void (*run)(void*) = nullptr;
    void* ctx = nullptr;
    std::atomic<std::uint32_t> done{0};
  };
  struct alignas(kCacheLineSize) Slot {
    std::atomic<Request*> request{nullptr};
  };

  // Called with `lock` held. `self` is the caller's own request (nullptr on
  // the fallback path), excluded from the combined_ops count.
  void Drain(const Request* self) {
    for (Slot& slot : slots_) {
      Request* request = slot.request.load(std::memory_order_acquire);
      if (request == nullptr) {
        continue;
      }
      // Free the slot before signaling: once done is set the publisher's
      // frame (and the request in it) can die at any moment.
      slot.request.store(nullptr, std::memory_order_relaxed);
      request->run(request->ctx);
      if (request != self) {
        combined_ops_.fetch_add(1, std::memory_order_relaxed);
      }
      request->done.store(1, std::memory_order_release);
    }
  }

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> combined_ops_{0};
  std::atomic<std::uint64_t> fallback_ops_{0};
};

// --- Sharded router ----------------------------------------------------------

template <typename Table>
class ShardedMap {
 public:
  ShardedMap(const LockFactory& make_lock, ShardOptions options) : options_(options) {
    if (options_.shards == 0) {
      options_.shards = 1;
    }
    if (options_.combine && options_.rw) {
      throw std::invalid_argument(
          "ShardedMap: combine and rw are mutually exclusive (a combiner pass "
          "needs exclusive shard ownership)");
    }
    shards_ = std::make_unique<Shard[]>(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
      shards_[i].lock = make_lock();
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  std::size_t shard_count() const { return options_.shards; }
  bool combine() const { return options_.combine; }
  bool rw() const { return options_.rw; }

  // hash % shards: the stable routing MemCache's tests pin. Callers hash
  // once and reuse the value for routing and in-shard probing.
  std::size_t IndexFor(std::uint64_t hash) const { return hash % options_.shards; }

  // splitmix64 finalizer for systems whose keys are small dense integers
  // (KvStore, NosqlDb): without mixing, sequential keys would stripe
  // adjacent keys across shards but leave structured workloads (e.g.
  // every-other-key preloads) lumpy under non-power-of-two shard counts.
  static std::uint64_t MixHash(std::uint64_t key) {
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
  }

  // Exclusive access to the shard owning `hash`. Returns fn's result.
  template <typename Fn>
  std::invoke_result_t<Fn&, Table&> WithShard(std::uint64_t hash, Fn&& fn) {
    return WithShardAt(IndexFor(hash), std::forward<Fn>(fn));
  }

  template <typename Fn>
  std::invoke_result_t<Fn&, Table&> WithShardAt(std::size_t index, Fn&& fn) {
    Shard& shard = shards_[index];
    using R = std::invoke_result_t<Fn&, Table&>;
    if (options_.rw) {
      std::lock_guard<RwLock> guard(shard.rw);
      return fn(shard.table);
    }
    if (!options_.combine) {
      HandleGuard guard(*shard.lock);
      return fn(shard.table);
    }
    if constexpr (std::is_void_v<R>) {
      shard.channel.Execute(*shard.lock, [&fn, &shard] { fn(shard.table); });
    } else {
      // Non-void combined ops park the result on the publisher's stack; the
      // done handshake orders the combiner's write before our read.
      std::optional<R> result;
      shard.channel.Execute(*shard.lock,
                            [&fn, &shard, &result] { result.emplace(fn(shard.table)); });
      return std::move(*result);
    }
  }

  // Read access to the shard owning `hash`: shared (SharedGuard) in rw
  // mode, an exclusive hold otherwise. The const Table& keeps logically
  // read-only closures honest under the shared guard.
  template <typename Fn>
  std::invoke_result_t<Fn&, const Table&> WithShardShared(std::uint64_t hash, Fn&& fn) {
    return WithShardSharedAt(IndexFor(hash), std::forward<Fn>(fn));
  }

  template <typename Fn>
  std::invoke_result_t<Fn&, const Table&> WithShardSharedAt(std::size_t index, Fn&& fn) {
    Shard& shard = shards_[index];
    if (options_.rw) {
      SharedGuard guard(shard.rw);
      return fn(static_cast<const Table&>(shard.table));
    }
    return WithShardAt(index,
                       [&fn](Table& table) { return fn(static_cast<const Table&>(table)); });
  }

  // Exclusive visit of every shard in index order, one lock at a time
  // (aggregates: sizes, counts, invariant checks). Not a consistent global
  // snapshot -- same contract the per-region Count() paths had before.
  template <typename Fn>
  void ForEachShard(Fn&& fn) {
    for (std::size_t i = 0; i < options_.shards; ++i) {
      WithShardAt(i, fn);
    }
  }

  // Quiescent access (single-threaded setup/recovery/tests only).
  Table& UnsafeShardAt(std::size_t index) { return shards_[index].table; }

  // Combining diagnostics summed over shards (zeros unless combine mode).
  std::uint64_t combined_ops() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < options_.shards; ++i) {
      total += shards_[i].channel.combined_ops();
    }
    return total;
  }
  std::uint64_t combine_fallback_ops() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < options_.shards; ++i) {
      total += shards_[i].channel.fallback_ops();
    }
    return total;
  }

 private:
  // Cache-line aligned: adjacent shards' locks and hot table headers are
  // written by different threads on every op; sharing a line would
  // reintroduce exactly the false sharing sharding exists to remove.
  struct alignas(kCacheLineSize) Shard {
    std::unique_ptr<LockHandle> lock;
    RwLock rw;               // used in rw mode only
    CombinerChannel channel; // used in combine mode only
    Table table;
  };

  ShardOptions options_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_SHARDED_HPP_
