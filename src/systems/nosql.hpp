// Kyoto Cabinet-style NoSQL store with three database backends.
//
// The paper stresses Kyoto's CACHE (in-memory hash with whole-DB locking),
// HT DB (hash database), and B-TREE versions (Table 3). The shared trait
// the paper exploits: Kyoto serializes most operations behind very few
// locks with *short* critical sections, which is why swapping MUTEX out
// produces the paper's largest wins (1.5-1.85x, Figures 13-14).
#ifndef SRC_SYSTEMS_NOSQL_HPP_
#define SRC_SYSTEMS_NOSQL_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/platform/thread_annotations.hpp"
#include "src/systems/btree.hpp"
#include "src/systems/common.hpp"

namespace lockin {

// Common record interface over the three backends.
class NosqlDb {
 public:
  virtual ~NosqlDb() = default;

  virtual void Set(std::uint64_t key, std::string value) = 0;
  virtual bool Get(std::uint64_t key, std::string* out) = 0;
  virtual bool Remove(std::uint64_t key) = 0;
  // Read-modify-write: appends to the record (Kyoto's `append`).
  virtual void Append(std::uint64_t key, const std::string& suffix) = 0;
  virtual std::size_t Count() = 0;

  virtual const char* backend() const = 0;
};

// CACHE: one hash map behind a single whole-database lock.
class CacheDb final : public NosqlDb {
 public:
  explicit CacheDb(const LockFactory& make_lock) : lock_(make_lock()) {}

  void Set(std::uint64_t key, std::string value) override;
  bool Get(std::uint64_t key, std::string* out) override;
  bool Remove(std::uint64_t key) override;
  void Append(std::uint64_t key, const std::string& suffix) override;
  std::size_t Count() override;
  const char* backend() const override { return "CACHE"; }

 private:
  std::unique_ptr<LockHandle> lock_;
  std::unordered_map<std::uint64_t, std::string> map_ LL_GUARDED_BY(*lock_);
};

// HT DB: hash database with a small number of bucket-region locks (Kyoto
// uses 8-ish mutexes over bucket regions).
class HashDb final : public NosqlDb {
 public:
  HashDb(const LockFactory& make_lock, std::size_t regions = 8);

  void Set(std::uint64_t key, std::string value) override;
  bool Get(std::uint64_t key, std::string* out) override;
  bool Remove(std::uint64_t key) override;
  void Append(std::uint64_t key, const std::string& suffix) override;
  std::size_t Count() override;
  const char* backend() const override { return "HT"; }

 private:
  struct Region {
    std::unique_ptr<LockHandle> lock;
    std::unordered_map<std::uint64_t, std::string> map LL_GUARDED_BY(*lock);
  };
  Region& RegionFor(std::uint64_t key);

  std::vector<Region> regions_;
};

// B-TREE: B+-tree behind a single lock (Kyoto's TreeDB serializes through
// one mutex protecting its page cache).
class TreeDb final : public NosqlDb {
 public:
  explicit TreeDb(const LockFactory& make_lock) : lock_(make_lock()) {}

  void Set(std::uint64_t key, std::string value) override;
  bool Get(std::uint64_t key, std::string* out) override;
  bool Remove(std::uint64_t key) override;
  void Append(std::uint64_t key, const std::string& suffix) override;
  std::size_t Count() override;
  const char* backend() const override { return "B-TREE"; }

 private:
  std::unique_ptr<LockHandle> lock_;
  BPlusTree tree_ LL_GUARDED_BY(*lock_);
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_NOSQL_HPP_
