// Kyoto Cabinet-style NoSQL store with three database backends.
//
// The paper stresses Kyoto's CACHE (in-memory hash with whole-DB locking),
// HT DB (hash database), and B-TREE versions (Table 3). The shared trait
// the paper exploits: Kyoto serializes most operations behind very few
// locks with *short* critical sections, which is why swapping MUTEX out
// produces the paper's largest wins (1.5-1.85x, Figures 13-14).
//
// ShardCombine: all three backends sit on the same ShardedMap router now.
// CACHE and B-TREE default to one shard (whole-DB locking, the paper
// shape); HT keeps its 8 bucket regions as 8 shards. ShardOptions opens
// the scale path uniformly: more shards, flat-combined hot shards
// (combine), shared-lock Gets (rw).
#ifndef SRC_SYSTEMS_NOSQL_HPP_
#define SRC_SYSTEMS_NOSQL_HPP_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/systems/btree.hpp"
#include "src/systems/common.hpp"
#include "src/systems/sharded.hpp"

namespace lockin {

// Common record interface over the three backends.
class NosqlDb {
 public:
  virtual ~NosqlDb() = default;

  virtual void Set(std::uint64_t key, std::string value) = 0;
  virtual bool Get(std::uint64_t key, std::string* out) = 0;
  virtual bool Remove(std::uint64_t key) = 0;
  // Read-modify-write: appends to the record (Kyoto's `append`).
  virtual void Append(std::uint64_t key, const std::string& suffix) = 0;
  virtual std::size_t Count() = 0;

  virtual const char* backend() const = 0;
};

// CACHE: hash map(s) behind whole-DB locking (one shard by default).
class CacheDb final : public NosqlDb {
 public:
  explicit CacheDb(const LockFactory& make_lock, ShardOptions options = {})
      : shards_(make_lock, options) {}

  void Set(std::uint64_t key, std::string value) override;
  bool Get(std::uint64_t key, std::string* out) override;
  bool Remove(std::uint64_t key) override;
  void Append(std::uint64_t key, const std::string& suffix) override;
  std::size_t Count() override;
  const char* backend() const override { return "CACHE"; }

 private:
  using Map = std::unordered_map<std::uint64_t, std::string>;
  ShardedMap<Map> shards_;
};

// HT DB: hash database with a small number of bucket-region locks (Kyoto
// uses 8-ish mutexes over bucket regions) -- i.e. 8 shards by default.
class HashDb final : public NosqlDb {
 public:
  explicit HashDb(const LockFactory& make_lock, ShardOptions options = ShardOptions{8, false, false})
      : shards_(make_lock, options) {}
  // Legacy region-count constructor (pre-ShardCombine callers).
  HashDb(const LockFactory& make_lock, std::size_t regions)
      : HashDb(make_lock, ShardOptions{regions, false, false}) {}

  void Set(std::uint64_t key, std::string value) override;
  bool Get(std::uint64_t key, std::string* out) override;
  bool Remove(std::uint64_t key) override;
  void Append(std::uint64_t key, const std::string& suffix) override;
  std::size_t Count() override;
  const char* backend() const override { return "HT"; }

 private:
  using Map = std::unordered_map<std::uint64_t, std::string>;
  ShardedMap<Map> shards_;
};

// B-TREE: B+-tree partitions behind whole-DB locking by default (Kyoto's
// TreeDB serializes through one mutex protecting its page cache).
class TreeDb final : public NosqlDb {
 public:
  explicit TreeDb(const LockFactory& make_lock, ShardOptions options = {})
      : shards_(make_lock, options) {}

  void Set(std::uint64_t key, std::string value) override;
  bool Get(std::uint64_t key, std::string* out) override;
  bool Remove(std::uint64_t key) override;
  void Append(std::uint64_t key, const std::string& suffix) override;
  std::size_t Count() override;
  const char* backend() const override { return "B-TREE"; }

 private:
  ShardedMap<BPlusTree> shards_;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_NOSQL_HPP_
