// Shared plumbing for the mini-systems.
//
// Every system takes a LockFactory so benchmarks and tests can swap the
// lock algorithm without touching system code -- the paper's experiment
// ("we do not modify anything else other than the pthread locks and
// conditionals in these systems", section 6).
#ifndef SRC_SYSTEMS_COMMON_HPP_
#define SRC_SYSTEMS_COMMON_HPP_

#include <functional>
#include <memory>
#include <string>

#include "src/locks/lock_api.hpp"
#include "src/locks/lock_registry.hpp"

namespace lockin {

using LockFactory = std::function<std::unique_ptr<LockHandle>()>;

// Factory for a registered lock name with default options. On hosts with
// fewer cores than threads, spinlocks yield after a bounded number of spins
// so tests cannot livelock (see SpinConfig::yield_after). Unknown names
// raise std::invalid_argument at system construction (the registry's
// throwing contract) instead of handing the system a null lock.
inline LockFactory NamedLockFactory(const std::string& name, std::uint32_t yield_after = 1024) {
  return [name, yield_after] {
    LockBuildOptions options;
    options.spin.yield_after = yield_after;
    return MakeLockOrThrow(name, options);
  };
}

}  // namespace lockin

#endif  // SRC_SYSTEMS_COMMON_HPP_
