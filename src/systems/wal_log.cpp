#include "src/systems/wal_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/platform/failpoint.hpp"

namespace lockin {
namespace {

constexpr std::size_t kHeaderSize = 8;  // u32 len + u32 crc

std::uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreLe32(unsigned char* p, std::uint32_t value) {
  p[0] = static_cast<unsigned char>(value);
  p[1] = static_cast<unsigned char>(value >> 8);
  p[2] = static_cast<unsigned char>(value >> 16);
  p[3] = static_cast<unsigned char>(value >> 24);
}

void WriteAllAt(int fd, const unsigned char* data, std::size_t size,
                std::uint64_t offset, const char* path) {
  while (size > 0) {
    const ssize_t written =
        pwrite(fd, data, size, static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WalIoError(std::string("wal write failed for ") + path + ": " +
                       std::strerror(errno));
    }
    data += written;
    size -= static_cast<std::size_t>(written);
    offset += static_cast<std::uint64_t>(written);
  }
}

}  // namespace

std::uint32_t WalLog::Crc32(std::string_view data) {
  // IEEE CRC32 (reflected, poly 0xEDB88320), nibble-at-a-time: small table,
  // fast enough for the record sizes the systems write.
  static constexpr std::uint32_t kNibbleTable[16] = {
      0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac, 0x76dc4190, 0x6b6b51f4,
      0x4db26158, 0x5005713c, 0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
      0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
  std::uint32_t crc = 0xffffffffu;
  for (const char c : data) {
    crc ^= static_cast<unsigned char>(c);
    crc = (crc >> 4) ^ kNibbleTable[crc & 0x0f];
    crc = (crc >> 4) ^ kNibbleTable[crc & 0x0f];
  }
  return crc ^ 0xffffffffu;
}

WalLog::WalLog(std::string path) : path_(std::move(path)) {
  fd_ = open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw WalIoError("wal open failed for " + path_ + ": " + std::strerror(errno));
  }
  const off_t end = lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    close(fd_);
    fd_ = -1;
    throw WalIoError("wal seek failed for " + path_ + ": " + std::strerror(errno));
  }
  offset_ = static_cast<std::uint64_t>(end);
}

WalLog::~WalLog() {
  if (fd_ >= 0) {
    close(fd_);
  }
}

void WalLog::Append(std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw WalIoError("wal record exceeds kMaxPayload");
  }
  std::vector<unsigned char> record(kHeaderSize + payload.size());
  StoreLe32(record.data(), static_cast<std::uint32_t>(payload.size()));
  StoreLe32(record.data() + 4, Crc32(payload));
  std::memcpy(record.data() + kHeaderSize, payload.data(), payload.size());

  if (FailpointFired(FailpointId::kWalAppend)) {
    // Simulated kill mid-write. Cycle through the three torn-tail shapes
    // deterministically (by fires so far, which the snapshot exposes):
    //   0: partial header -- recovery must ignore a headerless stub
    //   1: full header, partial payload -- length says more than exists
    //   2: full-length record with a flipped payload byte -- CRC mismatch
    std::uint64_t fires = 0;
    for (const FailpointStatus& status : FailpointsSnapshot()) {
      if (status.name == std::string_view(FailpointName(FailpointId::kWalAppend))) {
        fires = status.fires;
      }
    }
    const std::uint64_t shape = (fires - 1) % 3;
    std::size_t torn_size = record.size();
    if (shape == 0) {
      torn_size = kHeaderSize / 2;
    } else if (shape == 1 && !payload.empty()) {
      torn_size = kHeaderSize + payload.size() / 2;
    } else if (!payload.empty()) {
      record[kHeaderSize + payload.size() / 2] ^= 0x40;
    } else {
      record[4] ^= 0x40;  // empty payload: corrupt the stored CRC instead
    }
    WriteAllAt(fd_, record.data(), torn_size, offset_, path_.c_str());
    throw WalCrashInjected("wal/append failpoint: torn write at offset " +
                           std::to_string(offset_));
  }

  WriteAllAt(fd_, record.data(), record.size(), offset_, path_.c_str());

  if (FailpointFired(FailpointId::kWalFlush)) {
    // Kill after the record fully hit the file: recovery must keep it.
    throw WalCrashInjected("wal/flush failpoint: crash after append at offset " +
                           std::to_string(offset_));
  }

  offset_ += record.size();
  ++appended_;
}

WalLog::RecoverResult WalLog::Recover(std::vector<std::string>* records) {
  RecoverResult result;
  const off_t end = lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    throw WalIoError("wal seek failed for " + path_ + ": " + std::strerror(errno));
  }
  const std::uint64_t size = static_cast<std::uint64_t>(end);
  std::vector<unsigned char> contents(size);
  std::uint64_t read_off = 0;
  while (read_off < size) {
    const ssize_t got = pread(fd_, contents.data() + read_off, size - read_off,
                              static_cast<off_t>(read_off));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WalIoError("wal read failed for " + path_ + ": " + std::strerror(errno));
    }
    if (got == 0) {
      break;  // file shrank underneath us; treat the rest as missing
    }
    read_off += static_cast<std::uint64_t>(got);
  }

  std::uint64_t valid_end = 0;
  while (valid_end + kHeaderSize <= read_off) {
    const std::uint32_t len = LoadLe32(contents.data() + valid_end);
    const std::uint32_t crc = LoadLe32(contents.data() + valid_end + 4);
    if (len > kMaxPayload || valid_end + kHeaderSize + len > read_off) {
      break;  // garbage length or truncated payload
    }
    const std::string_view payload(
        reinterpret_cast<const char*>(contents.data() + valid_end + kHeaderSize), len);
    if (Crc32(payload) != crc) {
      break;
    }
    if (records != nullptr) {
      records->emplace_back(payload);
    }
    ++result.valid_records;
    valid_end += kHeaderSize + len;
  }

  if (valid_end < size) {
    result.dropped_bytes = size - valid_end;
    result.truncated = true;
    if (ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      throw WalIoError("wal truncate failed for " + path_ + ": " +
                       std::strerror(errno));
    }
  }
  offset_ = valid_end;
  return result;
}

}  // namespace lockin
