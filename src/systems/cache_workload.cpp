#include "src/systems/cache_workload.hpp"

#include "src/systems/scenarios/scenario_defs.hpp"

namespace lockin {

CacheWorkloadResult RunCacheWorkload(const CacheWorkloadConfig& config) {
  CacheScenario::Params params;
  params.get_percent = config.get_percent;
  params.shards = config.shards;
  params.capacity = config.capacity;
  params.key_space = config.key_space;
  params.lru_mode = config.lru_mode;
  CacheScenario scenario(params);

  ScenarioConfig run;
  run.lock_name = config.lock_name;
  run.threads = config.threads;
  run.ops_per_thread = config.ops_per_thread;
  run.seed = config.seed;
  run.yield_after = config.yield_after;
  // The pre-API driver had no per-op rdtsc; keep it off so the Mops numbers
  // fig13 and bench_native_perf track stay comparable across the refactor.
  run.record_latency = false;
  const ScenarioResult result = RunScenario(scenario, run, "cache(legacy)");

  CacheWorkloadResult out;
  out.seconds = result.seconds;
  out.total_ops = result.total_ops;
  out.get_hits = static_cast<std::uint64_t>(result.MetricOr("get_hits"));
  out.evictions = static_cast<std::uint64_t>(result.MetricOr("evictions"));
  out.final_size = static_cast<std::size_t>(result.MetricOr("size"));
  out.ops_per_s = result.ops_per_s;
  return out;
}

}  // namespace lockin
