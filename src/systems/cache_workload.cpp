#include "src/systems/cache_workload.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/platform/rng.hpp"

namespace lockin {

std::uint64_t SkewedCacheKey(Xoshiro256* rng, std::uint64_t space) {
  std::uint64_t lo = 0;
  std::uint64_t hi = space;
  for (int level = 0; level < 4 && hi - lo > 16; ++level) {
    if (rng->NextDouble() < 0.8) {
      hi = lo + (hi - lo) / 5;
    } else {
      lo = lo + (hi - lo) / 5;
    }
  }
  return lo + rng->NextBelow(hi - lo + 1);
}

CacheWorkloadResult RunCacheWorkload(const CacheWorkloadConfig& config) {
  MemCache cache(NamedLockFactory(config.lock_name, config.yield_after),
                 MemCache::Config{config.shards, config.capacity, config.lru_mode});

  std::atomic<std::uint64_t> hits{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(config.seed + static_cast<std::uint64_t>(t) * 7 + 1);
      std::uint64_t local_hits = 0;
      // Keys/values are formatted into stack buffers: the workload measures
      // the cache's locking, not std::to_string temporaries.
      char buf[32];
      std::string key;
      std::string value;
      for (int i = 0; i < config.ops_per_thread; ++i) {
        int len = std::snprintf(buf, sizeof buf, "k%llu",
                                static_cast<unsigned long long>(
                                    SkewedCacheKey(&rng, config.key_space)));
        key.assign(buf, static_cast<std::size_t>(len));
        if (static_cast<int>(rng.NextBelow(100)) < config.get_percent) {
          if (cache.Get(key, &value)) {
            ++local_hits;
          }
        } else {
          len = std::snprintf(buf, sizeof buf, "v%d", i);
          value.assign(buf, static_cast<std::size_t>(len));
          cache.Set(key, std::move(value));
        }
      }
      hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  CacheWorkloadResult result;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.total_ops = static_cast<std::uint64_t>(config.threads) *
                     static_cast<std::uint64_t>(config.ops_per_thread);
  result.get_hits = hits.load();
  result.evictions = cache.evictions();
  result.final_size = cache.Size();
  result.ops_per_s =
      result.seconds > 0 ? static_cast<double>(result.total_ops) / result.seconds : 0;
  return result;
}

}  // namespace lockin
