#include "src/systems/kvstore.hpp"

namespace lockin {

bool KvStore::Put(std::uint64_t key, std::string value) {
  return shards_.WithShard(ShardedMap<BPlusTree>::MixHash(key), [&](BPlusTree& tree) {
    return tree.Put(key, std::move(value));
  });
}

bool KvStore::Get(std::uint64_t key, std::string* out) {
  return shards_.WithShardShared(ShardedMap<BPlusTree>::MixHash(key),
                                 [&](const BPlusTree& tree) { return tree.Get(key, out); });
}

bool KvStore::Erase(std::uint64_t key) {
  return shards_.WithShard(ShardedMap<BPlusTree>::MixHash(key),
                           [&](BPlusTree& tree) { return tree.Erase(key); });
}

std::size_t KvStore::CountRange(std::uint64_t first, std::uint64_t last) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < shards_.shard_count(); ++i) {
    shards_.WithShardSharedAt(i, [&](const BPlusTree& tree) {
      tree.Scan(first, last, [&count](std::uint64_t, const std::string&) {
        ++count;
        return true;
      });
    });
  }
  return count;
}

std::size_t KvStore::Size() {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.shard_count(); ++i) {
    total += shards_.WithShardSharedAt(i, [](const BPlusTree& tree) { return tree.size(); });
  }
  return total;
}

bool KvStore::CheckInvariants() {
  bool ok = true;
  for (std::size_t i = 0; i < shards_.shard_count(); ++i) {
    ok = shards_.WithShardSharedAt(
             i, [](const BPlusTree& tree) { return tree.CheckInvariants(); }) &&
         ok;
  }
  return ok;
}

}  // namespace lockin
