#include "src/systems/kvstore.hpp"

namespace lockin {

bool KvStore::Put(std::uint64_t key, std::string value) {
  HandleGuard guard(*db_lock_);
  return tree_.Put(key, std::move(value));
}

bool KvStore::Get(std::uint64_t key, std::string* out) {
  HandleGuard guard(*db_lock_);
  return tree_.Get(key, out);
}

bool KvStore::Erase(std::uint64_t key) {
  HandleGuard guard(*db_lock_);
  return tree_.Erase(key);
}

std::size_t KvStore::CountRange(std::uint64_t first, std::uint64_t last) {
  HandleGuard guard(*db_lock_);
  std::size_t count = 0;
  tree_.Scan(first, last, [&count](std::uint64_t, const std::string&) {
    ++count;
    return true;
  });
  return count;
}

std::size_t KvStore::Size() {
  HandleGuard guard(*db_lock_);
  return tree_.size();
}

bool KvStore::CheckInvariants() {
  HandleGuard guard(*db_lock_);
  return tree_.CheckInvariants();
}

}  // namespace lockin
