#include "src/systems/btree.hpp"

#include <algorithm>
#include <limits>

namespace lockin {

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}

BPlusTree::~BPlusTree() = default;

BPlusTree::Node* BPlusTree::FindLeaf(std::uint64_t key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    const std::size_t index = static_cast<std::size_t>(it - node->keys.begin());
    node = node->children[index].get();
  }
  return node;
}

void BPlusTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[static_cast<std::size_t>(index)].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  const std::size_t mid = child->keys.size() / 2;

  std::uint64_t separator;
  if (child->leaf) {
    // Leaf split: right keeps [mid, end); separator is right's first key
    // (duplicated upward, B+-tree style).
    right->keys.assign(child->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                       child->keys.end());
    right->values.assign(child->values.begin() + static_cast<std::ptrdiff_t>(mid),
                         child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    right->next_leaf = child->next_leaf;
    child->next_leaf = right.get();
    separator = right->keys.front();
  } else {
    // Internal split: the middle key moves up.
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                       child->keys.end());
    for (std::size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + index, separator);
  parent->children.insert(parent->children.begin() + index + 1, std::move(right));
}

bool BPlusTree::InsertNonFull(Node* node, std::uint64_t key, std::string value) {
  if (node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const std::size_t index = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      node->values[index] = std::move(value);
      return false;  // overwrite
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<std::ptrdiff_t>(index),
                        std::move(value));
    return true;
  }
  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  std::size_t index = static_cast<std::size_t>(it - node->keys.begin());
  if (node->children[index]->keys.size() >= kOrder) {
    SplitChild(node, static_cast<int>(index));
    if (key >= node->keys[index]) {
      ++index;
    }
  }
  return InsertNonFull(node->children[index].get(), key, std::move(value));
}

bool BPlusTree::Put(std::uint64_t key, std::string value) {
  if (root_->keys.size() >= kOrder) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
    ++height_;
  }
  const bool inserted = InsertNonFull(root_.get(), key, std::move(value));
  if (inserted) {
    ++size_;
  }
  return inserted;
}

bool BPlusTree::Get(std::uint64_t key, std::string* out) const {
  const Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return false;
  }
  if (out != nullptr) {
    *out = leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
  }
  return true;
}

bool BPlusTree::Erase(std::uint64_t key) {
  Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return false;
  }
  const std::size_t index = static_cast<std::size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + static_cast<std::ptrdiff_t>(index));
  --size_;
  return true;
}

void BPlusTree::Scan(std::uint64_t first, std::uint64_t last,
                     const std::function<bool(std::uint64_t, const std::string&)>& fn) const {
  const Node* leaf = FindLeaf(first);
  while (leaf != nullptr) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      const std::uint64_t key = leaf->keys[i];
      if (key < first) {
        continue;
      }
      if (key > last) {
        return;
      }
      if (!fn(key, leaf->values[i])) {
        return;
      }
    }
    leaf = leaf->next_leaf;
  }
}

bool BPlusTree::CheckNode(const Node* node, std::uint64_t lo, std::uint64_t hi, int depth,
                          int* leaf_depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return false;
  }
  for (std::uint64_t key : node->keys) {
    if (key < lo || key > hi) {
      return false;
    }
  }
  if (node->leaf) {
    if (node->values.size() != node->keys.size()) {
      return false;
    }
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    }
    return *leaf_depth == depth;
  }
  if (node->children.size() != node->keys.size() + 1) {
    return false;
  }
  std::uint64_t child_lo = lo;
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    const std::uint64_t child_hi =
        i < node->keys.size() ? node->keys[i] : hi;
    if (!CheckNode(node->children[i].get(), child_lo, child_hi, depth + 1, leaf_depth)) {
      return false;
    }
    child_lo = i < node->keys.size() ? node->keys[i] : child_lo;
  }
  return true;
}

bool BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  return CheckNode(root_.get(), 0, std::numeric_limits<std::uint64_t>::max(), 0, &leaf_depth);
}

}  // namespace lockin
