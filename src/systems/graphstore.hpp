// MySQL/LinkBench-style social-graph store.
//
// The paper drives MySQL with Facebook's LinkBench (Table 3): a node/link
// graph with point reads, link-list reads and link writes from many
// connection threads. The synchronization skeleton mirrored here: sharded
// row locks (InnoDB-style), plus one log lock every write crosses (binlog/
// redo). MySQL "handles most low-level synchronization with customly-
// designed locks", so the pthread-lock swap moves less than elsewhere --
// unless the lock spins while oversubscribed (the TICKET collapse).
#ifndef SRC_SYSTEMS_GRAPHSTORE_HPP_
#define SRC_SYSTEMS_GRAPHSTORE_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"

namespace lockin {

class GraphStore {
 public:
  struct Config {
    std::size_t shards = 32;
  };

  GraphStore(const LockFactory& make_lock, Config config);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // Nodes.
  std::uint64_t AddNode(std::string payload);
  bool GetNode(std::uint64_t id, std::string* out);
  bool UpdateNode(std::uint64_t id, std::string payload);

  // Links (edges): (source, type) -> set of destinations.
  void AddLink(std::uint64_t source, int type, std::uint64_t dest);
  bool DeleteLink(std::uint64_t source, int type, std::uint64_t dest);
  // Returns up to `limit` destinations.
  std::vector<std::uint64_t> GetLinkList(std::uint64_t source, int type, std::size_t limit);
  std::size_t CountLinks(std::uint64_t source, int type);

  // Quiescent diagnostics: reads log-lock-guarded state without the lock;
  // callers read it after their worker threads joined.
  std::uint64_t log_records() const LL_NO_THREAD_SAFETY_ANALYSIS { return log_records_; }

 private:
  struct Shard {
    std::unique_ptr<LockHandle> lock;
    std::unordered_map<std::uint64_t, std::string> nodes LL_GUARDED_BY(*lock);
    std::map<std::pair<std::uint64_t, int>, std::vector<std::uint64_t>> links
        LL_GUARDED_BY(*lock);
  };

  Shard& ShardFor(std::uint64_t id) { return shards_[id % shards_.size()]; }
  void AppendLog(char op, std::uint64_t id);

  std::vector<Shard> shards_;
  // The log lock every write crosses (binlog group-commit point).
  std::unique_ptr<LockHandle> log_lock_;
  std::uint64_t log_records_ LL_GUARDED_BY(*log_lock_) = 0;
  std::unique_ptr<LockHandle> id_lock_;
  std::uint64_t next_node_id_ LL_GUARDED_BY(*id_lock_) = 1;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_GRAPHSTORE_HPP_
