// MySQL/LinkBench-style social-graph store.
//
// The paper drives MySQL with Facebook's LinkBench (Table 3): a node/link
// graph with point reads, link-list reads and link writes from many
// connection threads. The synchronization skeleton mirrored here: sharded
// row locks (InnoDB-style), plus one log lock every write crosses (binlog/
// redo). MySQL "handles most low-level synchronization with customly-
// designed locks", so the pthread-lock swap moves less than elsewhere --
// unless the lock spins while oversubscribed (the TICKET collapse).
//
// ShardCombine: the row shards are a ShardedMap now (routing stays id %
// shards, matching InnoDB's hash-on-row-id). The log lock -- the one lock
// every write funnels through -- is the natural flat-combining target:
// with Config::combine the ++log_records_ publication rides the
// CombinerChannel so one combiner applies a batch of log appends per lock
// hold, mirroring real group commit. Config::rw takes shard read locks on
// the traversal paths (GetNode/GetLinkList/CountLinks).
#ifndef SRC_SYSTEMS_GRAPHSTORE_HPP_
#define SRC_SYSTEMS_GRAPHSTORE_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"
#include "src/systems/sharded.hpp"

namespace lockin {

class GraphStore {
 public:
  struct Config {
    std::size_t shards = 32;
    bool combine = false;  // flat-combine the log lock (and shard locks)
    bool rw = false;       // reader-writer shard locks for traversals
  };

  GraphStore(const LockFactory& make_lock, Config config);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // Nodes.
  std::uint64_t AddNode(std::string payload);
  bool GetNode(std::uint64_t id, std::string* out);
  bool UpdateNode(std::uint64_t id, std::string payload);

  // Links (edges): (source, type) -> set of destinations.
  void AddLink(std::uint64_t source, int type, std::uint64_t dest);
  bool DeleteLink(std::uint64_t source, int type, std::uint64_t dest);
  // Returns up to `limit` destinations.
  std::vector<std::uint64_t> GetLinkList(std::uint64_t source, int type, std::size_t limit);
  std::size_t CountLinks(std::uint64_t source, int type);

  // Quiescent diagnostics: callers read these after their worker threads
  // joined (log_records_ is written under log_lock_ / via the combiner).
  std::uint64_t log_records() const { return log_records_; }
  std::uint64_t combined_log_ops() const { return log_channel_.combined_ops(); }

 private:
  // One row shard: node payloads plus the adjacency lists rooted there.
  struct GraphShard {
    std::unordered_map<std::uint64_t, std::string> nodes;
    std::map<std::pair<std::uint64_t, int>, std::vector<std::uint64_t>> links;
  };

  void AppendLog(char op, std::uint64_t id);

  Config config_;
  ShardedMap<GraphShard> shards_;
  // The log lock every write crosses (binlog group-commit point). The
  // counter is guarded by log_lock_ at runtime, but combined execution
  // (closure runs on whichever thread holds the lock) is outside what
  // clang's static analysis can follow, so the annotation is dropped.
  std::unique_ptr<LockHandle> log_lock_;
  CombinerChannel log_channel_;
  std::uint64_t log_records_ = 0;
  std::unique_ptr<LockHandle> id_lock_;
  std::uint64_t next_node_id_ LL_GUARDED_BY(*id_lock_) = 1;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_GRAPHSTORE_HPP_
