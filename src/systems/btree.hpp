// In-memory B+-tree: the storage engine under the HamsterDB- and Kyoto-
// style mini-systems (the paper's embedded stores are B-tree/hash engines
// guarded by coarse pthread locks).
//
// Single-writer data structure: callers provide external synchronization
// (KvStore wraps it with a pluggable lock, which is the point of the
// experiment). Order-16 nodes, keys are uint64, values are strings.
#ifndef SRC_SYSTEMS_BTREE_HPP_
#define SRC_SYSTEMS_BTREE_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lockin {

class BPlusTree {
 public:
  static constexpr int kOrder = 16;  // max keys per node

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  // Inserts or overwrites; returns true when the key was new.
  bool Put(std::uint64_t key, std::string value);

  // Copies the value into *out; false when absent.
  bool Get(std::uint64_t key, std::string* out) const;

  // Removes the key; false when absent. (Leaves may underflow; the tree
  // rebalances lazily on the next split, like several embedded engines.)
  bool Erase(std::uint64_t key);

  // In-order visit of [first, last]; stops early if fn returns false.
  void Scan(std::uint64_t first, std::uint64_t last,
            const std::function<bool(std::uint64_t, const std::string&)>& fn) const;

  std::size_t size() const { return size_; }
  int height() const { return height_; }

  // Structural invariant check for tests: sorted keys, children in range,
  // leaves at uniform depth. Returns false on violation.
  bool CheckInvariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::uint64_t> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal: keys.size()+1
    std::vector<std::string> values;              // leaf: parallel to keys
    Node* next_leaf = nullptr;                    // leaf chain for scans
  };

  Node* FindLeaf(std::uint64_t key) const;
  // Splits `child` (index i of `parent`), hoisting the separator key.
  void SplitChild(Node* parent, int index);
  bool InsertNonFull(Node* node, std::uint64_t key, std::string value);
  bool CheckNode(const Node* node, std::uint64_t lo, std::uint64_t hi, int depth,
                 int* leaf_depth) const;

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  int height_ = 1;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_BTREE_HPP_
