#include "src/systems/cache.hpp"

#include <utility>

#include "src/platform/failpoint.hpp"

namespace lockin {
namespace {

constexpr std::size_t kInitialSlots = 16;  // power of two

// Eviction victim sampling width. The old eviction scanned *every* slot for
// the exact-oldest ticket -- O(table) per eviction, which dominated the
// SET-heavy path once the cache ran at capacity (the per_shard set_heavy
// regression tracked in BENCH_native.json). A bounded clock-hand sample is
// memcached's own answer: probe from the cursor until this many live
// entries were seen and evict the oldest of the sample. With >= 2 live
// entries sampled the newest item is never the sample's oldest, so the
// "just-written key stays resident" property the tests pin still holds.
constexpr std::size_t kEvictSample = 8;

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

MemCache::MemCache(const LockFactory& make_lock, Config config)
    : config_(config),
      shards_(make_lock, ShardOptions{config.shards, config.combine, config.rw}),
      lru_lock_(make_lock()) {
  per_shard_capacity_ = config_.capacity / shards_.shard_count();
  if (per_shard_capacity_ == 0) {
    per_shard_capacity_ = 1;
  }
  for (std::size_t i = 0; i < shards_.shard_count(); ++i) {
    shards_.UnsafeShardAt(i).slots.assign(kInitialSlots, Slot{});
  }
}

const MemCache::Slot* MemCache::FindSlot(const CacheTable& table, std::size_t hash,
                                         std::string_view key) {
  const std::size_t mask = table.slots.size() - 1;
  std::size_t i = hash & mask;
  while (table.slots[i].state != SlotState::kEmpty) {
    const Slot& slot = table.slots[i];
    if (slot.state == SlotState::kFull && slot.hash == hash && slot.key == key) {
      return &slot;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

MemCache::Slot* MemCache::FindSlotMut(CacheTable& table, std::size_t hash,
                                      std::string_view key) {
  return const_cast<Slot*>(FindSlot(table, hash, key));
}

void MemCache::GrowTable(CacheTable& table) {
  std::vector<Slot> old = std::move(table.slots);
  table.slots.assign(NextPowerOfTwo(old.size() * 2), Slot{});
  table.occupied = table.used;
  table.evict_cursor = 0;  // cursor indexes the new slot array
  const std::size_t mask = table.slots.size() - 1;
  for (Slot& slot : old) {
    if (slot.state != SlotState::kFull) {
      continue;
    }
    std::size_t i = slot.hash & mask;
    while (table.slots[i].state == SlotState::kFull) {
      i = (i + 1) & mask;
    }
    table.slots[i] = std::move(slot);
  }
}

void MemCache::Upsert(CacheTable& table, std::size_t hash, const std::string& key,
                      std::string&& value, std::uint64_t ticket) {
  // Keep load (full + tombstones) under 3/4 so probes stay short.
  if ((table.occupied + 1) * 4 > table.slots.size() * 3) {
    GrowTable(table);
  }
  const std::size_t mask = table.slots.size() - 1;
  std::size_t i = hash & mask;
  Slot* tombstone = nullptr;
  while (table.slots[i].state != SlotState::kEmpty) {
    Slot& slot = table.slots[i];
    if (slot.state == SlotState::kFull && slot.hash == hash && slot.key == key) {
      slot.value = std::move(value);
      slot.lru_ticket = ticket;
      return;
    }
    if (slot.state == SlotState::kTombstone && tombstone == nullptr) {
      tombstone = &slot;
    }
    i = (i + 1) & mask;
  }
  Slot& target = tombstone != nullptr ? *tombstone : table.slots[i];
  if (tombstone == nullptr) {
    ++table.occupied;  // consumed a fresh empty slot
  }
  target.hash = hash;
  target.state = SlotState::kFull;
  target.lru_ticket = ticket;
  target.key = key;
  target.value = std::move(value);
  ++table.used;
  size_.fetch_add(1, std::memory_order_relaxed);
}

void MemCache::TombstoneSlot(CacheTable& table, Slot& slot) {
  slot.state = SlotState::kTombstone;
  slot.key.clear();
  slot.key.shrink_to_fit();
  slot.value.clear();
  slot.value.shrink_to_fit();
  --table.used;
  size_.fetch_sub(1, std::memory_order_relaxed);
}

void MemCache::EvictOneFrom(CacheTable& table) {
  // FailSafe: delay-only site. Stalling inside the eviction scan (shard
  // lock held) widens the window other shards race against; a true "fail"
  // here would break the capacity invariant, so the fired flag is ignored.
  (void)FailpointFired(FailpointId::kCacheEvict);
  // Sampled LRU (memcached-style): advance the clock hand until
  // kEvictSample live entries were seen (or the table wrapped) and evict
  // the oldest of the sample. The stored hashes/tickets are reused -- no
  // key is rehashed while picking a victim.
  const std::size_t n = table.slots.size();
  const std::size_t mask = n - 1;
  Slot* victim = nullptr;
  std::uint64_t oldest = ~0ULL;
  std::size_t sampled = 0;
  table.evict_cursor &= mask;
  for (std::size_t probed = 0; probed < n && sampled < kEvictSample; ++probed) {
    Slot& slot = table.slots[table.evict_cursor];
    table.evict_cursor = (table.evict_cursor + 1) & mask;
    if (slot.state != SlotState::kFull) {
      continue;
    }
    ++sampled;
    if (slot.lru_ticket < oldest) {
      oldest = slot.lru_ticket;
      victim = &slot;
    }
  }
  if (victim == nullptr) {
    return;
  }
  TombstoneSlot(table, *victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void MemCache::EvictIfNeededGlobal() {
  // Called with lru_lock_ held; the victim-shard cursor round-robins with
  // the global LRU clock, as before the ShardedMap rework.
  if (size_.load(std::memory_order_relaxed) <= config_.capacity) {
    return;
  }
  const std::size_t victim = lru_clock_ % shards_.shard_count();
  shards_.WithShardAt(victim, [this](CacheTable& table) { EvictOneFrom(table); });
}

void MemCache::Set(const std::string& key, std::string value) {
  const std::size_t hash = HashKey(key);
  if (config_.lru_mode == LruMode::kGlobalLock) {
    // Every SET crosses the global LRU lock -- the contention point the
    // paper's SET-heavy Memcached workload exposes.
    HandleGuard lru_guard(*lru_lock_);
    const std::uint64_t ticket = ++lru_clock_;
    shards_.WithShard(hash, [&](CacheTable& table) {
      Upsert(table, hash, key, std::move(value), ticket);
    });
    EvictIfNeededGlobal();
    return;
  }
  // kPerShard: the shard lock covers the ticket, the write and the
  // eviction; no SET ever touches a cross-shard line.
  shards_.WithShard(hash, [&](CacheTable& table) {
    const std::uint64_t ticket = ++table.lru_clock;
    Upsert(table, hash, key, std::move(value), ticket);
    while (table.used > per_shard_capacity_) {
      EvictOneFrom(table);
    }
  });
}

bool MemCache::Get(const std::string& key, std::string* out) {
  const std::size_t hash = HashKey(key);
  return shards_.WithShardShared(hash, [&](const CacheTable& table) {
    const Slot* slot = FindSlot(table, hash, key);
    if (slot == nullptr) {
      return false;
    }
    if (out != nullptr) {
      *out = slot->value;
    }
    return true;
  });
}

bool MemCache::Delete(const std::string& key) {
  const std::size_t hash = HashKey(key);
  return shards_.WithShard(hash, [&](CacheTable& table) {
    Slot* slot = FindSlotMut(table, hash, key);
    if (slot == nullptr) {
      return false;
    }
    TombstoneSlot(table, *slot);
    return true;
  });
}

std::size_t MemCache::Size() const { return size_.load(std::memory_order_relaxed); }

}  // namespace lockin
