#include "src/systems/cache.hpp"

#include <functional>

namespace lockin {

MemCache::MemCache(const LockFactory& make_lock, Config config)
    : config_(config), lru_lock_(make_lock()) {
  shards_.resize(config_.shards);
  for (Shard& shard : shards_) {
    shard.lock = make_lock();
  }
}

MemCache::Shard& MemCache::ShardFor(const std::string& key) {
  const std::size_t hash = std::hash<std::string>{}(key);
  return shards_[hash % shards_.size()];
}

void MemCache::EvictIfNeeded() {
  // Called with lru_lock_ held. Approximate LRU: scan a victim shard for
  // the oldest ticket (memcached similarly approximates with segmented LRU).
  if (size_.load(std::memory_order_relaxed) <= config_.capacity) {
    return;
  }
  Shard& victim_shard = shards_[lru_clock_ % shards_.size()];
  HandleGuard shard_guard(*victim_shard.lock);
  const std::string* victim_key = nullptr;
  std::uint64_t oldest = ~0ULL;
  for (const auto& [key, item] : victim_shard.items) {
    if (item.lru_ticket < oldest) {
      oldest = item.lru_ticket;
      victim_key = &key;
    }
  }
  if (victim_key != nullptr) {
    victim_shard.items.erase(*victim_key);
    size_.fetch_sub(1, std::memory_order_relaxed);
    ++evictions_;
  }
}

void MemCache::Set(const std::string& key, std::string value) {
  // Every SET crosses the global LRU lock -- the contention point the
  // paper's SET-heavy Memcached workload exposes.
  HandleGuard lru_guard(*lru_lock_);
  const std::uint64_t ticket = ++lru_clock_;
  {
    Shard& shard = ShardFor(key);
    HandleGuard shard_guard(*shard.lock);
    auto [it, inserted] = shard.items.try_emplace(key);
    it->second.value = std::move(value);
    it->second.lru_ticket = ticket;
    if (inserted) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  EvictIfNeeded();
}

bool MemCache::Get(const std::string& key, std::string* out) {
  Shard& shard = ShardFor(key);
  HandleGuard shard_guard(*shard.lock);
  const auto it = shard.items.find(key);
  if (it == shard.items.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second.value;
  }
  return true;
}

bool MemCache::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  HandleGuard shard_guard(*shard.lock);
  if (shard.items.erase(key) == 0) {
    return false;
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t MemCache::Size() const { return size_.load(std::memory_order_relaxed); }

}  // namespace lockin
