#include "src/systems/cache.hpp"

#include <utility>

#include "src/platform/failpoint.hpp"

namespace lockin {
namespace {

constexpr std::size_t kInitialSlots = 16;  // power of two

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

MemCache::MemCache(const LockFactory& make_lock, Config config)
    : config_(config), lru_lock_(make_lock()) {
  per_shard_capacity_ = config_.capacity / config_.shards;
  if (per_shard_capacity_ == 0) {
    per_shard_capacity_ = 1;
  }
  shards_.resize(config_.shards);
  for (Shard& shard : shards_) {
    shard.lock = make_lock();
    shard.slots.assign(kInitialSlots, Slot{});
  }
}

MemCache::Slot* MemCache::FindSlot(Shard& shard, std::size_t hash, std::string_view key) {
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t i = hash & mask;
  while (shard.slots[i].state != SlotState::kEmpty) {
    Slot& slot = shard.slots[i];
    if (slot.state == SlotState::kFull && slot.hash == hash && slot.key == key) {
      return &slot;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

void MemCache::GrowShard(Shard& shard) {
  std::vector<Slot> old = std::move(shard.slots);
  shard.slots.assign(NextPowerOfTwo(old.size() * 2), Slot{});
  shard.occupied = shard.used;
  const std::size_t mask = shard.slots.size() - 1;
  for (Slot& slot : old) {
    if (slot.state != SlotState::kFull) {
      continue;
    }
    std::size_t i = slot.hash & mask;
    while (shard.slots[i].state == SlotState::kFull) {
      i = (i + 1) & mask;
    }
    shard.slots[i] = std::move(slot);
  }
}

void MemCache::Upsert(Shard& shard, std::size_t hash, const std::string& key,
                      std::string&& value, std::uint64_t ticket) {
  // Keep load (full + tombstones) under 3/4 so probes stay short.
  if ((shard.occupied + 1) * 4 > shard.slots.size() * 3) {
    GrowShard(shard);
  }
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t i = hash & mask;
  Slot* tombstone = nullptr;
  while (shard.slots[i].state != SlotState::kEmpty) {
    Slot& slot = shard.slots[i];
    if (slot.state == SlotState::kFull && slot.hash == hash && slot.key == key) {
      slot.value = std::move(value);
      slot.lru_ticket = ticket;
      return;
    }
    if (slot.state == SlotState::kTombstone && tombstone == nullptr) {
      tombstone = &slot;
    }
    i = (i + 1) & mask;
  }
  Slot& target = tombstone != nullptr ? *tombstone : shard.slots[i];
  if (tombstone == nullptr) {
    ++shard.occupied;  // consumed a fresh empty slot
  }
  target.hash = hash;
  target.state = SlotState::kFull;
  target.lru_ticket = ticket;
  target.key = key;
  target.value = std::move(value);
  ++shard.used;
  size_.fetch_add(1, std::memory_order_relaxed);
}

void MemCache::TombstoneSlot(Shard& shard, Slot& slot) {
  slot.state = SlotState::kTombstone;
  slot.key.clear();
  slot.key.shrink_to_fit();
  slot.value.clear();
  slot.value.shrink_to_fit();
  --shard.used;
  size_.fetch_sub(1, std::memory_order_relaxed);
}

void MemCache::EvictOneFrom(Shard& shard) {
  // FailSafe: delay-only site. Stalling inside the eviction scan (shard
  // lock held) widens the window other shards race against; a true "fail"
  // here would break the capacity invariant, so the fired flag is ignored.
  (void)FailpointFired(FailpointId::kCacheEvict);
  // Approximate LRU: scan for the oldest ticket in the shard (memcached
  // similarly approximates with segmented LRU). The scan reuses the stored
  // hashes implicitly -- no key is rehashed while picking a victim.
  Slot* victim = nullptr;
  std::uint64_t oldest = ~0ULL;
  for (Slot& slot : shard.slots) {
    if (slot.state == SlotState::kFull && slot.lru_ticket < oldest) {
      oldest = slot.lru_ticket;
      victim = &slot;
    }
  }
  if (victim == nullptr) {
    return;
  }
  TombstoneSlot(shard, *victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void MemCache::EvictIfNeededGlobal() {
  // Called with lru_lock_ held; the victim-shard cursor round-robins with
  // the global LRU clock, as before the open-addressing rework.
  if (size_.load(std::memory_order_relaxed) <= config_.capacity) {
    return;
  }
  Shard& victim_shard = shards_[lru_clock_ % shards_.size()];
  HandleGuard shard_guard(*victim_shard.lock);
  EvictOneFrom(victim_shard);
}

void MemCache::Set(const std::string& key, std::string value) {
  const std::size_t hash = HashKey(key);
  if (config_.lru_mode == LruMode::kGlobalLock) {
    // Every SET crosses the global LRU lock -- the contention point the
    // paper's SET-heavy Memcached workload exposes.
    HandleGuard lru_guard(*lru_lock_);
    const std::uint64_t ticket = ++lru_clock_;
    {
      Shard& shard = ShardFor(hash);
      HandleGuard shard_guard(*shard.lock);
      Upsert(shard, hash, key, std::move(value), ticket);
    }
    EvictIfNeededGlobal();
    return;
  }
  // kPerShard: the shard lock covers the ticket, the write and the
  // eviction; no SET ever touches a cross-shard line.
  Shard& shard = ShardFor(hash);
  HandleGuard shard_guard(*shard.lock);
  const std::uint64_t ticket = ++shard.lru_clock;
  Upsert(shard, hash, key, std::move(value), ticket);
  while (shard.used > per_shard_capacity_) {
    EvictOneFrom(shard);
  }
}

bool MemCache::Get(const std::string& key, std::string* out) {
  const std::size_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  HandleGuard shard_guard(*shard.lock);
  const Slot* slot = FindSlot(shard, hash, key);
  if (slot == nullptr) {
    return false;
  }
  if (out != nullptr) {
    *out = slot->value;
  }
  return true;
}

bool MemCache::Delete(const std::string& key) {
  const std::size_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  HandleGuard shard_guard(*shard.lock);
  Slot* slot = FindSlot(shard, hash, key);
  if (slot == nullptr) {
    return false;
  }
  TombstoneSlot(shard, *slot);
  return true;
}

std::size_t MemCache::Size() const { return size_.load(std::memory_order_relaxed); }

}  // namespace lockin
