// Memcached-style in-memory cache.
//
// Synchronization skeleton of the paper's Memcached target: a hash table
// with striped bucket locks plus a single LRU/eviction lock that every SET
// crosses -- which is why SET-heavy workloads contend on one lock while
// GET-heavy ones spread across the stripes (Figures 13-14, SET vs GET).
#ifndef SRC_SYSTEMS_CACHE_HPP_
#define SRC_SYSTEMS_CACHE_HPP_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/systems/common.hpp"

namespace lockin {

class MemCache {
 public:
  struct Config {
    std::size_t shards = 16;        // bucket-lock stripes
    std::size_t capacity = 100000;  // max items before LRU eviction
  };

  MemCache(const LockFactory& make_lock, Config config);

  MemCache(const MemCache&) = delete;
  MemCache& operator=(const MemCache&) = delete;

  // SET: writes the item and touches the LRU under the global lru lock.
  void Set(const std::string& key, std::string value);

  // GET: reads under the shard lock only (LRU touch is sampled, like
  // memcached's lazy LRU bumping, to keep GETs off the global lock).
  bool Get(const std::string& key, std::string* out);

  bool Delete(const std::string& key);

  std::size_t Size() const;
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Item {
    std::string value;
    std::uint64_t lru_ticket = 0;
  };
  struct Shard {
    std::unique_ptr<LockHandle> lock;
    std::unordered_map<std::string, Item> items;
  };

  Shard& ShardFor(const std::string& key);
  void EvictIfNeeded();

  Config config_;
  std::vector<Shard> shards_;
  // Global LRU clock + eviction state, guarded by lru_lock_.
  std::unique_ptr<LockHandle> lru_lock_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t evictions_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_CACHE_HPP_
