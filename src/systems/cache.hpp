// Memcached-style in-memory cache.
//
// Synchronization skeleton of the paper's Memcached target: a hash table
// with striped bucket locks plus a single LRU/eviction lock that every SET
// crosses -- which is why SET-heavy workloads contend on one lock while
// GET-heavy ones spread across the stripes (Figures 13-14, SET vs GET).
//
// Storage is an open-addressing table per shard that keeps each key's hash
// next to the entry: the key is hashed exactly once per operation and the
// stored hash is reused for shard routing, probing (full-hash compare
// short-circuits the string compare) and the LRU eviction scan. Two LRU
// modes: kGlobalLock preserves the paper's contention shape (the default);
// kPerShard segments the LRU clock and eviction budget per shard so SETs
// never cross a global lock -- the scale scenario for many-core hosts
// (memcached itself made the same move with its segmented LRU).
//
// ShardCombine: the shard routing/locking that used to be bespoke here is
// now the reusable ShardedMap layer (src/systems/sharded.hpp) -- MemCache
// is its first consumer, keeping the hash(key) % shards mapping the tests
// pin. Config::combine routes shard mutations through the flat-combining
// channel; Config::rw takes GETs under a shared per-shard RwLock.
#ifndef SRC_SYSTEMS_CACHE_HPP_
#define SRC_SYSTEMS_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/platform/cacheline.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"
#include "src/systems/sharded.hpp"

namespace lockin {

class MemCache {
 public:
  enum class LruMode {
    kGlobalLock,  // every SET crosses one LRU lock (paper-shape contention)
    kPerShard,    // segmented LRU: per-shard clock + eviction budget
  };

  struct Config {
    std::size_t shards = 16;        // bucket-lock stripes
    std::size_t capacity = 100000;  // max items before LRU eviction
    LruMode lru_mode = LruMode::kGlobalLock;
    bool combine = false;  // flat-combine shard mutations (hot-shard path)
    bool rw = false;       // per-shard RwLock; GETs take it shared
  };

  MemCache(const LockFactory& make_lock, Config config);

  MemCache(const MemCache&) = delete;
  MemCache& operator=(const MemCache&) = delete;

  // SET: writes the item; touches the LRU under the global lru lock
  // (kGlobalLock) or entirely under the shard lock (kPerShard).
  void Set(const std::string& key, std::string value);

  // GET: reads under the shard lock only (LRU touch is sampled, like
  // memcached's lazy LRU bumping, to keep GETs off the global lock).
  bool Get(const std::string& key, std::string* out);

  bool Delete(const std::string& key);

  std::size_t Size() const;
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  LruMode lru_mode() const { return config_.lru_mode; }

  // Key hashing and shard routing, exposed so tests can pin the mapping:
  // routing must stay hash(key) % shards across storage reworks (clients
  // and benches rely on a stable key -> stripe distribution).
  static std::size_t HashKey(std::string_view key) {
    return std::hash<std::string_view>{}(key);
  }
  static std::size_t ShardIndexFor(std::string_view key, std::size_t shards) {
    return HashKey(key) % shards;
  }

 private:
  enum class SlotState : std::uint8_t { kEmpty, kFull, kTombstone };

  // Open-addressing slot; `hash` is the full stored hash (computed once in
  // Set/Get/Delete, reused for probing and the eviction scan).
  struct Slot {
    std::size_t hash = 0;
    SlotState state = SlotState::kEmpty;
    std::uint64_t lru_ticket = 0;
    std::string key;
    std::string value;
  };

  // One shard's table; lives inside a ShardedMap shard header, accessed
  // only through WithShard* closures (the shard lock discipline).
  struct CacheTable {
    std::vector<Slot> slots;     // power-of-two, linear probing
    std::size_t used = 0;        // kFull entries
    std::size_t occupied = 0;    // kFull + kTombstone (drives rehash)
    std::uint64_t lru_clock = 0; // per-shard ticket clock (kPerShard)
    std::size_t evict_cursor = 0;  // clock hand for the sampled eviction
  };

  // All of these run inside a WithShard closure (shard lock held).
  static const Slot* FindSlot(const CacheTable& table, std::size_t hash, std::string_view key);
  static Slot* FindSlotMut(CacheTable& table, std::size_t hash, std::string_view key);
  void Upsert(CacheTable& table, std::size_t hash, const std::string& key, std::string&& value,
              std::uint64_t ticket);
  static void GrowTable(CacheTable& table);
  void TombstoneSlot(CacheTable& table, Slot& slot);
  void EvictOneFrom(CacheTable& table);

  void EvictIfNeededGlobal() LL_REQUIRES(*lru_lock_);

  Config config_;
  std::size_t per_shard_capacity_ = 0;  // kPerShard eviction budget
  ShardedMap<CacheTable> shards_;
  // Global LRU clock, guarded by lru_lock_ (kGlobalLock mode).
  std::unique_ptr<LockHandle> lru_lock_;
  std::uint64_t lru_clock_ LL_GUARDED_BY(*lru_lock_) = 0;
  // Written under a lock (lru_lock_ or a shard lock depending on the LRU
  // mode) but read by the unsynchronized evictions() accessor: atomic with
  // relaxed ordering (it is a monotone statistic, not a synchronizer).
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> size_{0};
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_CACHE_HPP_
