// Memcached-style in-memory cache.
//
// Synchronization skeleton of the paper's Memcached target: a hash table
// with striped bucket locks plus a single LRU/eviction lock that every SET
// crosses -- which is why SET-heavy workloads contend on one lock while
// GET-heavy ones spread across the stripes (Figures 13-14, SET vs GET).
//
// Storage is an open-addressing table per shard that keeps each key's hash
// next to the entry: the key is hashed exactly once per operation and the
// stored hash is reused for shard routing, probing (full-hash compare
// short-circuits the string compare) and the LRU eviction scan. Two LRU
// modes: kGlobalLock preserves the paper's contention shape (the default);
// kPerShard segments the LRU clock and eviction budget per shard so SETs
// never cross a global lock -- the scale scenario for many-core hosts
// (memcached itself made the same move with its segmented LRU).
#ifndef SRC_SYSTEMS_CACHE_HPP_
#define SRC_SYSTEMS_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/platform/cacheline.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"

namespace lockin {

class MemCache {
 public:
  enum class LruMode {
    kGlobalLock,  // every SET crosses one LRU lock (paper-shape contention)
    kPerShard,    // segmented LRU: per-shard clock + eviction budget
  };

  struct Config {
    std::size_t shards = 16;        // bucket-lock stripes
    std::size_t capacity = 100000;  // max items before LRU eviction
    LruMode lru_mode = LruMode::kGlobalLock;
  };

  MemCache(const LockFactory& make_lock, Config config);

  MemCache(const MemCache&) = delete;
  MemCache& operator=(const MemCache&) = delete;

  // SET: writes the item; touches the LRU under the global lru lock
  // (kGlobalLock) or entirely under the shard lock (kPerShard).
  void Set(const std::string& key, std::string value);

  // GET: reads under the shard lock only (LRU touch is sampled, like
  // memcached's lazy LRU bumping, to keep GETs off the global lock).
  bool Get(const std::string& key, std::string* out);

  bool Delete(const std::string& key);

  std::size_t Size() const;
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  LruMode lru_mode() const { return config_.lru_mode; }

  // Key hashing and shard routing, exposed so tests can pin the mapping:
  // routing must stay hash(key) % shards across storage reworks (clients
  // and benches rely on a stable key -> stripe distribution).
  static std::size_t HashKey(std::string_view key) {
    return std::hash<std::string_view>{}(key);
  }
  static std::size_t ShardIndexFor(std::string_view key, std::size_t shards) {
    return HashKey(key) % shards;
  }

 private:
  enum class SlotState : std::uint8_t { kEmpty, kFull, kTombstone };

  // Open-addressing slot; `hash` is the full stored hash (computed once in
  // Set/Get/Delete, reused for probing and the eviction scan).
  struct Slot {
    std::size_t hash = 0;
    SlotState state = SlotState::kEmpty;
    std::uint64_t lru_ticket = 0;
    std::string key;
    std::string value;
  };

  // Cache-line aligned: in kPerShard mode adjacent shards' hot counters
  // (used/occupied/lru_clock) are written by different threads every SET;
  // sharing a line would reintroduce exactly the false sharing the
  // per-shard mode exists to remove.
  struct alignas(kCacheLineSize) Shard {
    std::unique_ptr<LockHandle> lock;
    std::vector<Slot> slots LL_GUARDED_BY(*lock);  // power-of-two, linear probing
    std::size_t used LL_GUARDED_BY(*lock) = 0;      // kFull entries
    std::size_t occupied LL_GUARDED_BY(*lock) = 0;  // kFull + kTombstone (drives rehash)
    std::uint64_t lru_clock LL_GUARDED_BY(*lock) = 0;  // per-shard ticket clock (kPerShard)
  };

  Shard& ShardFor(std::size_t hash) { return shards_[hash % shards_.size()]; }

  // All of these require the shard lock to be held.
  Slot* FindSlot(Shard& shard, std::size_t hash, std::string_view key)
      LL_REQUIRES(*shard.lock);
  void Upsert(Shard& shard, std::size_t hash, const std::string& key, std::string&& value,
              std::uint64_t ticket) LL_REQUIRES(*shard.lock);
  void GrowShard(Shard& shard) LL_REQUIRES(*shard.lock);
  void TombstoneSlot(Shard& shard, Slot& slot) LL_REQUIRES(*shard.lock);
  void EvictOneFrom(Shard& shard) LL_REQUIRES(*shard.lock);

  void EvictIfNeededGlobal() LL_REQUIRES(*lru_lock_);

  Config config_;
  std::size_t per_shard_capacity_ = 0;  // kPerShard eviction budget
  std::vector<Shard> shards_;
  // Global LRU clock + eviction cursor, guarded by lru_lock_ (kGlobalLock).
  std::unique_ptr<LockHandle> lru_lock_;
  std::uint64_t lru_clock_ LL_GUARDED_BY(*lru_lock_) = 0;
  // Written under a lock (lru_lock_ or a shard lock depending on the LRU
  // mode) but read by the unsynchronized evictions() accessor: atomic with
  // relaxed ordering (it is a monotone statistic, not a synchronizer).
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> size_{0};
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_CACHE_HPP_
