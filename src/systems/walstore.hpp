// RocksDB-style embedded store: memtable + write-ahead-log with a batched
// write queue.
//
// Reproduces the synchronization skeleton the paper describes for RocksDB
// (section 6): "RocksDB employs a write queue where threads enqueue their
// operations and mostly relies on a conditional variable. Therefore,
// altering MUTEX with another algorithm does not make a big difference."
// Writers join a queue under the DB lock; the queue leader batches all
// pending writes into the WAL and memtable while followers wait on the
// condvar. Reads go to the memtable under a short lock.
//
// ShardCombine: the memtable is a ShardedMap now, so reads spread over
// per-shard locks (or shared rwlocks with Options::rw) instead of one
// read lock, and the batch leader applies each write to its key's shard.
// Options::combine is accepted but deliberately a no-op here: the write
// queue IS a combining construct already -- the leader drains every
// queued write in one db-lock hold, which is flat combining with a
// condvar instead of spinning publishers. Stacking a CombinerChannel
// under it would combine twice for no new batching.
#ifndef SRC_SYSTEMS_WALSTORE_HPP_
#define SRC_SYSTEMS_WALSTORE_HPP_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/locks/condvar.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"
#include "src/systems/sharded.hpp"
#include "src/systems/wal_log.hpp"

namespace lockin {

class WalStore {
 public:
  using Options = ShardOptions;  // shards = 1 preserves the paper shape

  explicit WalStore(const LockFactory& make_lock, Options options = {})
      : db_lock_(make_lock()), memtable_(make_lock, MemtableOptions(options)) {}

  // Durable mode (FailSafe): every batched write is additionally appended
  // to a crash-consistent WalLog at `wal_path`, one CRC-checked record per
  // operation; the constructor recovers the file first (truncating any
  // torn tail) and replays the surviving records into the memtable.
  // Appends can throw WalCrashInjected when the WAL failpoints are armed
  // -- the store is then considered dead, like a killed process; reopen a
  // fresh WalStore on the same path to recover.
  WalStore(const LockFactory& make_lock, const std::string& wal_path, Options options = {});

  struct RecoveryInfo {
    std::uint64_t records = 0;        // valid records replayed
    std::uint64_t dropped_bytes = 0;  // torn tail removed by recovery
    bool truncated = false;
  };
  // What the durable constructor recovered (zeros for in-memory mode).
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  WalStore(const WalStore&) = delete;
  WalStore& operator=(const WalStore&) = delete;

  // Enqueues the write; returns once it is durable in the (simulated) WAL
  // and visible in the memtable. May batch with concurrent writers.
  void Put(std::uint64_t key, std::string value);

  bool Get(std::uint64_t key, std::string* out);

  void Delete(std::uint64_t key);

  std::size_t MemtableSize();
  // Quiescent diagnostics: read db-lock-guarded counters without the lock;
  // callers read them after their worker threads joined.
  std::uint64_t wal_records() const LL_NO_THREAD_SAFETY_ANALYSIS { return wal_records_; }
  std::uint64_t batches() const LL_NO_THREAD_SAFETY_ANALYSIS { return batches_; }

 private:
  using Memtable = std::map<std::uint64_t, std::string>;

  static ShardOptions MemtableOptions(Options options) {
    options.combine = false;  // see header comment: the queue already combines
    return options;
  }

  struct WriteRequest {
    std::uint64_t key;
    std::string value;
    bool is_delete = false;
    std::uint64_t sequence = 0;  // assigned when enqueued
    bool done = false;
  };

  // Applies all queued writes (leader path). Called with db_lock_ held.
  void RunBatchLocked() LL_REQUIRES(*db_lock_);

  void ApplyToMemtable(std::uint64_t key, std::string&& value, bool is_delete);

  std::unique_ptr<LockHandle> db_lock_;
  CondVar queue_cv_;
  std::deque<WriteRequest*> queue_ LL_GUARDED_BY(*db_lock_);
  bool batch_running_ LL_GUARDED_BY(*db_lock_) = false;
  std::uint64_t next_sequence_ LL_GUARDED_BY(*db_lock_) = 1;
  std::uint64_t wal_records_ LL_GUARDED_BY(*db_lock_) = 0;
  std::uint64_t batches_ LL_GUARDED_BY(*db_lock_) = 0;
  std::vector<std::string> wal_ LL_GUARDED_BY(*db_lock_);  // simulated WAL tail (bounded)
  std::unique_ptr<WalLog> wal_log_ LL_GUARDED_BY(*db_lock_);  // durable mode only
  RecoveryInfo recovery_info_;  // written once in the ctor, read-only after

  // Memtable shards guarded by their own short locks so reads do not cross
  // the write queue. Lock order: db_lock_ -> memtable shard (leader apply);
  // readers take only the shard lock, so the order is acyclic.
  ShardedMap<Memtable> memtable_;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_WALSTORE_HPP_
