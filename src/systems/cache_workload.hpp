// Legacy entry point for the native MemCache workload, now a thin wrapper
// over the unified scenario API (src/systems/workload_api.hpp).
//
// The Memcached-shape experiment the paper runs in Figures 13-14 (GET- vs
// SET-heavy mixes over a striped cache with a global LRU lock). Kept so the
// fig13 native section and bench/bench_native_perf's MemCache rows retain
// their pre-API configuration surface (explicit shards/capacity/LRU mode)
// and numbers; new code should run the registered "cache/*" scenarios
// through RunScenarioByName instead.
#ifndef SRC_SYSTEMS_CACHE_WORKLOAD_HPP_
#define SRC_SYSTEMS_CACHE_WORKLOAD_HPP_

#include <cstdint>
#include <string>

#include "src/platform/rng.hpp"
#include "src/systems/cache.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {

struct CacheWorkloadConfig {
  std::string lock_name = "MUTEX";
  MemCache::LruMode lru_mode = MemCache::LruMode::kGlobalLock;
  int threads = 4;
  int ops_per_thread = 40000;
  int get_percent = 50;            // rest are SETs
  std::size_t shards = 16;
  std::size_t capacity = 50000;
  std::uint64_t key_space = 60000;
  std::uint64_t seed = 1;
  std::uint32_t yield_after = 256;  // spinlock oversubscription escape hatch
};

struct CacheWorkloadResult {
  double seconds = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t evictions = 0;
  std::size_t final_size = 0;
  double ops_per_s = 0;

  double MopsPerS() const { return ops_per_s / 1e6; }
};

// Compatibility alias for the skewed key pick, which migrated into the
// scenario API as SkewedKey (with src/platform/rng.hpp included properly
// instead of the old in-signature `class Xoshiro256*` forward declaration).
inline std::uint64_t SkewedCacheKey(Xoshiro256* rng, std::uint64_t space) {
  return SkewedKey(rng, space);
}

// Runs the cache scenario through the shared scenario driver (latency
// recording off, matching the pre-API driver's measured loop).
CacheWorkloadResult RunCacheWorkload(const CacheWorkloadConfig& config);

}  // namespace lockin

#endif  // SRC_SYSTEMS_CACHE_WORKLOAD_HPP_
