// Native multi-threaded workload driver over MemCache.
//
// The Memcached-shape experiment the paper runs in Figures 13-14 (GET- vs
// SET-heavy mixes over a striped cache with a global LRU lock), runnable on
// the host against the real lock library. Shared by examples/cache_server,
// the fig13 bench's native section, and bench/bench_native_perf (which
// tracks Mops/s per LRU mode in BENCH_native.json).
#ifndef SRC_SYSTEMS_CACHE_WORKLOAD_HPP_
#define SRC_SYSTEMS_CACHE_WORKLOAD_HPP_

#include <cstdint>
#include <string>

#include "src/systems/cache.hpp"

namespace lockin {

struct CacheWorkloadConfig {
  std::string lock_name = "MUTEX";
  MemCache::LruMode lru_mode = MemCache::LruMode::kGlobalLock;
  int threads = 4;
  int ops_per_thread = 40000;
  int get_percent = 50;            // rest are SETs
  std::size_t shards = 16;
  std::size_t capacity = 50000;
  std::uint64_t key_space = 60000;
  std::uint64_t seed = 1;
  std::uint32_t yield_after = 256;  // spinlock oversubscription escape hatch
};

struct CacheWorkloadResult {
  double seconds = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t evictions = 0;
  std::size_t final_size = 0;
  double ops_per_s = 0;

  double MopsPerS() const { return ops_per_s / 1e6; }
};

// Approximate Zipf used by the skewed key pick: 80% of accesses hit 20% of
// the key space, recursively.
std::uint64_t SkewedCacheKey(class Xoshiro256* rng, std::uint64_t space);

CacheWorkloadResult RunCacheWorkload(const CacheWorkloadConfig& config);

}  // namespace lockin

#endif  // SRC_SYSTEMS_CACHE_WORKLOAD_HPP_
