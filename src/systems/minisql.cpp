#include "src/systems/minisql.hpp"

namespace lockin {

MiniSql::MiniSql(const LockFactory& make_lock, Config config)
    : config_(config), write_lock_(make_lock()), pager_lock_(make_lock()) {
  warehouses_.resize(static_cast<std::size_t>(config_.warehouses));
  for (Warehouse& warehouse : warehouses_) {
    warehouse.districts.resize(static_cast<std::size_t>(config_.districts_per_warehouse));
  }
  stock_.assign(static_cast<std::size_t>(config_.warehouses) *
                    static_cast<std::size_t>(config_.items),
                100);
}

std::uint64_t MiniSql::NewOrder(int warehouse, int district, const std::vector<int>& item_ids,
                                Xoshiro256* rng) {
  // Read phase under the pager lock (page-cache accesses).
  int available = 0;
  {
    HandleGuard pager(*pager_lock_);
    for (int item : item_ids) {
      const std::size_t index = static_cast<std::size_t>(warehouse) *
                                    static_cast<std::size_t>(config_.items) +
                                static_cast<std::size_t>(item);
      if (stock_[index] > 0) {
        ++available;
      }
    }
  }
  (void)available;

  // Write transaction under the single writer lock.
  HandleGuard writer(*write_lock_);
  District& d = warehouses_[static_cast<std::size_t>(warehouse)]
                    .districts[static_cast<std::size_t>(district)];
  const std::uint64_t order_id =
      (static_cast<std::uint64_t>(DistrictKey(warehouse, district)) << 32) | d.next_order_id;
  d.next_order_id++;
  order_counter_++;
  {
    // Stock lives in the page cache: the writer re-enters the pager lock
    // for the updates (write -> pager nesting; the read phase above
    // released its pager guard before the write lock was taken, so the
    // order is acyclic). Without this, the NEW-ORDER stock writes race the
    // pager-lock-only readers in StockLevel and the read phase.
    HandleGuard pager(*pager_lock_);
    for (int item : item_ids) {
      const int quantity = 1 + static_cast<int>(rng->NextBelow(10));
      order_lines_.push_back(OrderLine{order_id, item, quantity});
      const std::size_t index = static_cast<std::size_t>(warehouse) *
                                    static_cast<std::size_t>(config_.items) +
                                static_cast<std::size_t>(item);
      stock_[index] -= quantity;
      if (stock_[index] < 10) {
        stock_[index] += 91;  // TPC-C restock rule
      }
    }
  }
  if (order_lines_.size() > 200000) {
    order_lines_.erase(order_lines_.begin(),
                       order_lines_.begin() + static_cast<std::ptrdiff_t>(100000));
  }
  return order_id;
}

void MiniSql::Payment(int warehouse, int district, std::uint64_t customer, double amount) {
  HandleGuard writer(*write_lock_);
  Warehouse& w = warehouses_[static_cast<std::size_t>(warehouse)];
  w.ytd += amount;
  w.districts[static_cast<std::size_t>(district)].ytd += amount;
  customers_[customer] -= amount;
}

int MiniSql::StockLevel(int warehouse, int district, int threshold) {
  (void)district;
  HandleGuard pager(*pager_lock_);
  int low = 0;
  const std::size_t base =
      static_cast<std::size_t>(warehouse) * static_cast<std::size_t>(config_.items);
  for (int item = 0; item < config_.items; ++item) {
    if (stock_[base + static_cast<std::size_t>(item)] < threshold) {
      ++low;
    }
  }
  return low;
}

double MiniSql::WarehouseYtd(int warehouse) {
  HandleGuard writer(*write_lock_);
  return warehouses_[static_cast<std::size_t>(warehouse)].ytd;
}

double MiniSql::DistrictYtdSum(int warehouse) {
  HandleGuard writer(*write_lock_);
  double sum = 0;
  for (const District& d : warehouses_[static_cast<std::size_t>(warehouse)].districts) {
    sum += d.ytd;
  }
  return sum;
}

std::uint64_t MiniSql::OrderCount() {
  HandleGuard writer(*write_lock_);
  return order_counter_;
}

}  // namespace lockin
