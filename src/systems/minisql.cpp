#include "src/systems/minisql.hpp"

namespace lockin {

MiniSql::MiniSql(const LockFactory& make_lock, Config config)
    : config_(config),
      write_lock_(make_lock()),
      pager_(make_lock, ShardOptions{config.pager_shards, false, config.rw}) {
  warehouses_.resize(static_cast<std::size_t>(config_.warehouses));
  for (Warehouse& warehouse : warehouses_) {
    warehouse.districts.resize(static_cast<std::size_t>(config_.districts_per_warehouse));
  }
  // Stock routes by warehouse id (warehouse % pager_shards); warehouses are
  // dense small ints, so modulo routing spreads them evenly.
  for (int w = 0; w < config_.warehouses; ++w) {
    pager_.UnsafeShardAt(static_cast<std::size_t>(w) % pager_.shard_count())[w].assign(
        static_cast<std::size_t>(config_.items), 100);
  }
}

std::uint64_t MiniSql::NewOrder(int warehouse, int district, const std::vector<int>& item_ids,
                                Xoshiro256* rng) {
  // Read phase under the warehouse's pager-shard lock (page-cache accesses).
  const int available = pager_.WithShardShared(
      static_cast<std::uint64_t>(warehouse), [&](const StockShard& shard) {
        const std::vector<int>& stock = shard.at(warehouse);
        int in_stock = 0;
        for (int item : item_ids) {
          if (stock[static_cast<std::size_t>(item)] > 0) {
            ++in_stock;
          }
        }
        return in_stock;
      });
  (void)available;

  // Write transaction under the single writer lock.
  HandleGuard writer(*write_lock_);
  District& d = warehouses_[static_cast<std::size_t>(warehouse)]
                    .districts[static_cast<std::size_t>(district)];
  const std::uint64_t order_id =
      (static_cast<std::uint64_t>(DistrictKey(warehouse, district)) << 32) | d.next_order_id;
  d.next_order_id++;
  order_counter_++;
  // Quantities are drawn and order lines inserted under the writer lock
  // (order_lines_ is writer-lock state; the RNG draw order per item is
  // unchanged from the pre-sharding code).
  std::vector<int> quantities;
  quantities.reserve(item_ids.size());
  for (int item : item_ids) {
    const int quantity = 1 + static_cast<int>(rng->NextBelow(10));
    quantities.push_back(quantity);
    order_lines_.push_back(OrderLine{order_id, item, quantity});
  }
  // Stock lives in the page cache: the writer re-enters the warehouse's
  // pager-shard lock for the updates (write -> pager-shard nesting; the
  // read phase above released its shard guard before the write lock was
  // taken, so the order is acyclic). Without this, the NEW-ORDER stock
  // writes race the shard-lock-only readers in StockLevel and the read
  // phase.
  pager_.WithShard(static_cast<std::uint64_t>(warehouse), [&](StockShard& shard) {
    std::vector<int>& stock = shard.at(warehouse);
    for (std::size_t i = 0; i < item_ids.size(); ++i) {
      const std::size_t index = static_cast<std::size_t>(item_ids[i]);
      stock[index] -= quantities[i];
      if (stock[index] < 10) {
        stock[index] += 91;  // TPC-C restock rule
      }
    }
  });
  if (order_lines_.size() > 200000) {
    order_lines_.erase(order_lines_.begin(),
                       order_lines_.begin() + static_cast<std::ptrdiff_t>(100000));
  }
  return order_id;
}

void MiniSql::Payment(int warehouse, int district, std::uint64_t customer, double amount) {
  HandleGuard writer(*write_lock_);
  Warehouse& w = warehouses_[static_cast<std::size_t>(warehouse)];
  w.ytd += amount;
  w.districts[static_cast<std::size_t>(district)].ytd += amount;
  customers_[customer] -= amount;
}

int MiniSql::StockLevel(int warehouse, int district, int threshold) {
  (void)district;
  return pager_.WithShardShared(
      static_cast<std::uint64_t>(warehouse), [&](const StockShard& shard) {
        const std::vector<int>& stock = shard.at(warehouse);
        int low = 0;
        for (int item = 0; item < config_.items; ++item) {
          if (stock[static_cast<std::size_t>(item)] < threshold) {
            ++low;
          }
        }
        return low;
      });
}

double MiniSql::WarehouseYtd(int warehouse) {
  HandleGuard writer(*write_lock_);
  return warehouses_[static_cast<std::size_t>(warehouse)].ytd;
}

double MiniSql::DistrictYtdSum(int warehouse) {
  HandleGuard writer(*write_lock_);
  double sum = 0;
  for (const District& d : warehouses_[static_cast<std::size_t>(warehouse)].districts) {
    sum += d.ytd;
  }
  return sum;
}

std::uint64_t MiniSql::OrderCount() {
  HandleGuard writer(*write_lock_);
  return order_counter_;
}

}  // namespace lockin
