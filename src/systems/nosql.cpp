#include "src/systems/nosql.hpp"

namespace lockin {

// --- CacheDb ---------------------------------------------------------------

void CacheDb::Set(std::uint64_t key, std::string value) {
  HandleGuard guard(*lock_);
  map_[key] = std::move(value);
}

bool CacheDb::Get(std::uint64_t key, std::string* out) {
  HandleGuard guard(*lock_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

bool CacheDb::Remove(std::uint64_t key) {
  HandleGuard guard(*lock_);
  return map_.erase(key) != 0;
}

void CacheDb::Append(std::uint64_t key, const std::string& suffix) {
  HandleGuard guard(*lock_);
  map_[key] += suffix;
}

std::size_t CacheDb::Count() {
  HandleGuard guard(*lock_);
  return map_.size();
}

// --- HashDb ----------------------------------------------------------------

HashDb::HashDb(const LockFactory& make_lock, std::size_t regions) {
  regions_.resize(regions);
  for (Region& region : regions_) {
    region.lock = make_lock();
  }
}

HashDb::Region& HashDb::RegionFor(std::uint64_t key) {
  // Multiplicative hash; regions are a small power-of-two-ish count.
  const std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
  return regions_[h % regions_.size()];
}

void HashDb::Set(std::uint64_t key, std::string value) {
  Region& region = RegionFor(key);
  HandleGuard guard(*region.lock);
  region.map[key] = std::move(value);
}

bool HashDb::Get(std::uint64_t key, std::string* out) {
  Region& region = RegionFor(key);
  HandleGuard guard(*region.lock);
  const auto it = region.map.find(key);
  if (it == region.map.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

bool HashDb::Remove(std::uint64_t key) {
  Region& region = RegionFor(key);
  HandleGuard guard(*region.lock);
  return region.map.erase(key) != 0;
}

void HashDb::Append(std::uint64_t key, const std::string& suffix) {
  Region& region = RegionFor(key);
  HandleGuard guard(*region.lock);
  region.map[key] += suffix;
}

std::size_t HashDb::Count() {
  std::size_t total = 0;
  for (Region& region : regions_) {
    HandleGuard guard(*region.lock);
    total += region.map.size();
  }
  return total;
}

// --- TreeDb ----------------------------------------------------------------

void TreeDb::Set(std::uint64_t key, std::string value) {
  HandleGuard guard(*lock_);
  tree_.Put(key, std::move(value));
}

bool TreeDb::Get(std::uint64_t key, std::string* out) {
  HandleGuard guard(*lock_);
  return tree_.Get(key, out);
}

bool TreeDb::Remove(std::uint64_t key) {
  HandleGuard guard(*lock_);
  return tree_.Erase(key);
}

void TreeDb::Append(std::uint64_t key, const std::string& suffix) {
  HandleGuard guard(*lock_);
  std::string value;
  tree_.Get(key, &value);
  value += suffix;
  tree_.Put(key, std::move(value));
}

std::size_t TreeDb::Count() {
  HandleGuard guard(*lock_);
  return tree_.size();
}

}  // namespace lockin
