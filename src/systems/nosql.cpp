#include "src/systems/nosql.hpp"

namespace lockin {
namespace {

// All three backends route with the same multiplicative mix the old HT
// region hash used: Nosql keys are small dense integers, and unmixed
// modulo routing would stripe structured workloads lumpily.
inline std::uint64_t RouteHash(std::uint64_t key) { return key * 0x9e3779b97f4a7c15ULL; }

}  // namespace

// --- CacheDb ---------------------------------------------------------------

void CacheDb::Set(std::uint64_t key, std::string value) {
  shards_.WithShard(RouteHash(key), [&](Map& map) { map[key] = std::move(value); });
}

bool CacheDb::Get(std::uint64_t key, std::string* out) {
  return shards_.WithShardShared(RouteHash(key), [&](const Map& map) {
    const auto it = map.find(key);
    if (it == map.end()) {
      return false;
    }
    if (out != nullptr) {
      *out = it->second;
    }
    return true;
  });
}

bool CacheDb::Remove(std::uint64_t key) {
  return shards_.WithShard(RouteHash(key), [&](Map& map) { return map.erase(key) != 0; });
}

void CacheDb::Append(std::uint64_t key, const std::string& suffix) {
  shards_.WithShard(RouteHash(key), [&](Map& map) { map[key] += suffix; });
}

std::size_t CacheDb::Count() {
  std::size_t total = 0;
  shards_.ForEachShard([&total](Map& map) { total += map.size(); });
  return total;
}

// --- HashDb ----------------------------------------------------------------

void HashDb::Set(std::uint64_t key, std::string value) {
  shards_.WithShard(RouteHash(key), [&](Map& map) { map[key] = std::move(value); });
}

bool HashDb::Get(std::uint64_t key, std::string* out) {
  return shards_.WithShardShared(RouteHash(key), [&](const Map& map) {
    const auto it = map.find(key);
    if (it == map.end()) {
      return false;
    }
    if (out != nullptr) {
      *out = it->second;
    }
    return true;
  });
}

bool HashDb::Remove(std::uint64_t key) {
  return shards_.WithShard(RouteHash(key), [&](Map& map) { return map.erase(key) != 0; });
}

void HashDb::Append(std::uint64_t key, const std::string& suffix) {
  shards_.WithShard(RouteHash(key), [&](Map& map) { map[key] += suffix; });
}

std::size_t HashDb::Count() {
  std::size_t total = 0;
  shards_.ForEachShard([&total](Map& map) { total += map.size(); });
  return total;
}

// --- TreeDb ----------------------------------------------------------------

void TreeDb::Set(std::uint64_t key, std::string value) {
  shards_.WithShard(RouteHash(key),
                    [&](BPlusTree& tree) { tree.Put(key, std::move(value)); });
}

bool TreeDb::Get(std::uint64_t key, std::string* out) {
  return shards_.WithShardShared(RouteHash(key),
                                 [&](const BPlusTree& tree) { return tree.Get(key, out); });
}

bool TreeDb::Remove(std::uint64_t key) {
  return shards_.WithShard(RouteHash(key), [&](BPlusTree& tree) { return tree.Erase(key); });
}

void TreeDb::Append(std::uint64_t key, const std::string& suffix) {
  shards_.WithShard(RouteHash(key), [&](BPlusTree& tree) {
    std::string value;
    tree.Get(key, &value);
    value += suffix;
    tree.Put(key, std::move(value));
  });
}

std::size_t TreeDb::Count() {
  std::size_t total = 0;
  shards_.ForEachShard([&total](BPlusTree& tree) { total += tree.size(); });
  return total;
}

}  // namespace lockin
