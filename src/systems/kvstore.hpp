// HamsterDB-style embedded key-value store.
//
// Single B+-tree environment guarded by one coarse database lock -- the
// synchronization skeleton of the paper's HamsterDB target (4 worker
// threads hammering one DB lock; Table 3). Operation mix knobs reproduce
// the WT / WT/RD / RD configurations.
#ifndef SRC_SYSTEMS_KVSTORE_HPP_
#define SRC_SYSTEMS_KVSTORE_HPP_

#include <cstdint>
#include <string>

#include "src/platform/thread_annotations.hpp"
#include "src/systems/btree.hpp"
#include "src/systems/common.hpp"

namespace lockin {

class KvStore {
 public:
  explicit KvStore(const LockFactory& make_lock) : db_lock_(make_lock()) {}

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Inserts or overwrites. Returns true when the key was new.
  bool Put(std::uint64_t key, std::string value);

  bool Get(std::uint64_t key, std::string* out);

  bool Erase(std::uint64_t key);

  // Range count in [first, last] (a short scan transaction).
  std::size_t CountRange(std::uint64_t first, std::uint64_t last);

  std::size_t Size();

  // Structural check (tests): takes the lock, verifies the tree.
  bool CheckInvariants();

 private:
  std::unique_ptr<LockHandle> db_lock_;
  BPlusTree tree_ LL_GUARDED_BY(*db_lock_);
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_KVSTORE_HPP_
