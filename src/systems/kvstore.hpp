// HamsterDB-style embedded key-value store.
//
// Single B+-tree environment guarded by one coarse database lock -- the
// synchronization skeleton of the paper's HamsterDB target (4 worker
// threads hammering one DB lock; Table 3). Operation mix knobs reproduce
// the WT / WT/RD / RD configurations.
//
// ShardCombine: the environment is now a ShardedMap of B+-tree partitions.
// The default (shards = 1) keeps the paper's one-DB-lock shape exactly;
// Options{shards, combine, rw} opens the scale path -- hash-partitioned
// trees, flat-combined hot shards, shared-lock reads -- that the
// thread-scaling rows in BENCH_native.json measure.
#ifndef SRC_SYSTEMS_KVSTORE_HPP_
#define SRC_SYSTEMS_KVSTORE_HPP_

#include <cstdint>
#include <string>

#include "src/platform/thread_annotations.hpp"
#include "src/systems/btree.hpp"
#include "src/systems/common.hpp"
#include "src/systems/sharded.hpp"

namespace lockin {

class KvStore {
 public:
  using Options = ShardOptions;  // shards = 1 preserves the paper shape

  explicit KvStore(const LockFactory& make_lock, Options options = {})
      : shards_(make_lock, options) {}

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Inserts or overwrites. Returns true when the key was new.
  bool Put(std::uint64_t key, std::string value);

  bool Get(std::uint64_t key, std::string* out);

  bool Erase(std::uint64_t key);

  // Range count in [first, last] (a short scan transaction). With multiple
  // shards the range is counted per partition (keys are hash-scattered, so
  // every shard can hold part of the range).
  std::size_t CountRange(std::uint64_t first, std::uint64_t last);

  std::size_t Size();

  // Structural check (tests): takes each shard lock, verifies its tree.
  bool CheckInvariants();

  std::size_t shard_count() const { return shards_.shard_count(); }

 private:
  ShardedMap<BPlusTree> shards_;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_KVSTORE_HPP_
