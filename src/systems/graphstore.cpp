#include "src/systems/graphstore.hpp"

#include <algorithm>

namespace lockin {

GraphStore::GraphStore(const LockFactory& make_lock, Config config)
    : config_(config),
      shards_(make_lock, ShardOptions{config.shards, config.combine, config.rw}),
      log_lock_(make_lock()),
      id_lock_(make_lock()) {}

void GraphStore::AppendLog(char op, std::uint64_t id) {
  // The real binlog formats and fsyncs here; the contention point is what
  // matters for the lock study.
  (void)op;
  (void)id;
  if (config_.combine) {
    // Group commit via flat combining: whoever holds the log lock applies
    // every published append in one hold instead of each writer queueing.
    log_channel_.Execute(*log_lock_, [this] { ++log_records_; });
    return;
  }
  HandleGuard guard(*log_lock_);
  ++log_records_;
}

std::uint64_t GraphStore::AddNode(std::string payload) {
  std::uint64_t id;
  {
    HandleGuard guard(*id_lock_);
    id = next_node_id_++;
  }
  // Routing is id-based (id % shards), the InnoDB row-hash shape; graph ids
  // are allocated densely so no extra mixing is needed.
  shards_.WithShard(id, [&](GraphShard& shard) { shard.nodes.emplace(id, std::move(payload)); });
  AppendLog('N', id);
  return id;
}

bool GraphStore::GetNode(std::uint64_t id, std::string* out) {
  return shards_.WithShardShared(id, [&](const GraphShard& shard) {
    const auto it = shard.nodes.find(id);
    if (it == shard.nodes.end()) {
      return false;
    }
    if (out != nullptr) {
      *out = it->second;
    }
    return true;
  });
}

bool GraphStore::UpdateNode(std::uint64_t id, std::string payload) {
  const bool updated = shards_.WithShard(id, [&](GraphShard& shard) {
    const auto it = shard.nodes.find(id);
    if (it == shard.nodes.end()) {
      return false;
    }
    it->second = std::move(payload);
    return true;
  });
  if (updated) {
    AppendLog('U', id);
  }
  return updated;
}

void GraphStore::AddLink(std::uint64_t source, int type, std::uint64_t dest) {
  shards_.WithShard(source, [&](GraphShard& shard) {
    std::vector<std::uint64_t>& list = shard.links[{source, type}];
    if (std::find(list.begin(), list.end(), dest) == list.end()) {
      list.push_back(dest);
    }
  });
  AppendLog('L', source);
}

bool GraphStore::DeleteLink(std::uint64_t source, int type, std::uint64_t dest) {
  const bool removed = shards_.WithShard(source, [&](GraphShard& shard) {
    const auto it = shard.links.find({source, type});
    if (it == shard.links.end()) {
      return false;
    }
    auto& list = it->second;
    const auto pos = std::find(list.begin(), list.end(), dest);
    if (pos == list.end()) {
      return false;
    }
    list.erase(pos);
    return true;
  });
  if (removed) {
    AppendLog('D', source);
  }
  return removed;
}

std::vector<std::uint64_t> GraphStore::GetLinkList(std::uint64_t source, int type,
                                                   std::size_t limit) {
  return shards_.WithShardShared(source, [&](const GraphShard& shard) {
    const auto it = shard.links.find({source, type});
    if (it == shard.links.end()) {
      return std::vector<std::uint64_t>{};
    }
    const auto& list = it->second;
    const std::size_t n = std::min(limit, list.size());
    return std::vector<std::uint64_t>(list.end() - static_cast<std::ptrdiff_t>(n), list.end());
  });
}

std::size_t GraphStore::CountLinks(std::uint64_t source, int type) {
  return shards_.WithShardShared(source, [&](const GraphShard& shard) {
    const auto it = shard.links.find({source, type});
    return it == shard.links.end() ? std::size_t{0} : it->second.size();
  });
}

}  // namespace lockin
