#include "src/systems/graphstore.hpp"

#include <algorithm>

namespace lockin {

GraphStore::GraphStore(const LockFactory& make_lock, Config config)
    : log_lock_(make_lock()), id_lock_(make_lock()) {
  shards_.resize(config.shards);
  for (Shard& shard : shards_) {
    shard.lock = make_lock();
  }
}

void GraphStore::AppendLog(char op, std::uint64_t id) {
  HandleGuard guard(*log_lock_);
  // The real binlog formats and fsyncs here; the contention point is what
  // matters for the lock study.
  (void)op;
  (void)id;
  ++log_records_;
}

std::uint64_t GraphStore::AddNode(std::string payload) {
  std::uint64_t id;
  {
    HandleGuard guard(*id_lock_);
    id = next_node_id_++;
  }
  {
    Shard& shard = ShardFor(id);
    HandleGuard guard(*shard.lock);
    shard.nodes.emplace(id, std::move(payload));
  }
  AppendLog('N', id);
  return id;
}

bool GraphStore::GetNode(std::uint64_t id, std::string* out) {
  Shard& shard = ShardFor(id);
  HandleGuard guard(*shard.lock);
  const auto it = shard.nodes.find(id);
  if (it == shard.nodes.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

bool GraphStore::UpdateNode(std::uint64_t id, std::string payload) {
  bool updated = false;
  {
    Shard& shard = ShardFor(id);
    HandleGuard guard(*shard.lock);
    const auto it = shard.nodes.find(id);
    if (it != shard.nodes.end()) {
      it->second = std::move(payload);
      updated = true;
    }
  }
  if (updated) {
    AppendLog('U', id);
  }
  return updated;
}

void GraphStore::AddLink(std::uint64_t source, int type, std::uint64_t dest) {
  {
    Shard& shard = ShardFor(source);
    HandleGuard guard(*shard.lock);
    std::vector<std::uint64_t>& list = shard.links[{source, type}];
    if (std::find(list.begin(), list.end(), dest) == list.end()) {
      list.push_back(dest);
    }
  }
  AppendLog('L', source);
}

bool GraphStore::DeleteLink(std::uint64_t source, int type, std::uint64_t dest) {
  bool removed = false;
  {
    Shard& shard = ShardFor(source);
    HandleGuard guard(*shard.lock);
    const auto it = shard.links.find({source, type});
    if (it != shard.links.end()) {
      auto& list = it->second;
      const auto pos = std::find(list.begin(), list.end(), dest);
      if (pos != list.end()) {
        list.erase(pos);
        removed = true;
      }
    }
  }
  if (removed) {
    AppendLog('D', source);
  }
  return removed;
}

std::vector<std::uint64_t> GraphStore::GetLinkList(std::uint64_t source, int type,
                                                   std::size_t limit) {
  Shard& shard = ShardFor(source);
  HandleGuard guard(*shard.lock);
  const auto it = shard.links.find({source, type});
  if (it == shard.links.end()) {
    return {};
  }
  const auto& list = it->second;
  const std::size_t n = std::min(limit, list.size());
  return std::vector<std::uint64_t>(list.end() - static_cast<std::ptrdiff_t>(n), list.end());
}

std::size_t GraphStore::CountLinks(std::uint64_t source, int type) {
  Shard& shard = ShardFor(source);
  HandleGuard guard(*shard.lock);
  const auto it = shard.links.find({source, type});
  return it == shard.links.end() ? 0 : it->second.size();
}

}  // namespace lockin
