// Copy-on-write array list (the Figure 1 motivating example).
//
// Mirrors java.util.concurrent.CopyOnWriteArrayList: reads are wait-free
// against an immutable snapshot; every mutation copies the backing array
// under a single lock. The lock choice (mutex vs spinlock) is exactly the
// power/energy-efficiency trade the paper opens with.
#ifndef SRC_SYSTEMS_COWLIST_HPP_
#define SRC_SYSTEMS_COWLIST_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"

namespace lockin {

class CowList {
 public:
  explicit CowList(const LockFactory& make_lock)
      : lock_(make_lock()), snapshot_(std::make_shared<const Items>()) {}

  CowList(const CowList&) = delete;
  CowList& operator=(const CowList&) = delete;

  // Appends a value (copies the array under the lock).
  void Add(std::int64_t value);

  // Replaces index i; returns false when out of range.
  bool Set(std::size_t index, std::int64_t value);

  // Removes index i; returns false when out of range.
  bool RemoveAt(std::size_t index);

  // Wait-free read of index i into *out; false when out of range.
  bool Get(std::size_t index, std::int64_t* out) const;

  // Wait-free sum over the current snapshot (a "scan" read).
  std::int64_t Sum() const;

  std::size_t Size() const;

 private:
  using Items = std::vector<std::int64_t>;

  // Readers atomically load the shared snapshot; writers install a new one
  // under the lock. shared_ptr reclamation replaces the Java GC the
  // original relies on.
  std::shared_ptr<const Items> Load() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }
  // Only writers install snapshots, and only under the lock (the atomic
  // store orders the publish; the lock serializes the copy-update race).
  void Store(std::shared_ptr<const Items> next) LL_REQUIRES(*lock_) {
    std::atomic_store_explicit(&snapshot_, std::move(next), std::memory_order_release);
  }

  std::unique_ptr<LockHandle> lock_;
  std::shared_ptr<const Items> snapshot_;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_COWLIST_HPP_
