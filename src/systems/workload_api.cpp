#include "src/systems/workload_api.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/analysis/lockdep.hpp"
#include "src/energy/model_meter.hpp"
#include "src/energy/power_model.hpp"
#include "src/obs/sampler.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/topology.hpp"
#include "src/systems/scenarios/scenario_defs.hpp"

namespace lockin {
namespace {

// Per-worker hot state, one slot per thread -- the same shape as the lock
// harness's WorkerSlot (src/locks/harness.cpp): everything a worker writes
// per op (op counter, counters, latency batch) lives in its own slot, each
// slot starting on a cache-line boundary and spanning whole lines, so the
// measured loop shares no written line across threads and the driver itself
// performs no per-op heap allocation. (ThreadContext's scratch strings own
// heap blocks, but those are per-thread and stop reallocating once warm.)
struct alignas(kCacheLineSize) WorkerSlot {
  static constexpr std::size_t kLatencyBatch = 64;

  explicit WorkerSlot(std::uint64_t rng_seed) : ctx(rng_seed) {}

  ThreadContext ctx;
  std::uint32_t pending = 0;  // buffered samples not yet in the histogram
  LatencyHistogram latency;
  std::uint64_t samples[kLatencyBatch];
  std::uint64_t counters[ScenarioWorkload::kMaxCounters] = {};
};
static_assert(alignof(WorkerSlot) == kCacheLineSize,
              "worker slots must start on a cache-line boundary");
static_assert(sizeof(WorkerSlot) % kCacheLineSize == 0,
              "worker slots must span whole cache lines so adjacent slots "
              "never share one (false-sharing regression guard)");

// One operation with op counting and optional batched latency recording
// wrapped around it.
inline void DoOneOp(ScenarioWorkload& workload, WorkerSlot& slot, bool record) {
  if (record) {
    const std::uint64_t before = ReadCycles();
    workload.Op(slot.ctx);
    slot.samples[slot.pending] = ReadCycles() - before;
    if (++slot.pending == WorkerSlot::kLatencyBatch) {
      slot.latency.RecordBatch(slot.samples, slot.pending);
      slot.pending = 0;
    }
  } else {
    workload.Op(slot.ctx);
  }
  ++slot.ctx.op_index;
}

void WorkerBody(ScenarioWorkload& workload, const ScenarioConfig& config, WorkerSlot& slot,
                const std::atomic<bool>& start_flag, const std::atomic<bool>& stop_flag) {
  // Bind the counter slots here rather than in the constructor: the slots
  // vector may move its elements while being filled.
  slot.ctx.counters = slot.counters;
  while (!start_flag.load(std::memory_order_acquire)) {
    SpinPause(PauseKind::kYield);
  }
  const bool record = config.record_latency;
  if (config.duration_ms == 0) {
    // Fixed-op mode: deterministic for a fixed seed.
    for (int i = 0; i < config.ops_per_thread; ++i) {
      DoOneOp(workload, slot, record);
    }
  } else {
    // Time-bounded mode: the stop flag is the only cross-thread line the
    // loop reads, polled once per `stop_check_every` ops.
    const std::uint32_t cadence = config.stop_check_every == 0 ? 1 : config.stop_check_every;
    std::uint32_t countdown = 0;
    for (;;) {
      if (countdown == 0) {
        if (stop_flag.load(std::memory_order_relaxed)) {
          break;
        }
        countdown = cadence;
      }
      --countdown;
      DoOneOp(workload, slot, record);
    }
  }
  if (slot.pending != 0) {
    slot.latency.RecordBatch(slot.samples, slot.pending);
    slot.pending = 0;
  }
}

}  // namespace

double ScenarioResult::MetricOr(const std::string& name, double fallback) const {
  for (const ScenarioMetric& metric : metrics) {
    if (metric.name == name) {
      return metric.value;
    }
  }
  return fallback;
}

ScenarioResult RunScenario(ScenarioWorkload& workload, const ScenarioConfig& config,
                           const std::string& scenario_name) {
  const std::vector<std::string> counter_names = workload.CounterNames();
  if (counter_names.size() > ScenarioWorkload::kMaxCounters) {
    throw std::invalid_argument("scenario declares more than kMaxCounters counters: " +
                                scenario_name);
  }

  // LockScope: energy meter for the run phase. kAuto follows the fallback
  // chain (RAPL when readable, else the model integrating this run's worker
  // contexts); the result carries joules/TPP as dedicated fields.
  std::shared_ptr<ActivityRegistry> activity;
  std::unique_ptr<EnergyMeter> meter;
  if (config.meter != MeterChoice::kOff) {
    activity = std::make_shared<ActivityRegistry>(
        PowerModel(Topology::Detect(), PowerParams::PaperXeon()));
    meter = config.meter == MeterChoice::kModel ? std::make_unique<ModelMeter>(activity)
                                                : MakeDefaultMeter(activity);
  }

  // LockScope: trace rings. tids 0..threads-1 are the workers; the driver
  // thread (setup/run phase markers) uses tid = threads and the energy
  // sampler tid = threads + 1. Setup runs with the driver's sink installed
  // so preload-time lock activity is visible too.
  TraceBuffer* driver_trace = nullptr;
  if (config.trace) {
    driver_trace = TraceSession::Instance().NewBuffer(static_cast<std::uint16_t>(config.threads),
                                                      config.trace_buffer_events);
  }
  ScopedTraceSink driver_sink(driver_trace);

  // LockLint: arm the lock-order detector for the whole run (setup included
  // -- preload-time inversions are inversions too). The scenario's locks
  // are TracedHandle-wrapped by MakeLockFactory when config.lockdep is set,
  // so every acquire/release feeds the acquisition graph.
  ScopedLockdep lockdep_scope(config.lockdep || LockdepIsEnabled());

  TraceEmit(TraceEventKind::kPhaseBegin, 0);
  workload.Setup(config);
  TraceEmit(TraceEventKind::kPhaseEnd, 0);

  std::atomic<bool> start_flag{false};
  std::atomic<bool> stop_flag{false};
  std::vector<WorkerSlot> slots;
  slots.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    // Same per-thread seeding the pre-API cache driver used, so seeded runs
    // (and fig13's native rows) carry over unchanged.
    slots.emplace_back(config.seed + static_cast<std::uint64_t>(t) * 7 + 1);
    slots.back().ctx.thread_index = t;
  }

  std::vector<TraceBuffer*> worker_traces(static_cast<std::size_t>(config.threads), nullptr);
  if (config.trace) {
    for (int t = 0; t < config.threads; ++t) {
      worker_traces[static_cast<std::size_t>(t)] = TraceSession::Instance().NewBuffer(
          static_cast<std::uint16_t>(t), config.trace_buffer_events);
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    WorkerSlot& slot = slots[static_cast<std::size_t>(t)];
    TraceBuffer* trace_buffer = worker_traces[static_cast<std::size_t>(t)];
    workers.emplace_back([&, &slot = slot, trace_buffer] {
      ScopedTraceSink sink(trace_buffer);  // null when tracing is off
      WorkerBody(workload, config, slot, start_flag, stop_flag);
    });
  }

  // The model meter integrates "worker contexts busy" between Start() and
  // Stop(); RAPL ignores the registry. States are restored after the join.
  if (activity != nullptr) {
    for (int t = 0; t < config.threads; ++t) {
      activity->SetState(t, ActivityState::kCritical);
    }
  }
  if (meter != nullptr) {
    meter->Start();
  }
  std::unique_ptr<EnergySampler> sampler;
  if (meter != nullptr && config.energy_sample_ms > 0) {
    TraceBuffer* sampler_sink = nullptr;
    if (config.trace) {
      sampler_sink = TraceSession::Instance().NewBuffer(
          static_cast<std::uint16_t>(config.threads + 1), config.trace_buffer_events);
    }
    sampler = std::make_unique<EnergySampler>(meter.get(), config.energy_sample_ms, sampler_sink);
  }

  TraceEmit(TraceEventKind::kPhaseBegin, 1);
  const auto t0 = std::chrono::steady_clock::now();
  start_flag.store(true, std::memory_order_release);
  if (config.duration_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
    stop_flag.store(true, std::memory_order_release);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  TraceEmit(TraceEventKind::kPhaseEnd, 1);

  ScenarioResult result;
  if (sampler != nullptr) {
    result.energy_series = sampler->Finish();
  }
  if (meter != nullptr) {
    result.energy = meter->Stop();
    result.meter_name = meter->Name();
  }
  if (activity != nullptr) {
    for (int t = 0; t < config.threads; ++t) {
      activity->SetState(t, ActivityState::kInactive);
    }
  }
  result.scenario = scenario_name;
  result.lock_name = config.lock_name;
  result.threads = config.threads;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  std::vector<std::uint64_t> counter_sums(counter_names.size(), 0);
  for (const WorkerSlot& slot : slots) {
    result.total_ops += slot.ctx.op_index;
    result.op_latency_cycles.Merge(slot.latency);
    for (std::size_t c = 0; c < counter_sums.size(); ++c) {
      counter_sums[c] += slot.counters[c];
    }
  }
  result.ops_per_s =
      result.seconds > 0 ? static_cast<double>(result.total_ops) / result.seconds : 0;
  result.metrics.reserve(counter_names.size());
  for (std::size_t c = 0; c < counter_names.size(); ++c) {
    result.metrics.push_back({counter_names[c], static_cast<double>(counter_sums[c])});
  }
  workload.AddSystemMetrics(&result.metrics);
  return result;
}

// --- Registry ----------------------------------------------------------------

ScenarioRegistry& ScenarioRegistry::Instance() {
  // Built-ins are registered through explicit per-system functions (declared
  // in scenarios/scenario_defs.hpp) instead of static registrar objects:
  // lockin is a static library, and the linker would drop a scenario
  // translation unit nothing references, silently emptying the registry.
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    RegisterKvStoreScenarios(*r);
    RegisterCacheScenarios(*r);
    RegisterNosqlScenarios(*r);
    RegisterGraphScenarios(*r);
    RegisterMiniSqlScenarios(*r);
    RegisterWalStoreScenarios(*r);
    RegisterCowListScenarios(*r);
    RegisterRwLockScenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::Register(ScenarioInfo info, Factory factory) {
  if (Find(info.name) != nullptr) {
    throw std::invalid_argument("duplicate scenario name: " + info.name);
  }
  entries_.push_back({std::move(info), std::move(factory)});
}

std::vector<ScenarioInfo> ScenarioRegistry::List() const {
  std::vector<ScenarioInfo> infos;
  infos.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    infos.push_back(entry.info);
  }
  return infos;
}

const ScenarioInfo* ScenarioRegistry::Find(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) {
      return &entry.info;
    }
  }
  return nullptr;
}

std::unique_ptr<ScenarioWorkload> ScenarioRegistry::Make(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) {
      return entry.factory();
    }
  }
  return nullptr;
}

std::vector<ScenarioInfo> RegisteredScenarios() { return ScenarioRegistry::Instance().List(); }

std::unique_ptr<ScenarioWorkload> MakeScenario(const std::string& name) {
  return ScenarioRegistry::Instance().Make(name);
}

std::unique_ptr<ScenarioWorkload> MakeScenarioOrThrow(const std::string& name) {
  std::unique_ptr<ScenarioWorkload> workload = MakeScenario(name);
  if (workload == nullptr) {
    throw std::invalid_argument("unknown scenario: " + name);
  }
  return workload;
}

ScenarioResult RunScenarioByName(const std::string& name, const ScenarioConfig& config) {
  const std::unique_ptr<ScenarioWorkload> workload = MakeScenarioOrThrow(name);
  return RunScenario(*workload, config, name);
}

std::uint64_t SkewedKey(Xoshiro256* rng, std::uint64_t space) {
  std::uint64_t lo = 0;
  std::uint64_t hi = space;
  for (int level = 0; level < 4 && hi - lo > 16; ++level) {
    if (rng->NextDouble() < 0.8) {
      hi = lo + (hi - lo) / 5;
    } else {
      lo = lo + (hi - lo) / 5;
    }
  }
  return lo + rng->NextBelow(hi - lo + 1);
}

}  // namespace lockin
