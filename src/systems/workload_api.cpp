#include "src/systems/workload_api.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/analysis/lockdep.hpp"
#include "src/energy/model_meter.hpp"
#include "src/energy/power_model.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/sampler.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/failpoint.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/topology.hpp"
#include "src/systems/scenarios/scenario_defs.hpp"

namespace lockin {
namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The calling thread's one-shot op deadline (see ArmOpDeadline). Plain TLS:
// armed by the driver and consumed by the first DeadlineHandle::lock of the
// same op, always on the same thread.
struct OpDeadline {
  std::uint64_t deadline_ns = 0;  // absolute steady-clock ns
  bool armed = false;
};
thread_local constinit OpDeadline tls_op_deadline;

// Converts the op's entry acquisition into a timed wait. Only the FIRST
// lock() after ArmOpDeadline is bounded: past the entry lock the op has
// typically started mutating and must run to completion (a nested CondVar
// re-acquire or hand-over-hand chain aborted halfway would tear system
// state), so nested acquisitions block normally.
class DeadlineHandle final : public LockHandle {
 public:
  explicit DeadlineHandle(std::unique_ptr<LockHandle> inner) : inner_(std::move(inner)) {}

  void lock() LL_ACQUIRE() LL_NO_THREAD_SAFETY_ANALYSIS override {
    if (tls_op_deadline.armed) [[unlikely]] {
      tls_op_deadline.armed = false;
      const std::uint64_t deadline = tls_op_deadline.deadline_ns;
      const std::uint64_t now = SteadyNowNs();
      if (now >= deadline || !inner_->AcquireFor(deadline - now)) {
        throw OpShedError("op deadline expired acquiring " + inner_->name());
      }
      return;
    }
    inner_->lock();
  }

  void unlock() LL_RELEASE() LL_NO_THREAD_SAFETY_ANALYSIS override { inner_->unlock(); }
  bool try_lock() LL_TRY_ACQUIRE(true) LL_NO_THREAD_SAFETY_ANALYSIS override {
    return inner_->try_lock();
  }
  bool AcquireFor(std::uint64_t timeout_ns) LL_TRY_ACQUIRE(true)
      LL_NO_THREAD_SAFETY_ANALYSIS override {
    return inner_->AcquireFor(timeout_ns);
  }
  std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<LockHandle> inner_;
};

// Per-worker hot state, one slot per thread -- the same shape as the lock
// harness's WorkerSlot (src/locks/harness.cpp): everything a worker writes
// per op (op counter, counters, latency batch) lives in its own slot, each
// slot starting on a cache-line boundary and spanning whole lines, so the
// measured loop shares no written line across threads and the driver itself
// performs no per-op heap allocation. (ThreadContext's scratch strings own
// heap blocks, but those are per-thread and stop reallocating once warm.)
struct alignas(kCacheLineSize) WorkerSlot {
  static constexpr std::size_t kLatencyBatch = 64;

  explicit WorkerSlot(std::uint64_t rng_seed) : ctx(rng_seed) {}

  ThreadContext ctx;
  std::uint32_t pending = 0;  // buffered samples not yet in the histogram
  LatencyHistogram latency;
  std::uint64_t samples[kLatencyBatch];
  std::uint64_t counters[ScenarioWorkload::kMaxCounters] = {};

  // FailSafe cross-thread fields. Plain members (the slot must stay movable
  // for the slots vector); the worker writes and the watchdog reads them
  // through std::atomic_ref once the vector has stopped growing. `progress`
  // counts op *attempts* (shed ops included), so a worker that is shedding
  // under a deadline still reads as live, not stalled.
  std::uint64_t progress = 0;
  bool finished = false;
  std::uint64_t shed = 0;          // ops abandoned after deadline + retries
  std::uint64_t shed_retries = 0;  // deadline expiries that were retried
};
static_assert(alignof(WorkerSlot) == kCacheLineSize,
              "worker slots must start on a cache-line boundary");
static_assert(sizeof(WorkerSlot) % kCacheLineSize == 0,
              "worker slots must span whole cache lines so adjacent slots "
              "never share one (false-sharing regression guard)");

inline void RunOpTimed(ScenarioWorkload& workload, WorkerSlot& slot, bool record) {
  if (record) {
    const std::uint64_t before = ReadCycles();
    workload.Op(slot.ctx);
    slot.samples[slot.pending] = ReadCycles() - before;
    if (++slot.pending == WorkerSlot::kLatencyBatch) {
      slot.latency.RecordBatch(slot.samples, slot.pending);
      slot.pending = 0;
    }
  } else {
    workload.Op(slot.ctx);
  }
}

// One operation with op counting and optional batched latency recording
// wrapped around it. With a per-op deadline configured, a deadline miss on
// the op's entry acquisition (OpShedError from the DeadlineHandle wrapper)
// is retried with exponential backoff up to config.op_retries times, then
// the op is shed: op_index and latency record successes only, so throughput
// and tail latency describe completed work.
inline void DoOneOp(ScenarioWorkload& workload, const ScenarioConfig& config, WorkerSlot& slot,
                    bool record) {
  (void)FailpointFired(FailpointId::kScenarioOp);  // delay-only chaos site
  if (config.op_deadline_ns == 0) {
    RunOpTimed(workload, slot, record);
    ++slot.ctx.op_index;
    return;
  }
  for (std::uint32_t attempt = 0;; ++attempt) {
    ArmOpDeadline(config.op_deadline_ns);
    try {
      RunOpTimed(workload, slot, record);
      DisarmOpDeadline();
      ++slot.ctx.op_index;
      return;
    } catch (const OpShedError&) {
      DisarmOpDeadline();
      TraceEmit(TraceEventKind::kOpShed, attempt);
      if (attempt >= config.op_retries) {
        ++slot.shed;
        return;
      }
      ++slot.shed_retries;
      // Sleep rather than spin between retries: the deadline expired because
      // the entry lock is congested, so give the holder the core.
      const std::uint32_t shift = attempt < 6 ? attempt : 6;
      std::this_thread::sleep_for(std::chrono::microseconds(std::uint64_t{1} << shift));
    }
  }
}

void WorkerBody(ScenarioWorkload& workload, const ScenarioConfig& config, WorkerSlot& slot,
                const std::atomic<bool>& start_flag, const std::atomic<bool>& stop_flag) {
  // Bind the counter slots here rather than in the constructor: the slots
  // vector may move its elements while being filled.
  slot.ctx.counters = slot.counters;
  while (!start_flag.load(std::memory_order_acquire)) {
    SpinPause(PauseKind::kYield);
  }
  const bool record = config.record_latency;
  std::atomic_ref<std::uint64_t> progress(slot.progress);
  std::uint64_t attempts = 0;
  const std::uint32_t cadence = config.stop_check_every == 0 ? 1 : config.stop_check_every;
  if (config.duration_ms == 0) {
    // Fixed-op mode: deterministic for a fixed seed. The external stop flag
    // (SIGINT wiring) is polled only when one is installed, so plain runs
    // keep the exact per-op instruction sequence.
    std::uint32_t countdown = cadence;
    for (int i = 0; i < config.ops_per_thread; ++i) {
      if (config.external_stop != nullptr && --countdown == 0) {
        if (config.external_stop->load(std::memory_order_relaxed)) {
          break;
        }
        countdown = cadence;
      }
      DoOneOp(workload, config, slot, record);
      progress.store(++attempts, std::memory_order_relaxed);
    }
  } else {
    // Time-bounded mode: the stop flag is the only cross-thread line the
    // loop reads, polled once per `stop_check_every` ops.
    std::uint32_t countdown = 0;
    for (;;) {
      if (countdown == 0) {
        if (stop_flag.load(std::memory_order_relaxed)) {
          break;
        }
        countdown = cadence;
      }
      --countdown;
      DoOneOp(workload, config, slot, record);
      progress.store(++attempts, std::memory_order_relaxed);
    }
  }
  if (slot.pending != 0) {
    slot.latency.RecordBatch(slot.samples, slot.pending);
    slot.pending = 0;
  }
  std::atomic_ref<bool>(slot.finished).store(true, std::memory_order_release);
}

}  // namespace

void ArmOpDeadline(std::uint64_t timeout_ns) {
  tls_op_deadline.deadline_ns = SteadyNowNs() + timeout_ns;
  tls_op_deadline.armed = true;
}

void DisarmOpDeadline() { tls_op_deadline.armed = false; }

std::unique_ptr<LockHandle> WrapDeadline(std::unique_ptr<LockHandle> inner) {
  return std::make_unique<DeadlineHandle>(std::move(inner));
}

double ScenarioResult::MetricOr(const std::string& name, double fallback) const {
  for (const ScenarioMetric& metric : metrics) {
    if (metric.name == name) {
      return metric.value;
    }
  }
  return fallback;
}

ScenarioResult RunScenario(ScenarioWorkload& workload, const ScenarioConfig& config,
                           const std::string& scenario_name) {
  const std::vector<std::string> counter_names = workload.CounterNames();
  if (counter_names.size() > ScenarioWorkload::kMaxCounters) {
    throw std::invalid_argument("scenario declares more than kMaxCounters counters: " +
                                scenario_name);
  }

  // FailSafe: arm the requested failpoint profile for the whole run (setup
  // included), seeded from the run seed so fire patterns are reproducible.
  // No-op (and leaves any env-armed profile in place) when the spec is empty.
  ScopedFailpoints failpoint_scope(config.failpoints, config.seed);

  // LockScope: energy meter for the run phase. kAuto follows the fallback
  // chain (RAPL when readable, else the model integrating this run's worker
  // contexts); the result carries joules/TPP as dedicated fields.
  std::shared_ptr<ActivityRegistry> activity;
  std::unique_ptr<EnergyMeter> meter;
  if (config.meter != MeterChoice::kOff) {
    activity = std::make_shared<ActivityRegistry>(
        PowerModel(Topology::Detect(), PowerParams::PaperXeon()));
    meter = config.meter == MeterChoice::kModel ? std::make_unique<ModelMeter>(activity)
                                                : MakeDefaultMeter(activity);
  }

  // LockScope: trace rings. tids 0..threads-1 are the workers; the driver
  // thread (setup/run phase markers) uses tid = threads and the energy
  // sampler tid = threads + 1. Setup runs with the driver's sink installed
  // so preload-time lock activity is visible too.
  TraceBuffer* driver_trace = nullptr;
  if (config.trace) {
    driver_trace = TraceSession::Instance().NewBuffer(static_cast<std::uint16_t>(config.threads),
                                                      config.trace_buffer_events);
  }
  ScopedTraceSink driver_sink(driver_trace);

  // LockLint: arm the lock-order detector for the whole run (setup included
  // -- preload-time inversions are inversions too). The scenario's locks
  // are TracedHandle-wrapped by MakeLockFactory when config.lockdep is set,
  // so every acquire/release feeds the acquisition graph.
  ScopedLockdep lockdep_scope(config.lockdep || LockdepIsEnabled());

  TraceEmit(TraceEventKind::kPhaseBegin, 0);
  workload.Setup(config);
  TraceEmit(TraceEventKind::kPhaseEnd, 0);

  std::atomic<bool> start_flag{false};
  std::atomic<bool> stop_flag{false};
  std::vector<WorkerSlot> slots;
  slots.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    // Same per-thread seeding the pre-API cache driver used, so seeded runs
    // (and fig13's native rows) carry over unchanged.
    slots.emplace_back(config.seed + static_cast<std::uint64_t>(t) * 7 + 1);
    slots.back().ctx.thread_index = t;
  }

  std::vector<TraceBuffer*> worker_traces(static_cast<std::size_t>(config.threads), nullptr);
  if (config.trace) {
    for (int t = 0; t < config.threads; ++t) {
      worker_traces[static_cast<std::size_t>(t)] = TraceSession::Instance().NewBuffer(
          static_cast<std::uint16_t>(t), config.trace_buffer_events);
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    WorkerSlot& slot = slots[static_cast<std::size_t>(t)];
    TraceBuffer* trace_buffer = worker_traces[static_cast<std::size_t>(t)];
    workers.emplace_back([&, &slot = slot, trace_buffer] {
      ScopedTraceSink sink(trace_buffer);  // null when tracing is off
      WorkerBody(workload, config, slot, start_flag, stop_flag);
    });
  }

  // The model meter integrates "worker contexts busy" between Start() and
  // Stop(); RAPL ignores the registry. States are restored after the join.
  if (activity != nullptr) {
    for (int t = 0; t < config.threads; ++t) {
      activity->SetState(t, ActivityState::kCritical);
    }
  }
  if (meter != nullptr) {
    meter->Start();
  }
  std::unique_ptr<EnergySampler> sampler;
  if (meter != nullptr && config.energy_sample_ms > 0) {
    TraceBuffer* sampler_sink = nullptr;
    if (config.trace) {
      sampler_sink = TraceSession::Instance().NewBuffer(
          static_cast<std::uint16_t>(config.threads + 1), config.trace_buffer_events);
    }
    sampler = std::make_unique<EnergySampler>(meter.get(), config.energy_sample_ms, sampler_sink);
  }

  // FailSafe: watchdog thread. Polls every worker's attempt counter; a
  // worker that is neither finished nor advancing for a full window is
  // declared stalled. The report goes to stderr with the lockdep held-lock
  // snapshot and the failpoint counters, then the run either aborts with
  // exit code 3 (default: a wedged run fails fast instead of hanging ctest)
  // or is counted and the window re-armed. Trace tid threads+2 when tracing.
  std::atomic<bool> watchdog_stop{false};
  std::uint64_t watchdog_stalls = 0;
  std::thread watchdog;
  if (config.watchdog_ms > 0) {
    watchdog = std::thread([&] {
      TraceBuffer* wd_sink = nullptr;
      if (config.trace) {
        wd_sink = TraceSession::Instance().NewBuffer(
            static_cast<std::uint16_t>(config.threads + 2), config.trace_buffer_events);
      }
      ScopedTraceSink sink(wd_sink);
      const auto poll = std::chrono::milliseconds(
          std::max<std::uint32_t>(1, std::min<std::uint32_t>(config.watchdog_ms / 4, 25)));
      const std::uint64_t window_ns = std::uint64_t{config.watchdog_ms} * 1'000'000;
      while (!start_flag.load(std::memory_order_acquire)) {
        if (watchdog_stop.load(std::memory_order_acquire)) {
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const std::uint64_t run_start = SteadyNowNs();
      std::vector<std::uint64_t> last_progress(slots.size(), 0);
      std::vector<std::uint64_t> last_change_ns(slots.size(), run_start);
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll);
        const std::uint64_t now = SteadyNowNs();
        for (std::size_t w = 0; w < slots.size(); ++w) {
          if (std::atomic_ref<bool>(slots[w].finished).load(std::memory_order_acquire)) {
            continue;
          }
          const std::uint64_t p =
              std::atomic_ref<std::uint64_t>(slots[w].progress).load(std::memory_order_relaxed);
          if (p != last_progress[w]) {
            last_progress[w] = p;
            last_change_ns[w] = now;
            continue;
          }
          if (now - last_change_ns[w] < window_ns) {
            continue;
          }
          const unsigned long long stalled_ms = (now - last_change_ns[w]) / 1'000'000;
          std::fprintf(stderr,
                       "lockin watchdog: worker %zu of scenario '%s' (lock %s) made no "
                       "progress for %llu ms (%llu op attempts completed)\n",
                       w, scenario_name.c_str(), config.lock_name.c_str(), stalled_ms,
                       static_cast<unsigned long long>(p));
          std::fputs("held traced locks at stall time:\n", stderr);
          std::fputs(LockdepHeldDescribe().c_str(), stderr);
          const std::string failpoints = FailpointsReport();
          if (!failpoints.empty()) {
            std::fputs(failpoints.c_str(), stderr);
          }
          TraceEmit(TraceEventKind::kWatchdogStall, static_cast<std::uint64_t>(w));
          if (config.on_stall) {
            config.on_stall();
          }
          if (config.watchdog_abort) {
            std::fputs("lockin watchdog: aborting the wedged run (exit code 3)\n", stderr);
            std::fflush(nullptr);
            std::_Exit(3);
          }
          ++watchdog_stalls;
          last_change_ns[w] = now;  // re-arm for the next window
        }
      }
    });
  }

  TraceEmit(TraceEventKind::kPhaseBegin, 1);
  const auto t0 = std::chrono::steady_clock::now();
  start_flag.store(true, std::memory_order_release);
  if (config.duration_ms != 0) {
    // Paced in short chunks so an external stop (SIGINT) ends the run early.
    const auto run_deadline = t0 + std::chrono::milliseconds(config.duration_ms);
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= run_deadline) {
        break;
      }
      if (config.external_stop != nullptr &&
          config.external_stop->load(std::memory_order_relaxed)) {
        break;
      }
      const auto chunk = std::min<std::chrono::steady_clock::duration>(
          run_deadline - now, std::chrono::milliseconds(10));
      std::this_thread::sleep_for(chunk);
    }
    stop_flag.store(true, std::memory_order_release);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (watchdog.joinable()) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  TraceEmit(TraceEventKind::kPhaseEnd, 1);

  ScenarioResult result;
  if (sampler != nullptr) {
    result.energy_series = sampler->Finish();
  }
  if (meter != nullptr) {
    result.energy = meter->Stop();
    result.meter_name = meter->Name();
  }
  if (activity != nullptr) {
    for (int t = 0; t < config.threads; ++t) {
      activity->SetState(t, ActivityState::kInactive);
    }
  }
  result.scenario = scenario_name;
  result.lock_name = config.lock_name;
  result.threads = config.threads;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  std::vector<std::uint64_t> counter_sums(counter_names.size(), 0);
  for (const WorkerSlot& slot : slots) {
    result.total_ops += slot.ctx.op_index;
    result.ops_shed += slot.shed;
    result.shed_retries += slot.shed_retries;
    result.op_latency_cycles.Merge(slot.latency);
    for (std::size_t c = 0; c < counter_sums.size(); ++c) {
      counter_sums[c] += slot.counters[c];
    }
  }
  result.watchdog_stalls = watchdog_stalls;
  if (config.op_deadline_ns > 0) {
    MetricsRegistry::Instance().Counter("failsafe.ops_shed").Add(result.ops_shed);
    MetricsRegistry::Instance().Counter("failsafe.shed_retries").Add(result.shed_retries);
  }
  if (config.watchdog_ms > 0) {
    MetricsRegistry::Instance().Counter("failsafe.watchdog_stalls").Add(result.watchdog_stalls);
  }
  result.ops_per_s =
      result.seconds > 0 ? static_cast<double>(result.total_ops) / result.seconds : 0;
  result.metrics.reserve(counter_names.size());
  for (std::size_t c = 0; c < counter_names.size(); ++c) {
    result.metrics.push_back({counter_names[c], static_cast<double>(counter_sums[c])});
  }
  workload.AddSystemMetrics(&result.metrics);
  return result;
}

// --- Registry ----------------------------------------------------------------

ScenarioRegistry& ScenarioRegistry::Instance() {
  // Built-ins are registered through explicit per-system functions (declared
  // in scenarios/scenario_defs.hpp) instead of static registrar objects:
  // lockin is a static library, and the linker would drop a scenario
  // translation unit nothing references, silently emptying the registry.
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    RegisterKvStoreScenarios(*r);
    RegisterCacheScenarios(*r);
    RegisterNosqlScenarios(*r);
    RegisterGraphScenarios(*r);
    RegisterMiniSqlScenarios(*r);
    RegisterWalStoreScenarios(*r);
    RegisterCowListScenarios(*r);
    RegisterRwLockScenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::Register(ScenarioInfo info, Factory factory) {
  if (Find(info.name) != nullptr) {
    throw std::invalid_argument("duplicate scenario name: " + info.name);
  }
  entries_.push_back({std::move(info), std::move(factory)});
}

std::vector<ScenarioInfo> ScenarioRegistry::List() const {
  std::vector<ScenarioInfo> infos;
  infos.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    infos.push_back(entry.info);
  }
  return infos;
}

const ScenarioInfo* ScenarioRegistry::Find(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) {
      return &entry.info;
    }
  }
  return nullptr;
}

std::unique_ptr<ScenarioWorkload> ScenarioRegistry::Make(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) {
      return entry.factory();
    }
  }
  return nullptr;
}

std::vector<ScenarioInfo> RegisteredScenarios() { return ScenarioRegistry::Instance().List(); }

std::unique_ptr<ScenarioWorkload> MakeScenario(const std::string& name) {
  return ScenarioRegistry::Instance().Make(name);
}

std::unique_ptr<ScenarioWorkload> MakeScenarioOrThrow(const std::string& name) {
  std::unique_ptr<ScenarioWorkload> workload = MakeScenario(name);
  if (workload == nullptr) {
    std::string message = "unknown scenario: '" + name + "'; available scenarios:";
    for (const ScenarioInfo& info : RegisteredScenarios()) {
      message += ' ';
      message += info.name;
    }
    throw std::invalid_argument(message);
  }
  return workload;
}

ScenarioResult RunScenarioByName(const std::string& name, const ScenarioConfig& config) {
  const std::unique_ptr<ScenarioWorkload> workload = MakeScenarioOrThrow(name);
  return RunScenario(*workload, config, name);
}

std::uint64_t SkewedKey(Xoshiro256* rng, std::uint64_t space) {
  std::uint64_t lo = 0;
  std::uint64_t hi = space;
  for (int level = 0; level < 4 && hi - lo > 16; ++level) {
    if (rng->NextDouble() < 0.8) {
      hi = lo + (hi - lo) / 5;
    } else {
      lo = lo + (hi - lo) / 5;
    }
  }
  return lo + rng->NextBelow(hi - lo + 1);
}

}  // namespace lockin
