// HamsterDB-shape scenarios over KvStore (paper Table 3: HamsterDB, WT /
// WT/RD / RD configurations -- 4 worker threads hammering one DB lock).
//
// The generic read_percent knob is the share of read-only operations
// (point Gets 5/6, short range scans 1/6); the write remainder splits
// 3/4 Put, 1/4 Erase. The three registered configs set the paper's mixes.
#include "src/systems/scenarios/scenario_defs.hpp"

#include "src/systems/kvstore.hpp"

namespace lockin {
namespace {

class KvStoreScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int read_percent = 50;
    std::uint64_t key_space = 20000;
  };

  explicit KvStoreScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    key_space_ = config.key_space != 0 ? config.key_space : params_.key_space;
    get_below_ = read_percent * 5 / 6;
    scan_below_ = read_percent;
    put_below_ = read_percent + (100 - read_percent) * 3 / 4;
    store_ = std::make_unique<KvStore>(config.MakeLockFactory(),
                                       ShardOptionsFrom(config, /*default_shards=*/1));
    // Preload every other key, like the pre-API kvstore_app driver.
    preloaded_ = 0;
    for (std::uint64_t key = 0; key < key_space_; key += 2) {
      store_->Put(key, "initial");
      ++preloaded_;
    }
  }

  std::vector<std::string> CounterNames() const override {
    return {"gets", "get_hits", "scans", "puts", "puts_new", "erases", "erases_hit"};
  }

  void Op(ThreadContext& ctx) override {
    const std::uint64_t key = ctx.rng.NextBelow(key_space_);
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < get_below_) {
      ++ctx.counters[0];
      if (store_->Get(key, &ctx.value)) {
        ++ctx.counters[1];
      }
    } else if (roll < scan_below_) {
      ++ctx.counters[2];
      store_->CountRange(key, key + 64);
    } else if (roll < put_below_) {
      ++ctx.counters[3];
      AssignKey(&ctx.value, 'v', ctx.op_index);
      if (store_->Put(key, ctx.value)) {
        ++ctx.counters[4];
      }
    } else {
      ++ctx.counters[5];
      if (store_->Erase(key)) {
        ++ctx.counters[6];
      }
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"size", static_cast<double>(store_->Size())});
    out->push_back({"preloaded", static_cast<double>(preloaded_)});
    out->push_back({"invariants_ok", store_->CheckInvariants() ? 1.0 : 0.0});
  }

 private:
  Params params_;
  int get_below_ = 0;
  int scan_below_ = 0;
  int put_below_ = 0;
  std::uint64_t key_space_ = 0;
  std::uint64_t preloaded_ = 0;
  std::unique_ptr<KvStore> store_;
};

}  // namespace

void RegisterKvStoreScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description,
                         KvStoreScenario::Params params) {
    registry.Register({name, "KvStore", description},
                      [params] { return std::make_unique<KvStoreScenario>(params); });
  };
  add("kvstore/WT", "write transactions: 90% Put/Erase, 10% reads over one DB lock",
      {/*read_percent=*/10, /*key_space=*/20000});
  add("kvstore/WT-RD", "mixed transactions: 50% reads/scans, 50% Put/Erase",
      {/*read_percent=*/50, /*key_space=*/20000});
  add("kvstore/RD", "read transactions: 90% Gets/scans, 10% writes",
      {/*read_percent=*/90, /*key_space=*/20000});
}

}  // namespace lockin
