// RocksDB-shape scenarios over WalStore (paper section 6: "RocksDB employs
// a write queue ... and mostly relies on a conditional variable", which is
// why the lock swap moves it the least). Writers group-commit through the
// leader under the DB lock; reads take a short memtable lock.
//
// Mix: reads are point Gets; the write remainder splits 90% Put, 10%
// Delete. Every Put/Delete appends exactly one WAL record (the invariant
// the scenario tests pin).
#include "src/systems/scenarios/scenario_defs.hpp"

#include "src/systems/walstore.hpp"

namespace lockin {
namespace {

class WalStoreScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int read_percent = 10;
    std::uint64_t key_space = 20000;
  };

  explicit WalStoreScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    key_space_ = config.key_space != 0 ? config.key_space : params_.key_space;
    get_below_ = read_percent;
    put_below_ = read_percent + (100 - read_percent) * 9 / 10;
    // combine is accepted but a no-op in WalStore: the write queue already
    // group-commits (see walstore.hpp).
    store_ = std::make_unique<WalStore>(config.MakeLockFactory(),
                                        ShardOptionsFrom(config, /*default_shards=*/1));
    preloaded_ = 0;
    for (std::uint64_t key = 0; key < key_space_; key += 2) {
      store_->Put(key, "initial");
      ++preloaded_;
    }
  }

  std::vector<std::string> CounterNames() const override {
    return {"gets", "get_hits", "puts", "deletes"};
  }

  void Op(ThreadContext& ctx) override {
    const std::uint64_t key = ctx.rng.NextBelow(key_space_);
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < get_below_) {
      ++ctx.counters[0];
      if (store_->Get(key, &ctx.value)) {
        ++ctx.counters[1];
      }
    } else if (roll < put_below_) {
      ++ctx.counters[2];
      AssignKey(&ctx.value, 'v', ctx.op_index);
      store_->Put(key, std::move(ctx.value));
    } else {
      ++ctx.counters[3];
      store_->Delete(key);
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"wal_records", static_cast<double>(store_->wal_records())});
    out->push_back({"batches", static_cast<double>(store_->batches())});
    out->push_back({"memtable_size", static_cast<double>(store_->MemtableSize())});
    out->push_back({"preloaded", static_cast<double>(preloaded_)});
  }

 private:
  Params params_;
  int get_below_ = 0;
  int put_below_ = 0;
  std::uint64_t key_space_ = 0;
  std::uint64_t preloaded_ = 0;
  std::unique_ptr<WalStore> store_;
};

}  // namespace

void RegisterWalStoreScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description,
                         WalStoreScenario::Params params) {
    registry.Register({name, "WalStore", description},
                      [params] { return std::make_unique<WalStoreScenario>(params); });
  };
  add("walstore/append", "write-heavy group commit: 10% Get, 81% Put, 9% Delete",
      {/*read_percent=*/10, /*key_space=*/20000});
  add("walstore/readwrite", "balanced: 50% Get, 45% Put, 5% Delete",
      {/*read_percent=*/50, /*key_space=*/20000});
}

}  // namespace lockin
