// Memcached-shape scenarios over MemCache (paper Table 3: Memcached,
// GET- vs SET-heavy mixes; Figures 13-14).
//
// The Op body keeps the exact per-op RNG call sequence of the pre-API
// RunCacheWorkload driver (SkewedKey pick, then the GET/SET roll), so a
// seeded run through the unified driver reproduces the same hit counts and
// evictions the fig13 native rows had before the refactor.
#include "src/systems/scenarios/scenario_defs.hpp"

namespace lockin {

void CacheScenario::Setup(const ScenarioConfig& config) {
  get_percent_ = config.read_percent >= 0 ? config.read_percent : params_.get_percent;
  key_space_ = config.key_space != 0 ? config.key_space : params_.key_space;
  const ShardOptions shard_options = ShardOptionsFrom(config, params_.shards);
  cache_ = std::make_unique<MemCache>(
      config.MakeLockFactory(),
      MemCache::Config{shard_options.shards, params_.capacity, params_.lru_mode,
                       shard_options.combine, shard_options.rw});
}

std::vector<std::string> CacheScenario::CounterNames() const {
  return {"gets", "get_hits", "sets"};
}

void CacheScenario::Op(ThreadContext& ctx) {
  AssignKey(&ctx.key, 'k', SkewedKey(&ctx.rng, key_space_));
  if (static_cast<int>(ctx.rng.NextBelow(100)) < get_percent_) {
    ++ctx.counters[0];
    if (cache_->Get(ctx.key, &ctx.value)) {
      ++ctx.counters[1];
    }
  } else {
    ++ctx.counters[2];
    AssignKey(&ctx.value, 'v', ctx.op_index);
    cache_->Set(ctx.key, std::move(ctx.value));
  }
}

void CacheScenario::AddSystemMetrics(std::vector<ScenarioMetric>* out) const {
  out->push_back({"size", static_cast<double>(cache_->Size())});
  out->push_back({"evictions", static_cast<double>(cache_->evictions())});
}

void RegisterCacheScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description, CacheScenario::Params params) {
    registry.Register({name, "MemCache", description},
                      [params] { return std::make_unique<CacheScenario>(params); });
  };
  CacheScenario::Params set_heavy;
  set_heavy.get_percent = 10;
  CacheScenario::Params get_heavy;
  get_heavy.get_percent = 90;
  add("cache/set-heavy", "10% GET / 90% SET, global LRU lock (paper-shape SET contention)",
      set_heavy);
  add("cache/get-heavy", "90% GET / 10% SET, global LRU lock (GETs spread over the stripes)",
      get_heavy);
  set_heavy.lru_mode = MemCache::LruMode::kPerShard;
  get_heavy.lru_mode = MemCache::LruMode::kPerShard;
  add("cache/set-heavy-seglru", "10% GET / 90% SET, segmented per-shard LRU (scale scenario)",
      set_heavy);
  add("cache/get-heavy-seglru", "90% GET / 10% SET, segmented per-shard LRU (scale scenario)",
      get_heavy);
}

}  // namespace lockin
