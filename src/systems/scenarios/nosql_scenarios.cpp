// Kyoto Cabinet-shape scenarios over the three NosqlDb backends (paper
// Table 3: Kyoto CACHE / HT DB / B-TREE). Short critical sections behind
// very few locks -- the profile where the paper's lock swap moves the most
// (1.5-1.85x, Figures 13-14).
//
// Mix: reads are point Gets; the write remainder splits 60% Set, 30%
// Append (Kyoto's read-modify-write) and 10% Remove.
#include "src/systems/scenarios/scenario_defs.hpp"

#include "src/systems/nosql.hpp"

namespace lockin {
namespace {

enum class Backend { kCache, kHash, kTree };

class NosqlScenario final : public ScenarioWorkload {
 public:
  struct Params {
    Backend backend = Backend::kCache;
    int read_percent = 50;
    std::uint64_t key_space = 10000;
  };

  explicit NosqlScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    key_space_ = config.key_space != 0 ? config.key_space : params_.key_space;
    get_below_ = read_percent;
    const int writes = 100 - read_percent;
    set_below_ = read_percent + writes * 6 / 10;
    append_below_ = read_percent + writes * 9 / 10;
    switch (params_.backend) {
      case Backend::kCache:
        db_ = std::make_unique<CacheDb>(config.MakeLockFactory(),
                                        ShardOptionsFrom(config, /*default_shards=*/1));
        break;
      case Backend::kHash:
        // HT keeps Kyoto's 8 bucket regions as its default shard count.
        db_ = std::make_unique<HashDb>(config.MakeLockFactory(),
                                       ShardOptionsFrom(config, /*default_shards=*/8));
        break;
      case Backend::kTree:
        db_ = std::make_unique<TreeDb>(config.MakeLockFactory(),
                                       ShardOptionsFrom(config, /*default_shards=*/1));
        break;
    }
    preloaded_ = 0;
    for (std::uint64_t key = 0; key < key_space_; key += 2) {
      db_->Set(key, "initial");
      ++preloaded_;
    }
  }

  std::vector<std::string> CounterNames() const override {
    return {"gets", "get_hits", "sets", "appends", "removes", "removes_hit"};
  }

  void Op(ThreadContext& ctx) override {
    const std::uint64_t key = ctx.rng.NextBelow(key_space_);
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < get_below_) {
      ++ctx.counters[0];
      if (db_->Get(key, &ctx.value)) {
        ++ctx.counters[1];
      }
    } else if (roll < set_below_) {
      ++ctx.counters[2];
      AssignKey(&ctx.value, 'v', ctx.op_index);
      db_->Set(key, std::move(ctx.value));
    } else if (roll < append_below_) {
      ++ctx.counters[3];
      db_->Append(key, "+");
    } else {
      ++ctx.counters[4];
      if (db_->Remove(key)) {
        ++ctx.counters[5];
      }
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"count", static_cast<double>(db_->Count())});
    out->push_back({"preloaded", static_cast<double>(preloaded_)});
  }

 private:
  Params params_;
  int get_below_ = 0;
  int set_below_ = 0;
  int append_below_ = 0;
  std::uint64_t key_space_ = 0;
  std::uint64_t preloaded_ = 0;
  std::unique_ptr<NosqlDb> db_;
};

}  // namespace

void RegisterNosqlScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description, Backend backend) {
    NosqlScenario::Params params;
    params.backend = backend;
    registry.Register({name, "NosqlDb", description},
                      [params] { return std::make_unique<NosqlScenario>(params); });
  };
  add("nosql/cache", "CACHE backend: one hash map behind a whole-DB lock, 50/50 mix",
      Backend::kCache);
  add("nosql/hash", "HT backend: bucket-region locks (8 regions), 50/50 mix", Backend::kHash);
  add("nosql/btree", "B-TREE backend: B+-tree behind one lock, 50/50 mix", Backend::kTree);
}

}  // namespace lockin
