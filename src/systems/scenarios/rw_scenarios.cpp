// Read-heavy reader-writer scenario over a BPlusTree guarded by the
// library's futex RwLock (src/locks/rwlock.hpp) -- the Kyoto Cabinet /
// HamsterDB shape from the paper's section 6 where most transactions only
// read and take the DB lock shared.
//
// Unlike the other scenarios this one does not swap config.lock_name in:
// reader-writer semantics are the point, and the LockHandle interface is
// mutual-exclusion only, so the RwLock is fixed and lock_name is recorded
// but ignored. Reader/writer acquire totals are reported two ways: as
// per-thread scenario counters ("reader_acquires"/"writer_acquires" in the
// result metrics, deterministic for a fixed seed) and through the process
// MetricsRegistry ("rwkv.reader_acquires"/"rwkv.writer_acquires",
// cheap sharded counters that scenario_runner --metrics exports).
#include "src/systems/scenarios/scenario_defs.hpp"

#include <mutex>

#include "src/locks/rwlock.hpp"
#include "src/obs/metrics.hpp"
#include "src/systems/btree.hpp"

namespace lockin {
namespace {

class RwKvScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int read_percent = 90;
    std::uint64_t key_space = 20000;
  };

  explicit RwKvScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    key_space_ = config.key_space != 0 ? config.key_space : params_.key_space;
    get_below_ = read_percent * 5 / 6;
    scan_below_ = read_percent;
    put_below_ = read_percent + (100 - read_percent) * 3 / 4;
    tree_ = std::make_unique<BPlusTree>();
    reader_metric_ = &MetricsRegistry::Instance().Counter("rwkv.reader_acquires");
    writer_metric_ = &MetricsRegistry::Instance().Counter("rwkv.writer_acquires");
    preloaded_ = 0;
    for (std::uint64_t key = 0; key < key_space_; key += 2) {
      tree_->Put(key, "initial");
      ++preloaded_;
    }
  }

  std::vector<std::string> CounterNames() const override {
    return {"reader_acquires", "writer_acquires", "gets", "get_hits", "scans", "puts", "erases"};
  }

  void Op(ThreadContext& ctx) override {
    const std::uint64_t key = ctx.rng.NextBelow(key_space_);
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < scan_below_) {
      ++ctx.counters[0];
      reader_metric_->Add(1);
      SharedGuard guard(lock_);
      if (roll < get_below_) {
        ++ctx.counters[2];
        if (tree_->Get(key, &ctx.value)) {
          ++ctx.counters[3];
        }
      } else {
        ++ctx.counters[4];
        std::uint64_t seen = 0;
        tree_->Scan(key, key + 64, [&seen](std::uint64_t, const std::string&) {
          ++seen;
          return true;
        });
      }
    } else {
      ++ctx.counters[1];
      writer_metric_->Add(1);
      std::lock_guard<RwLock> guard(lock_);
      if (roll < put_below_) {
        ++ctx.counters[5];
        AssignKey(&ctx.value, 'v', ctx.op_index);
        tree_->Put(key, ctx.value);
      } else {
        ++ctx.counters[6];
        tree_->Erase(key);
      }
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"size", static_cast<double>(tree_->size())});
    out->push_back({"preloaded", static_cast<double>(preloaded_)});
    out->push_back({"invariants_ok", tree_->CheckInvariants() ? 1.0 : 0.0});
  }

 private:
  Params params_;
  int get_below_ = 0;
  int scan_below_ = 0;
  int put_below_ = 0;
  std::uint64_t key_space_ = 0;
  std::uint64_t preloaded_ = 0;
  MetricCounter* reader_metric_ = nullptr;
  MetricCounter* writer_metric_ = nullptr;
  RwLock lock_;
  std::unique_ptr<BPlusTree> tree_;
};

}  // namespace

void RegisterRwLockScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description, RwKvScenario::Params params) {
    registry.Register({name, "RwKv", description},
                      [params] { return std::make_unique<RwKvScenario>(params); });
  };
  add("rwkv/read-heavy",
      "90% shared-lock reads (Gets/scans) vs exclusive writes over RwLock+BPlusTree "
      "(lock_name ignored: the rwlock is the system under test)",
      {/*read_percent=*/90, /*key_space=*/20000});
  add("rwkv/write-heavy",
      "30% shared-lock reads, 70% exclusive Put/Erase over RwLock+BPlusTree "
      "(lock_name ignored)",
      {/*read_percent=*/30, /*key_space=*/20000});
}

}  // namespace lockin
