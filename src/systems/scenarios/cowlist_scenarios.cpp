// Copy-on-write list scenarios over CowList (the paper's Figure 1
// motivating example: java.util.concurrent.CopyOnWriteArrayList, where the
// mutex-vs-spinlock choice is the power/efficiency trade the paper opens
// with). Reads are wait-free snapshot loads; every mutation copies the
// backing array under the single lock.
//
// Mix: reads split 3/4 point Gets, 1/4 full-snapshot Sums; the write
// remainder splits 80% Set (in place size), 10% Add, 10% RemoveAt, so the
// list size performs a slow random walk around its preload.
#include "src/systems/scenarios/scenario_defs.hpp"

#include "src/systems/cowlist.hpp"

namespace lockin {
namespace {

class CowListScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int read_percent = 90;
    std::uint64_t list_size = 512;  // overridable via ScenarioConfig::key_space
  };

  explicit CowListScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    list_size_ = config.key_space != 0 ? config.key_space : params_.list_size;
    get_below_ = read_percent * 3 / 4;
    sum_below_ = read_percent;
    const int writes = 100 - read_percent;
    set_below_ = read_percent + writes * 8 / 10;
    add_below_ = read_percent + writes * 9 / 10;
    list_ = std::make_unique<CowList>(config.MakeLockFactory());
    for (std::uint64_t i = 0; i < list_size_; ++i) {
      list_->Add(static_cast<std::int64_t>(i));
    }
  }

  std::vector<std::string> CounterNames() const override {
    return {"gets", "get_hits", "sums", "sets", "adds", "removes_hit"};
  }

  void Op(ThreadContext& ctx) override {
    // Indexes range over 2x the preload so out-of-range reads/writes are
    // exercised too as the size random-walks.
    const std::size_t index = static_cast<std::size_t>(ctx.rng.NextBelow(list_size_ * 2));
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < get_below_) {
      ++ctx.counters[0];
      std::int64_t value = 0;
      if (list_->Get(index, &value)) {
        ++ctx.counters[1];
      }
    } else if (roll < sum_below_) {
      ++ctx.counters[2];
      (void)list_->Sum();
    } else if (roll < set_below_) {
      ++ctx.counters[3];
      list_->Set(index, static_cast<std::int64_t>(ctx.op_index));
    } else if (roll < add_below_) {
      ++ctx.counters[4];
      list_->Add(static_cast<std::int64_t>(ctx.op_index));
    } else {
      if (list_->RemoveAt(index)) {
        ++ctx.counters[5];
      }
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"size", static_cast<double>(list_->Size())});
    out->push_back({"preloaded", static_cast<double>(list_size_)});
  }

 private:
  Params params_;
  int get_below_ = 0;
  int sum_below_ = 0;
  int set_below_ = 0;
  int add_below_ = 0;
  std::uint64_t list_size_ = 0;
  std::unique_ptr<CowList> list_;
};

}  // namespace

void RegisterCowListScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description, int read_percent) {
    CowListScenario::Params params;
    params.read_percent = read_percent;
    registry.Register({name, "CowList", description},
                      [params] { return std::make_unique<CowListScenario>(params); });
  };
  add("cowlist/readmostly", "90% wait-free reads, 10% copy-on-write mutations (Figure 1 shape)",
      90);
  add("cowlist/writeheavy", "50% reads, 50% copy-on-write mutations", 50);
}

}  // namespace lockin
