// Internal plumbing for the built-in scenarios (src/systems/scenarios/*).
//
// Each mini-system contributes one translation unit of ScenarioWorkload
// adapters plus a Register*Scenarios function; ScenarioRegistry::Instance()
// calls every function below, which both populates the registry and keeps
// the linker from dropping the adapter TUs out of the static library.
// Scenario implementations and their mix defaults live in the .cpp files;
// only CacheScenario is declared here because the legacy RunCacheWorkload
// wrapper (src/systems/cache_workload.cpp) and tests construct it directly
// with non-registry shard/capacity parameters.
#ifndef SRC_SYSTEMS_SCENARIOS_SCENARIO_DEFS_HPP_
#define SRC_SYSTEMS_SCENARIOS_SCENARIO_DEFS_HPP_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/systems/cache.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {

void RegisterKvStoreScenarios(ScenarioRegistry& registry);
void RegisterCacheScenarios(ScenarioRegistry& registry);
void RegisterNosqlScenarios(ScenarioRegistry& registry);
void RegisterGraphScenarios(ScenarioRegistry& registry);
void RegisterMiniSqlScenarios(ScenarioRegistry& registry);
void RegisterWalStoreScenarios(ScenarioRegistry& registry);
void RegisterCowListScenarios(ScenarioRegistry& registry);
void RegisterRwLockScenarios(ScenarioRegistry& registry);

// ShardCombine: maps the generic ScenarioConfig knobs onto a system's
// ShardOptions. config.shards == 0 keeps the scenario's registered default
// shard count (the paper shape); combine/rw pass through (ShardedMap
// rejects the combination at construction).
inline ShardOptions ShardOptionsFrom(const ScenarioConfig& config,
                                     std::size_t default_shards) {
  ShardOptions options;
  options.shards = config.shards != 0 ? config.shards : default_shards;
  options.combine = config.combine;
  options.rw = config.rw;
  return options;
}

// Formats "<prefix><n>" into *out without a std::to_string temporary; with
// a warm capacity this performs no allocation (the hot-path idiom the cache
// driver established).
inline void AssignKey(std::string* out, char prefix, std::uint64_t n) {
  char buf[32];
  const int len =
      std::snprintf(buf, sizeof buf, "%c%llu", prefix, static_cast<unsigned long long>(n));
  out->assign(buf, static_cast<std::size_t>(len));
}

// The Memcached-shape scenario (skewed GET/SET mix over MemCache). Declared
// here so RunCacheWorkload can construct it with explicit shard/capacity/
// LRU-mode parameters; the registry bakes the paper-shape defaults.
class CacheScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int get_percent = 50;  // rest are SETs
    std::size_t shards = 16;
    std::size_t capacity = 50000;
    std::uint64_t key_space = 60000;
    MemCache::LruMode lru_mode = MemCache::LruMode::kGlobalLock;
  };

  explicit CacheScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override;
  std::vector<std::string> CounterNames() const override;
  void Op(ThreadContext& ctx) override;
  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override;

 private:
  Params params_;
  int get_percent_ = 50;
  std::uint64_t key_space_ = 0;
  std::unique_ptr<MemCache> cache_;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_SCENARIOS_SCENARIO_DEFS_HPP_
