// SQLite-shape scenarios over MiniSql (paper Table 3: SQLite running TPC-C
// with 8-64 concurrent connections). One writer lock serializes all
// mutations; a pager lock is crossed by reads too -- connection counts
// beyond the hardware are what break fair spinlocks in Figures 13-14.
//
// read_percent is the STOCK-LEVEL (read-only) share; the transactional
// remainder splits between NEW-ORDER and PAYMENT in the registered ratio.
#include "src/systems/scenarios/scenario_defs.hpp"

#include <vector>

#include "src/platform/cacheline.hpp"
#include "src/systems/minisql.hpp"

namespace lockin {
namespace {

class MiniSqlScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int read_percent = 12;       // STOCK-LEVEL share
    int neworder_per_mille = 511;  // NEW-ORDER share of the write remainder
    int warehouses = 4;
    int districts = 4;
    int items = 200;
  };

  explicit MiniSqlScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    stock_below_ = read_percent;
    neworder_below_ =
        read_percent + (100 - read_percent) * params_.neworder_per_mille / 1000;
    // ShardCombine knobs shard the pager (stock) path only; the writer lock
    // is SQLite's transactional shape and stays single. combine has no
    // non-transactional combinable path here and is ignored.
    const ShardOptions shard_options = ShardOptionsFrom(config, /*default_shards=*/1);
    db_ = std::make_unique<MiniSql>(
        config.MakeLockFactory(),
        MiniSql::Config{params_.warehouses, params_.districts, params_.items,
                        shard_options.shards, shard_options.rw});
    // Per-thread NEW-ORDER item scratch, sized once here so Op never touches
    // a vector header (each slot's heap buffer is private to its thread).
    item_scratch_.assign(static_cast<std::size_t>(config.threads), ItemScratch{});
    for (ItemScratch& scratch : item_scratch_) {
      scratch.items.resize(5);
    }
  }

  std::vector<std::string> CounterNames() const override {
    return {"neworders", "payments", "stocklevels"};
  }

  void Op(ThreadContext& ctx) override {
    const int warehouse = static_cast<int>(ctx.rng.NextBelow(
        static_cast<std::uint64_t>(params_.warehouses)));
    const int district = static_cast<int>(ctx.rng.NextBelow(
        static_cast<std::uint64_t>(params_.districts)));
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < stock_below_) {
      ++ctx.counters[2];
      db_->StockLevel(warehouse, district, 50);
    } else if (roll < neworder_below_) {
      ++ctx.counters[0];
      std::vector<int>& items =
          item_scratch_[static_cast<std::size_t>(ctx.thread_index)].items;
      for (int& item : items) {
        item = static_cast<int>(ctx.rng.NextBelow(static_cast<std::uint64_t>(params_.items)));
      }
      db_->NewOrder(warehouse, district, items, &ctx.rng);
    } else {
      ++ctx.counters[1];
      db_->Payment(warehouse, district, ctx.rng.NextBelow(1000), 1.0);
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"order_count", static_cast<double>(db_->OrderCount())});
    double ytd = 0;
    double district_ytd = 0;
    for (int w = 0; w < params_.warehouses; ++w) {
      ytd += db_->WarehouseYtd(w);
      district_ytd += db_->DistrictYtdSum(w);
    }
    out->push_back({"warehouse_ytd", ytd});
    out->push_back({"district_ytd", district_ytd});
  }

 private:
  struct alignas(kCacheLineSize) ItemScratch {
    std::vector<int> items;
  };

  Params params_;
  int stock_below_ = 0;
  int neworder_below_ = 0;
  std::unique_ptr<MiniSql> db_;
  std::vector<ItemScratch> item_scratch_;
};

}  // namespace

void RegisterMiniSqlScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description, MiniSqlScenario::Params params) {
    registry.Register({name, "MiniSql", description},
                      [params] { return std::make_unique<MiniSqlScenario>(params); });
  };
  MiniSqlScenario::Params neworder;  // TPC-C-ish 45/43/12 NEW-ORDER/PAYMENT/STOCK-LEVEL
  MiniSqlScenario::Params payment;
  payment.read_percent = 10;
  payment.neworder_per_mille = 111;  // ~10/80/10
  add("minisql/neworder", "TPC-C-like mix: 45% NEW-ORDER, 43% PAYMENT, 12% STOCK-LEVEL",
      neworder);
  add("minisql/payment", "payment-heavy: 10% NEW-ORDER, 80% PAYMENT, 10% STOCK-LEVEL", payment);
}

}  // namespace lockin
