// MySQL/LinkBench-shape scenarios over GraphStore (paper Table 3: MySQL
// driven by Facebook's LinkBench). Sharded row locks plus one log lock
// every write crosses; the profile where oversubscribed spinning collapses
// (the TICKET rows of Figures 13-14).
//
// Mix: reads split 3/4 link-list reads, 1/4 node point reads (LinkBench is
// link-read dominated); the write remainder splits 60% AddLink, 20%
// UpdateNode, 20% DeleteLink.
#include "src/systems/scenarios/scenario_defs.hpp"

#include "src/systems/graphstore.hpp"

namespace lockin {
namespace {

class GraphScenario final : public ScenarioWorkload {
 public:
  struct Params {
    int read_percent = 70;
    std::uint64_t nodes = 2048;  // overridable via ScenarioConfig::key_space
    std::size_t shards = 32;
    int link_types = 4;
  };

  explicit GraphScenario(Params params) : params_(params) {}

  void Setup(const ScenarioConfig& config) override {
    const int read_percent =
        config.read_percent >= 0 ? config.read_percent : params_.read_percent;
    nodes_ = config.key_space != 0 ? config.key_space : params_.nodes;
    link_read_below_ = read_percent * 3 / 4;
    node_read_below_ = read_percent;
    const int writes = 100 - read_percent;
    add_link_below_ = read_percent + writes * 6 / 10;
    update_below_ = read_percent + writes * 8 / 10;
    const ShardOptions shard_options = ShardOptionsFrom(config, params_.shards);
    graph_ = std::make_unique<GraphStore>(
        config.MakeLockFactory(),
        GraphStore::Config{shard_options.shards, shard_options.combine, shard_options.rw});
    // Deterministic preload: every node, plus a few links per node so the
    // link-list reads have something to traverse.
    Xoshiro256 rng(config.seed * 977 + 13);
    for (std::uint64_t n = 0; n < nodes_; ++n) {
      const std::uint64_t id = graph_->AddNode("node");
      for (int l = 0; l < 3; ++l) {
        graph_->AddLink(id, static_cast<int>(rng.NextBelow(params_.link_types)),
                        rng.NextBelow(nodes_) + 1);
      }
    }
    preload_log_records_ = graph_->log_records();
  }

  std::vector<std::string> CounterNames() const override {
    return {"link_reads", "node_reads", "node_read_hits", "logged_writes", "links_deleted"};
  }

  void Op(ThreadContext& ctx) override {
    const std::uint64_t id = ctx.rng.NextBelow(nodes_) + 1;  // AddNode ids start at 1
    const int type = static_cast<int>(ctx.rng.NextBelow(params_.link_types));
    const int roll = static_cast<int>(ctx.rng.NextBelow(100));
    if (roll < link_read_below_) {
      ++ctx.counters[0];
      graph_->GetLinkList(id, type, 8);
    } else if (roll < node_read_below_) {
      ++ctx.counters[1];
      if (graph_->GetNode(id, &ctx.value)) {
        ++ctx.counters[2];
      }
    } else if (roll < add_link_below_) {
      // AddLink always crosses the log lock, hit or duplicate.
      graph_->AddLink(id, type, ctx.rng.NextBelow(nodes_) + 1);
      ++ctx.counters[3];
    } else if (roll < update_below_) {
      AssignKey(&ctx.value, 'p', ctx.op_index);
      if (graph_->UpdateNode(id, ctx.value)) {
        ++ctx.counters[3];  // UpdateNode logs only when the node exists
      }
    } else {
      if (graph_->DeleteLink(id, type, ctx.rng.NextBelow(nodes_) + 1)) {
        ++ctx.counters[3];  // DeleteLink logs only when it removed something
        ++ctx.counters[4];
      }
    }
  }

  void AddSystemMetrics(std::vector<ScenarioMetric>* out) const override {
    out->push_back({"log_records", static_cast<double>(graph_->log_records())});
    out->push_back({"preload_log_records", static_cast<double>(preload_log_records_)});
  }

 private:
  Params params_;
  int link_read_below_ = 0;
  int node_read_below_ = 0;
  int add_link_below_ = 0;
  int update_below_ = 0;
  std::uint64_t nodes_ = 0;
  std::uint64_t preload_log_records_ = 0;
  std::unique_ptr<GraphStore> graph_;
};

}  // namespace

void RegisterGraphScenarios(ScenarioRegistry& registry) {
  auto add = [&registry](const char* name, const char* description, int read_percent) {
    GraphScenario::Params params;
    params.read_percent = read_percent;
    registry.Register({name, "GraphStore", description},
                      [params] { return std::make_unique<GraphScenario>(params); });
  };
  add("graph/traverse", "LinkBench read-heavy: 70% link/node reads, 30% link/node writes", 70);
  add("graph/update", "LinkBench write-heavy: 30% reads, 70% writes crossing the log lock", 30);
}

}  // namespace lockin
