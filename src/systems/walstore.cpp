#include "src/systems/walstore.hpp"

namespace lockin {

void WalStore::RunBatchLocked() {
  // Leader: drain the queue into one WAL append + memtable apply. Writes
  // are applied in sequence order; the WAL tail is bounded (compaction is
  // out of scope for the synchronization skeleton).
  batch_running_ = true;
  std::vector<WriteRequest*> batch(queue_.begin(), queue_.end());
  queue_.clear();

  // Simulate the WAL append outside the read path but under the DB lock
  // (RocksDB's write thread does the same for the group).
  std::string wal_entry;
  for (WriteRequest* req : batch) {
    wal_entry += std::to_string(req->sequence);
    wal_entry += req->is_delete ? ":D:" : ":P:";
    wal_entry += std::to_string(req->key);
    wal_entry += ';';
  }
  wal_.push_back(std::move(wal_entry));
  if (wal_.size() > 1024) {
    wal_.erase(wal_.begin(), wal_.begin() + 512);
  }
  wal_records_ += batch.size();
  ++batches_;

  {
    HandleGuard read_guard(*read_lock_);
    for (WriteRequest* req : batch) {
      if (req->is_delete) {
        memtable_.erase(req->key);
      } else {
        memtable_[req->key] = std::move(req->value);
      }
    }
  }
  for (WriteRequest* req : batch) {
    req->done = true;
  }
  batch_running_ = false;
  queue_cv_.Broadcast();
}

void WalStore::Put(std::uint64_t key, std::string value) {
  WriteRequest req;
  req.key = key;
  req.value = std::move(value);

  db_lock_->lock();
  req.sequence = next_sequence_++;
  queue_.push_back(&req);
  // Followers wait until a leader finishes their batch; the first writer in
  // becomes leader once no batch is running.
  while (!req.done) {
    if (!batch_running_ && !queue_.empty() && queue_.front() == &req) {
      RunBatchLocked();
      break;
    }
    if (!batch_running_ && !queue_.empty()) {
      // A follower can also lead if the designated leader already returned.
      RunBatchLocked();
      break;
    }
    queue_cv_.Wait(*db_lock_);
  }
  db_lock_->unlock();
}

void WalStore::Delete(std::uint64_t key) {
  WriteRequest req;
  req.key = key;
  req.is_delete = true;

  db_lock_->lock();
  req.sequence = next_sequence_++;
  queue_.push_back(&req);
  while (!req.done) {
    if (!batch_running_ && !queue_.empty()) {
      RunBatchLocked();
      break;
    }
    queue_cv_.Wait(*db_lock_);
  }
  db_lock_->unlock();
}

bool WalStore::Get(std::uint64_t key, std::string* out) {
  HandleGuard guard(*read_lock_);
  const auto it = memtable_.find(key);
  if (it == memtable_.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

std::size_t WalStore::MemtableSize() {
  HandleGuard guard(*read_lock_);
  return memtable_.size();
}

}  // namespace lockin
