#include "src/systems/walstore.hpp"

#include <cstdlib>
#include <utility>

#include "src/platform/failpoint.hpp"

namespace lockin {

WalStore::WalStore(const LockFactory& make_lock, const std::string& wal_path, Options options)
    : db_lock_(make_lock()), memtable_(make_lock, MemtableOptions(options)) {
  auto log = std::make_unique<WalLog>(wal_path);
  std::vector<std::string> records;
  const WalLog::RecoverResult recovered = log->Recover(&records);
  recovery_info_.records = recovered.valid_records;
  recovery_info_.dropped_bytes = recovered.dropped_bytes;
  recovery_info_.truncated = recovered.truncated;
  // Replay the surviving records in order. Record format (one op each):
  // "P <key> <value>" / "D <key>".
  for (const std::string& record : records) {
    if (record.size() < 3 || record[1] != ' ') {
      continue;  // unknown record shape; recovery is best-effort
    }
    const std::size_t key_end = record.find(' ', 2);
    const std::uint64_t key = std::strtoull(record.c_str() + 2, nullptr, 10);
    if (record[0] == 'D') {
      ApplyToMemtable(key, std::string(), true);
    } else if (record[0] == 'P' && key_end != std::string::npos) {
      ApplyToMemtable(key, record.substr(key_end + 1), false);
    }
  }
  HandleGuard db_guard(*db_lock_);
  wal_log_ = std::move(log);
}

void WalStore::ApplyToMemtable(std::uint64_t key, std::string&& value, bool is_delete) {
  memtable_.WithShard(ShardedMap<Memtable>::MixHash(key), [&](Memtable& memtable) {
    if (is_delete) {
      memtable.erase(key);
    } else {
      memtable[key] = std::move(value);
    }
  });
}

void WalStore::RunBatchLocked() {
  // Leader: drain the queue into one WAL append + memtable apply. Writes
  // are applied in sequence order; the WAL tail is bounded (compaction is
  // out of scope for the synchronization skeleton).
  batch_running_ = true;
  std::vector<WriteRequest*> batch(queue_.begin(), queue_.end());
  queue_.clear();

  // FailSafe: delay-only site inside the group-commit leader; stalling
  // here (db lock held, followers parked on the condvar) widens the
  // leader-election and queue-join races.
  (void)FailpointFired(FailpointId::kWalStoreBatch);

  // Durable mode: one crash-consistent record per op, appended before any
  // in-memory state is touched. A WAL failpoint crash propagates out with
  // nothing applied beyond what the file holds -- exactly what Recover()
  // sees after a real mid-write kill.
  if (wal_log_ != nullptr) {
    for (WriteRequest* req : batch) {
      std::string record;
      record += req->is_delete ? 'D' : 'P';
      record += ' ';
      record += std::to_string(req->key);
      if (!req->is_delete) {
        record += ' ';
        record += req->value;
      }
      wal_log_->Append(record);
    }
  }

  // Simulate the WAL append outside the read path but under the DB lock
  // (RocksDB's write thread does the same for the group).
  std::string wal_entry;
  for (WriteRequest* req : batch) {
    wal_entry += std::to_string(req->sequence);
    wal_entry += req->is_delete ? ":D:" : ":P:";
    wal_entry += std::to_string(req->key);
    wal_entry += ';';
  }
  wal_.push_back(std::move(wal_entry));
  if (wal_.size() > 1024) {
    wal_.erase(wal_.begin(), wal_.begin() + 512);
  }
  wal_records_ += batch.size();
  ++batches_;

  // Apply in sequence order; each write takes only its key's shard lock
  // (db_lock_ -> shard lock, readers never take db_lock_, so acyclic).
  for (WriteRequest* req : batch) {
    ApplyToMemtable(req->key, std::move(req->value), req->is_delete);
  }
  for (WriteRequest* req : batch) {
    req->done = true;
  }
  batch_running_ = false;
  queue_cv_.Broadcast();
}

void WalStore::Put(std::uint64_t key, std::string value) {
  WriteRequest req;
  req.key = key;
  req.value = std::move(value);

  db_lock_->lock();
  req.sequence = next_sequence_++;
  queue_.push_back(&req);
  // Followers wait until a leader finishes their batch; the first writer in
  // becomes leader once no batch is running.
  while (!req.done) {
    if (!batch_running_ && !queue_.empty() && queue_.front() == &req) {
      RunBatchLocked();
      break;
    }
    if (!batch_running_ && !queue_.empty()) {
      // A follower can also lead if the designated leader already returned.
      RunBatchLocked();
      break;
    }
    queue_cv_.Wait(*db_lock_);
  }
  db_lock_->unlock();
}

void WalStore::Delete(std::uint64_t key) {
  WriteRequest req;
  req.key = key;
  req.is_delete = true;

  db_lock_->lock();
  req.sequence = next_sequence_++;
  queue_.push_back(&req);
  while (!req.done) {
    if (!batch_running_ && !queue_.empty()) {
      RunBatchLocked();
      break;
    }
    queue_cv_.Wait(*db_lock_);
  }
  db_lock_->unlock();
}

bool WalStore::Get(std::uint64_t key, std::string* out) {
  return memtable_.WithShardShared(ShardedMap<Memtable>::MixHash(key),
                                   [&](const Memtable& memtable) {
    const auto it = memtable.find(key);
    if (it == memtable.end()) {
      return false;
    }
    if (out != nullptr) {
      *out = it->second;
    }
    return true;
  });
}

std::size_t WalStore::MemtableSize() {
  std::size_t total = 0;
  memtable_.ForEachShard([&total](Memtable& memtable) { total += memtable.size(); });
  return total;
}

}  // namespace lockin
