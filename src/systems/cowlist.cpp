#include "src/systems/cowlist.hpp"

namespace lockin {

void CowList::Add(std::int64_t value) {
  HandleGuard guard(*lock_);
  auto next = std::make_shared<Items>(*Load());
  next->push_back(value);
  Store(std::move(next));
}

bool CowList::Set(std::size_t index, std::int64_t value) {
  HandleGuard guard(*lock_);
  std::shared_ptr<const Items> current = Load();
  if (index >= current->size()) {
    return false;
  }
  auto next = std::make_shared<Items>(*current);
  (*next)[index] = value;
  Store(std::move(next));
  return true;
}

bool CowList::RemoveAt(std::size_t index) {
  HandleGuard guard(*lock_);
  std::shared_ptr<const Items> current = Load();
  if (index >= current->size()) {
    return false;
  }
  auto next = std::make_shared<Items>(*current);
  next->erase(next->begin() + static_cast<std::ptrdiff_t>(index));
  Store(std::move(next));
  return true;
}

bool CowList::Get(std::size_t index, std::int64_t* out) const {
  std::shared_ptr<const Items> current = Load();
  if (index >= current->size()) {
    return false;
  }
  *out = (*current)[index];
  return true;
}

std::int64_t CowList::Sum() const {
  std::shared_ptr<const Items> current = Load();
  std::int64_t sum = 0;
  for (std::int64_t v : *current) {
    sum += v;
  }
  return sum;
}

std::size_t CowList::Size() const { return Load()->size(); }

}  // namespace lockin
