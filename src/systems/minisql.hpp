// SQLite-style embedded relational engine running a TPC-C-like workload.
//
// Reproduces the paper's SQLite target (Table 3: TPC-C, 100 warehouses,
// 8-64 concurrent connections). The synchronization skeleton: SQLite
// serializes writers through a single database write lock and protects
// shared engine state (page cache, schema) with short-critical-section
// mutexes; connection counts beyond the hardware oversubscribe the machine,
// which is what breaks fair spinlocks in Figures 13-14.
//
// ShardCombine: the page-cache (stock) lock is the non-transactional path
// that shards -- Config::pager_shards partitions stock by warehouse so
// NEW-ORDER read phases and STOCK-LEVEL scans on different warehouses
// stop colliding, and Config::rw lets those read paths take shared locks.
// The single writer lock stays: that is SQLite's transactional shape and
// the paper's contention point, deliberately untouched.
#ifndef SRC_SYSTEMS_MINISQL_HPP_
#define SRC_SYSTEMS_MINISQL_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/platform/rng.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"
#include "src/systems/sharded.hpp"

namespace lockin {

class MiniSql {
 public:
  struct Config {
    int warehouses = 10;
    int districts_per_warehouse = 10;
    int items = 1000;
    // Page-cache sharding (stock rows, keyed by warehouse). 1 = the
    // original single pager lock; rw = shared locks on the read paths.
    std::size_t pager_shards = 1;
    bool rw = false;
  };

  MiniSql(const LockFactory& make_lock, Config config);

  MiniSql(const MiniSql&) = delete;
  MiniSql& operator=(const MiniSql&) = delete;

  // TPC-C-style NEW-ORDER: reads item rows, bumps the district's next order
  // id, inserts order lines. Returns the order id.
  std::uint64_t NewOrder(int warehouse, int district, const std::vector<int>& item_ids,
                         Xoshiro256* rng);

  // TPC-C-style PAYMENT: updates warehouse/district YTD and a customer row.
  void Payment(int warehouse, int district, std::uint64_t customer, double amount);

  // Read-only STOCK-LEVEL: counts items under a threshold.
  int StockLevel(int warehouse, int district, int threshold);

  // Consistency probes for tests.
  double WarehouseYtd(int warehouse);
  double DistrictYtdSum(int warehouse);
  std::uint64_t OrderCount();

 private:
  struct District {
    std::uint64_t next_order_id = 1;
    double ytd = 0;
  };
  struct Warehouse {
    double ytd = 0;
    std::vector<District> districts;
  };
  struct OrderLine {
    std::uint64_t order_id;
    int item_id;
    int quantity;
  };
  // One pager shard holds the stock vectors of the warehouses that hash to
  // it: warehouse -> [items] quantities.
  using StockShard = std::unordered_map<int, std::vector<int>>;

  int DistrictKey(int warehouse, int district) const {
    return warehouse * config_.districts_per_warehouse + district;
  }

  Config config_;
  // Engine-wide locks, mirroring SQLite: one writer lock serializing all
  // mutations, plus the (now shardable) page-cache locks crossed by reads.
  std::unique_ptr<LockHandle> write_lock_;

  std::vector<Warehouse> warehouses_ LL_GUARDED_BY(*write_lock_);
  // Stock is page-cache state: read under a pager-shard lock by NEW-ORDER's
  // read phase and STOCK-LEVEL, and updated by writers holding the shard
  // lock *inside* their write transaction (lock order: write -> pager-shard,
  // acyclic because readers never take the write lock).
  ShardedMap<StockShard> pager_;
  std::map<std::uint64_t, double> customers_ LL_GUARDED_BY(*write_lock_);  // balances
  std::vector<OrderLine> order_lines_ LL_GUARDED_BY(*write_lock_);
  std::uint64_t order_counter_ LL_GUARDED_BY(*write_lock_) = 0;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_MINISQL_HPP_
