// SQLite-style embedded relational engine running a TPC-C-like workload.
//
// Reproduces the paper's SQLite target (Table 3: TPC-C, 100 warehouses,
// 8-64 concurrent connections). The synchronization skeleton: SQLite
// serializes writers through a single database write lock and protects
// shared engine state (page cache, schema) with short-critical-section
// mutexes; connection counts beyond the hardware oversubscribe the machine,
// which is what breaks fair spinlocks in Figures 13-14.
#ifndef SRC_SYSTEMS_MINISQL_HPP_
#define SRC_SYSTEMS_MINISQL_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/platform/rng.hpp"
#include "src/platform/thread_annotations.hpp"
#include "src/systems/common.hpp"

namespace lockin {

class MiniSql {
 public:
  struct Config {
    int warehouses = 10;
    int districts_per_warehouse = 10;
    int items = 1000;
  };

  MiniSql(const LockFactory& make_lock, Config config);

  MiniSql(const MiniSql&) = delete;
  MiniSql& operator=(const MiniSql&) = delete;

  // TPC-C-style NEW-ORDER: reads item rows, bumps the district's next order
  // id, inserts order lines. Returns the order id.
  std::uint64_t NewOrder(int warehouse, int district, const std::vector<int>& item_ids,
                         Xoshiro256* rng);

  // TPC-C-style PAYMENT: updates warehouse/district YTD and a customer row.
  void Payment(int warehouse, int district, std::uint64_t customer, double amount);

  // Read-only STOCK-LEVEL: counts items under a threshold.
  int StockLevel(int warehouse, int district, int threshold);

  // Consistency probes for tests.
  double WarehouseYtd(int warehouse);
  double DistrictYtdSum(int warehouse);
  std::uint64_t OrderCount();

 private:
  struct District {
    std::uint64_t next_order_id = 1;
    double ytd = 0;
  };
  struct Warehouse {
    double ytd = 0;
    std::vector<District> districts;
  };
  struct OrderLine {
    std::uint64_t order_id;
    int item_id;
    int quantity;
  };

  int DistrictKey(int warehouse, int district) const {
    return warehouse * config_.districts_per_warehouse + district;
  }

  Config config_;
  // Engine-wide locks, mirroring SQLite: one writer lock serializing all
  // mutations, one page-cache/schema lock crossed by reads too.
  std::unique_ptr<LockHandle> write_lock_;
  std::unique_ptr<LockHandle> pager_lock_;

  std::vector<Warehouse> warehouses_ LL_GUARDED_BY(*write_lock_);
  // Stock is page-cache state: read under the pager lock by NEW-ORDER's
  // read phase and STOCK-LEVEL, and updated by writers holding the pager
  // lock *inside* their write transaction (lock order: write -> pager).
  std::vector<int> stock_ LL_GUARDED_BY(*pager_lock_);  // [warehouse * items + item]
  std::map<std::uint64_t, double> customers_ LL_GUARDED_BY(*write_lock_);  // balances
  std::vector<OrderLine> order_lines_ LL_GUARDED_BY(*write_lock_);
  std::uint64_t order_counter_ LL_GUARDED_BY(*write_lock_) = 0;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_MINISQL_HPP_
