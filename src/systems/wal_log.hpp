// WalLog: crash-consistent write-ahead log file (FailSafe part 3).
//
// Record format, length-prefixed and checksummed:
//
//   [u32 payload_len (LE)] [u32 crc32(payload) (LE)] [payload bytes]
//
// Append is a single positional write; durability faults are injected via
// the wal/append and wal/flush failpoints (src/platform/failpoint.hpp):
//
//   * wal/append fires  -> a torn tail is written (partial header, partial
//     payload, or a corrupted payload byte, cycling deterministically) and
//     WalCrashInjected is thrown: the simulated kill-during-write.
//   * wal/flush fires   -> the record is written *completely*, then
//     WalCrashInjected is thrown: the record must survive recovery.
//
// Recover() scans from the start, verifies length bounds and CRC for each
// record, truncates the file after the last valid record, and positions
// the log for appending -- the classic "the tail may be garbage, nothing
// before it may be" WAL contract.
#ifndef SRC_SYSTEMS_WAL_LOG_HPP_
#define SRC_SYSTEMS_WAL_LOG_HPP_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lockin {

// Thrown by failpoint-injected WAL crashes. Deliberately NOT derived from
// the I/O error type: tests catch exactly this to simulate a kill.
class WalCrashInjected : public std::runtime_error {
 public:
  explicit WalCrashInjected(const std::string& what)
      : std::runtime_error(what) {}
};

// Real I/O failures (open/write/truncate errors).
class WalIoError : public std::runtime_error {
 public:
  explicit WalIoError(const std::string& what) : std::runtime_error(what) {}
};

class WalLog {
 public:
  // Records larger than this are rejected on append and treated as
  // corruption on recovery (a garbage length prefix must not make the
  // scanner allocate gigabytes).
  static constexpr std::uint32_t kMaxPayload = 1u << 20;

  // Opens (creating if needed) the log at `path`. The append offset
  // starts at the current end of file; call Recover() first when the file
  // may have a torn tail from a previous life.
  explicit WalLog(std::string path);
  ~WalLog();

  WalLog(const WalLog&) = delete;
  WalLog& operator=(const WalLog&) = delete;

  // Appends one record. Throws WalCrashInjected when a WAL failpoint
  // fires (after writing a deterministic torn/complete tail -- see file
  // comment) and WalIoError on real I/O failure.
  void Append(std::string_view payload);

  struct RecoverResult {
    std::uint64_t valid_records = 0;  // records that passed length+CRC
    std::uint64_t dropped_bytes = 0;  // torn/corrupt tail bytes removed
    bool truncated = false;           // whether anything was cut
  };

  // Scans the whole file, truncates after the last valid record, resets
  // the append offset, and (when `records` is non-null) returns every
  // valid payload in order.
  RecoverResult Recover(std::vector<std::string>* records);

  // Records appended through this handle (recovered ones not included).
  std::uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

  // The CRC32 (IEEE, reflected) used for record checksums; exposed so
  // tests can build hand-crafted valid/corrupt files.
  static std::uint32_t Crc32(std::string_view data);

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t offset_ = 0;  // next append position
  std::uint64_t appended_ = 0;
};

}  // namespace lockin

#endif  // SRC_SYSTEMS_WAL_LOG_HPP_
