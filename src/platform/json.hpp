// Shared RFC 8259 JSON string escaping.
//
// Three writers in this repo emit strict JSON (MetricsRegistry::WriteJson,
// TextTable::PrintJson, the Chrome trace exporter) and each grew its own
// hand-rolled escaper; this is the one canonical implementation they all
// call. Quotes and backslashes get their two-character escapes, the common
// control characters their short forms, and every other control character a
// \uXXXX escape -- exactly what a strict parser (python3 -m json.tool in CI,
// Perfetto for traces) requires. Non-ASCII bytes pass through untouched:
// JSON strings are UTF-8 and escaping them is neither required nor wanted.
#ifndef SRC_PLATFORM_JSON_HPP_
#define SRC_PLATFORM_JSON_HPP_

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace lockin {

// Appends the escaped form of `text` (no surrounding quotes) to *out.
inline void JsonEscape(std::string* out, std::string_view text) {
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
}

// Returns the escaped form of `text` (no surrounding quotes).
inline std::string JsonEscaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  JsonEscape(&out, text);
  return out;
}

// Writes `text` as a complete JSON string literal, quotes included.
inline void WriteJsonString(std::ostream& out, std::string_view text) {
  out << '"' << JsonEscaped(text) << '"';
}

}  // namespace lockin

#endif  // SRC_PLATFORM_JSON_HPP_
