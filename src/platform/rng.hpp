// Small deterministic PRNGs for workload generation.
//
// Benchmarks need per-thread generators that are fast (a handful of cycles,
// so they do not distort "N-cycle critical section" workloads) and seedable
// (the median-of-11 methodology reruns the same workload).
#ifndef SRC_PLATFORM_RNG_HPP_
#define SRC_PLATFORM_RNG_HPP_

#include <cstdint>

namespace lockin {

// SplitMix64: used to seed Xoshiro and for one-off hashing.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace lockin

#endif  // SRC_PLATFORM_RNG_HPP_
