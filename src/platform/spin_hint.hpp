// Spin-wait pausing primitives.
//
// Section 4.2 of the paper shows that the choice of pausing instruction in a
// spin-wait loop has a measurable power effect on Ivy Bridge Xeons:
//   * plain loads retire one per cycle (CPI ~1) and burn maximal power;
//   * `pause` raises CPI to ~4.6 but *increases* power by up to 4%;
//   * a memory barrier before the load stalls speculation and lowers power
//     below both (up to 7% below pause), which is why MUTEXEE and the
//     spinlocks in this library default to mfence-based pausing.
#ifndef SRC_PLATFORM_SPIN_HINT_HPP_
#define SRC_PLATFORM_SPIN_HINT_HPP_

#include <atomic>

namespace lockin {

// The pausing technique used inside a spin-wait loop. Names follow the
// paper's Figure 4 series.
enum class PauseKind {
  kNone,    // raw load loop ("local")
  kNop,     // nop; hidden by the out-of-order core, no power effect
  kPause,   // x86 `pause` ("local-pause")
  kMfence,  // full memory barrier before the load ("local-mbar"); default
  kYield,   // sched_yield-ish; for oversubscribed hosts and unit tests
};

// Releases the CPU to the scheduler; out-of-line to keep <sched.h> out of
// this header.
void SpinYield();

// One pause step of the given kind. Inlined so the spin loop stays tight.
inline void SpinPause(PauseKind kind) {
  switch (kind) {
    case PauseKind::kNone:
      break;
    case PauseKind::kNop:
      asm volatile("nop");
      break;
    case PauseKind::kPause:
#if defined(__x86_64__)
      asm volatile("pause");
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
      break;
    case PauseKind::kMfence:
      std::atomic_thread_fence(std::memory_order_seq_cst);
      break;
    case PauseKind::kYield:
      SpinYield();
      break;
  }
}

// Parses a pause kind from its paper-facing name ("none", "nop", "pause",
// "mfence", "yield"). Returns kMfence for unknown names.
PauseKind PauseKindFromName(const char* name);

// Paper-facing name of a pause kind.
const char* PauseKindName(PauseKind kind);

}  // namespace lockin

#endif  // SRC_PLATFORM_SPIN_HINT_HPP_
