#include "src/platform/spin_hint.hpp"

#include <sched.h>

#include <cstring>

namespace lockin {

void SpinYield() { sched_yield(); }

PauseKind PauseKindFromName(const char* name) {
  if (std::strcmp(name, "none") == 0) {
    return PauseKind::kNone;
  }
  if (std::strcmp(name, "nop") == 0) {
    return PauseKind::kNop;
  }
  if (std::strcmp(name, "pause") == 0) {
    return PauseKind::kPause;
  }
  if (std::strcmp(name, "yield") == 0) {
    return PauseKind::kYield;
  }
  return PauseKind::kMfence;
}

const char* PauseKindName(PauseKind kind) {
  switch (kind) {
    case PauseKind::kNone:
      return "none";
    case PauseKind::kNop:
      return "nop";
    case PauseKind::kPause:
      return "pause";
    case PauseKind::kMfence:
      return "mfence";
    case PauseKind::kYield:
      return "yield";
  }
  return "mfence";
}

}  // namespace lockin
