// FailSafe failpoints: named fault-injection sites, zero-cost when off.
//
// A failpoint is a fixed site in the code (futex slow paths, MemCache
// eviction, WalStore append/flush, the scenario driver) that can be armed
// at runtime with a *deterministic* trigger rule. Disarmed, a site costs
// one relaxed atomic load and a predicted-not-taken branch -- the same
// fencing discipline as the trace and lockdep hooks, so production builds
// keep every site compiled in.
//
// Trigger rules are seeded: whether hit #k of a site fires is a pure
// function of (rule seed, k), so a failing chaos run replays exactly with
// the same SPEC and seed regardless of thread interleaving at other sites.
//
// SPEC grammar (parsed by FailpointsArm, also taken from the
// LOCKIN_FAILPOINTS environment variable and `scenario_runner
// --failpoints`):
//
//   spec  := entry (',' entry)*
//   entry := site '=' rule
//   rule  := 'off' | base ['~' delay_ns]
//   base  := 'always'            fire on every hit
//          | 'p' FLOAT           fire with probability FLOAT per hit
//          | 'every' N           fire on every N-th hit
//          | 'once' ['@' N]      fire exactly once, on hit N (default 1)
//
// Without the '~' suffix the site *fails* (what that means is up to the
// site: a spurious futex wake, a torn WAL write, ...). With '~delay_ns'
// the site instead stalls for that many nanoseconds and then proceeds
// normally -- the safe way to widen race windows without breaking
// invariants.
#ifndef SRC_PLATFORM_FAILPOINT_HPP_
#define SRC_PLATFORM_FAILPOINT_HPP_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lockin {

// Every failpoint site in the tree. Append only: the numeric value is the
// trace-event payload for kFailpointFire.
enum class FailpointId : std::uint32_t {
  kFutexWait = 0,     // futex wait wrappers: fire = spurious return (no sleep)
  kFutexWake = 1,     // futex wake wrapper: fire = wake ALL waiters (herd)
  kCacheEvict = 2,    // MemCache eviction scan (delay widens LRU races)
  kWalAppend = 3,     // WalLog::Append: fire = torn/corrupt tail write + crash
  kWalFlush = 4,      // WalLog::Append post-write: fire = crash after full record
  kWalStoreBatch = 5, // WalStore group-commit batch (delay widens leader races)
  kScenarioOp = 6,    // scenario driver, once per op (delay perturbs timing)
  kCount
};

inline constexpr std::size_t kFailpointCount =
    static_cast<std::size_t>(FailpointId::kCount);

// Stable site name ("futex/wait", "wal/append", ...) used in SPEC strings.
const char* FailpointName(FailpointId id);

// Reverse lookup; returns kCount when the name is unknown.
FailpointId FailpointFromName(const std::string& name);

// What a hit resolved to.
enum class FailpointAction : std::uint8_t {
  kNone = 0,     // rule absent or did not trigger
  kDelayed = 1,  // rule triggered a delay; the stall already happened
  kFail = 2,     // rule triggered a failure; the site must act on it
};

namespace failpoint_internal {

// Single global arm flag: the only cost a disarmed site pays.
extern std::atomic<bool> g_armed;

FailpointAction HitSlow(FailpointId id);

}  // namespace failpoint_internal

// Evaluate a site. Returns true when the site must simulate its failure;
// delay rules stall inside the call and return false. Hot-path shape when
// disarmed: one relaxed load + branch.
inline bool FailpointFired(FailpointId id) {
  if (!failpoint_internal::g_armed.load(std::memory_order_relaxed))
      [[likely]] {
    return false;
  }
  return failpoint_internal::HitSlow(id) == FailpointAction::kFail;
}

// Parse `spec` and arm the registry. Replaces any previous arming. Throws
// std::invalid_argument (naming the bad entry and the valid sites) on a
// malformed spec. An empty spec disarms everything.
void FailpointsArm(const std::string& spec, std::uint64_t seed = 1);

// Disarm every site and reset hit/fire counters.
void FailpointsDisarm();

// Per-site observability, for reports and tests.
struct FailpointStatus {
  const char* name = nullptr;
  std::string rule;          // canonical rule text, "off" when unarmed
  std::uint64_t hits = 0;    // times the armed site was evaluated
  std::uint64_t fires = 0;   // times the rule triggered (fail or delay)
  std::uint64_t delays = 0;  // fires that were delay-only
};

// Status of all sites (index = FailpointId). Counters reset on each arm.
std::vector<FailpointStatus> FailpointsSnapshot();

// One line per armed site with nonzero hits, e.g. for stderr reports.
std::string FailpointsReport();

// Chaos profile used by `scenario_runner --chaos` and the chaos sweep
// test: spurious futex wakes, wake-all herds, and delay injection at the
// eviction / group-commit / driver sites. Deliberately excludes the WAL
// crash sites (wal/append, wal/flush) so system invariants still hold.
std::string DefaultChaosSpec();

// RAII arming for scenario runs and tests: arms `spec` on construction
// (no-op when empty), disarms on destruction.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec, std::uint64_t seed = 1)
      : armed_(!spec.empty()) {
    if (armed_) FailpointsArm(spec, seed);
  }
  ~ScopedFailpoints() {
    if (armed_) FailpointsDisarm();
  }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

 private:
  bool armed_;
};

}  // namespace lockin

#endif  // SRC_PLATFORM_FAILPOINT_HPP_
