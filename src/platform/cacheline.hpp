// Cache-line constants and alignment helpers.
//
// Locks in this library pad their shared state to a cache line so that
// contended and uncontended fields never share a line (false sharing is one
// of the power/throughput pathologies the paper measures in section 4.1).
#ifndef SRC_PLATFORM_CACHELINE_HPP_
#define SRC_PLATFORM_CACHELINE_HPP_

#include <cstddef>

namespace lockin {

// x86-64 cache lines are 64 bytes; adjacent-line prefetch makes 128-byte
// padding the conservative choice for heavily contended words.
inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kContendedPad = 128;

// Wraps a value in its own cache line. Use for per-thread slots in arrays
// (e.g. MCS queue nodes) where neighbouring slots would otherwise share a
// line and turn local spinning into global coherence traffic.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace lockin

#endif  // SRC_PLATFORM_CACHELINE_HPP_
