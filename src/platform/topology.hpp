// CPU topology discovery and the paper's thread-placement policy.
//
// Methodology from section 2: "When we vary the number of threads, we first
// use the cores within a socket, then the cores of the second socket, and
// finally, the hyper-threads." PinningOrder() materialises exactly that
// order so benchmarks place thread i on PinningOrder()[i].
#ifndef SRC_PLATFORM_TOPOLOGY_HPP_
#define SRC_PLATFORM_TOPOLOGY_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace lockin {

// A logical CPU (what Linux calls a "processor"): one hardware context.
struct CpuInfo {
  int os_cpu = 0;   // Linux CPU id
  int socket = 0;   // physical package id
  int core = 0;     // core id within the socket
  int smt_index = 0;  // 0 for the first hyper-thread of a core, 1 for second
};

// Machine topology: sockets x cores x SMT threads.
class Topology {
 public:
  // Builds a synthetic topology (used by the simulator and by tests).
  Topology(int sockets, int cores_per_socket, int smt_per_core);

  // Discovers the host topology from /sys/devices/system/cpu. Falls back to
  // a flat single-socket topology when sysfs is unavailable.
  static Topology Detect();

  // The paper's Xeon testbed: 2 sockets x 10 cores x 2 hyper-threads.
  static Topology PaperXeon() { return Topology(2, 10, 2); }

  // The paper's Core-i7 desktop: 1 socket x 4 cores x 2 hyper-threads.
  static Topology PaperCoreI7() { return Topology(1, 4, 2); }

  int sockets() const { return sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int smt_per_core() const { return smt_per_core_; }
  int total_cores() const { return sockets_ * cores_per_socket_; }
  int total_contexts() const { return total_cores() * smt_per_core_; }

  const std::vector<CpuInfo>& cpus() const { return cpus_; }

  // Hardware contexts in the paper's placement order: all first hyper-threads
  // of socket 0, then of socket 1, ..., then the second hyper-threads.
  std::vector<CpuInfo> PinningOrder() const;

  std::string ToString() const;

 private:
  int sockets_;
  int cores_per_socket_;
  int smt_per_core_;
  std::vector<CpuInfo> cpus_;
};

// Pins the calling thread to the given OS CPU. Returns false if the kernel
// rejected the affinity mask (e.g. CPU offline); callers treat this as
// best-effort.
bool PinThreadToCpu(int os_cpu);

}  // namespace lockin

#endif  // SRC_PLATFORM_TOPOLOGY_HPP_
