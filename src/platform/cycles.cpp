#include "src/platform/cycles.hpp"

#include <chrono>

namespace lockin {
namespace {

double CalibrateCyclesPerNs() {
  using Clock = std::chrono::steady_clock;
  // Two short calibration rounds; take the second (warm) one.
  double rate = 1.0;
  for (int round = 0; round < 2; ++round) {
    const auto t0 = Clock::now();
    const std::uint64_t c0 = ReadCycles();
    // Busy-wait ~2 ms of wall time.
    while (std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count() <
           2000) {
    }
    const std::uint64_t c1 = ReadCycles();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count();
    if (ns > 0 && c1 > c0) {
      rate = static_cast<double>(c1 - c0) / static_cast<double>(ns);
    }
  }
  return rate;
}

}  // namespace

double CyclesPerNs() {
  static const double rate = CalibrateCyclesPerNs();
  return rate;
}

std::uint64_t CyclesToNs(std::uint64_t cycles) {
  return static_cast<std::uint64_t>(static_cast<double>(cycles) / CyclesPerNs());
}

std::uint64_t NsToCycles(std::uint64_t ns) {
  return static_cast<std::uint64_t>(static_cast<double>(ns) * CyclesPerNs());
}

std::uint64_t FallbackCycleClock() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace lockin
