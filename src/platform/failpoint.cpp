#include "src/platform/failpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/obs/trace.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/rng.hpp"

namespace lockin {
namespace {

constexpr const char* kSiteNames[kFailpointCount] = {
    "futex/wait", "futex/wake", "cache/evict",   "wal/append",
    "wal/flush",  "wal/batch",  "scenario/op",
};

// One armed rule. Immutable after publication: Arm swaps the per-site
// atomic pointer, so concurrent hits either see the whole rule or none of
// it. Retired rules go to a keep-alive list instead of being freed --
// arming is rare (per run / per test), hits are not, and a reader may
// still hold the old pointer.
struct Rule {
  enum class Kind : std::uint8_t { kAlways, kProb, kEveryN, kOnce };
  Kind kind = Kind::kAlways;
  double probability = 0.0;    // kProb
  std::uint64_t n = 1;         // kEveryN period / kOnce target hit (1-based)
  std::uint64_t delay_ns = 0;  // nonzero: delay instead of fail
  std::uint64_t seed = 1;      // kProb determinism
  std::string text;            // canonical rule text for reports
};

struct SiteState {
  std::atomic<const Rule*> rule{nullptr};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
  std::atomic<std::uint64_t> delays{0};
};

SiteState g_sites[kFailpointCount];

// Serializes Arm/Disarm and owns retired rules for the process lifetime.
std::mutex g_arm_mutex;
// Intentionally immortal (never destroyed): retired rules must outlive any
// reader still inside FailpointFired, and the list must stay reachable at
// exit so LeakSanitizer sees the keep-alive as reachable, not leaked.
std::vector<const Rule*>& RetiredRules() {
  static std::vector<const Rule*>* retired = new std::vector<const Rule*>();
  return *retired;
}

std::string ValidSiteList() {
  std::string out;
  for (std::size_t i = 0; i < kFailpointCount; ++i) {
    if (i != 0) out += ", ";
    out += kSiteNames[i];
  }
  return out;
}

// Parses one `site=rule` entry into (id, rule). Throws on malformed input.
void ParseEntry(const std::string& entry, std::uint64_t seed, FailpointId* id,
                Rule* rule) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("failpoint entry '" + entry +
                                "' is not site=rule");
  }
  const std::string site = entry.substr(0, eq);
  *id = FailpointFromName(site);
  if (*id == FailpointId::kCount) {
    throw std::invalid_argument("unknown failpoint site '" + site +
                                "' (available: " + ValidSiteList() + ")");
  }
  std::string body = entry.substr(eq + 1);
  if (body.empty()) {
    throw std::invalid_argument("failpoint entry '" + entry +
                                "' has an empty rule");
  }
  rule->text = body;
  rule->seed = seed ^ (0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(*id) + 1));
  const std::size_t tilde = body.find('~');
  if (tilde != std::string::npos) {
    const std::string delay = body.substr(tilde + 1);
    try {
      rule->delay_ns = std::stoull(delay);
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint entry '" + entry +
                                  "' has a bad delay '" + delay + "'");
    }
    body = body.substr(0, tilde);
  }
  try {
    if (body == "always") {
      rule->kind = Rule::Kind::kAlways;
    } else if (body.rfind("p", 0) == 0 && body.size() > 1) {
      rule->kind = Rule::Kind::kProb;
      rule->probability = std::stod(body.substr(1));
      if (rule->probability < 0.0 || rule->probability > 1.0) {
        throw std::out_of_range("probability outside [0,1]");
      }
    } else if (body.rfind("every", 0) == 0) {
      rule->kind = Rule::Kind::kEveryN;
      rule->n = std::stoull(body.substr(5));
      if (rule->n == 0) throw std::out_of_range("every0");
    } else if (body.rfind("once", 0) == 0) {
      rule->kind = Rule::Kind::kOnce;
      const std::string at = body.substr(4);
      if (at.empty()) {
        rule->n = 1;
      } else if (at[0] == '@') {
        rule->n = std::stoull(at.substr(1));
        if (rule->n == 0) throw std::out_of_range("once@0");
      } else {
        throw std::invalid_argument("bad once suffix");
      }
    } else if (body != "off") {
      throw std::invalid_argument("unknown rule");
    }
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(
        "failpoint entry '" + entry +
        "' has a bad rule (want off|always|p<float>|every<N>|once[@N], "
        "optionally ~<delay_ns>)");
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("failpoint entry '" + entry +
                                "' has a rule value out of range");
  }
  if (body == "off") {
    // Encode "off" as a null publication; caller checks rule->text.
    rule->text = "off";
  }
}

void DisarmLocked() {
  failpoint_internal::g_armed.store(false, std::memory_order_relaxed);
  for (SiteState& site : g_sites) {
    if (const Rule* old = site.rule.exchange(nullptr,
                                             std::memory_order_release)) {
      RetiredRules().push_back(old);
    }
    site.hits.store(0, std::memory_order_relaxed);
    site.fires.store(0, std::memory_order_relaxed);
    site.delays.store(0, std::memory_order_relaxed);
  }
}

// Arms from LOCKIN_FAILPOINTS at process start so any binary (benches,
// tests, one-off tools) can be chaos-tested without code changes.
struct EnvArmer {
  EnvArmer() {
    const char* spec = std::getenv("LOCKIN_FAILPOINTS");
    if (spec == nullptr || spec[0] == '\0') return;
    std::uint64_t seed = 1;
    if (const char* s = std::getenv("LOCKIN_FAILPOINTS_SEED")) {
      seed = std::strtoull(s, nullptr, 10);
    }
    try {
      FailpointsArm(spec, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "LOCKIN_FAILPOINTS ignored: %s\n", e.what());
    }
  }
};
EnvArmer g_env_armer;

}  // namespace

namespace failpoint_internal {

std::atomic<bool> g_armed{false};

FailpointAction HitSlow(FailpointId id) {
  SiteState& site = g_sites[static_cast<std::size_t>(id)];
  const Rule* rule = site.rule.load(std::memory_order_acquire);
  if (rule == nullptr) return FailpointAction::kNone;
  const std::uint64_t hit =
      site.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  bool fire = false;
  switch (rule->kind) {
    case Rule::Kind::kAlways:
      fire = true;
      break;
    case Rule::Kind::kProb: {
      // Pure function of (seed, hit index): replays are interleaving-proof.
      std::uint64_t state = rule->seed ^ (hit * 0x9e3779b97f4a7c15ULL);
      const double draw =
          static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
      fire = draw < rule->probability;
      break;
    }
    case Rule::Kind::kEveryN:
      fire = (hit % rule->n) == 0;
      break;
    case Rule::Kind::kOnce:
      fire = hit == rule->n;
      break;
  }
  if (!fire) return FailpointAction::kNone;
  site.fires.fetch_add(1, std::memory_order_relaxed);
  TraceEmit(TraceEventKind::kFailpointFire, static_cast<std::uint32_t>(id));
  if (rule->delay_ns != 0) {
    site.delays.fetch_add(1, std::memory_order_relaxed);
    if (rule->delay_ns >= 500'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(rule->delay_ns));
    } else {
      SpinForCycles(NsToCycles(rule->delay_ns));
    }
    return FailpointAction::kDelayed;
  }
  return FailpointAction::kFail;
}

}  // namespace failpoint_internal

const char* FailpointName(FailpointId id) {
  const std::size_t index = static_cast<std::size_t>(id);
  return index < kFailpointCount ? kSiteNames[index] : "?";
}

FailpointId FailpointFromName(const std::string& name) {
  for (std::size_t i = 0; i < kFailpointCount; ++i) {
    if (name == kSiteNames[i]) return static_cast<FailpointId>(i);
  }
  return FailpointId::kCount;
}

void FailpointsArm(const std::string& spec, std::uint64_t seed) {
  // Parse the whole spec before touching global state: a malformed entry
  // must not leave the registry half-armed.
  std::vector<std::pair<FailpointId, Rule>> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    if (!entry.empty()) {
      FailpointId id = FailpointId::kCount;
      Rule rule;
      ParseEntry(entry, seed, &id, &rule);
      parsed.emplace_back(id, std::move(rule));
    }
    begin = end + 1;
  }

  std::lock_guard<std::mutex> guard(g_arm_mutex);
  DisarmLocked();
  bool any = false;
  for (auto& [id, rule] : parsed) {
    if (rule.text == "off") continue;
    SiteState& site = g_sites[static_cast<std::size_t>(id)];
    const Rule* fresh = new Rule(std::move(rule));
    if (const Rule* old =
            site.rule.exchange(fresh, std::memory_order_release)) {
      RetiredRules().push_back(old);  // duplicate entry: last one wins
    }
    any = true;
  }
  if (any) {
    failpoint_internal::g_armed.store(true, std::memory_order_release);
  }
}

void FailpointsDisarm() {
  std::lock_guard<std::mutex> guard(g_arm_mutex);
  DisarmLocked();
}

std::vector<FailpointStatus> FailpointsSnapshot() {
  std::vector<FailpointStatus> out(kFailpointCount);
  for (std::size_t i = 0; i < kFailpointCount; ++i) {
    SiteState& site = g_sites[i];
    FailpointStatus& status = out[i];
    status.name = kSiteNames[i];
    const Rule* rule = site.rule.load(std::memory_order_acquire);
    status.rule = rule != nullptr ? rule->text : "off";
    status.hits = site.hits.load(std::memory_order_relaxed);
    status.fires = site.fires.load(std::memory_order_relaxed);
    status.delays = site.delays.load(std::memory_order_relaxed);
  }
  return out;
}

std::string FailpointsReport() {
  std::string out;
  for (const FailpointStatus& status : FailpointsSnapshot()) {
    if (status.rule == "off" && status.hits == 0) continue;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "failpoint %-12s rule=%-12s hits=%llu fires=%llu delays=%llu\n",
                  status.name, status.rule.c_str(),
                  static_cast<unsigned long long>(status.hits),
                  static_cast<unsigned long long>(status.fires),
                  static_cast<unsigned long long>(status.delays));
    out += line;
  }
  return out;
}

std::string DefaultChaosSpec() {
  return "futex/wait=p0.02,futex/wake=p0.02,cache/evict=every7~2000,"
         "wal/batch=p0.05~3000,scenario/op=p0.01~5000";
}

}  // namespace lockin
