// Cycle counting.
//
// The paper expresses every latency (futex sleep ~2100 cycles, wake-up call
// ~2700 cycles, turnaround >= 7000 cycles, MUTEXEE spin budget ~8000 cycles)
// in CPU cycles. On x86-64 we read the constant-rate TSC directly; on other
// platforms we fall back to std::chrono and a calibrated cycles-per-ns
// factor, so the same budgets work everywhere.
#ifndef SRC_PLATFORM_CYCLES_HPP_
#define SRC_PLATFORM_CYCLES_HPP_

#include <cstdint>

namespace lockin {

// Reads the timestamp counter. Monotonic and constant-rate on every CPU made
// this decade (constant_tsc / nonstop_tsc).
inline std::uint64_t ReadCycles() {
#if defined(__x86_64__)
  std::uint32_t lo;
  std::uint32_t hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
  std::uint64_t cnt;
  asm volatile("mrs %0, cntvct_el0" : "=r"(cnt));
  return cnt;
#else
  return FallbackCycleClock();
#endif
}

// Cycles per nanosecond, measured once at startup against the steady clock.
// Used to convert the paper's cycle budgets into wall-clock durations (e.g.
// futex timeouts) and back.
double CyclesPerNs();

// Converts a cycle count into nanoseconds using the calibrated TSC rate.
std::uint64_t CyclesToNs(std::uint64_t cycles);

// Converts nanoseconds into cycles using the calibrated TSC rate.
std::uint64_t NsToCycles(std::uint64_t ns);

// std::chrono-based fallback for platforms without a cheap cycle counter.
std::uint64_t FallbackCycleClock();

// Spins (reading the TSC) for approximately `cycles` cycles. The workhorse
// for "critical section of N cycles" workloads used across the benchmarks.
// Inline with a zero fast path: measured loops call this with 0 for "no
// critical section", which must not cost a call plus two TSC reads.
inline void SpinForCycles(std::uint64_t cycles) {
  if (cycles == 0) {
    return;
  }
  const std::uint64_t start = ReadCycles();
  while (ReadCycles() - start < cycles) {
  }
}

// Simple scoped timer in cycles.
class CycleTimer {
 public:
  CycleTimer() : start_(ReadCycles()) {}

  // Cycles elapsed since construction or the last Reset().
  std::uint64_t Elapsed() const { return ReadCycles() - start_; }

  void Reset() { start_ = ReadCycles(); }

 private:
  std::uint64_t start_;
};

}  // namespace lockin

#endif  // SRC_PLATFORM_CYCLES_HPP_
