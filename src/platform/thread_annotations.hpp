// LockLint compile-time thread-safety annotations.
//
// A thin LL_-prefixed wrapper over Clang's Thread Safety Analysis attribute
// set (Hutchins et al., "C/C++ Thread Safety Analysis"; the CAPABILITY /
// GUARDED_BY system behind -Wthread-safety). Every lock in src/locks/ is an
// annotated capability, the guards are scoped capabilities, and the
// mini-systems mark their protected state LL_GUARDED_BY(lock), so a missed
// lock acquisition is a *compile error* in the -Wthread-safety -Werror CI
// build (see the locklint job in .github/workflows/ci.yml and the
// negative-compilation cases under tests/negative_compile/).
//
// Off Clang (or with the analysis disabled) every macro expands to nothing,
// so GCC builds and the measured hot paths are untouched. Keep these macros
// semantically faithful to the upstream names -- the Clang documentation's
// mutex.h is the reference -- so anyone who knows GUARDED_BY can read this
// codebase.
//
// Conventions used across the repo:
//   * lock types:  class LL_CAPABILITY("mutex") FooLock { ...
//                    void lock() LL_ACQUIRE();
//                    void unlock() LL_RELEASE();
//                    bool try_lock() LL_TRY_ACQUIRE(true); };
//   * guards:      class LL_SCOPED_CAPABILITY Guard { Guard(L& l) LL_ACQUIRE(l);
//                    ~Guard() LL_RELEASE(); };
//   * data:        std::map<...> map_ LL_GUARDED_BY(*lock_);
//   * helpers:     void RebalanceLocked() LL_REQUIRES(*lock_);
//   * quiescent accessors (read owner-written state after threads joined)
//     carry LL_NO_THREAD_SAFETY_ANALYSIS plus a comment saying why.
#ifndef SRC_PLATFORM_THREAD_ANNOTATIONS_HPP_
#define SRC_PLATFORM_THREAD_ANNOTATIONS_HPP_

// Clang exposes the whole attribute family behind thread_safety_attributes;
// gate on the capability attribute specifically so a future compiler that
// implements only part of the set does not break the build.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LL_THREAD_ANNOTATION
#define LL_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// --- Type annotations --------------------------------------------------------

// Marks a class as a capability (a lock). The string names the capability
// kind in diagnostics: "acquiring mutex 'lock_' ...".
#define LL_CAPABILITY(x) LL_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (HandleGuard, LockGuard, SharedGuard).
#define LL_SCOPED_CAPABILITY LL_THREAD_ANNOTATION(scoped_lockable)

// --- Data annotations --------------------------------------------------------

// Reads and writes of the member require holding the named capability
// (writes exclusively, reads at least shared).
#define LL_GUARDED_BY(x) LL_THREAD_ANNOTATION(guarded_by(x))

// Same, but for the data *pointed to* by a pointer/smart-pointer member.
#define LL_PT_GUARDED_BY(x) LL_THREAD_ANNOTATION(pt_guarded_by(x))

// --- Function annotations ----------------------------------------------------

// The function acquires the capability (itself when no argument) and holds
// it on return. Shared variant for reader sides.
#define LL_ACQUIRE(...) LL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LL_ACQUIRE_SHARED(...) LL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability. The no-argument form on a scoped
// capability's destructor releases whatever the scope holds.
#define LL_RELEASE(...) LL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LL_RELEASE_SHARED(...) LL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// try_lock-shaped functions: acquires only when returning `value`.
#define LL_TRY_ACQUIRE(...) LL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LL_TRY_ACQUIRE_SHARED(...) \
  LL_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// The caller must hold the capability (exclusively / at least shared) for
// the duration of the call. This is how "called with lock_ held" helper
// contracts become machine-checked.
#define LL_REQUIRES(...) LL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LL_REQUIRES_SHARED(...) LL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The caller must NOT hold the capability (non-reentrant acquire paths).
#define LL_EXCLUDES(...) LL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function returns a reference/pointer to the named capability.
#define LL_RETURN_CAPABILITY(x) LL_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis inside the function body while the
// declaration's acquire/release annotations keep applying at call sites.
// Used for (a) forwarding wrappers whose body acquires a *different*
// capability than the one they advertise (TracedLock, LockAdapter: the
// wrapper IS the capability callers see, the body takes the wrapped lock),
// and (b) quiescent diagnostics accessors that read owner-written state
// after the owning threads joined.
#define LL_NO_THREAD_SAFETY_ANALYSIS LL_THREAD_ANNOTATION(no_thread_safety_analysis)

// True when the annotations are live (Clang); lets tests and negative-
// compilation cases assert the analysis is actually armed.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LL_ANNOTATIONS_ENABLED 1
#endif
#endif
#ifndef LL_ANNOTATIONS_ENABLED
#define LL_ANNOTATIONS_ENABLED 0
#endif

#endif  // SRC_PLATFORM_THREAD_ANNOTATIONS_HPP_
