#include "src/platform/topology.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace lockin {
namespace {

// Reads a small integer file like /sys/devices/system/cpu/cpu0/topology/core_id.
// Returns `fallback` when the file is missing (containers often hide sysfs).
int ReadIntFile(const std::string& path, int fallback) {
  std::ifstream in(path);
  int value = fallback;
  if (in && (in >> value)) {
    return value;
  }
  return fallback;
}

}  // namespace

Topology::Topology(int sockets, int cores_per_socket, int smt_per_core)
    : sockets_(sockets), cores_per_socket_(cores_per_socket), smt_per_core_(smt_per_core) {
  int os_cpu = 0;
  // Synthetic OS ids follow the common Linux enumeration: first hyper-threads
  // of every core of every socket, then the second hyper-threads.
  for (int smt = 0; smt < smt_per_core; ++smt) {
    for (int socket = 0; socket < sockets; ++socket) {
      for (int core = 0; core < cores_per_socket; ++core) {
        cpus_.push_back(CpuInfo{os_cpu++, socket, core, smt});
      }
    }
  }
}

Topology Topology::Detect() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  const int ncpu = n > 0 ? static_cast<int>(n) : 1;

  std::vector<CpuInfo> cpus;
  int max_socket = 0;
  bool sysfs_ok = true;
  for (int cpu = 0; cpu < ncpu; ++cpu) {
    std::ostringstream base;
    base << "/sys/devices/system/cpu/cpu" << cpu << "/topology/";
    const int socket = ReadIntFile(base.str() + "physical_package_id", -1);
    const int core = ReadIntFile(base.str() + "core_id", -1);
    if (socket < 0 || core < 0) {
      sysfs_ok = false;
      break;
    }
    max_socket = std::max(max_socket, socket);
    cpus.push_back(CpuInfo{cpu, socket, core, 0});
  }

  if (!sysfs_ok || cpus.empty()) {
    return Topology(1, ncpu, 1);
  }

  // Assign SMT indices: CPUs sharing (socket, core) are hyper-threads.
  std::vector<CpuInfo> sorted = cpus;
  std::sort(sorted.begin(), sorted.end(), [](const CpuInfo& a, const CpuInfo& b) {
    if (a.socket != b.socket) {
      return a.socket < b.socket;
    }
    if (a.core != b.core) {
      return a.core < b.core;
    }
    return a.os_cpu < b.os_cpu;
  });
  int smt_max = 1;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    int smt = 0;
    for (std::size_t j = i; j > 0; --j) {
      if (sorted[j - 1].socket == sorted[i].socket && sorted[j - 1].core == sorted[i].core) {
        ++smt;
      } else {
        break;
      }
    }
    sorted[i].smt_index = smt;
    smt_max = std::max(smt_max, smt + 1);
  }

  // Count distinct cores on socket 0 to derive cores_per_socket.
  int cores_socket0 = 0;
  int last_core = -1;
  for (const CpuInfo& c : sorted) {
    if (c.socket == 0 && c.smt_index == 0 && c.core != last_core) {
      ++cores_socket0;
      last_core = c.core;
    }
  }
  if (cores_socket0 == 0) {
    cores_socket0 = ncpu;
  }

  Topology topo(max_socket + 1, cores_socket0, smt_max);
  topo.cpus_ = sorted;
  return topo;
}

std::vector<CpuInfo> Topology::PinningOrder() const {
  std::vector<CpuInfo> order = cpus_;
  std::sort(order.begin(), order.end(), [](const CpuInfo& a, const CpuInfo& b) {
    if (a.smt_index != b.smt_index) {
      return a.smt_index < b.smt_index;
    }
    if (a.socket != b.socket) {
      return a.socket < b.socket;
    }
    if (a.core != b.core) {
      return a.core < b.core;
    }
    return a.os_cpu < b.os_cpu;
  });
  return order;
}

std::string Topology::ToString() const {
  std::ostringstream out;
  out << sockets_ << " socket(s) x " << cores_per_socket_ << " core(s) x " << smt_per_core_
      << " thread(s) = " << total_contexts() << " hardware contexts";
  return out.str();
}

bool PinThreadToCpu(int os_cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(os_cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace lockin
