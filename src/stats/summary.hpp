// Run-level statistics helpers.
//
// Methodology from section 2 of the paper: "Our microbenchmark results are
// the median of 11 repetitions of 10 seconds." RunSummary implements the
// repeat-and-take-median protocol over arbitrary scalar metrics.
#ifndef SRC_STATS_SUMMARY_HPP_
#define SRC_STATS_SUMMARY_HPP_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace lockin {

// Median of a sample set (copies; callers keep their data).
double Median(std::vector<double> values);

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

// Sample standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& values);

// Pearson correlation coefficient of two equally sized series. Used by the
// Figure 12 reproduction to quantify the throughput<->TPP correlation.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

// Runs `trial` `repetitions` times and reports the median of each metric.
// `trial` returns one scalar per metric name; all repetitions must return
// the same number of metrics.
class RepeatedTrial {
 public:
  RepeatedTrial(std::vector<std::string> metric_names, std::size_t repetitions);

  // Runs all repetitions. The callback fills one value per metric.
  void Run(const std::function<std::vector<double>()>& trial);

  // Median across repetitions for metric `i`.
  double MedianOf(std::size_t metric) const;
  double MeanOf(std::size_t metric) const;
  double StdDevOf(std::size_t metric) const;

  const std::vector<std::string>& metric_names() const { return names_; }
  std::size_t repetitions() const { return repetitions_; }

 private:
  std::vector<std::string> names_;
  std::size_t repetitions_;
  std::vector<std::vector<double>> samples_;  // [metric][repetition]
};

}  // namespace lockin

#endif  // SRC_STATS_SUMMARY_HPP_
