#include "src/stats/histogram.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace lockin {

LatencyHistogram::LatencyHistogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits), sub_bucket_count_(1ULL << sub_bucket_bits) {
  // 64 powers of two, each with sub_bucket_count_ sub-buckets, covers the
  // full uint64 range.
  buckets_.assign(64 * sub_bucket_count_, 0);
}

std::size_t LatencyHistogram::BucketIndex(std::uint64_t value) const {
  if (value < sub_bucket_count_) {
    return static_cast<std::size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - sub_bucket_bits_;
  const std::uint64_t sub = (value >> shift) - sub_bucket_count_;
  // Exponent bucket (msb - sub_bucket_bits_ + 1) starts after the linear
  // region; each contributes sub_bucket_count_ entries.
  return static_cast<std::size_t>(
      sub_bucket_count_ + static_cast<std::uint64_t>(msb - sub_bucket_bits_) * sub_bucket_count_ +
      sub);
}

std::uint64_t LatencyHistogram::BucketLowerBound(std::size_t index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  const std::uint64_t exp = (index - sub_bucket_count_) / sub_bucket_count_;
  const std::uint64_t sub = (index - sub_bucket_count_) % sub_bucket_count_;
  const int shift = static_cast<int>(exp);
  return ((sub_bucket_count_ + sub) << shift);
}

void LatencyHistogram::Record(std::uint64_t value) { RecordN(value, 1); }

void LatencyHistogram::RecordN(std::uint64_t value, std::uint64_t count) {
  if (count == 0) {
    return;
  }
  const std::size_t idx = BucketIndex(value);
  if (idx < buckets_.size()) {
    buckets_[idx] += count;
  } else {
    buckets_.back() += count;
  }
  count_ += count;
  total_ += value * count;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void LatencyHistogram::RecordBatch(const std::uint64_t* values, std::size_t n) {
  if (n == 0) {
    return;
  }
  std::uint64_t total = 0;
  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  const std::size_t last = buckets_.size() - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t value = values[i];
    const std::size_t idx = BucketIndex(value);
    ++buckets_[idx < last ? idx : last];
    total += value;
    lo = value < lo ? value : lo;
    hi = value > hi ? value : hi;
  }
  count_ += n;
  total_ += total;
  if (lo < min_) {
    min_ = lo;
  }
  if (hi > max_) {
    max_ = hi;
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.sub_bucket_bits_ != sub_bucket_bits_) {
    // Fall back to re-recording bucket lower bounds; resolution differs.
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      if (other.buckets_[i] != 0) {
        RecordN(other.BucketLowerBound(i), other.buckets_[i]);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  total_ += other.total_;
  if (other.count_ != 0) {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(total_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min();
  }
  if (q >= 1.0) {
    return max_;
  }
  // Nearest-rank percentile: the smallest value with cumulative count >=
  // ceil(q * N).
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) {
    rank = 1;
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return BucketLowerBound(i);
    }
  }
  return max_;
}

void LatencyHistogram::Reset() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  total_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream out;
  out << "n=" << count_ << " mean=" << Mean() << " p50=" << P50() << " p95=" << P95()
      << " p99=" << P99() << " p99.99=" << P9999() << " max=" << max_;
  return out.str();
}

}  // namespace lockin
