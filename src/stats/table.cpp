#include "src/stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace lockin {

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::string& label, const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(row));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << (c == 0 ? std::left : std::right) << row[c];
      out << (c == 0 ? "" : "");
      out.unsetf(std::ios::adjustfield);
    }
    out << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TextTable::PrintCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ",";
      }
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace lockin
