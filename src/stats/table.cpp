#include "src/stats/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "src/platform/json.hpp"

namespace lockin {

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::string& label, const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(row));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << (c == 0 ? std::left : std::right) << row[c];
      out << (c == 0 ? "" : "");
      out.unsetf(std::ios::adjustfield);
    }
    out << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TextTable::PrintCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ",";
      }
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

void TextTable::PrintJson(std::ostream& out) const {
  auto emit_string = [&](const std::string& cell) { WriteJsonString(out, cell); };
  auto emit_value = [&](const std::string& cell) {
    // Unquoted when the whole cell parses as a finite number.
    if (!cell.empty()) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() + cell.size() && std::isfinite(value)) {
        out << cell;
        return;
      }
    }
    emit_string(cell);
  };

  // Object keys: always quoted (a numeric header like a thread count must
  // not become a bare key), and deduplicated -- repeated headers such as
  // the figure tables' two "paper" columns get a _2/_3 suffix so JSON
  // parsers keep every column instead of the last duplicate.
  std::vector<std::string> keys;
  keys.reserve(header_.size());
  for (const std::string& name : header_) {
    std::string key = name;
    int suffix = 2;
    while (std::find(keys.begin(), keys.end(), key) != keys.end()) {
      key = name + "_" + std::to_string(suffix++);
    }
    keys.push_back(std::move(key));
  }

  out << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < keys.size(); ++c) {
      if (c != 0) {
        out << ", ";
      }
      emit_string(keys[c]);
      out << ": ";
      emit_value(rows_[r][c]);
    }
    out << "}";
  }
  out << "\n]\n";
}

}  // namespace lockin
