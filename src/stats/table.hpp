// Text-table and CSV emitters for benchmark output.
//
// Every bench binary prints the same rows/series the paper's figures plot.
// TextTable right-aligns numeric columns for terminal reading; the same
// data can be dumped as CSV for external plotting.
#ifndef SRC_STATS_TABLE_HPP_
#define SRC_STATS_TABLE_HPP_

#include <ostream>
#include <string>
#include <vector>

namespace lockin {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with `precision` digits after the point.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 2);

  void Print(std::ostream& out) const;
  void PrintCsv(std::ostream& out) const;

  // One JSON object per row, keyed by header, wrapped in an array:
  // [{"lock": "MUTEX", "Macq": 1.23}, ...]. Cells that parse fully as
  // numbers are emitted unquoted so downstream tooling gets real numbers;
  // quotes, backslashes and control characters are escaped per RFC 8259.
  void PrintJson(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper shared by benches).
std::string FormatDouble(double value, int precision = 2);

}  // namespace lockin

#endif  // SRC_STATS_TABLE_HPP_
