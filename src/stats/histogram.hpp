// Log-bucketed latency histogram.
//
// The paper reports 95th, 99th, 99.9th and 99.99th percentile lock-acquire
// latencies (Figures 9 and 15) spanning from hundreds of cycles to hundreds
// of millions (a long-sleeping MUTEXEE waiter). A log-scale histogram with
// sub-bucket resolution records that range in fixed memory with bounded
// relative error, like HdrHistogram.
#ifndef SRC_STATS_HISTOGRAM_HPP_
#define SRC_STATS_HISTOGRAM_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace lockin {

class LatencyHistogram {
 public:
  // `sub_bucket_bits` controls relative resolution: 2^bits sub-buckets per
  // power of two, i.e. bits=5 gives ~3% worst-case relative error.
  explicit LatencyHistogram(int sub_bucket_bits = 5);

  void Record(std::uint64_t value);
  void RecordN(std::uint64_t value, std::uint64_t count);

  // Batched fast path: records `n` values in one call. Semantically
  // identical to calling Record(values[i]) n times, but accumulates count /
  // total / min / max in registers and touches the member fields once, so
  // per-sample cost is one bucket increment. The native harness buffers
  // per-acquire latencies in a per-thread slot and flushes them through
  // here (src/locks/harness.cpp).
  void RecordBatch(const std::uint64_t* values, std::size_t n);

  // Merges another histogram (same sub_bucket_bits) into this one.
  void Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]. Returns 0 on an empty histogram.
  std::uint64_t Percentile(double q) const;

  std::uint64_t P50() const { return Percentile(0.50); }
  std::uint64_t P95() const { return Percentile(0.95); }
  std::uint64_t P99() const { return Percentile(0.99); }
  std::uint64_t P999() const { return Percentile(0.999); }
  std::uint64_t P9999() const { return Percentile(0.9999); }

  void Reset();

  // One-line summary: count, mean, p50/p95/p99/p99.99, max.
  std::string ToString() const;

 private:
  std::size_t BucketIndex(std::uint64_t value) const;
  std::uint64_t BucketLowerBound(std::size_t index) const;

  int sub_bucket_bits_;
  std::uint64_t sub_bucket_count_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace lockin

#endif  // SRC_STATS_HISTOGRAM_HPP_
