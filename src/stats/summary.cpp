#include "src/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lockin {

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  if (values.size() % 2 == 1) {
    return values[mid];
  }
  const double hi = values[mid];
  const double lo = *std::max_element(values.begin(), values.begin() + mid);
  return (lo + hi) / 2.0;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

RepeatedTrial::RepeatedTrial(std::vector<std::string> metric_names, std::size_t repetitions)
    : names_(std::move(metric_names)), repetitions_(repetitions), samples_(names_.size()) {}

void RepeatedTrial::Run(const std::function<std::vector<double>()>& trial) {
  for (std::size_t rep = 0; rep < repetitions_; ++rep) {
    std::vector<double> result = trial();
    if (result.size() != names_.size()) {
      throw std::runtime_error("RepeatedTrial: metric count mismatch");
    }
    for (std::size_t i = 0; i < result.size(); ++i) {
      samples_[i].push_back(result[i]);
    }
  }
}

double RepeatedTrial::MedianOf(std::size_t metric) const { return Median(samples_.at(metric)); }

double RepeatedTrial::MeanOf(std::size_t metric) const { return Mean(samples_.at(metric)); }

double RepeatedTrial::StdDevOf(std::size_t metric) const { return StdDev(samples_.at(metric)); }

}  // namespace lockin
