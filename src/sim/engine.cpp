#include "src/sim/engine.hpp"

#include <utility>

namespace lockin {

EventId SimEngine::Schedule(SimTime delay, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{now_ + delay, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void SimEngine::Cancel(EventId id) {
  // Erasing from the live set is the whole cancellation: the queue entry
  // becomes a tombstone dropped when the clock reaches it. An id that
  // already ran (or a stale handle) is absent, so the call is a no-op --
  // nothing grows without bound over a long simulation.
  live_.erase(id);
}

void SimEngine::RunUntil(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > until) {
      break;
    }
    if (live_.erase(top.id) == 0) {
      queue_.pop();  // cancellation tombstone
      continue;
    }
    Event event = top;  // copy out before pop invalidates the reference
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void SimEngine::RunAll() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (live_.erase(top.id) == 0) {
      queue_.pop();
      continue;
    }
    Event event = top;
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
}

}  // namespace lockin
