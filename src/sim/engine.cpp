#include "src/sim/engine.hpp"

#include <cassert>
#include <utility>

namespace lockin {

std::uint32_t SimEngine::AllocSlot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t index = free_head_;
    EventSlot& slot = SlotAt(index);
    free_head_ = slot.next_free;
    slot.next_free = kNoFreeSlot;
    return index;
  }
  const std::uint32_t base = static_cast<std::uint32_t>(slabs_.size()) * kSlabSize;
  assert(base + kSlabSize - 1 <= kSlotMask && "event slot space exhausted");
  slabs_.push_back(std::make_unique<EventSlot[]>(kSlabSize));
  // Chain all but the first new slot onto the free list; hand out the first.
  for (std::uint32_t i = kSlabSize - 1; i >= 1; --i) {
    EventSlot& slot = SlotAt(base + i);
    slot.next_free = free_head_;
    free_head_ = base + i;
  }
  return base;
}

void SimEngine::FreeSlot(std::uint32_t index) {
  EventSlot& slot = SlotAt(index);
  slot.fn.reset();
  slot.state = SlotState::kFree;
  ++slot.generation;  // invalidates every outstanding handle to this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

void SimEngine::HeapPush(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry.Before(heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void SimEngine::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    std::size_t best = first_child;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (heap_[c].Before(heap_[best])) {
        best = c;
      }
    }
    if (!heap_[best].Before(last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

EventId SimEngine::Schedule(SimTime delay, SimCallback fn) {
  const std::uint32_t index = AllocSlot();
  EventSlot& slot = SlotAt(index);
  if (fn.heap_allocated()) {
    ++heap_spills_;
  }
  slot.fn = std::move(fn);
  slot.state = SlotState::kPending;
  HeapPush(HeapEntry{now_ + delay, (next_seq_++ << kSlotBits) | index});
  ++live_;
  return (slot.generation << kSlotBits) | index;
}

void SimEngine::Cancel(EventId id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id & kSlotMask);
  if (index >= slabs_.size() * kSlabSize) {
    return;  // never-issued handle
  }
  EventSlot& slot = SlotAt(index);
  if (slot.generation != (id >> kSlotBits) || slot.state != SlotState::kPending) {
    return;  // already ran (slot recycled), already cancelled, or stale
  }
  // Tombstone: the heap entry stays queued and is dropped when the clock
  // reaches it; the callback's resources are released right away.
  slot.state = SlotState::kCancelled;
  slot.fn.reset();
  --live_;
  ++tombstones_;
}

bool SimEngine::PopNext(SimTime until, SimCallback& fn) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    const std::uint32_t index = static_cast<std::uint32_t>(top.order & kSlotMask);
    EventSlot& slot = SlotAt(index);
    if (slot.state == SlotState::kCancelled) {
      // Tombstones are reclaimed regardless of `until`: they carry no
      // callback, so draining them never runs simulation logic early.
      HeapPopTop();
      FreeSlot(index);
      --tombstones_;
      continue;
    }
    if (top.time > until) {
      return false;
    }
    HeapPopTop();
    now_ = top.time;
    fn = std::move(slot.fn);
    FreeSlot(index);  // slot reusable before the callback runs
    --live_;
    return true;
  }
  return false;
}

void SimEngine::RunUntil(SimTime until) {
  SimCallback fn;
  while (PopNext(until, fn)) {
    ++executed_;
    fn();
    fn.reset();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void SimEngine::RunAll() {
  SimCallback fn;
  while (PopNext(~0ULL, fn)) {
    ++executed_;
    fn();
    fn.reset();
  }
}

SimEngine::PoolStats SimEngine::pool_stats() const {
  PoolStats stats;
  stats.slab_blocks = slabs_.size();
  stats.slot_capacity = slabs_.size() * kSlabSize;
  stats.queue_capacity = heap_.capacity();
  stats.heap_spills = heap_spills_;
  stats.live_events = live_;
  stats.tombstones = tombstones_;
  return stats;
}

}  // namespace lockin
