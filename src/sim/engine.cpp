#include "src/sim/engine.hpp"

#include <utility>

namespace lockin {

EventId SimEngine::Schedule(SimTime delay, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{now_ + delay, id, std::move(fn)});
  return id;
}

void SimEngine::Cancel(EventId id) { cancelled_.insert(id); }

void SimEngine::RunUntil(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > until) {
      break;
    }
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    Event event = top;  // copy out before pop invalidates the reference
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void SimEngine::RunAll() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    Event event = top;
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
}

}  // namespace lockin
