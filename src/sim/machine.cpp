#include "src/sim/machine.hpp"

#include <cassert>
#include <utility>

namespace lockin {

SimMachine::SimMachine(SimEngine* engine, Topology topology, PowerParams power_params,
                       SimParams sim_params)
    : engine_(engine),
      power_model_(std::move(topology), power_params),
      params_(sim_params),
      contexts_(power_model_.topology().total_contexts()),
      ctx_states_(power_model_.topology().total_contexts(), ActivityState::kInactive) {
  const Topology& topo = power_model_.topology();
  core_ctxs_.resize(topo.total_cores());
  core_key_of_ctx_.reserve(topo.cpus().size());
  socket_of_ctx_.reserve(topo.cpus().size());
  for (std::size_t ctx = 0; ctx < topo.cpus().size(); ++ctx) {
    const CpuInfo& cpu = topo.cpus()[ctx];
    const int core_key = cpu.socket * topo.cores_per_socket() + cpu.core;
    core_key_of_ctx_.push_back(core_key);
    socket_of_ctx_.push_back(cpu.socket);
    core_ctxs_[core_key].push_back(static_cast<int>(ctx));  // ascending ctx order
  }
  RebuildPowerCache();
}

SimMachine::CoreTerms SimMachine::ComputeCoreTerms(int core_key) const {
  CoreTerms terms;
  // Hyper-threads of a core share the *higher* VF point: the core runs at
  // min VF only when every one of its contexts requests min (an inactive
  // sibling requests the global point).
  bool any_max_request = false;
  for (const int ctx : core_ctxs_[core_key]) {
    if (PowerModel::VfRequest(ctx_states_[ctx], vf_) == VfSetting::kMax) {
      any_max_request = true;
    }
  }
  const VfSetting core_vf = any_max_request ? VfSetting::kMax : VfSetting::kMin;

  // The first active context (lowest ctx index, matching the power model's
  // iteration order) pays the core wake-up power, later ones the SMT power.
  // ContextWatts is the power model's own per-context formula.
  bool first = true;
  for (const int ctx : core_ctxs_[core_key]) {
    const ActivityState state = ctx_states_[ctx];
    const bool active = IsContextActive(state);
    const PowerModel::ContextPower power =
        power_model_.ContextWatts(state, core_vf, active && first);
    if (active) {
      first = false;
      terms.active = true;
    }
    terms.package += power.package_w;
    terms.cores += power.cores_w;
    terms.dram += power.dram_w;
  }
  terms.at_max_vf = terms.active && core_vf == VfSetting::kMax;
  return terms;
}

double SimMachine::UncoreTerm(int socket) const {
  if (socket_active_cores_[socket] == 0) {
    return 0.0;
  }
  return power_model_.UncoreWatts(socket_max_vf_cores_[socket] > 0);
}

void SimMachine::RebuildPowerCache() {
  const Topology& topo = power_model_.topology();
  const PowerParams& p = power_model_.params();
  core_terms_.assign(core_ctxs_.size(), CoreTerms{});
  socket_active_cores_.assign(topo.sockets(), 0);
  socket_max_vf_cores_.assign(topo.sockets(), 0);
  socket_uncore_.assign(topo.sockets(), 0.0);
  state_counts_.assign(kActivityStateCount, 0);
  for (const ActivityState state : ctx_states_) {
    state_counts_[static_cast<std::size_t>(state)]++;
  }

  watts_ = PowerModel::Breakdown{};
  watts_.package_w = p.idle_package_w;
  watts_.dram_w = p.idle_dram_w;
  for (std::size_t core = 0; core < core_ctxs_.size(); ++core) {
    const CoreTerms terms = ComputeCoreTerms(static_cast<int>(core));
    core_terms_[core] = terms;
    if (terms.active) {
      const int socket = socket_of_ctx_[core_ctxs_[core].front()];
      socket_active_cores_[socket]++;
      if (terms.at_max_vf) {
        socket_max_vf_cores_[socket]++;
      }
    }
    watts_.package_w += terms.package;
    watts_.cores_w += terms.cores;
    watts_.dram_w += terms.dram;
  }
  for (int socket = 0; socket < topo.sockets(); ++socket) {
    socket_uncore_[socket] = UncoreTerm(socket);
    watts_.package_w += socket_uncore_[socket];
  }
}

void SimMachine::ApplyContextChange(int ctx, ActivityState new_state) {
  state_counts_[static_cast<std::size_t>(ctx_states_[ctx])]--;
  state_counts_[static_cast<std::size_t>(new_state)]++;
  ctx_states_[ctx] = new_state;

  const int core_key = core_key_of_ctx_[ctx];
  const int socket = socket_of_ctx_[ctx];
  const CoreTerms before = core_terms_[core_key];
  const CoreTerms after = ComputeCoreTerms(core_key);
  core_terms_[core_key] = after;
  watts_.package_w += after.package - before.package;
  watts_.cores_w += after.cores - before.cores;
  watts_.dram_w += after.dram - before.dram;

  if (before.active != after.active || before.at_max_vf != after.at_max_vf) {
    socket_active_cores_[socket] += (after.active ? 1 : 0) - (before.active ? 1 : 0);
    socket_max_vf_cores_[socket] += (after.at_max_vf ? 1 : 0) - (before.at_max_vf ? 1 : 0);
    const double uncore = UncoreTerm(socket);
    watts_.package_w += uncore - socket_uncore_[socket];
    socket_uncore_[socket] = uncore;
  }
}

double SimMachine::PowerCacheDriftForTest() const {
  const PowerModel::Breakdown full = power_model_.ComponentWattsUniform(ctx_states_, vf_);
  const double dp = watts_.package_w - full.package_w;
  const double dc = watts_.cores_w - full.cores_w;
  const double dd = watts_.dram_w - full.dram_w;
  double drift = dp < 0 ? -dp : dp;
  drift = dc < 0 ? (drift < -dc ? -dc : drift) : (drift < dc ? dc : drift);
  drift = dd < 0 ? (drift < -dd ? -dd : drift) : (drift < dd ? dd : drift);
  return drift;
}

void SimMachine::AccumulateEnergy() {
  const SimTime now = engine_->now();
  if (now > last_energy_time_) {
    const std::uint64_t dcycles = now - last_energy_time_;
    const double dt = static_cast<double>(dcycles) / params_.cycles_per_second;
    energy_.package_joules += watts_.package_w * dt;
    energy_.dram_joules += watts_.dram_w * dt;
    energy_.seconds += dt;
    for (int s = 0; s < kActivityStateCount; ++s) {
      state_cycles_[static_cast<std::size_t>(s)] += dcycles * state_counts_[static_cast<std::size_t>(s)];
    }
  }
  last_energy_time_ = now;
}

void SimMachine::SetContextState(int ctx, ActivityState state) {
  if (ctx_states_[ctx] != state) {
    AccumulateEnergy();
    ApplyContextChange(ctx, state);
  }
}

int SimMachine::AddThread() {
  threads_.emplace_back();
  return static_cast<int>(threads_.size()) - 1;
}

void SimMachine::Start(int tid) {
  Thread& t = threads_[tid];
  assert(t.state == ThreadState::kNotStarted);
  t.state = ThreadState::kReady;
  ready_.push_back(tid);
  Dispatch();
}

void SimMachine::Dispatch() {
  while (!ready_.empty()) {
    int free_ctx = -1;
    for (int c = 0; c < static_cast<int>(contexts_.size()); ++c) {
      if (contexts_[c].tid < 0) {
        free_ctx = c;
        break;
      }
    }
    if (free_ctx < 0) {
      // Oversubscribed with waiters: make sure every occupied context has a
      // preemption timer so the ready threads eventually rotate in.
      for (Context& c : contexts_) {
        if (c.tid >= 0 && c.quantum_event == 0) {
          const int ctx_index = static_cast<int>(&c - contexts_.data());
          c.quantum_event = engine_->Schedule(params_.scheduler_quantum_cycles,
                                              [this, ctx_index] {
                                                contexts_[ctx_index].quantum_event = 0;
                                                OnQuantumExpired(ctx_index);
                                              });
        }
      }
      return;
    }
    const int tid = ready_.front();
    ready_.pop_front();
    Place(tid, free_ctx);
  }
}

void SimMachine::Place(int tid, int ctx) {
  Thread& t = threads_[tid];
  t.state = ThreadState::kRunning;
  t.ctx = ctx;
  contexts_[ctx].tid = tid;
  SetContextState(ctx, t.activity);
  ArmQuantum(ctx);

  // Fire scheduling waiters (FIFO lock handovers, etc.) before resuming
  // work: a pending handover may cancel the spin work.
  if (!t.on_running.empty()) {
    std::vector<SimCallback> callbacks;
    callbacks.swap(t.on_running);
    for (auto& fn : callbacks) {
      fn();
    }
  }
  if (threads_[tid].state == ThreadState::kRunning) {
    ResumeWork(tid);
  }
}

void SimMachine::ArmQuantum(int ctx) {
  Context& c = contexts_[ctx];
  if (c.quantum_event != 0) {
    engine_->Cancel(c.quantum_event);
    c.quantum_event = 0;
  }
  // A preemption timer is only needed while someone waits for a context;
  // arming unconditionally would keep the event queue alive forever.
  if (ready_.empty()) {
    return;
  }
  c.quantum_event = engine_->Schedule(params_.scheduler_quantum_cycles, [this, ctx] {
    contexts_[ctx].quantum_event = 0;
    OnQuantumExpired(ctx);
  });
}

void SimMachine::OnQuantumExpired(int ctx) {
  const int tid = contexts_[ctx].tid;
  if (tid < 0 || ready_.empty()) {
    return;  // nothing to rotate; re-armed on demand by Dispatch
  }
  // Rotate: running thread to the ready tail, next ready thread in.
  Thread& t = threads_[tid];
  PauseWork(tid);
  RemoveFromContext(tid);
  t.state = ThreadState::kReady;
  ready_.push_back(tid);
  const int next = ready_.front();
  ready_.pop_front();
  Place(next, ctx);
}

void SimMachine::RemoveFromContext(int tid) {
  Thread& t = threads_[tid];
  if (t.ctx >= 0) {
    contexts_[t.ctx].tid = -1;
    if (contexts_[t.ctx].quantum_event != 0) {
      engine_->Cancel(contexts_[t.ctx].quantum_event);
      contexts_[t.ctx].quantum_event = 0;
    }
    SetContextState(t.ctx, ActivityState::kInactive);
    t.ctx = -1;
  }
}

void SimMachine::PauseWork(int tid) {
  Thread& t = threads_[tid];
  if (!t.has_work || t.work_event == 0) {
    return;
  }
  engine_->Cancel(t.work_event);
  t.work_event = 0;
  if (t.remaining != kInfiniteWork) {
    const SimTime elapsed = engine_->now() - t.resumed_at;
    t.remaining = elapsed >= t.remaining ? 0 : t.remaining - elapsed;
  }
}

void SimMachine::ResumeWork(int tid) {
  Thread& t = threads_[tid];
  if (!t.has_work || t.work_event != 0) {
    return;
  }
  t.resumed_at = engine_->now();
  if (t.remaining == kInfiniteWork) {
    return;  // open-ended spin: no completion event
  }
  // Context-switch cost is charged to the first slice after each placement;
  // folding it into the work keeps the accounting simple and conservative.
  t.work_event = engine_->Schedule(t.remaining, [this, tid] {
    Thread& thread = threads_[tid];
    thread.work_event = 0;
    thread.has_work = false;
    thread.remaining = 0;
    SimCallback done = std::move(thread.done);
    if (done) {
      done();
    }
  });
}

void SimMachine::RunFor(int tid, std::uint64_t cycles, ActivityState activity,
                        SimCallback done) {
  Thread& t = threads_[tid];
  assert(!t.has_work && "RunFor while work pending");
  t.has_work = true;
  t.remaining = cycles;
  t.done = std::move(done);
  t.activity = activity;
  if (t.state == ThreadState::kRunning) {
    SetContextState(t.ctx, activity);
    ResumeWork(tid);
  }
}

void SimMachine::CancelWork(int tid) {
  Thread& t = threads_[tid];
  if (!t.has_work) {
    return;
  }
  if (t.work_event != 0) {
    engine_->Cancel(t.work_event);
    t.work_event = 0;
  }
  t.has_work = false;
  t.remaining = 0;
  t.done.reset();
}

void SimMachine::SetActivity(int tid, ActivityState activity) {
  Thread& t = threads_[tid];
  t.activity = activity;
  if (t.state == ThreadState::kRunning) {
    SetContextState(t.ctx, activity);
  }
}

void SimMachine::Block(int tid, ActivityState blocked_state) {
  Thread& t = threads_[tid];
  assert(t.state == ThreadState::kRunning && "Block requires a running thread");
  assert(!t.has_work && "Block with work pending");
  RemoveFromContext(tid);
  t.state = ThreadState::kBlocked;
  t.activity = blocked_state;
  Dispatch();
}

void SimMachine::Unblock(int tid, std::uint64_t delay) {
  engine_->Schedule(delay, [this, tid] {
    Thread& t = threads_[tid];
    if (t.state != ThreadState::kBlocked) {
      return;
    }
    t.state = ThreadState::kReady;
    ready_.push_back(tid);
    Dispatch();
  });
}

void SimMachine::NotifyWhenRunning(int tid, SimCallback fn) {
  Thread& t = threads_[tid];
  if (t.state == ThreadState::kRunning) {
    fn();
    return;
  }
  t.on_running.push_back(std::move(fn));
}

SimMachine::EnergyTotals SimMachine::Energy() {
  AccumulateEnergy();
  return energy_;
}

void SimMachine::ResetEnergy() {
  AccumulateEnergy();
  energy_ = EnergyTotals{};
}

std::vector<double> SimMachine::StateSeconds() {
  AccumulateEnergy();
  std::vector<double> seconds(kActivityStateCount, 0.0);
  for (int i = 0; i < kActivityStateCount; ++i) {
    seconds[static_cast<std::size_t>(i)] =
        static_cast<double>(state_cycles_[static_cast<std::size_t>(i)]) /
        params_.cycles_per_second;
  }
  return seconds;
}

double SimMachine::ActiveShare(ActivityState state) {
  AccumulateEnergy();
  std::uint64_t active = 0;
  for (int i = 0; i < kActivityStateCount; ++i) {
    if (IsContextActive(static_cast<ActivityState>(i))) {
      active += state_cycles_[static_cast<std::size_t>(i)];
    }
  }
  if (active == 0) {
    return 0.0;
  }
  return static_cast<double>(state_cycles_[static_cast<std::size_t>(state)]) /
         static_cast<double>(active);
}

int SimMachine::ActiveContexts() const {
  int active = 0;
  for (const Context& c : contexts_) {
    if (c.tid >= 0) {
      ++active;
    }
  }
  return active;
}

}  // namespace lockin
