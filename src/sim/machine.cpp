#include "src/sim/machine.hpp"

#include <cassert>
#include <utility>

namespace lockin {

SimMachine::SimMachine(SimEngine* engine, Topology topology, PowerParams power_params,
                       SimParams sim_params)
    : engine_(engine),
      power_model_(std::move(topology), power_params),
      params_(sim_params),
      contexts_(power_model_.topology().total_contexts()),
      ctx_states_(power_model_.topology().total_contexts(), ActivityState::kInactive) {}

void SimMachine::AccumulateEnergy() {
  const SimTime now = engine_->now();
  if (now > last_energy_time_) {
    const double dt =
        static_cast<double>(now - last_energy_time_) / params_.cycles_per_second;
    const std::vector<VfSetting> vf(ctx_states_.size(), vf_);
    const PowerModel::Breakdown watts = power_model_.ComponentWatts(ctx_states_, vf);
    energy_.package_joules += watts.package_w * dt;
    energy_.dram_joules += watts.dram_w * dt;
    energy_.seconds += dt;
    for (const ActivityState state : ctx_states_) {
      state_seconds_[static_cast<std::size_t>(state)] += dt;
    }
  }
  last_energy_time_ = now;
}

void SimMachine::SetContextState(int ctx, ActivityState state) {
  if (ctx_states_[ctx] != state) {
    AccumulateEnergy();
    ctx_states_[ctx] = state;
  }
}

int SimMachine::AddThread() {
  threads_.emplace_back();
  return static_cast<int>(threads_.size()) - 1;
}

void SimMachine::Start(int tid) {
  Thread& t = threads_[tid];
  assert(t.state == ThreadState::kNotStarted);
  t.state = ThreadState::kReady;
  ready_.push_back(tid);
  Dispatch();
}

void SimMachine::Dispatch() {
  while (!ready_.empty()) {
    int free_ctx = -1;
    for (int c = 0; c < static_cast<int>(contexts_.size()); ++c) {
      if (contexts_[c].tid < 0) {
        free_ctx = c;
        break;
      }
    }
    if (free_ctx < 0) {
      // Oversubscribed with waiters: make sure every occupied context has a
      // preemption timer so the ready threads eventually rotate in.
      for (Context& c : contexts_) {
        if (c.tid >= 0 && c.quantum_event == 0) {
          const int ctx_index = static_cast<int>(&c - contexts_.data());
          c.quantum_event = engine_->Schedule(params_.scheduler_quantum_cycles,
                                              [this, ctx_index] {
                                                contexts_[ctx_index].quantum_event = 0;
                                                OnQuantumExpired(ctx_index);
                                              });
        }
      }
      return;
    }
    const int tid = ready_.front();
    ready_.pop_front();
    Place(tid, free_ctx);
  }
}

void SimMachine::Place(int tid, int ctx) {
  Thread& t = threads_[tid];
  t.state = ThreadState::kRunning;
  t.ctx = ctx;
  contexts_[ctx].tid = tid;
  SetContextState(ctx, t.activity);
  ArmQuantum(ctx);

  // Fire scheduling waiters (FIFO lock handovers, etc.) before resuming
  // work: a pending handover may cancel the spin work.
  if (!t.on_running.empty()) {
    std::vector<std::function<void()>> callbacks;
    callbacks.swap(t.on_running);
    for (auto& fn : callbacks) {
      fn();
    }
  }
  if (threads_[tid].state == ThreadState::kRunning) {
    ResumeWork(tid);
  }
}

void SimMachine::ArmQuantum(int ctx) {
  Context& c = contexts_[ctx];
  if (c.quantum_event != 0) {
    engine_->Cancel(c.quantum_event);
    c.quantum_event = 0;
  }
  // A preemption timer is only needed while someone waits for a context;
  // arming unconditionally would keep the event queue alive forever.
  if (ready_.empty()) {
    return;
  }
  c.quantum_event = engine_->Schedule(params_.scheduler_quantum_cycles, [this, ctx] {
    contexts_[ctx].quantum_event = 0;
    OnQuantumExpired(ctx);
  });
}

void SimMachine::OnQuantumExpired(int ctx) {
  const int tid = contexts_[ctx].tid;
  if (tid < 0 || ready_.empty()) {
    return;  // nothing to rotate; re-armed on demand by Dispatch
  }
  // Rotate: running thread to the ready tail, next ready thread in.
  Thread& t = threads_[tid];
  PauseWork(tid);
  RemoveFromContext(tid);
  t.state = ThreadState::kReady;
  ready_.push_back(tid);
  const int next = ready_.front();
  ready_.pop_front();
  Place(next, ctx);
}

void SimMachine::RemoveFromContext(int tid) {
  Thread& t = threads_[tid];
  if (t.ctx >= 0) {
    contexts_[t.ctx].tid = -1;
    if (contexts_[t.ctx].quantum_event != 0) {
      engine_->Cancel(contexts_[t.ctx].quantum_event);
      contexts_[t.ctx].quantum_event = 0;
    }
    SetContextState(t.ctx, ActivityState::kInactive);
    t.ctx = -1;
  }
}

void SimMachine::PauseWork(int tid) {
  Thread& t = threads_[tid];
  if (!t.has_work || t.work_event == 0) {
    return;
  }
  engine_->Cancel(t.work_event);
  t.work_event = 0;
  if (t.remaining != kInfiniteWork) {
    const SimTime elapsed = engine_->now() - t.resumed_at;
    t.remaining = elapsed >= t.remaining ? 0 : t.remaining - elapsed;
  }
}

void SimMachine::ResumeWork(int tid) {
  Thread& t = threads_[tid];
  if (!t.has_work || t.work_event != 0) {
    return;
  }
  t.resumed_at = engine_->now();
  if (t.remaining == kInfiniteWork) {
    return;  // open-ended spin: no completion event
  }
  // Context-switch cost is charged to the first slice after each placement;
  // folding it into the work keeps the accounting simple and conservative.
  t.work_event = engine_->Schedule(t.remaining, [this, tid] {
    Thread& thread = threads_[tid];
    thread.work_event = 0;
    thread.has_work = false;
    thread.remaining = 0;
    std::function<void()> done;
    done.swap(thread.done);
    if (done) {
      done();
    }
  });
}

void SimMachine::RunFor(int tid, std::uint64_t cycles, ActivityState activity,
                        std::function<void()> done) {
  Thread& t = threads_[tid];
  assert(!t.has_work && "RunFor while work pending");
  t.has_work = true;
  t.remaining = cycles;
  t.done = std::move(done);
  t.activity = activity;
  if (t.state == ThreadState::kRunning) {
    SetContextState(t.ctx, activity);
    ResumeWork(tid);
  }
}

void SimMachine::CancelWork(int tid) {
  Thread& t = threads_[tid];
  if (!t.has_work) {
    return;
  }
  if (t.work_event != 0) {
    engine_->Cancel(t.work_event);
    t.work_event = 0;
  }
  t.has_work = false;
  t.remaining = 0;
  t.done = nullptr;
}

void SimMachine::SetActivity(int tid, ActivityState activity) {
  Thread& t = threads_[tid];
  t.activity = activity;
  if (t.state == ThreadState::kRunning) {
    SetContextState(t.ctx, activity);
  }
}

void SimMachine::Block(int tid, ActivityState blocked_state) {
  Thread& t = threads_[tid];
  assert(t.state == ThreadState::kRunning && "Block requires a running thread");
  assert(!t.has_work && "Block with work pending");
  RemoveFromContext(tid);
  t.state = ThreadState::kBlocked;
  t.activity = blocked_state;
  Dispatch();
}

void SimMachine::Unblock(int tid, std::uint64_t delay) {
  engine_->Schedule(delay, [this, tid] {
    Thread& t = threads_[tid];
    if (t.state != ThreadState::kBlocked) {
      return;
    }
    t.state = ThreadState::kReady;
    ready_.push_back(tid);
    Dispatch();
  });
}

void SimMachine::NotifyWhenRunning(int tid, std::function<void()> fn) {
  Thread& t = threads_[tid];
  if (t.state == ThreadState::kRunning) {
    fn();
    return;
  }
  t.on_running.push_back(std::move(fn));
}

SimMachine::EnergyTotals SimMachine::Energy() {
  AccumulateEnergy();
  return energy_;
}

void SimMachine::ResetEnergy() {
  AccumulateEnergy();
  energy_ = EnergyTotals{};
}

std::vector<double> SimMachine::StateSeconds() {
  AccumulateEnergy();
  return state_seconds_;
}

double SimMachine::ActiveShare(ActivityState state) {
  AccumulateEnergy();
  double active = 0.0;
  for (int i = 0; i < kActivityStateCount; ++i) {
    const auto s = static_cast<ActivityState>(i);
    if (s != ActivityState::kInactive && s != ActivityState::kSleeping &&
        s != ActivityState::kDeepSleep) {
      active += state_seconds_[static_cast<std::size_t>(i)];
    }
  }
  if (active <= 0.0) {
    return 0.0;
  }
  return state_seconds_[static_cast<std::size_t>(state)] / active;
}

int SimMachine::ActiveContexts() const {
  int active = 0;
  for (const Context& c : contexts_) {
    if (c.tid >= 0) {
      ++active;
    }
  }
  return active;
}

}  // namespace lockin
