#include "src/sim/sim_lock.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace lockin {

// ---------------------------------------------------------------------------
// SimSpinLock
// ---------------------------------------------------------------------------

SimSpinLock::SimSpinLock(SimMachine* machine, SimSpinLockConfig config)
    : SimLock(machine), config_(std::move(config)), rng_(config_.rng_seed) {}

std::uint64_t SimSpinLock::HandoverDelay() const {
  const SimParams& p = machine_->params();
  const std::uint64_t base = 2 * p.line_transfer_cycles;  // invalidate + refill
  switch (config_.handover) {
    case SimSpinLockConfig::Handover::kQueue:
      return base;
    case SimSpinLockConfig::Handover::kBroadcast:
      return base + p.burst_per_waiter_cycles * waiters_.size();
    case SimSpinLockConfig::Handover::kAtomicStorm:
      // The winner's exchange must beat every other waiter's continuous
      // atomics, so the handover itself degrades with the waiter count.
      return base + (p.burst_per_waiter_cycles + p.tas_release_per_waiter_cycles) *
                        waiters_.size();
    case SimSpinLockConfig::Handover::kBackoff:
      // Backed-off waiters probe rarely: the storm is gone, but the winner
      // pays half an average backoff window of re-probe latency.
      return base + p.burst_per_waiter_cycles * waiters_.size() / 4 + 400;
    case SimSpinLockConfig::Handover::kCohort:
      // Most handovers stay within the socket (one intra-socket transfer);
      // cohort-budget expiries cross sockets. Modeled as the blended cost.
      return p.line_transfer_cycles + p.burst_per_waiter_cycles * waiters_.size() / 8 +
             p.max_coherence_cycles / 16;
  }
  return base;
}

std::uint64_t SimSpinLock::ReleaseCost() const {
  const SimParams& p = machine_->params();
  if (config_.handover == SimSpinLockConfig::Handover::kAtomicStorm) {
    // The release store must win the line against continuous atomics.
    return p.tas_release_per_waiter_cycles * waiters_.size();
  }
  return 0;
}

void SimSpinLock::Acquire(int tid, SimCallback on_acquired) {
  if (!held_ && waiters_.empty()) {
    held_ = true;
    stats_.acquires++;
    stats_.spin_handovers++;
    machine_->RunFor(tid, config_.uncontested_cycles, ActivityState::kCritical,
                     std::move(on_acquired));
    return;
  }
  pending_.Put(tid, std::move(on_acquired));
  waiters_.push_back(tid);
  machine_->RunFor(tid, SimMachine::kInfiniteWork, config_.spin_state, nullptr);
}

void SimSpinLock::FinalizeGrant(int tid) {
  machine_->CancelWork(tid);
  stats_.acquires++;
  stats_.spin_handovers++;
  SimCallback cb = pending_.Take(tid);
  cb();
}

void SimSpinLock::GrantTo(int tid, std::uint64_t delay) {
  machine_->engine().Schedule(delay, [this, tid] {
    if (machine_->IsRunning(tid)) {
      FinalizeGrant(tid);
      return;
    }
    // The chosen waiter is descheduled: the handover stalls until the
    // scheduler puts it back on a context (the FIFO convoy of Figure 11).
    machine_->NotifyWhenRunning(tid, [this, tid] { FinalizeGrant(tid); });
  });
}

void SimSpinLock::Release(int tid, SimCallback on_released) {
  assert(held_);
  const std::uint64_t release_cost = ReleaseCost();
  if (waiters_.empty()) {
    held_ = false;
    if (release_cost > 0) {
      machine_->RunFor(tid, release_cost, config_.spin_state, std::move(on_released));
    } else {
      on_released();
    }
    return;
  }

  // Pick the next owner.
  std::size_t index = 0;
  if (config_.discipline == SimSpinLockConfig::Discipline::kRandom) {
    // Barging: only a waiter that is on a context can win the race. Prefer a
    // random running waiter; fall back to FIFO when all are descheduled.
    running_scratch_.clear();
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      if (machine_->IsRunning(waiters_[i])) {
        running_scratch_.push_back(i);
      }
    }
    if (!running_scratch_.empty()) {
      index = running_scratch_[rng_.NextBelow(running_scratch_.size())];
    }
  }
  const int next = waiters_[index];
  waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(index));
  // held_ stays true: ownership passes directly.
  GrantTo(next, HandoverDelay());

  if (release_cost > 0) {
    machine_->RunFor(tid, release_cost, config_.spin_state, std::move(on_released));
  } else {
    on_released();
  }
}

// ---------------------------------------------------------------------------
// SimFutexMutex
// ---------------------------------------------------------------------------

SimFutexMutex::SimFutexMutex(SimMachine* machine, SimFutexMutexConfig config)
    : SimLock(machine), config_(std::move(config)), futex_(machine), rng_(config_.rng_seed) {}

// Spinners race with CAS: the winner is effectively random among the ones
// currently on a hardware context. Returns -1 when none qualifies.
int SimFutexMutex::PopRandomRunningSpinner() {
  running_scratch_.clear();
  for (std::size_t i = 0; i < spinners_.size(); ++i) {
    if (machine_->IsRunning(spinners_[i])) {
      running_scratch_.push_back(i);
    }
  }
  if (running_scratch_.empty()) {
    return -1;
  }
  const std::size_t index = running_scratch_[rng_.NextBelow(running_scratch_.size())];
  const int tid = spinners_[index];
  spinners_.erase(spinners_.begin() + static_cast<std::ptrdiff_t>(index));
  return tid;
}

void SimFutexMutex::TakeOwnership(int tid, bool via_futex) {
  held_ = true;
  stats_.acquires++;
  if (via_futex) {
    stats_.futex_handovers++;
  } else {
    stats_.spin_handovers++;
  }
  assert(pending_.Has(tid));
  SimCallback cb = pending_.Take(tid);
  cb();
}

void SimFutexMutex::Acquire(int tid, SimCallback on_acquired) {
  if (!held_) {
    // Barging: arrivals take a free lock immediately, even past sleepers.
    held_ = true;
    stats_.acquires++;
    stats_.spin_handovers++;
    machine_->RunFor(tid, config_.uncontested_cycles, ActivityState::kCritical,
                     std::move(on_acquired));
    return;
  }
  pending_.Put(tid, std::move(on_acquired));
  spinners_.push_back(tid);
  machine_->RunFor(tid, config_.spin_cycles, config_.spin_state, [this, tid] {
    // Spin budget exhausted: go to sleep.
    auto it = std::find(spinners_.begin(), spinners_.end(), tid);
    if (it != spinners_.end()) {
      spinners_.erase(it);
      EnterSleepLoop(tid);
    }
  });
}

void SimFutexMutex::EnterSleepLoop(int tid) {
  // glibc's sleep path exchanges the state word before FUTEX_WAIT and owns
  // the lock outright when it reads 0 -- a releaser that slipped between our
  // spin phase and here can never be missed. Without this check the lock
  // can sit free with every waiter asleep (no barging arrival would rescue
  // it, e.g. while the adaptive runtime drains this backend). The exchange
  // pays one contended line round trip before ownership is decided.
  if (!held_) {
    const std::uint64_t exchange_cost = 2 * machine_->params().line_transfer_cycles;
    machine_->RunFor(tid, exchange_cost, config_.spin_state, [this, tid] {
      if (!held_) {
        TakeOwnership(tid, /*via_futex=*/false);
      } else {
        EnterSleepLoop(tid);  // lost the race after all; sleep for real
      }
    });
    return;
  }
  futex_.Sleep(tid, 0, [this, tid](SimFutex::WakeReason) {
    // Running again: retry the acquire.
    if (!held_) {
      TakeOwnership(tid, /*via_futex=*/true);
      return;
    }
    // Lock stolen during the turnaround (a third thread barged before the
    // woken thread was ready to execute, section 5.1). glibc retries its
    // short spin phase before sleeping again, keeping the context active
    // and adding contention -- then wastes another futex round-trip.
    stats_.resleeps++;
    spinners_.push_back(tid);
    machine_->RunFor(tid, config_.spin_cycles, config_.spin_state, [this, tid] {
      auto it = std::find(spinners_.begin(), spinners_.end(), tid);
      if (it != spinners_.end()) {
        spinners_.erase(it);
        EnterSleepLoop(tid);
      }
    });
  });
}

void SimFutexMutex::TryGrantToSpinner() {
  if (held_ || spinners_.empty()) {
    return;
  }
  const int tid = PopRandomRunningSpinner();
  if (tid < 0) {
    return;
  }
  machine_->CancelWork(tid);
  TakeOwnership(tid, /*via_futex=*/false);
}

void SimFutexMutex::Release(int tid, SimCallback on_released) {
  assert(held_);
  held_ = false;
  const bool have_sleepers = futex_.sleeper_count() > 0 || futex_.entering_count() > 0;

  if (!spinners_.empty()) {
    // A spinner observes the release after the line transfers plus the CAS
    // race among all concurrently retrying spinners.
    const SimParams& p = machine_->params();
    const std::uint64_t delay =
        2 * p.line_transfer_cycles + p.burst_per_waiter_cycles * spinners_.size();
    machine_->engine().Schedule(delay, [this] { TryGrantToSpinner(); });
  }
  if (have_sleepers) {
    // The wake call sits on the releaser's critical path -- MUTEX's core
    // inefficiency for short critical sections.
    futex_.Wake(tid, 1, std::move(on_released));
    return;
  }
  on_released();
}

// ---------------------------------------------------------------------------
// SimMutexee
// ---------------------------------------------------------------------------

SimMutexee::SimMutexee(SimMachine* machine, SimMutexeeConfig config)
    : SimLock(machine), config_(std::move(config)), futex_(machine), rng_(config_.rng_seed) {}

int SimMutexee::PopRandomRunningSpinner() {
  running_scratch_.clear();
  for (std::size_t i = 0; i < spinners_.size(); ++i) {
    if (machine_->IsRunning(spinners_[i])) {
      running_scratch_.push_back(i);
    }
  }
  if (running_scratch_.empty()) {
    return -1;
  }
  const std::size_t index = running_scratch_[rng_.NextBelow(running_scratch_.size())];
  const int tid = spinners_[index];
  spinners_.erase(spinners_.begin() + static_cast<std::ptrdiff_t>(index));
  return tid;
}

void SimMutexee::RecordWindow(bool futex_handover) {
  window_acquires_++;
  if (futex_handover) {
    window_futex_++;
  }
  if (window_acquires_ >= config_.base.adapt_period) {
    const double ratio =
        static_cast<double>(window_futex_) / static_cast<double>(window_acquires_);
    mode_ = ratio > config_.base.futex_ratio_threshold ? MutexeeLock::Mode::kMutex
                                                       : MutexeeLock::Mode::kSpin;
    window_acquires_ = 0;
    window_futex_ = 0;
  }
}

void SimMutexee::TakeOwnership(int tid, int kind) {
  held_ = true;
  stats_.acquires++;
  switch (kind) {
    case 0:
      stats_.spin_handovers++;
      break;
    case 1:
      stats_.futex_handovers++;
      break;
    default:
      stats_.timeout_handovers++;
      break;
  }
  RecordWindow(kind == 1);
  assert(pending_.Has(tid));
  SimCallback cb = pending_.Take(tid);
  cb();
}

void SimMutexee::Acquire(int tid, SimCallback on_acquired) {
  if (!held_) {
    held_ = true;
    stats_.acquires++;
    stats_.spin_handovers++;
    RecordWindow(false);
    machine_->RunFor(tid, config_.uncontested_cycles, ActivityState::kCritical,
                     std::move(on_acquired));
    return;
  }
  pending_.Put(tid, std::move(on_acquired));
  spinners_.push_back(tid);
  const std::uint64_t budget = mode_ == MutexeeLock::Mode::kSpin
                                   ? config_.base.spin_mode_lock_cycles
                                   : config_.base.mutex_mode_lock_cycles;
  machine_->RunFor(tid, budget, ActivityState::kSpinMbar, [this, tid] {
    auto it = std::find(spinners_.begin(), spinners_.end(), tid);
    if (it != spinners_.end()) {
      spinners_.erase(it);
      EnterSleepLoop(tid);
    }
  });
}

void SimMutexee::EnterSleepLoop(int tid) {
  // Same pre-sleep recheck as the native CAS loop (state 0 -> acquired): a
  // release between spin expiry and the sleep call must not be lost. The
  // CAS pays one contended line round trip.
  if (!held_) {
    const std::uint64_t exchange_cost = 2 * machine_->params().line_transfer_cycles;
    machine_->RunFor(tid, exchange_cost, ActivityState::kSpinMbar, [this, tid] {
      if (!held_) {
        TakeOwnership(tid, /*kind=*/0);
      } else {
        EnterSleepLoop(tid);
      }
    });
    return;
  }
  const std::uint64_t timeout_cycles =
      config_.base.sleep_timeout_ns == 0
          ? 0
          : static_cast<std::uint64_t>(static_cast<double>(config_.base.sleep_timeout_ns) *
                                       machine_->params().cycles_per_second / 1e9);
  futex_.Sleep(tid, timeout_cycles, [this, tid](SimFutex::WakeReason reason) {
    if (reason == SimFutex::WakeReason::kTimedOut) {
      // Timeout protocol: spin until acquired; never sleep again.
      BecomePersistentSpinner(tid);
      return;
    }
    if (!held_) {
      TakeOwnership(tid, /*kind=*/1);
      return;
    }
    stats_.resleeps++;
    EnterSleepLoop(tid);
  });
}

void SimMutexee::BecomePersistentSpinner(int tid) {
  if (!held_) {
    TakeOwnership(tid, /*kind=*/2);
    return;
  }
  spinners_.push_back(tid);
  machine_->RunFor(tid, SimMachine::kInfiniteWork, ActivityState::kSpinMbar, nullptr);
}

void SimMutexee::Release(int tid, SimCallback on_released) {
  assert(held_);
  // User-space handover: the defining MUTEXEE fast path. The spinners race
  // with CAS, so the recipient is a random *running* spinner. No futex
  // calls; sleepers keep sleeping (fairness traded for energy, sec 4.4).
  const int next = PopRandomRunningSpinner();
  if (next >= 0) {
    const SimParams& p = machine_->params();
    const std::uint64_t delay =
        2 * p.line_transfer_cycles + p.burst_per_waiter_cycles * spinners_.size();
    machine_->engine().Schedule(delay, [this, next] {
      machine_->CancelWork(next);
      held_ = false;  // momentary; TakeOwnership re-sets it
      TakeOwnership(next, /*kind=*/0);
    });
    on_released();
    return;
  }

  held_ = false;
  const bool have_sleepers = futex_.sleeper_count() > 0 || futex_.entering_count() > 0;
  if (!have_sleepers) {
    on_released();
    return;
  }
  if (!config_.base.enable_unlock_grace) {
    futex_.Wake(tid, 1, std::move(on_released));
    return;
  }
  // Grace window: wait ~the maximum coherence latency in user space; if an
  // arriving thread takes the lock meanwhile, skip the wake entirely. The
  // continuation parks in the releaser's slot (one release in flight per
  // tid) so the grace closure stays thin.
  const std::uint64_t grace = mode_ == MutexeeLock::Mode::kSpin
                                  ? config_.base.spin_mode_grace_cycles
                                  : config_.base.mutex_mode_grace_cycles;
  release_cont_.Put(tid, std::move(on_released));
  machine_->RunFor(tid, grace, ActivityState::kSpinMbar, [this, tid] {
    SimCallback done = release_cont_.Take(tid);
    if (held_) {
      stats_.wake_skips++;
      done();
      return;
    }
    futex_.Wake(tid, 1, std::move(done));
  });
}

// ---------------------------------------------------------------------------
// SimAdaptiveLock
// ---------------------------------------------------------------------------

SimAdaptiveLock::SimAdaptiveLock(SimMachine* machine, SimAdaptiveConfig config,
                                 const SimLockOptions& inner_options)
    : SimLock(machine),
      config_(std::move(config)),
      policy_(MakePolicy(config_.policy)),
      profile_(AdaptiveEnergyParams::FromPowerParams(
          config_.power, machine->params().cycles_per_second)) {
  inner_[static_cast<int>(AdaptiveBackend::kSpin)] =
      MakeSimLock("TTAS", machine, inner_options);
  inner_[static_cast<int>(AdaptiveBackend::kSleep)] =
      MakeSimLock("MUTEX", machine, inner_options);
  inner_[static_cast<int>(AdaptiveBackend::kMutexee)] =
      MakeSimLock("MUTEXEE", machine, inner_options);
}

std::uint64_t SimAdaptiveLock::InnerSleepCalls() const {
  std::uint64_t sleeps = 0;
  for (const auto& inner : inner_) {
    if (const SimFutex::Stats* fs = inner->futex_stats()) {
      sleeps += fs->sleep_calls;
    }
  }
  return sleeps;
}

void SimAdaptiveLock::OnInnerAcquired(int tid, SimTime requested_at) {
  const SimTime now = machine_->engine().now();
  pending_wait_cycles_ = now - requested_at;
  holder_granted_at_ = now;
  SimCallback cb = acquire_cont_.Take(tid);
  cb();
}

void SimAdaptiveLock::IssueAcquire(AdaptiveBackend b, int tid, SimCallback on_acquired,
                                   SimTime requested_at) {
  ++outstanding_;
  acquire_cont_.Put(tid, std::move(on_acquired));
  Inner(b).Acquire(tid, [this, tid, requested_at] { OnInnerAcquired(tid, requested_at); });
}

void SimAdaptiveLock::Acquire(int tid, SimCallback on_acquired) {
  const SimTime requested_at = machine_->engine().now();
  if (switching_) {
    // Park outside the draining backend, burning spin power like the native
    // lock's retry loop would.
    parked_.push_back(Parked{tid, std::move(on_acquired), requested_at});
    machine_->RunFor(tid, SimMachine::kInfiniteWork, ActivityState::kSpinMbar, nullptr);
    return;
  }
  IssueAcquire(current_, tid, std::move(on_acquired), requested_at);
}

void SimAdaptiveLock::EpochMaintenance(SimTime now) {
  const std::uint64_t sleeps = InnerSleepCalls();
  const LockSiteSnapshot snapshot = profile_.EndEpoch(now, sleeps - last_sleep_calls_);
  last_sleep_calls_ = sleeps;
  ++epochs_;
  if (switching_) {
    return;  // one switch at a time; the policy re-decides next epoch
  }
  const AdaptiveBackend next = policy_->Decide(snapshot, current_);
  if (config_.policy.retune_mutexee &&
      (next == AdaptiveBackend::kMutexee || current_ == AdaptiveBackend::kMutexee)) {
    // Mirror the native runtime: keep MUTEXEE's budgets matched to the
    // observed regime, inside the tuner-derived bounds.
    const MutexeeBudgets budgets =
        RetuneMutexeeBudgets(snapshot, config_.policy.mutexee_bounds);
    static_cast<SimMutexee&>(Inner(AdaptiveBackend::kMutexee))
        .Retune(budgets.spin_cycles, budgets.grace_cycles);
  }
  if (next != current_) {
    switching_ = true;
    next_ = next;
  }
}

void SimAdaptiveLock::Release(int tid, SimCallback on_released) {
  const SimTime now = machine_->engine().now();
  profile_.RecordAcquire(pending_wait_cycles_, now - holder_granted_at_);
  if (profile_.epoch_acquires() >= config_.epoch_acquires) {
    EpochMaintenance(now);
  }
  // Every in-flight acquisition targets the same backend (a switch only
  // completes after they drain), so the holder releases the active one.
  release_cont_.Put(tid, std::move(on_released));
  Inner(current_).Release(tid, [this, tid] {
    --outstanding_;
    MaybeFinishSwitch();
    SimCallback cb = release_cont_.Take(tid);
    cb();
  });
}

void SimAdaptiveLock::MaybeFinishSwitch() {
  if (!switching_ || outstanding_ != 0) {
    return;
  }
  current_ = next_;
  switching_ = false;
  ++switches_;
  // LockScope: same kEpochSwitch record the native AdaptiveLock emits,
  // stamped with sim time (the switch is a lock-wide instant, not tied to
  // one simulated thread; it lands on track 0).
  machine_->engine().EmitTrace(TraceEventKind::kEpochSwitch, 0,
                               static_cast<std::uint32_t>(current_));
  std::vector<Parked> parked = std::move(parked_);
  parked_.clear();
  for (Parked& p : parked) {
    machine_->CancelWork(p.tid);  // end the parking spin
    IssueAcquire(current_, p.tid, std::move(p.on_acquired), p.requested_at);
  }
}

const SimLockStats& SimAdaptiveLock::stats() const {
  aggregated_ = SimLockStats{};
  for (const auto& inner : inner_) {
    const SimLockStats& s = inner->stats();
    aggregated_.acquires += s.acquires;
    aggregated_.spin_handovers += s.spin_handovers;
    aggregated_.futex_handovers += s.futex_handovers;
    aggregated_.timeout_handovers += s.timeout_handovers;
    aggregated_.wake_skips += s.wake_skips;
    aggregated_.resleeps += s.resleeps;
  }
  return aggregated_;
}

const SimFutex::Stats* SimAdaptiveLock::futex_stats() const {
  aggregated_futex_ = SimFutex::Stats{};
  for (const auto& inner : inner_) {
    if (const SimFutex::Stats* fs = inner->futex_stats()) {
      aggregated_futex_.sleep_calls += fs->sleep_calls;
      aggregated_futex_.sleep_misses += fs->sleep_misses;
      aggregated_futex_.wake_calls += fs->wake_calls;
      aggregated_futex_.threads_woken += fs->threads_woken;
      aggregated_futex_.timeouts += fs->timeouts;
      aggregated_futex_.deep_sleeps += fs->deep_sleeps;
    }
  }
  return &aggregated_futex_;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<SimLock> MakeSimLock(const std::string& name, SimMachine* machine,
                                     const SimLockOptions& options) {
  if (name == "ADAPTIVE") {
    SimAdaptiveConfig config;
    config.policy = options.adaptive_policy;
    config.epoch_acquires = options.adaptive_epoch_acquires;
    config.power = options.power;
    return std::make_unique<SimAdaptiveLock>(machine, config, options);
  }
  if (name == "MUTEX") {
    SimFutexMutexConfig config;
    config.spin_cycles = options.mutex_spin_cycles;
    return std::make_unique<SimFutexMutex>(machine, config);
  }
  if (name == "MUTEXEE" || name == "MUTEXEE-TO") {
    SimMutexeeConfig config;
    config.base = options.mutexee;
    config.name = name;
    if (name == "MUTEXEE") {
      config.base.sleep_timeout_ns = 0;
    }
    return std::make_unique<SimMutexee>(machine, config);
  }

  SimSpinLockConfig config;
  config.rng_seed = options.rng_seed;
  config.name = name;
  config.uncontested_cycles = 65;  // Table 2: simple spinlocks ~17 Macq/s
  if (name == "TAS") {
    config.discipline = SimSpinLockConfig::Discipline::kRandom;
    config.handover = SimSpinLockConfig::Handover::kAtomicStorm;
    config.spin_state = ActivityState::kSpinGlobal;
    return std::make_unique<SimSpinLock>(machine, config);
  }
  if (name == "TTAS") {
    config.discipline = SimSpinLockConfig::Discipline::kRandom;
    config.handover = SimSpinLockConfig::Handover::kBroadcast;
    config.spin_state = ActivityState::kSpinMbar;
    return std::make_unique<SimSpinLock>(machine, config);
  }
  if (name == "TICKET") {
    config.discipline = SimSpinLockConfig::Discipline::kFifo;
    config.handover = SimSpinLockConfig::Handover::kBroadcast;
    config.spin_state = ActivityState::kSpinMbar;
    return std::make_unique<SimSpinLock>(machine, config);
  }
  if (name == "TAS-BO") {
    config.discipline = SimSpinLockConfig::Discipline::kRandom;
    config.handover = SimSpinLockConfig::Handover::kBackoff;
    config.spin_state = ActivityState::kSpinMbar;  // waiters mostly paused
    return std::make_unique<SimSpinLock>(machine, config);
  }
  if (name == "COHORT") {
    config.discipline = SimSpinLockConfig::Discipline::kFifo;
    config.handover = SimSpinLockConfig::Handover::kCohort;
    config.spin_state = ActivityState::kSpinMbar;
    config.uncontested_cycles = 110;  // two-level acquire path
    return std::make_unique<SimSpinLock>(machine, config);
  }
  if (name == "MCS" || name == "CLH") {
    config.discipline = SimSpinLockConfig::Discipline::kFifo;
    config.handover = SimSpinLockConfig::Handover::kQueue;
    config.spin_state = ActivityState::kSpinMbar;
    config.uncontested_cycles = 132;  // queue-node management (Table 2: ~12 Macq/s)
    return std::make_unique<SimSpinLock>(machine, config);
  }
  return nullptr;
}

}  // namespace lockin
