// Simulated lock algorithms.
//
// Each lock model reproduces the *handover behaviour* of its native
// counterpart in src/locks: who waits in which power state, what a release
// costs, who gets the lock next, and when futexes are involved. The models
// are event-driven against SimMachine/SimFutex; their parameters are the
// paper's measured latencies (src/sim/params.hpp).
//
// The discipline/handover distinctions that drive the paper's results:
//   * TAS: global spinning, random grant, release pays for the atomic storm;
//   * TTAS: local spinning, random grant, release triggers an invalidation
//     burst proportional to the number of waiters;
//   * TICKET: local spinning, FIFO grant, same burst; FIFO is what collapses
//     under oversubscription (a descheduled next-in-line stalls everyone);
//   * MCS/CLH: local spinning on a private line, FIFO, constant handover;
//   * MUTEX: spin a few hundred cycles then futex-sleep; release wakes one
//     sleeper (wake call on the releaser's critical path) and any arriving
//     thread can barge, sending the woken thread straight back to sleep;
//   * MUTEXEE: spin ~8000 cycles (mfence pausing), user-space handover to a
//     spinning waiter whenever one exists, grace-window before waking a
//     sleeper, spin/mutex mode adaptation, optional sleep timeout.
#ifndef SRC_SIM_SIM_LOCK_HPP_
#define SRC_SIM_SIM_LOCK_HPP_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/locks/mutexee.hpp"
#include "src/platform/rng.hpp"
#include "src/sim/futex_model.hpp"
#include "src/sim/machine.hpp"

namespace lockin {

struct SimLockStats {
  std::uint64_t acquires = 0;
  std::uint64_t spin_handovers = 0;
  std::uint64_t futex_handovers = 0;
  std::uint64_t timeout_handovers = 0;
  std::uint64_t wake_skips = 0;
  std::uint64_t resleeps = 0;  // woken threads that found the lock taken
};

class SimLock {
 public:
  explicit SimLock(SimMachine* machine) : machine_(machine) {}
  virtual ~SimLock() = default;

  // The calling thread (running) requests the lock; `on_acquired` fires,
  // with the thread running, once it owns the lock.
  virtual void Acquire(int tid, std::function<void()> on_acquired) = 0;

  // Releases the lock; `on_released` fires when the release path (user-space
  // store, plus any futex wake / grace wait) has finished on the releaser.
  virtual void Release(int tid, std::function<void()> on_released) = 0;

  virtual std::string name() const = 0;

  const SimLockStats& stats() const { return stats_; }
  virtual const SimFutex::Stats* futex_stats() const { return nullptr; }

 protected:
  SimMachine* machine_;
  SimLockStats stats_;
};

// ---------------------------------------------------------------------------
// Spinlocks (TAS / TTAS / TICKET / MCS / CLH).
// ---------------------------------------------------------------------------
struct SimSpinLockConfig {
  enum class Discipline { kFifo, kRandom };
  enum class Handover {
    kQueue,      // constant-cost private-line handover (MCS, CLH)
    kBroadcast,  // invalidation burst over all waiters (TTAS, TICKET)
    kAtomicStorm,// TAS: burst + expensive release under contention
    kBackoff,    // TAS-BO: backoff drains the storm; adds re-probe latency
    kCohort      // COHORT: intra-socket handover most of the time
  };
  Discipline discipline = Discipline::kFifo;
  Handover handover = Handover::kBroadcast;
  ActivityState spin_state = ActivityState::kSpinMbar;
  std::string name = "TICKET";
  std::uint64_t rng_seed = 42;
  // Uncontested acquire+release overhead; differs per algorithm complexity
  // (Table 2 of the paper: simple spinlocks ~17 Macq/s single-threaded,
  // MCS ~12 Macq/s because of queue-node management).
  std::uint64_t uncontested_cycles = 65;
};

class SimSpinLock final : public SimLock {
 public:
  SimSpinLock(SimMachine* machine, SimSpinLockConfig config);

  void Acquire(int tid, std::function<void()> on_acquired) override;
  void Release(int tid, std::function<void()> on_released) override;
  std::string name() const override { return config_.name; }

 private:
  struct Waiter {
    int tid;
    std::function<void()> on_acquired;
  };

  std::uint64_t HandoverDelay() const;
  std::uint64_t ReleaseCost() const;
  void GrantTo(Waiter waiter, std::uint64_t delay);
  void FinalizeGrant(Waiter waiter);

  SimSpinLockConfig config_;
  Xoshiro256 rng_;
  bool held_ = false;
  std::deque<Waiter> waiters_;
  // Guards against double-grant when a random-discipline grant is parked on
  // multiple NotifyWhenRunning callbacks.
  std::uint64_t grant_epoch_ = 0;
};

// ---------------------------------------------------------------------------
// MUTEX (futex-based, glibc protocol).
// ---------------------------------------------------------------------------
struct SimFutexMutexConfig {
  std::uint64_t spin_cycles = 300;  // "threads spin up to a few hundred cycles"
  ActivityState spin_state = ActivityState::kSpinPause;  // glibc uses pause
  std::string name = "MUTEX";
  // Sanity checks + sleeper bookkeeping make MUTEX slower than simple
  // spinlocks even uncontested (Table 2: 11.88 vs ~17 Macq/s).
  std::uint64_t uncontested_cycles = 135;
  std::uint64_t rng_seed = 42;
};

class SimFutexMutex final : public SimLock {
 public:
  SimFutexMutex(SimMachine* machine, SimFutexMutexConfig config);

  void Acquire(int tid, std::function<void()> on_acquired) override;
  void Release(int tid, std::function<void()> on_released) override;
  std::string name() const override { return config_.name; }
  const SimFutex::Stats* futex_stats() const override { return &futex_.stats(); }

 private:
  void EnterSleepLoop(int tid);
  void TryGrantToSpinner();
  void TakeOwnership(int tid, bool via_futex);
  int PopRandomRunningSpinner();

  SimFutexMutexConfig config_;
  SimFutex futex_;
  Xoshiro256 rng_;
  bool held_ = false;
  std::deque<int> spinners_;
  std::unordered_map<int, std::function<void()>> pending_;  // tid -> on_acquired
};

// ---------------------------------------------------------------------------
// MUTEXEE.
// ---------------------------------------------------------------------------
struct SimMutexeeConfig {
  MutexeeConfig base;           // budgets/timeout/adaptation shared with native
  std::string name = "MUTEXEE";
  // Cheaper than MUTEX (no waiter bookkeeping on the fast path) but pays
  // for periodic adaptation (Table 2: 13.32 vs 11.88 / ~17 Macq/s).
  std::uint64_t uncontested_cycles = 110;
  std::uint64_t rng_seed = 42;
};

class SimMutexee final : public SimLock {
 public:
  SimMutexee(SimMachine* machine, SimMutexeeConfig config);

  void Acquire(int tid, std::function<void()> on_acquired) override;
  void Release(int tid, std::function<void()> on_released) override;
  std::string name() const override { return config_.name; }
  const SimFutex::Stats* futex_stats() const override { return &futex_.stats(); }

  MutexeeLock::Mode mode() const { return mode_; }

 private:
  void EnterSleepLoop(int tid);
  void BecomePersistentSpinner(int tid);
  void TakeOwnership(int tid, int kind);  // 0 spin, 1 futex, 2 timeout
  void RecordWindow(bool futex_handover);
  int PopRandomRunningSpinner();

  SimMutexeeConfig config_;
  SimFutex futex_;
  Xoshiro256 rng_;
  bool held_ = false;
  std::deque<int> spinners_;
  std::unordered_map<int, std::function<void()>> pending_;
  MutexeeLock::Mode mode_ = MutexeeLock::Mode::kSpin;
  std::uint64_t window_acquires_ = 0;
  std::uint64_t window_futex_ = 0;
};

// ---------------------------------------------------------------------------
// Factory: paper lock names -> simulated locks.
// ---------------------------------------------------------------------------
struct SimLockOptions {
  MutexeeConfig mutexee;            // budgets / timeout for MUTEXEE variants
  std::uint64_t mutex_spin_cycles = 300;
  std::uint64_t rng_seed = 42;
};

// Names: MUTEX, TAS, TTAS, TICKET, MCS, CLH, TAS-BO, COHORT, MUTEXEE,
// MUTEXEE-TO.
std::unique_ptr<SimLock> MakeSimLock(const std::string& name, SimMachine* machine,
                                     const SimLockOptions& options = {});

}  // namespace lockin

#endif  // SRC_SIM_SIM_LOCK_HPP_
