// Simulated lock algorithms.
//
// Each lock model reproduces the *handover behaviour* of its native
// counterpart in src/locks: who waits in which power state, what a release
// costs, who gets the lock next, and when futexes are involved. The models
// are event-driven against SimMachine/SimFutex; their parameters are the
// paper's measured latencies (src/sim/params.hpp).
//
// The discipline/handover distinctions that drive the paper's results:
//   * TAS: global spinning, random grant, release pays for the atomic storm;
//   * TTAS: local spinning, random grant, release triggers an invalidation
//     burst proportional to the number of waiters;
//   * TICKET: local spinning, FIFO grant, same burst; FIFO is what collapses
//     under oversubscription (a descheduled next-in-line stalls everyone);
//   * MCS/CLH: local spinning on a private line, FIFO, constant handover;
//   * MUTEX: spin a few hundred cycles then futex-sleep; release wakes one
//     sleeper (wake call on the releaser's critical path) and any arriving
//     thread can barge, sending the woken thread straight back to sleep;
//   * MUTEXEE: spin ~8000 cycles (mfence pausing), user-space handover to a
//     spinning waiter whenever one exists, grace-window before waking a
//     sleeper, spin/mutex mode adaptation, optional sleep timeout.
#ifndef SRC_SIM_SIM_LOCK_HPP_
#define SRC_SIM_SIM_LOCK_HPP_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/adaptive/lock_stats.hpp"
#include "src/adaptive/policy.hpp"
#include "src/locks/mutexee.hpp"
#include "src/platform/rng.hpp"
#include "src/sim/callback.hpp"
#include "src/sim/futex_model.hpp"
#include "src/sim/machine.hpp"

namespace lockin {

struct SimLockStats {
  std::uint64_t acquires = 0;
  std::uint64_t spin_handovers = 0;
  std::uint64_t futex_handovers = 0;
  std::uint64_t timeout_handovers = 0;
  std::uint64_t wake_skips = 0;
  std::uint64_t resleeps = 0;  // woken threads that found the lock taken
};

class SimLock {
 public:
  explicit SimLock(SimMachine* machine) : machine_(machine) {}
  virtual ~SimLock() = default;

  // The calling thread (running) requests the lock; `on_acquired` fires,
  // with the thread running, once it owns the lock. Waiting continuations
  // park in per-thread slots (one outstanding acquire per thread), not in
  // per-acquire heap closures -- see callback.hpp.
  virtual void Acquire(int tid, SimCallback on_acquired) = 0;

  // Releases the lock; `on_released` fires when the release path (user-space
  // store, plus any futex wake / grace wait) has finished on the releaser.
  virtual void Release(int tid, SimCallback on_released) = 0;

  virtual std::string name() const = 0;

  // Virtual so delegating locks (SimAdaptiveLock) can aggregate their inner
  // locks' counters.
  virtual const SimLockStats& stats() const { return stats_; }
  virtual const SimFutex::Stats* futex_stats() const { return nullptr; }

 protected:
  SimMachine* machine_;
  SimLockStats stats_;
};

// ---------------------------------------------------------------------------
// Spinlocks (TAS / TTAS / TICKET / MCS / CLH).
// ---------------------------------------------------------------------------
struct SimSpinLockConfig {
  enum class Discipline { kFifo, kRandom };
  enum class Handover {
    kQueue,      // constant-cost private-line handover (MCS, CLH)
    kBroadcast,  // invalidation burst over all waiters (TTAS, TICKET)
    kAtomicStorm,// TAS: burst + expensive release under contention
    kBackoff,    // TAS-BO: backoff drains the storm; adds re-probe latency
    kCohort      // COHORT: intra-socket handover most of the time
  };
  Discipline discipline = Discipline::kFifo;
  Handover handover = Handover::kBroadcast;
  ActivityState spin_state = ActivityState::kSpinMbar;
  std::string name = "TICKET";
  std::uint64_t rng_seed = 42;
  // Uncontested acquire+release overhead; differs per algorithm complexity
  // (Table 2 of the paper: simple spinlocks ~17 Macq/s single-threaded,
  // MCS ~12 Macq/s because of queue-node management).
  std::uint64_t uncontested_cycles = 65;
};

class SimSpinLock final : public SimLock {
 public:
  SimSpinLock(SimMachine* machine, SimSpinLockConfig config);

  void Acquire(int tid, SimCallback on_acquired) override;
  void Release(int tid, SimCallback on_released) override;
  std::string name() const override { return config_.name; }

 private:
  std::uint64_t HandoverDelay() const;
  std::uint64_t ReleaseCost() const;
  void GrantTo(int tid, std::uint64_t delay);
  void FinalizeGrant(int tid);

  SimSpinLockConfig config_;
  Xoshiro256 rng_;
  bool held_ = false;
  std::deque<int> waiters_;               // tids in arrival order
  SlotVector<SimCallback> pending_;       // tid -> on_acquired
  std::vector<std::size_t> running_scratch_;  // random-grant candidate buffer
};

// ---------------------------------------------------------------------------
// MUTEX (futex-based, glibc protocol).
// ---------------------------------------------------------------------------
struct SimFutexMutexConfig {
  std::uint64_t spin_cycles = 300;  // "threads spin up to a few hundred cycles"
  ActivityState spin_state = ActivityState::kSpinPause;  // glibc uses pause
  std::string name = "MUTEX";
  // Sanity checks + sleeper bookkeeping make MUTEX slower than simple
  // spinlocks even uncontested (Table 2: 11.88 vs ~17 Macq/s).
  std::uint64_t uncontested_cycles = 135;
  std::uint64_t rng_seed = 42;
};

class SimFutexMutex final : public SimLock {
 public:
  SimFutexMutex(SimMachine* machine, SimFutexMutexConfig config);

  void Acquire(int tid, SimCallback on_acquired) override;
  void Release(int tid, SimCallback on_released) override;
  std::string name() const override { return config_.name; }
  const SimFutex::Stats* futex_stats() const override { return &futex_.stats(); }

 private:
  void EnterSleepLoop(int tid);
  void TryGrantToSpinner();
  void TakeOwnership(int tid, bool via_futex);
  int PopRandomRunningSpinner();

  SimFutexMutexConfig config_;
  SimFutex futex_;
  Xoshiro256 rng_;
  bool held_ = false;
  std::deque<int> spinners_;
  SlotVector<SimCallback> pending_;  // tid -> on_acquired
  std::vector<std::size_t> running_scratch_;
};

// ---------------------------------------------------------------------------
// MUTEXEE.
// ---------------------------------------------------------------------------
struct SimMutexeeConfig {
  MutexeeConfig base;           // budgets/timeout/adaptation shared with native
  std::string name = "MUTEXEE";
  // Cheaper than MUTEX (no waiter bookkeeping on the fast path) but pays
  // for periodic adaptation (Table 2: 13.32 vs 11.88 / ~17 Macq/s).
  std::uint64_t uncontested_cycles = 110;
  std::uint64_t rng_seed = 42;
};

class SimMutexee final : public SimLock {
 public:
  SimMutexee(SimMachine* machine, SimMutexeeConfig config);

  void Acquire(int tid, SimCallback on_acquired) override;
  void Release(int tid, SimCallback on_released) override;
  std::string name() const override { return config_.name; }
  const SimFutex::Stats* futex_stats() const override { return &futex_.stats(); }

  MutexeeLock::Mode mode() const { return mode_; }

  // Online retuning of the spin-mode budgets, mirroring the native
  // MutexeeLock::Retune. Safe between events: budgets are read once per
  // acquire/release.
  void Retune(std::uint64_t spin_lock_cycles, std::uint64_t spin_grace_cycles) {
    config_.base.spin_mode_lock_cycles = spin_lock_cycles;
    config_.base.spin_mode_grace_cycles = spin_grace_cycles;
  }
  std::uint64_t spin_lock_budget() const { return config_.base.spin_mode_lock_cycles; }

 private:
  void EnterSleepLoop(int tid);
  void BecomePersistentSpinner(int tid);
  void TakeOwnership(int tid, int kind);  // 0 spin, 1 futex, 2 timeout
  void RecordWindow(bool futex_handover);
  int PopRandomRunningSpinner();

  SimMutexeeConfig config_;
  SimFutex futex_;
  Xoshiro256 rng_;
  bool held_ = false;
  std::deque<int> spinners_;
  SlotVector<SimCallback> pending_;       // tid -> on_acquired
  SlotVector<SimCallback> release_cont_;  // tid -> on_released (grace window)
  std::vector<std::size_t> running_scratch_;
  MutexeeLock::Mode mode_ = MutexeeLock::Mode::kSpin;
  std::uint64_t window_acquires_ = 0;
  std::uint64_t window_futex_ = 0;
};

// ---------------------------------------------------------------------------
// ADAPTIVE: the energy-aware adaptive runtime (src/adaptive/), simulated.
//
// Delegates to inner TTAS / MUTEX / MUTEXEE models and re-decides the
// backend per epoch through the *same* policy engine the native runtime
// uses (src/adaptive/policy.hpp). Switching is drain-based: once the policy
// picks a new backend, new arrivals park (spinning) outside the old one;
// when the old backend's in-flight acquisitions have drained, the parked
// arrivals are flushed to the new backend -- the simulated counterpart of
// the native lock's validate-on-acquire epoch switch.
// ---------------------------------------------------------------------------
struct SimAdaptiveConfig {
  PolicyConfig policy;              // shared native policy engine
  std::uint64_t epoch_acquires = 128;
  std::string name = "ADAPTIVE";
  // Power calibration for the profiler's energy-per-acquire estimate; must
  // match the machine the workload charges Joules with (WorkloadEnv::power)
  // or the TPP-maximizing policy optimizes the wrong platform.
  PowerParams power = PowerParams::PaperXeon();
};

class SimAdaptiveLock final : public SimLock {
 public:
  // `inner_options` configures the delegate locks (MUTEXEE budgets, seeds).
  SimAdaptiveLock(SimMachine* machine, SimAdaptiveConfig config,
                  const struct SimLockOptions& inner_options);

  void Acquire(int tid, SimCallback on_acquired) override;
  void Release(int tid, SimCallback on_released) override;
  std::string name() const override { return config_.name; }
  const SimLockStats& stats() const override;
  const SimFutex::Stats* futex_stats() const override;

  AdaptiveBackend backend() const { return current_; }
  std::uint64_t backend_switches() const { return switches_; }
  std::uint64_t epochs() const { return epochs_; }

 private:
  struct Parked {
    int tid;
    SimCallback on_acquired;
    SimTime requested_at;
  };

  SimLock& Inner(AdaptiveBackend b) { return *inner_[static_cast<int>(b)]; }
  const SimLock& Inner(AdaptiveBackend b) const { return *inner_[static_cast<int>(b)]; }
  void IssueAcquire(AdaptiveBackend b, int tid, SimCallback on_acquired,
                    SimTime requested_at);
  void OnInnerAcquired(int tid, SimTime requested_at);
  void EpochMaintenance(SimTime now);
  void MaybeFinishSwitch();
  std::uint64_t InnerSleepCalls() const;

  SimAdaptiveConfig config_;
  std::unique_ptr<AdaptivePolicy> policy_;
  std::unique_ptr<SimLock> inner_[kAdaptiveBackendCount];
  LockSiteStats profile_;

  AdaptiveBackend current_ = AdaptiveBackend::kMutexee;
  bool switching_ = false;
  AdaptiveBackend next_ = AdaptiveBackend::kMutexee;
  std::uint64_t outstanding_ = 0;  // issued to the active backend, not yet released
  std::vector<Parked> parked_;     // arrivals held back during a switch
  // Per-thread user continuations around the inner lock (the inner call
  // gets a thin {this, tid} closure instead of a fat wrapper).
  SlotVector<SimCallback> acquire_cont_;
  SlotVector<SimCallback> release_cont_;
  std::uint64_t switches_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t last_sleep_calls_ = 0;

  // Owner bookkeeping (one holder at a time by construction).
  SimTime holder_granted_at_ = 0;
  std::uint64_t pending_wait_cycles_ = 0;

  mutable SimLockStats aggregated_;
  mutable SimFutex::Stats aggregated_futex_;
};

// ---------------------------------------------------------------------------
// Factory: paper lock names -> simulated locks.
// ---------------------------------------------------------------------------
struct SimLockOptions {
  MutexeeConfig mutexee;            // budgets / timeout for MUTEXEE variants
  std::uint64_t mutex_spin_cycles = 300;
  std::uint64_t rng_seed = 42;
  // ADAPTIVE runtime knobs. `power` must mirror the WorkloadEnv's power
  // params (RunLockWorkload's setup copies it over).
  PolicyConfig adaptive_policy;
  std::uint64_t adaptive_epoch_acquires = 128;
  PowerParams power = PowerParams::PaperXeon();
};

// Names: MUTEX, TAS, TTAS, TICKET, MCS, CLH, TAS-BO, COHORT, MUTEXEE,
// MUTEXEE-TO, ADAPTIVE.
std::unique_ptr<SimLock> MakeSimLock(const std::string& name, SimMachine* machine,
                                     const SimLockOptions& options = {});

}  // namespace lockin

#endif  // SRC_SIM_SIM_LOCK_HPP_
